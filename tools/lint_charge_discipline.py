#!/usr/bin/env python
"""AST lint for the charge-accounting discipline of the runtime.

The simulated machine's counters are the repository's ground truth: the cost
model predicts them, the static verifier proves them, and the benchmarks pin
them.  That only works while every byte of file traffic flows through the
charged engines and no charge depends on the host.  This linter enforces the
discipline statically (stdlib ``ast`` only, no third-party dependencies):

``io-confinement``
    Raw file access (``open``, ``os.open``, ``np.memmap``, ``np.save``,
    ``np.load``, ``Path.read_bytes``/``write_bytes``) inside
    ``src/repro/runtime/`` is allowed only in ``io_engine.py`` and ``laf.py``
    — anywhere else it would move bytes the machine never charges.

``wall-clock``
    Charge paths must be deterministic: nothing in ``src/repro/runtime/``
    may *read* the host clock (``time.time``, ``time.perf_counter``,
    ``time.monotonic``, ``datetime.now`` ...).  ``time.sleep`` is fine — the
    retry backoff delays the host without touching a counter.

``retry-charge``
    Inside a retry loop (a ``while``/``for`` whose ``except`` handler catches
    ``TransientIOError`` or ``OSError``), no ``charge_*`` call may appear:
    a retried attempt would charge the machine once per failure, making the
    counters depend on the injected fault schedule.  Charges belong outside
    ``_attempt``-style loops (or must snapshot/restore around them).

``frozen-mutation``
    ``object.__setattr__`` is the frozen-dataclass escape hatch and is legal
    only inside the owning class's own ``__init__`` / ``__post_init__`` /
    ``__setstate__``.  Foreign mutation of a frozen plan object would let
    code quietly edit an already-verified plan.

``estimate-parity``
    Every engine in ``src/repro/runtime/`` drives the same slab loops in
    both modes, so a ``store_slab`` call with a real (non-``None``) payload
    must be gated on the VM's ``perform_io`` flag (an enclosing
    ``if vm.perform_io:`` / ``if perform:`` branch, or a
    ``data if perform_io else None`` payload).  An ungated real store would
    materialize data in ESTIMATE mode — the fused elementwise engine depends
    on this to keep its resident intermediate EXECUTE-only while both modes
    charge identical counters.

Run: ``python tools/lint_charge_discipline.py [root]`` — exits non-zero on
any violation.  Wired into ``make lint`` and CI.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterator, List, NamedTuple

IO_CONFINEMENT_ALLOWED = {"io_engine.py", "laf.py"}
#: unqualified calls that always mean host file access
RAW_IO_NAMES = {"open", "read_bytes", "write_bytes", "open_memmap"}
#: numpy file routines — only when actually called off the numpy module
#: (``SlabManifest.load`` or an ICLA's in-memory ``load`` are not file I/O)
NUMPY_IO_NAMES = {"memmap", "save", "load", "savez", "fromfile", "tofile"}
NUMPY_ALIASES = {"np", "numpy"}
WALL_CLOCK_CALLS = {"time", "perf_counter", "perf_counter_ns", "monotonic",
                    "monotonic_ns", "now", "utcnow", "clock_gettime"}
RETRY_EXCEPTIONS = {"TransientIOError", "OSError", "IOError"}


class Violation(NamedTuple):
    rule: str
    path: str
    line: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def _call_name(node: ast.Call) -> str:
    """The rightmost name of the called expression (``np.memmap`` -> ``memmap``)."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _is_object_setattr(node: ast.Call) -> bool:
    func = node.func
    return (
        isinstance(func, ast.Attribute)
        and func.attr == "__setattr__"
        and isinstance(func.value, ast.Name)
        and func.value.id == "object"
    )


# ---------------------------------------------------------------------------
# rules
# ---------------------------------------------------------------------------
def check_io_confinement(tree: ast.AST, path: Path) -> Iterator[Violation]:
    if path.name in IO_CONFINEMENT_ALLOWED:
        return
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        name = _call_name(node)
        func = node.func
        raw = False
        if isinstance(func, ast.Name) and name in RAW_IO_NAMES:
            raw = True
        elif isinstance(func, ast.Attribute):
            qualifier = func.value.id if isinstance(func.value, ast.Name) else ""
            if name in NUMPY_IO_NAMES and qualifier in NUMPY_ALIASES:
                raw = True
            elif name in RAW_IO_NAMES:
                raw = True
            elif name == "open" and qualifier == "os":
                raw = True
        if raw:
            yield Violation(
                "io-confinement", str(path), node.lineno,
                f"raw file access {name!r} outside "
                "io_engine.py/laf.py moves bytes the machine never charges",
            )


def check_wall_clock(tree: ast.AST, path: Path) -> Iterator[Violation]:
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        name = _call_name(node)
        if name not in WALL_CLOCK_CALLS:
            continue
        # Only flag reads off the time/datetime modules, not unrelated
        # methods that happen to share a name (e.g. some ``obj.now()``).
        func = node.func
        qualifier = ""
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            qualifier = func.value.id
        if qualifier in {"time", "datetime", "dt"} or (
            isinstance(func, ast.Name) and name in {"perf_counter", "monotonic"}
        ):
            yield Violation(
                "wall-clock", str(path), node.lineno,
                f"host clock read {qualifier + '.' if qualifier else ''}{name}() "
                "in a charge path makes simulated counters nondeterministic",
            )


def _catches_retryable(handler: ast.ExceptHandler) -> bool:
    def names(node) -> List[str]:
        if node is None:
            return []
        if isinstance(node, ast.Tuple):
            return [n for e in node.elts for n in names(e)]
        if isinstance(node, ast.Attribute):
            return [node.attr]
        if isinstance(node, ast.Name):
            return [node.id]
        return []

    return any(n in RETRY_EXCEPTIONS for n in names(handler.type))


def check_retry_charges(tree: ast.AST, path: Path) -> Iterator[Violation]:
    for loop in ast.walk(tree):
        if not isinstance(loop, (ast.While, ast.For)):
            continue
        retries = any(
            isinstance(node, ast.Try)
            and any(_catches_retryable(h) for h in node.handlers)
            for node in ast.walk(loop)
        )
        if not retries:
            continue
        for node in ast.walk(loop):
            if isinstance(node, ast.Call) and _call_name(node).startswith("charge"):
                yield Violation(
                    "retry-charge", str(path), node.lineno,
                    f"{_call_name(node)!r} inside a retry loop charges once "
                    "per failed attempt, coupling counters to the fault "
                    "schedule",
                )


def check_frozen_mutation(tree: ast.AST, path: Path) -> Iterator[Violation]:
    allowed_lines: set = set()
    for klass in ast.walk(tree):
        if not isinstance(klass, ast.ClassDef):
            continue
        for item in klass.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)) and (
                item.name in {"__init__", "__post_init__", "__setstate__"}
            ):
                for node in ast.walk(item):
                    if isinstance(node, ast.Call) and _is_object_setattr(node):
                        allowed_lines.add(node.lineno)
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and _is_object_setattr(node)
            and node.lineno not in allowed_lines
        ):
            yield Violation(
                "frozen-mutation", str(path), node.lineno,
                "object.__setattr__ outside the owning class's __init__/"
                "__post_init__ mutates a frozen (possibly verified) object",
            )


def _mentions_perform_io(node: ast.AST) -> bool:
    """True when the expression reads the VM's mode flag (or its local alias)."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and sub.attr == "perform_io":
            return True
        if isinstance(sub, ast.Name) and sub.id in {"perform", "perform_io"}:
            return True
    return False


def _store_payload(node: ast.Call):
    """The data argument of a ``store_slab(slab, data)`` call, if present."""
    if len(node.args) >= 2:
        return node.args[1]
    for keyword in node.keywords:
        if keyword.arg == "data":
            return keyword.value
    return None


def check_estimate_parity(tree: ast.AST, path: Path) -> Iterator[Violation]:
    def visit(node: ast.AST, guarded: bool) -> Iterator[Violation]:
        if isinstance(node, ast.If) and _mentions_perform_io(node.test):
            for child in node.body:
                yield from visit(child, True)
            for child in node.orelse:
                # The else branch is the ESTIMATE side: only None payloads.
                yield from visit(child, guarded)
            return
        if isinstance(node, ast.Call) and _call_name(node) == "store_slab":
            payload = _store_payload(node)
            none_payload = isinstance(payload, ast.Constant) and payload.value is None
            ifexp_gated = isinstance(payload, ast.IfExp) and _mentions_perform_io(
                payload.test
            )
            if payload is not None and not (none_payload or guarded or ifexp_gated):
                yield Violation(
                    "estimate-parity", str(path), node.lineno,
                    "store_slab with a real payload outside a perform_io gate "
                    "would materialize data in ESTIMATE mode",
                )
        for child in ast.iter_child_nodes(node):
            yield from visit(child, guarded)

    yield from visit(tree, False)


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------
def lint_file(path: Path, *, runtime: bool) -> List[Violation]:
    tree = ast.parse(path.read_text(), filename=str(path))
    violations: List[Violation] = []
    if runtime:
        violations.extend(check_io_confinement(tree, path))
        violations.extend(check_wall_clock(tree, path))
        violations.extend(check_retry_charges(tree, path))
        violations.extend(check_estimate_parity(tree, path))
    violations.extend(check_frozen_mutation(tree, path))
    return violations


def lint_tree(root: Path) -> List[Violation]:
    src = root / "src" / "repro"
    runtime_dir = src / "runtime"
    violations: List[Violation] = []
    for path in sorted(src.rglob("*.py")):
        runtime = runtime_dir in path.parents
        violations.extend(lint_file(path, runtime=runtime))
    return violations


def main(argv: List[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    root = Path(argv[0]) if argv else Path(__file__).resolve().parent.parent
    violations = lint_tree(root)
    for violation in violations:
        print(violation.render())
    checked = len(list((root / "src" / "repro").rglob("*.py")))
    if violations:
        print(f"charge discipline: {len(violations)} violation(s) "
              f"in {checked} file(s)")
        return 1
    print(f"charge discipline: clean ({checked} files)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
