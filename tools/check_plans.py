#!/usr/bin/env python
"""CI driver for the static plan verifier: ``make check-plans``.

Proves, over the full workload differential matrix, that the three charge
oracles agree on every compiled plan:

1. the **symbolic ledger** (:func:`repro.check.check_compiled` walking the
   node program without executing it),
2. the cost model's **PlanCost** (exact equality is part of the verifier's
   report — any disagreement is a ``ledger-drift`` finding), and
3. the **executed machine counters** (an ``ESTIMATE`` drive of the real
   executor; ESTIMATE and EXECUTE charge identically by construction).

Matrix: every workload builder x strategy x P in {1, 4} x even/uneven slab
granularity, 1–3-statement HPF programs, plus a seeded random sweep for the
odd shapes nobody writes tests for.  Exits non-zero on the first oracle that
disagrees.

Executed-equality caveats (documented in ``src/repro/runtime/README.md``):
the row-strategy reduction executor batches the result flush into one
request per streamed slab (bytes still exact), and the single-operand
reduction runs a broadcast schedule whose charges deliberately diverge from
the paper's re-read model — those plans are verified statically only.
"""

from __future__ import annotations

import argparse
import random
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.check import check_compiled  # noqa: E402
from repro.config import ExecutionMode, RunConfig  # noqa: E402
from repro.core.ir import (  # noqa: E402
    build_elementwise_ir,
    build_gaxpy_ir,
    build_pipeline_ir,
    build_transpose_ir,
)
from repro.core.pipeline import compile_program  # noqa: E402
from repro.exceptions import CompilationError  # noqa: E402
from repro.hpf.frontend import frontend_to_ir  # noqa: E402
from repro.hpf.parser import parse_program  # noqa: E402
from repro.runtime import NodeProgramExecutor, VirtualMachine  # noqa: E402
from repro.runtime.executor import ProgramExecutor  # noqa: E402

BUILDERS = {
    "gaxpy": build_gaxpy_ir,
    "elementwise": build_elementwise_ir,
    "transpose": build_transpose_ir,
    "pipeline": build_pipeline_ir,
}

TWO_STATEMENT_SOURCE = """
program two
  parameter (n = 16, nprocs = 4)
  real a(n, n), b(n, n), t(n, n), d(n, n), c(n, n)
!hpf$ processors Pr(nprocs)
!hpf$ template tmpl(n)
!hpf$ distribute tmpl(block) onto Pr
!hpf$ align a(*, :) with tmpl
!hpf$ align t(*, :) with tmpl
!hpf$ align d(*, :) with tmpl
!hpf$ align c(*, :) with tmpl
!hpf$ align b(:, *) with tmpl
  do j = 1, n
    forall (k = 1 : n)
      t(:, j) = sum(a(:, k) * b(k, j))
    end forall
  end do
  c(:, :) = add(t(:, :), d(:, :))
end program
"""

THREE_STATEMENT_SOURCE = """
program chain
  parameter (n = 16, nprocs = 4)
  real a(n, n), b(n, n), t(n, n), d(n, n), u(n, n), e(n, n), c(n, n)
!hpf$ processors Pr(nprocs)
!hpf$ template tmpl(n)
!hpf$ distribute tmpl(block) onto Pr
!hpf$ align a(*, :) with tmpl
!hpf$ align t(*, :) with tmpl
!hpf$ align d(*, :) with tmpl
!hpf$ align u(*, :) with tmpl
!hpf$ align e(*, :) with tmpl
!hpf$ align c(*, :) with tmpl
!hpf$ align b(:, *) with tmpl
  do j = 1, n
    forall (k = 1 : n)
      t(:, j) = sum(a(:, k) * b(k, j))
    end forall
  end do
  u(:, :) = add(t(:, :), d(:, :))
  c(:, :) = multiply(u(:, :), e(:, :))
end program
"""

SINGLE_OPERAND_SOURCE = """
program square
  parameter (n = 16, nprocs = 4)
  real a(n, n), c(n, n)
!hpf$ processors Pr(nprocs)
!hpf$ template tmpl(n)
!hpf$ distribute tmpl(block) onto Pr
!hpf$ align a(*, :) with tmpl
!hpf$ align c(*, :) with tmpl
  do j = 1, n
    forall (k = 1 : n)
      c(:, j) = sum(a(:, k) * a(k, j))
    end forall
  end do
end program
"""


class Failure(Exception):
    pass


def executed_statistics(compiled):
    with tempfile.TemporaryDirectory() as scratch:
        config = RunConfig(scratch_dir=Path(scratch), mode=ExecutionMode.ESTIMATE)
        with VirtualMachine(compiled.nprocs, compiled.params, config) as vm:
            if hasattr(compiled, "statements"):
                ProgramExecutor(compiled).run(vm, None, verify=False)
            else:
                NodeProgramExecutor(compiled).run(vm, None, verify=False)
            return vm.io_statistics()


def uses_row_reduction(compiled):
    units = compiled.statements if hasattr(compiled, "statements") else (compiled,)
    return any(unit.node_program.strategy == "row-slab" for unit in units)


def verify_one(label, compiled, *, execute):
    report = check_compiled(compiled)
    if not report.ok:
        raise Failure(f"{label}: {report.describe()}")
    if not execute:
        return
    ledger = report.ledger
    stats = executed_statistics(compiled)
    checks = [
        ("bytes_read_per_proc", ledger.read_bytes),
        ("bytes_written_per_proc", ledger.write_bytes),
        ("io_read_requests_per_proc", ledger.read_requests),
    ]
    if not uses_row_reduction(compiled):
        checks.append(("io_write_requests_per_proc", ledger.write_requests))
    for key, expected in checks:
        if stats[key] != expected:
            raise Failure(
                f"{label}: executed {key}={stats[key]} != ledger {expected}"
            )


def static_matrix():
    for build in ("gaxpy", "elementwise"):
        for n in (16, 23, 24):
            for nprocs in (1, 4):
                for ratio in (0.5, 0.3, 0.17):
                    for strategy in (None, "column", "row"):
                        yield (f"{build} n={n} P={nprocs} r={ratio} s={strategy}",
                               BUILDERS[build](n, nprocs),
                               dict(slab_ratio=ratio, force_strategy=strategy))
    for n in (16, 23, 24):
        for nprocs in (1, 4):
            yield (f"transpose n={n} P={nprocs}",
                   build_transpose_ir(n, nprocs), dict(slab_ratio=0.5))
            for ratio in (0.5, 0.25):
                yield (f"pipeline n={n} P={nprocs} r={ratio}",
                       build_pipeline_ir(n, nprocs), dict(slab_ratio=ratio))
    for name, source in (("single-operand", SINGLE_OPERAND_SOURCE),
                         ("two-statement", TWO_STATEMENT_SOURCE),
                         ("three-statement", THREE_STATEMENT_SOURCE)):
        ir = frontend_to_ir(parse_program(source))
        for ratio in (0.5, 0.25):
            for strategy in (None, "column", "row"):
                yield (f"{name} r={ratio} s={strategy}", ir,
                       dict(slab_ratio=ratio, force_strategy=strategy))


def executed_matrix():
    # Executor constraint: identical local shapes on every rank, so n % P == 0.
    for build in ("gaxpy", "elementwise", "transpose"):
        for nprocs in (1, 4):
            for ratio in (0.5, 0.3):
                yield (f"exec {build} n=24 P={nprocs} r={ratio}",
                       BUILDERS[build](24, nprocs), dict(slab_ratio=ratio))
    yield ("exec gaxpy row n=24 P=4",
           build_gaxpy_ir(24, 4), dict(slab_ratio=0.3, force_strategy="row"))
    for nprocs in (1, 4):
        yield (f"exec pipeline n=24 P={nprocs}",
               build_pipeline_ir(24, nprocs), dict(slab_ratio=0.3))
    for name, source in (("two-statement", TWO_STATEMENT_SOURCE),
                         ("three-statement", THREE_STATEMENT_SOURCE)):
        yield (f"exec {name} r=0.5", frontend_to_ir(parse_program(source)),
               dict(slab_ratio=0.5))


def fused_matrix():
    # Fusion rides on the plan optimizer, so every configuration here takes
    # the memory-budget path.  The three-statement chain has one legal edge
    # (u into c); the two-statement program and the pipeline IR have none
    # (reduction producers refuse to fuse) and must degrade to unfused plans
    # that still satisfy all three charge oracles.
    for name, source in (("two-statement", TWO_STATEMENT_SOURCE),
                         ("three-statement", THREE_STATEMENT_SOURCE)):
        ir = frontend_to_ir(parse_program(source))
        for budget in (8 * 1024, 16 * 1024):
            for fusion in ("auto", "on"):
                yield (f"fused {name} b={budget} fusion={fusion}", ir,
                       dict(memory_budget_bytes=budget, optimizer="greedy",
                            fusion=fusion))
    yield ("fused pipeline n=24 P=4", build_pipeline_ir(24, 4),
           dict(memory_budget_bytes=16 * 1024, optimizer="greedy", fusion="on"))


def fuzz_matrix(count, seed):
    rng = random.Random(seed)
    for index in range(count):
        build = rng.choice(sorted(BUILDERS))
        n = rng.randrange(8, 49)
        nprocs = rng.choice([1, 2, 4])
        ratio = rng.uniform(0.1, 0.9)
        yield (f"fuzz#{index} {build} n={n} P={nprocs} r={ratio:.3f}",
               BUILDERS[build](n, nprocs), dict(slab_ratio=ratio))


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fuzz", type=int, default=40,
                        help="number of seeded random configurations")
    parser.add_argument("--seed", type=int, default=1997)
    args = parser.parse_args(argv)

    checked = skipped = 0
    for label, ir, kwargs in static_matrix():
        try:
            compiled = compile_program(ir, **kwargs)
        except CompilationError:
            # legitimate refusals (e.g. transpose cannot be forced to 'row')
            skipped += 1
            continue
        verify_one(label, compiled, execute=False)
        checked += 1
    print(f"static matrix: {checked} plans verified "
          f"(ledger == PlanCost), {skipped} non-compilable skipped")

    executed = 0
    for label, ir, kwargs in executed_matrix():
        verify_one(label, compile_program(ir, **kwargs), execute=True)
        executed += 1
    print(f"executed matrix: {executed} plans verified against machine counters")

    fused = 0
    for label, ir, kwargs in fused_matrix():
        verify_one(label, compile_program(ir, **kwargs), execute=True)
        fused += 1
    print(f"fused matrix: {fused} fusion-enabled plans verified against "
          "machine counters")

    fuzzed = 0
    for label, ir, kwargs in fuzz_matrix(args.fuzz, args.seed):
        verify_one(label, compile_program(ir, **kwargs), execute=False)
        fuzzed += 1
    print(f"fuzz sweep: {fuzzed} seeded random plans verified (seed {args.seed})")
    print("check-plans: all oracles agree")
    return 0


if __name__ == "__main__":
    try:
        raise SystemExit(main())
    except Failure as failure:
        print(f"check-plans FAILED: {failure}", file=sys.stderr)
        raise SystemExit(1) from None
