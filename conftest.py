"""Pytest configuration for the repository.

Makes the ``src`` layout importable even when the package has not been
installed (useful offline, where ``pip install -e .`` may be unavailable
because the build front end cannot download ``wheel``).
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
