"""Even-split vs planner-optimized plans: charged I/O and drift gate.

Runs a fixed three-statement program (``t = a @ b; u = t + d; c = u * e``,
N=256, P=4) under one 48 KiB node memory budget three times through the
Session API in EXECUTE mode — with ``optimize="none"`` (the legacy even
split), with ``optimize="greedy"`` (the cost-model-driven plan search), and
with ``optimize="greedy"`` plus ``fusion="on"`` (the search extended with the
statement-fusion dimension) — and records the charged statistics of all.

The run asserts the planner's contract:

* every configuration verifies against the in-core NumPy oracle,
* ESTIMATE charges exactly the EXECUTE counters in every configuration,
* the optimized plan's *predicted* cost is no worse than the even split's,
* the optimized plan's *charged* I/O bytes strictly beat the even split's
  (the acceptance criterion of the planner subsystem),
* the fused plan's *charged* I/O bytes strictly beat the optimized unfused
  plan's — the chain's one legal edge (``u`` into ``c``; the reduction
  producing ``t`` refuses to fuse) drops the intermediate's write+read pass.

As with the other benchmarks, the first run records a ``baseline`` entry and
later runs fail on any drift of a charged number — the planner is
deterministic, so its chosen plan (and therefore every simulated statistic)
must be bit-stable across commits.

Usage::

    python -m benchmarks.bench_planner --json BENCH_planner.json
    make bench-planner
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.api import Session, WorkloadPoint  # noqa: E402
from repro.config import RunConfig  # noqa: E402

N = 256
NPROCS = 4
BUDGET = 48 * 1024

CHAIN_SOURCE = f"""
program chain
  parameter (n = {N}, nprocs = {NPROCS})
  real a(n, n), b(n, n), t(n, n), d(n, n), u(n, n), e(n, n), c(n, n)
!hpf$ processors Pr(nprocs)
!hpf$ template tmpl(n)
!hpf$ distribute tmpl(block) onto Pr
!hpf$ align a(*, :) with tmpl
!hpf$ align t(*, :) with tmpl
!hpf$ align d(*, :) with tmpl
!hpf$ align u(*, :) with tmpl
!hpf$ align e(*, :) with tmpl
!hpf$ align c(*, :) with tmpl
!hpf$ align b(:, *) with tmpl
  do j = 1, n
    forall (k = 1 : n)
      t(:, j) = sum(a(:, k) * b(k, j))
    end forall
  end do
  u(:, :) = add(t(:, :), d(:, :))
  c(:, :) = multiply(u(:, :), e(:, :))
end program
"""

SIMULATED_FIELDS = ("simulated_seconds", "io_time", "compute_time", "comm_time",
                    "io_requests_per_proc", "io_read_bytes_per_proc",
                    "io_write_bytes_per_proc")


def _point(optimize: str, fusion: str = "off") -> WorkloadPoint:
    options = {"source": CHAIN_SOURCE, "memory_budget_bytes": BUDGET}
    if fusion != "off":
        options["fusion"] = fusion
    return WorkloadPoint("hpf", optimize=optimize, options=options)


def _evaluate(optimize: str, fusion: str = "off") -> dict:
    with tempfile.TemporaryDirectory(prefix="bench-planner-") as scratch:
        session = Session(config=RunConfig(scratch_dir=scratch))
        estimate = session.estimate(_point(optimize, fusion))
        start = time.perf_counter()
        record = session.execute(_point(optimize, fusion))
        wall = time.perf_counter() - start
    mode_drift = [
        field
        for field in ("io_requests_per_proc", "io_read_bytes_per_proc",
                      "io_write_bytes_per_proc")
        if getattr(estimate, field) != getattr(record, field)
    ]
    return {
        "wall_seconds": wall,
        "verified": record.verified is True,
        "estimate_matches_execute_charges": not mode_drift,
        "statement_budgets": list(record.plan.get("statement_budgets", [])),
        "policies": list(record.plan.get("policies", [])),
        "fused_edges": list(record.plan.get("fused_edges", [])),
        "predicted_seconds": record.plan["predicted_seconds"],
        "charged_io_bytes_per_proc": record.io_bytes_per_proc,
        "simulated": {field: getattr(record, field) for field in SIMULATED_FIELDS},
    }


def measure() -> dict:
    even = _evaluate("none")
    optimized = _evaluate("greedy")
    fused = _evaluate("greedy", fusion="on")
    return {
        "even": even,
        "optimized": optimized,
        "fused": fused,
        "io_bytes_saved_per_proc": (
            even["charged_io_bytes_per_proc"] - optimized["charged_io_bytes_per_proc"]
        ),
        "fusion_io_bytes_saved_per_proc": (
            optimized["charged_io_bytes_per_proc"]
            - fused["charged_io_bytes_per_proc"]
        ),
        "predicted_speedup": (
            even["predicted_seconds"] / optimized["predicted_seconds"]
            if optimized["predicted_seconds"] else 1.0
        ),
    }


def _drift(baseline: dict, current: dict) -> list:
    drift = []
    for config in ("even", "optimized", "fused"):
        base = baseline.get(config, {})
        if not base:
            continue  # baselines recorded before the fused row existed
        for field, value in base.get("simulated", {}).items():
            now = current[config]["simulated"].get(field)
            if now != value:
                drift.append(f"{config}.{field}: {value!r} -> {now!r}")
        for field in ("statement_budgets", "policies", "fused_edges"):
            if base.get(field) != current[config].get(field):
                drift.append(
                    f"{config}.{field}: {base.get(field)!r} -> "
                    f"{current[config].get(field)!r}"
                )
    return drift


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", type=Path, default=Path("BENCH_planner.json"),
                        help="result file (baseline is kept across runs)")
    parser.add_argument("--reset-baseline", action="store_true",
                        help="overwrite the stored baseline with this run")
    args = parser.parse_args(argv)

    existing = {}
    if args.json.exists():
        existing = json.loads(args.json.read_text())

    measurement = measure()

    for config in ("even", "optimized", "fused"):
        if not measurement[config]["verified"]:
            print(f"ERROR: the {config} plan failed oracle verification")
            return 1
        if not measurement[config]["estimate_matches_execute_charges"]:
            print(f"ERROR: {config}: ESTIMATE and EXECUTE charged different counters")
            return 1
    if (measurement["optimized"]["predicted_seconds"]
            > measurement["even"]["predicted_seconds"]):
        print("ERROR: the optimized plan's predicted cost exceeds the even split's")
        return 1
    if measurement["io_bytes_saved_per_proc"] <= 0:
        print("ERROR: the optimized plan did not beat the even split's charged "
              "I/O bytes")
        return 1
    if measurement["fusion_io_bytes_saved_per_proc"] <= 0:
        print("ERROR: the fused plan did not beat the optimized unfused plan's "
              "charged I/O bytes")
        return 1
    if not measurement["fused"]["fused_edges"]:
        print("ERROR: fusion=on chose no fused statement pair on the chain")
        return 1

    result = {
        "benchmark": "planner-even-vs-optimized",
        "config": {"n": N, "nprocs": NPROCS, "memory_budget_bytes": BUDGET,
                   "statements": 3},
    }
    saved = measurement["io_bytes_saved_per_proc"]
    even_bytes = measurement["even"]["charged_io_bytes_per_proc"]
    print(f"even split:  {even_bytes / 1e6:.3f} MB charged I/O per proc")
    print(f"optimized:   "
          f"{measurement['optimized']['charged_io_bytes_per_proc'] / 1e6:.3f} MB "
          f"({saved / 1e6:.3f} MB saved, "
          f"{100 * saved / even_bytes:.1f}%), "
          f"budgets {measurement['optimized']['statement_budgets']}")
    fused_bytes = measurement["fused"]["charged_io_bytes_per_proc"]
    fusion_saved = measurement["fusion_io_bytes_saved_per_proc"]
    print(f"fused:       {fused_bytes / 1e6:.3f} MB "
          f"({fusion_saved / 1e6:.3f} MB saved vs optimized, "
          f"fused edges {measurement['fused']['fused_edges']})")
    print(f"predicted speedup: {measurement['predicted_speedup']:.2f}x")

    if args.reset_baseline or "baseline" not in existing:
        result["baseline"] = measurement
        print("recorded baseline")
    else:
        result["baseline"] = existing["baseline"]
        result["current"] = measurement
        drift = _drift(existing["baseline"], measurement)
        result["simulated_drift"] = drift
        if drift:
            print("ERROR: charged statistics moved (the planner is deterministic; "
                  "its chosen plan must be bit-stable):")
            for line in drift:
                print(f"  {line}")
            args.json.write_text(json.dumps(result, indent=2) + "\n")
            return 1
        print("charged statistics identical to baseline (both configurations)")

    result["unix_time"] = time.time()
    args.json.write_text(json.dumps(result, indent=2) + "\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
