"""Benchmark regenerating Table 1: column-slab vs row-slab vs in-core.

Times the full paper-scale sweep and asserts the table's qualitative shape:

* the row-slab version beats the column-slab version at every configuration,
  by a factor in the "order of magnitude" regime the paper reports for the
  I/O component,
* the in-core baseline beats both out-of-core versions, and
* within each version, times improve (or stay flat) as the slab ratio grows.
"""

import pytest

from repro.experiments import Table1Config, run_table1


@pytest.fixture(scope="module")
def table1_result():
    return run_table1(Table1Config())


def bench_table1_paper_scale(benchmark):
    """Time the full Table 1 sweep (32 out-of-core points + 4 in-core points)."""
    result = benchmark(lambda: run_table1(Table1Config()))
    assert len(result["records"]) == 36


def test_row_slab_always_beats_column_slab(table1_result):
    config = table1_result["config"]
    cells = table1_result["cells"]
    for nprocs in config.processor_counts:
        for ratio in config.slab_ratios:
            column = cells[(ratio, nprocs, "column")]
            row = cells[(ratio, nprocs, "row")]
            assert row < column, f"row slab not faster at P={nprocs}, ratio={ratio}"


def test_speedup_is_at_least_several_fold(table1_result):
    speedups = table1_result["speedups"]
    assert min(speedups.values()) > 3.0
    assert max(speedups.values()) > 10.0


def test_incore_is_fastest(table1_result):
    config = table1_result["config"]
    cells = table1_result["cells"]
    for nprocs in config.processor_counts:
        incore = cells[("incore", nprocs)]
        for ratio in config.slab_ratios:
            assert incore <= cells[(ratio, nprocs, "row")] * 1.001
            assert incore < cells[(ratio, nprocs, "column")]


def test_times_improve_with_larger_slabs(table1_result):
    config = table1_result["config"]
    cells = table1_result["cells"]
    ratios = sorted(config.slab_ratios)  # smallest slab first
    for nprocs in config.processor_counts:
        for version in ("column", "row"):
            times = [cells[(ratio, nprocs, version)] for ratio in ratios]
            assert all(t2 <= t1 * 1.001 for t1, t2 in zip(times, times[1:], strict=False)), (
                f"{version} times do not improve with slab size at P={nprocs}: {times}"
            )


def test_processor_scaling_direction_matches_paper(table1_result):
    """In the paper every version gets faster (never slower) with more processors."""
    config = table1_result["config"]
    cells = table1_result["cells"]
    for ratio in config.slab_ratios:
        for version in ("column", "row"):
            times = [cells[(ratio, p, version)] for p in config.processor_counts]
            assert all(t2 <= t1 * 1.01 for t1, t2 in zip(times, times[1:], strict=False))
