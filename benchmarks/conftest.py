"""Benchmark suite configuration: make the src layout importable."""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
