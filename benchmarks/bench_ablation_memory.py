"""Benchmark of the memory-allocation and storage-order ablations."""

from repro.experiments import (
    MemoryAllocationAblationConfig,
    PrefetchAblationConfig,
    StorageOrderAblationConfig,
    run_memory_allocation_ablation,
    run_prefetch_ablation,
    run_storage_order_ablation,
)


def bench_memory_allocation_ablation(benchmark):
    result = benchmark(lambda: run_memory_allocation_ablation(MemoryAllocationAblationConfig()))
    rows = {r["policy"]: r for r in result["rows"]}
    # The informed policies should never be worse than the equal split.
    assert rows["proportional"]["predicted_total_time"] <= rows["equal"]["predicted_total_time"] * 1.001
    assert rows["search"]["predicted_total_time"] <= rows["equal"]["predicted_total_time"] * 1.001
    # The proportional policy gives the streamed array the larger slab.
    assert rows["proportional"]["slab_a_elements"] > rows["proportional"]["slab_b_elements"]


def bench_storage_order_ablation(benchmark):
    result = benchmark(lambda: run_storage_order_ablation(StorageOrderAblationConfig()))
    # Leaving the LAF in arrival order inflates the request count by the number
    # of local columns per slab (orders of magnitude for wide local arrays).
    assert result["request_inflation"] > 10


def bench_prefetch_ablation(benchmark):
    result = benchmark(lambda: run_prefetch_ablation(PrefetchAblationConfig()))
    rows = {r["efficiency"]: r for r in result["rows"]}
    assert rows[0.0]["total_time"] >= rows[0.5]["total_time"] >= rows[1.0]["total_time"]
    assert rows[0.0]["savings"] == 0.0
