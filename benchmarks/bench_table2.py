"""Benchmark regenerating Table 2: slab-size selection for multiple arrays.

Times the paper-scale sweep (2K x 2K arrays, 16 processors, row-slab version,
slab sizes 256..2048 lines) and asserts its qualitative conclusions:

* at equal total memory, growing the streamed array's slab (experiment 2)
  is at least as good as growing the coefficient array's slab (experiment 1),
* more memory never hurts, and
* the best overall configuration belongs to experiment 2 — the basis for the
  paper's recommendation that the compiler allocate memory non-uniformly.
"""

import pytest

from repro.experiments import Table2Config, run_table2


@pytest.fixture(scope="module")
def table2_result():
    return run_table2(Table2Config())


def bench_table2_paper_scale(benchmark):
    result = benchmark(lambda: run_table2(Table2Config()))
    assert len(result["rows"]) == 8


def _by_experiment(rows, experiment):
    return sorted(
        (r for r in rows if r["experiment"] == experiment), key=lambda r: r["total_lines"]
    )


def test_growing_a_beats_growing_b_at_equal_memory(table2_result):
    rows = table2_result["rows"]
    vary_a = _by_experiment(rows, "vary_a")
    vary_b = _by_experiment(rows, "vary_b")
    for row_a, row_b in zip(vary_a, vary_b, strict=True):
        assert row_a["total_lines"] == row_b["total_lines"]
        assert row_a["time"] <= row_b["time"] * 1.001


def test_more_memory_never_hurts(table2_result):
    rows = table2_result["rows"]
    for experiment in ("vary_a", "vary_b"):
        times = [r["time"] for r in _by_experiment(rows, experiment)]
        assert all(t2 <= t1 * 1.001 for t1, t2 in zip(times, times[1:], strict=False))


def test_best_configuration_grows_the_streamed_array(table2_result):
    best = table2_result["best"]
    assert best["vary_a"]["time"] <= best["vary_b"]["time"]
