"""Benchmark regenerating Figure 10: effect of slab-size variation.

The benchmark times the full paper-scale sweep (1K x 1K arrays, 4–64
processors, slab ratios 1 down to 1/8, column-slab version) through the
analytic estimator, and asserts the figure's qualitative shape:

* for every processor count, time increases monotonically as the slab ratio
  decreases (more slabs -> more I/O requests), and
* for every slab ratio, time does not increase with the processor count.
"""

import pytest

from repro.experiments import Figure10Config, run_figure10


@pytest.fixture(scope="module")
def figure10_result():
    return run_figure10(Figure10Config())


def bench_figure10_paper_scale(benchmark):
    """Time the full Figure 10 sweep (16 configuration points)."""
    result = benchmark(lambda: run_figure10(Figure10Config()))
    assert len(result["records"]) == 16


def test_time_increases_as_slab_ratio_shrinks(figure10_result):
    for nprocs, series in figure10_result["series"].items():
        ordered = sorted(series, key=lambda pair: pair[0], reverse=True)  # ratio 1 first
        times = [t for _, t in ordered]
        assert all(t2 >= t1 for t1, t2 in zip(times, times[1:], strict=False)), (
            f"times not monotone for {nprocs} processors: {times}"
        )


def test_time_does_not_grow_with_processors(figure10_result):
    config = figure10_result["config"]
    for ratio in config.slab_ratios:
        times = [
            next(t for r, t in figure10_result["series"][p] if r == ratio)
            for p in config.processor_counts
        ]
        assert all(t2 <= t1 * 1.01 for t1, t2 in zip(times, times[1:], strict=False)), (
            f"times grow with processor count at ratio {ratio}: {times}"
        )


def test_spread_matches_paper_order_of_magnitude(figure10_result):
    """The paper's Figure 10 spans roughly 600-1050 s; the model lands in the same decade."""
    all_times = [t for series in figure10_result["series"].values() for _, t in series]
    assert 300 < min(all_times) < 1200
    assert 600 < max(all_times) < 2000
