"""Benchmark of real (execute-mode) out-of-core runs at a reduced size.

The paper-scale tables use the analytic estimator; this benchmark measures
the wall-clock cost of actually staging slabs through Local Array Files and
doing the arithmetic, at a size small enough to run in a few hundred
milliseconds, and checks that the executed I/O counters still show the
reorganization's advantage.
"""

import pytest

from repro.config import RunConfig
from repro.core import compile_gaxpy
from repro.kernels import (
    generate_gaxpy_inputs,
    run_gaxpy_column_slab,
    run_gaxpy_row_slab,
)
from repro.runtime import VirtualMachine

N = 64
NPROCS = 4
RATIO = 0.25


@pytest.fixture(scope="module")
def compiled():
    return compile_gaxpy(N, NPROCS, slab_ratio=RATIO)


@pytest.fixture(scope="module")
def inputs():
    return generate_gaxpy_inputs(N)


def bench_execute_column_slab(benchmark, compiled, inputs, tmp_path_factory):
    config = RunConfig(scratch_dir=tmp_path_factory.mktemp("laf-col"))

    def run():
        with VirtualMachine(NPROCS, compiled.params, config) as vm:
            return run_gaxpy_column_slab(vm, compiled, inputs, verify=False)

    result = benchmark(run)
    assert result.io_statistics["io_requests_per_proc"] > 0


def bench_execute_row_slab(benchmark, compiled, inputs, tmp_path_factory):
    config = RunConfig(scratch_dir=tmp_path_factory.mktemp("laf-row"))

    def run():
        with VirtualMachine(NPROCS, compiled.params, config) as vm:
            return run_gaxpy_row_slab(vm, compiled, inputs, verify=False)

    result = benchmark(run)
    assert result.io_statistics["io_requests_per_proc"] > 0


def test_executed_counters_show_the_reorganization_win(compiled, inputs, tmp_path):
    config = RunConfig(scratch_dir=tmp_path)
    with VirtualMachine(NPROCS, compiled.params, config) as vm:
        column = run_gaxpy_column_slab(vm, compiled, inputs, verify=False)
    with VirtualMachine(NPROCS, compiled.params, config) as vm:
        row = run_gaxpy_row_slab(vm, compiled, inputs, verify=False)
    assert row.io_statistics["io_requests_per_proc"] < column.io_statistics["io_requests_per_proc"] / 5
    assert row.io_statistics["bytes_read_per_proc"] < column.io_statistics["bytes_read_per_proc"] / 5
