"""Wall-clock + charged-statistics benchmark of whole-program execution.

Runs the fixed two-statement pipeline ``t = a @ b; c = t + d`` (N=256, P=4,
slab ratio 0.25) through the Session API in EXECUTE mode and records the wall
clock together with the charged statistics, including the per-statement
breakdown.  The first run against a repository writes the ``baseline`` entry
of the JSON file; later runs append ``current`` and fail on any drift of a
charged number — the whole-program machinery (LAF reuse included) may only
change host time, never simulated cost.

The run also asserts the structural invariants of the schedule: the ESTIMATE
record must charge exactly the EXECUTE counters, and the numerics must verify
against the in-core NumPy oracle.

Usage::

    python -m benchmarks.bench_program --json BENCH_program.json
    make bench-program
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.api import Session, WorkloadPoint  # noqa: E402
from repro.config import RunConfig  # noqa: E402

N = 256
NPROCS = 4
SLAB_RATIO = 0.25

PIPELINE_SOURCE = f"""
program pipeline
  parameter (n = {N}, nprocs = {NPROCS})
  real a(n, n), b(n, n), t(n, n), d(n, n), c(n, n)
!hpf$ processors Pr(nprocs)
!hpf$ template tmpl(n)
!hpf$ distribute tmpl(block) onto Pr
!hpf$ align a(*, :) with tmpl
!hpf$ align t(*, :) with tmpl
!hpf$ align d(*, :) with tmpl
!hpf$ align c(*, :) with tmpl
!hpf$ align b(:, *) with tmpl
  do j = 1, n
    forall (k = 1 : n)
      t(:, j) = sum(a(:, k) * b(k, j))
    end forall
  end do
  c(:, :) = add(t(:, :), d(:, :))
end program
"""

SIMULATED_FIELDS = ("simulated_seconds", "io_time", "compute_time", "comm_time",
                    "io_requests_per_proc", "io_read_bytes_per_proc",
                    "io_write_bytes_per_proc")

STATEMENT_FIELDS = ("seconds", "io", "compute", "comm", "io_requests_per_proc",
                    "bytes_read_per_proc", "bytes_written_per_proc")


def _point() -> WorkloadPoint:
    return WorkloadPoint("hpf", slab_ratio=SLAB_RATIO,
                         options={"source": PIPELINE_SOURCE})


def measure(repeats: int = 2) -> dict:
    best_wall = None
    record = None
    estimate = None
    for _ in range(max(1, repeats)):
        with tempfile.TemporaryDirectory(prefix="bench-program-") as scratch:
            session = Session(config=RunConfig(scratch_dir=scratch))
            estimate = session.estimate(_point())
            start = time.perf_counter()
            record = session.execute(_point())
            wall = time.perf_counter() - start
        if best_wall is None or wall < best_wall:
            best_wall = wall
    mode_drift = [
        field
        for field in ("io_requests_per_proc", "io_read_bytes_per_proc",
                      "io_write_bytes_per_proc")
        if getattr(estimate, field) != getattr(record, field)
    ]
    return {
        "wall_seconds": best_wall,
        "repeats": repeats,
        "verified": record.verified is True,
        "estimate_matches_execute_charges": not mode_drift,
        "simulated": {field: getattr(record, field) for field in SIMULATED_FIELDS},
        "statements": [
            {field: stmt.get(field, 0.0) for field in STATEMENT_FIELDS}
            for stmt in record.statements
        ],
    }


def _drift(baseline: dict, current: dict) -> list:
    drift = []
    for field, value in baseline.get("simulated", {}).items():
        now = current["simulated"].get(field)
        if now != value:
            drift.append(f"simulated.{field}: {value!r} -> {now!r}")
    for index, stmt in enumerate(baseline.get("statements", [])):
        for field, value in stmt.items():
            now = current["statements"][index].get(field)
            if now != value:
                drift.append(f"statement{index + 1}.{field}: {value!r} -> {now!r}")
    return drift


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", type=Path, default=Path("BENCH_program.json"),
                        help="result file (baseline is kept across runs)")
    parser.add_argument("--repeats", type=int, default=2,
                        help="take the best wall clock of this many runs")
    parser.add_argument("--reset-baseline", action="store_true",
                        help="overwrite the stored baseline with this run")
    args = parser.parse_args(argv)

    existing = {}
    if args.json.exists():
        existing = json.loads(args.json.read_text())

    measurement = measure(repeats=args.repeats)

    if not measurement["verified"]:
        print("ERROR: the executed pipeline failed oracle verification")
        return 1
    if not measurement["estimate_matches_execute_charges"]:
        print("ERROR: ESTIMATE and EXECUTE charged different I/O counters")
        return 1

    result = {
        "benchmark": "two-statement-program-execute",
        "config": {"n": N, "nprocs": NPROCS, "slab_ratio": SLAB_RATIO,
                   "statements": 2},
    }
    if args.reset_baseline or "baseline" not in existing:
        result["baseline"] = measurement
        print(f"recorded baseline: {measurement['wall_seconds']:.3f}s wall")
    else:
        result["baseline"] = existing["baseline"]
        result["current"] = measurement
        baseline_wall = existing["baseline"]["wall_seconds"]
        result["speedup"] = baseline_wall / measurement["wall_seconds"]
        print(f"baseline: {baseline_wall:.3f}s wall")
        print(f"current:  {measurement['wall_seconds']:.3f}s wall "
              f"({result['speedup']:.2f}x)")
        drift = _drift(existing["baseline"], measurement)
        result["simulated_drift"] = drift
        if drift:
            print("ERROR: charged statistics moved (whole-program execution "
                  "must only change host time):")
            for line in drift:
                print(f"  {line}")
            args.json.write_text(json.dumps(result, indent=2) + "\n")
            return 1
        print("charged statistics identical to baseline "
              "(per-statement breakdown included)")

    result["unix_time"] = time.time()
    args.json.write_text(json.dumps(result, indent=2) + "\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
