"""Wall-clock benchmark of the EXECUTE-mode fast path.

Runs a fixed EXECUTE-mode GAXPY sweep (both slabbing strategies at a size
large enough for the host-side cost to dominate) and records the wall-clock
time together with the *charged* statistics (simulated seconds, I/O requests
and bytes per processor).

The first run against a repository writes its measurements as the
``baseline`` entry of the JSON file; subsequent runs write the ``current``
entry and compute the speedup.  Because the charged statistics are recorded
alongside the wall clock, the file also serves as a regression check for the
invariant that the fast path changes host time only: ``baseline`` and
``current`` must agree on every simulated number.

Usage::

    python -m benchmarks.bench_fastpath --json BENCH_fastpath.json
    make bench
"""

from __future__ import annotations

import argparse
import inspect
import json
import sys
import tempfile
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.analysis.sweep import SweepPoint, sweep_gaxpy  # noqa: E402
from repro.config import ExecutionMode, RunConfig  # noqa: E402

N = 256
NPROCS = 4
SLAB_RATIO = 0.25
VERSIONS = ("column", "row")

SIMULATED_FIELDS = ("time", "io_time", "compute_time", "comm_time",
                    "io_requests_per_proc", "io_bytes_per_proc")


def _points():
    return [SweepPoint(n=N, nprocs=NPROCS, version=version, slab_ratio=SLAB_RATIO)
            for version in VERSIONS]


def measure(workers: int = 1, repeats: int = 1) -> dict:
    """Run the fixed sweep ``repeats`` times and return the best wall clock."""
    kwargs = {}
    if "workers" in inspect.signature(sweep_gaxpy).parameters:
        kwargs["workers"] = workers
    best_wall = None
    records = None
    for _ in range(max(1, repeats)):
        with tempfile.TemporaryDirectory(prefix="bench-fastpath-") as scratch:
            config = RunConfig(scratch_dir=scratch)
            start = time.perf_counter()
            records = sweep_gaxpy(_points(), mode=ExecutionMode.EXECUTE,
                                  config=config, **kwargs)
            wall = time.perf_counter() - start
        if best_wall is None or wall < best_wall:
            best_wall = wall
    simulated = {
        record["version"]: {field: record[field] for field in SIMULATED_FIELDS}
        for record in records
    }
    return {
        "wall_seconds": best_wall,
        "workers": workers,
        "repeats": repeats,
        "simulated": simulated,
        "verified": all(record.get("verified", 0.0) == 1.0 for record in records),
    }


def _simulated_drift(baseline: dict, current: dict) -> list:
    """Fields on which the charged statistics moved (must stay empty)."""
    drift = []
    for version, fields in baseline.get("simulated", {}).items():
        for field, value in fields.items():
            now = current["simulated"].get(version, {}).get(field)
            if now != value:
                drift.append(f"{version}.{field}: {value!r} -> {now!r}")
    return drift


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", type=Path, default=Path("BENCH_fastpath.json"),
                        help="result file (baseline is kept across runs)")
    parser.add_argument("--workers", type=int, default=4,
                        help="sweep workers for the current measurement")
    parser.add_argument("--repeats", type=int, default=2,
                        help="take the best wall clock of this many runs")
    parser.add_argument("--reset-baseline", action="store_true",
                        help="overwrite the stored baseline with this run")
    args = parser.parse_args(argv)

    existing = {}
    if args.json.exists():
        existing = json.loads(args.json.read_text())

    measurement = measure(workers=args.workers, repeats=args.repeats)

    result = {
        "benchmark": "fastpath-execute-sweep",
        "config": {"n": N, "nprocs": NPROCS, "slab_ratio": SLAB_RATIO,
                   "versions": list(VERSIONS)},
    }
    if args.reset_baseline or "baseline" not in existing:
        result["baseline"] = measurement
        print(f"recorded baseline: {measurement['wall_seconds']:.3f}s wall")
    else:
        result["baseline"] = existing["baseline"]
        result["current"] = measurement
        baseline_wall = existing["baseline"]["wall_seconds"]
        result["speedup"] = baseline_wall / measurement["wall_seconds"]
        print(f"baseline: {baseline_wall:.3f}s wall")
        print(f"current:  {measurement['wall_seconds']:.3f}s wall "
              f"({result['speedup']:.2f}x speedup)")
        drift = _simulated_drift(existing["baseline"], measurement)
        result["simulated_drift"] = drift
        if drift:
            print("ERROR: charged statistics moved (the fast path must only "
                  "change host time):")
            for line in drift:
                print(f"  {line}")
            args.json.write_text(json.dumps(result, indent=2) + "\n")
            return 1
        print("charged statistics identical to baseline")

    result["unix_time"] = time.time()
    args.json.write_text(json.dumps(result, indent=2) + "\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
