"""Benchmark of the compilation pipeline itself (experiment E6 of DESIGN.md).

Times the full compile (in-core phase, strip-mining, cost model, access
reorganization, memory allocation, code generation) at the paper's problem
size and asserts the optimizer's decision: the row-slab plan is chosen and
the predicted I/O improvement is at least an order of magnitude.
"""

from repro.core import compile_gaxpy
from repro.core.memory_alloc import ProportionalAllocation
from repro.runtime.slab import SlabbingStrategy


def bench_compile_gaxpy_paper_scale(benchmark):
    compiled = benchmark(
        lambda: compile_gaxpy(
            1024, 64, memory_budget_bytes=4 * 1024 * 1024, policy=ProportionalAllocation()
        )
    )
    assert compiled.plan.strategy is SlabbingStrategy.ROW
    assert compiled.decision is not None
    assert compiled.decision.predicted_improvement >= 10.0


def bench_compile_gaxpy_explicit_ratio(benchmark):
    compiled = benchmark(lambda: compile_gaxpy(2048, 16, slab_ratio=0.125))
    assert compiled.plan.strategy is SlabbingStrategy.ROW
    assert compiled.compile_seconds < 1.0


def bench_node_program_generation_and_counting(benchmark):
    compiled = compile_gaxpy(1024, 16, slab_ratio=0.25)

    def regenerate():
        return compiled.node_program.operation_totals()

    totals = benchmark(regenerate)
    assert totals["flops"] > 0
    assert totals["global_sums"] > 0
