"""Service parity + concurrent-throughput benchmark of the job server.

Runs a fixed 8-job, 4-tenant mix of EXECUTE workloads twice:

* **serial / direct** — each point through ``Session.run`` back-to-back,
  no HTTP, no scheduler: the reference both for wall-clock and for every
  charged statistic.
* **concurrent / served** — the same points as 8 jobs POSTed concurrently
  to a 4-worker :class:`~repro.service.JobService` behind the HTTP server,
  records fetched back over the wire.

The benchmark fails on ANY difference between a served record and its
direct twin — every charged field, per-statement breakdown included.  That
is the service's whole contract: scheduling, admission, threads and JSON
transport may only change host time, never simulated cost.

On machines with at least 4 CPUs the served run must be at least 2x faster
than the serial loop (the kernels and file I/O release the GIL, so a
4-worker pool genuinely overlaps); on smaller machines the speedup is
reported but not enforced.  The charged numbers are also compared against
the committed ``BENCH_service.json`` baseline, so cost-model drift fails in
CI even when parity holds.

Usage::

    python -m benchmarks.bench_service --json BENCH_service.json
    make bench-service
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import threading
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.api import Session, WorkloadPoint  # noqa: E402
from repro.config import RunConfig  # noqa: E402
from repro.service import JobService, JobSpec, ServiceClient, serve_in_thread  # noqa: E402

N = 128
NPROCS = 4
SLAB_RATIO = 0.25
WORKERS = 4
TENANTS = 4
MIN_SPEEDUP = 2.0
MIN_CPUS_FOR_SPEEDUP_GATE = 4
SEED = 1997

SIMULATED_FIELDS = ("simulated_seconds", "io_time", "compute_time", "comm_time",
                    "io_requests_per_proc", "io_read_bytes_per_proc",
                    "io_write_bytes_per_proc")

STATEMENT_FIELDS = ("seconds", "io", "compute", "comm", "io_requests_per_proc",
                    "bytes_read_per_proc", "bytes_written_per_proc")


def _points() -> list:
    """8 jobs: two rounds over four workloads, so the compile LRU gets hits."""
    mix = [
        WorkloadPoint("gaxpy", n=N, nprocs=NPROCS, slab_ratio=SLAB_RATIO,
                      version="column"),
        WorkloadPoint("gaxpy", n=N, nprocs=NPROCS, slab_ratio=SLAB_RATIO,
                      version="row"),
        WorkloadPoint("transpose", n=N, nprocs=NPROCS, slab_ratio=SLAB_RATIO),
        WorkloadPoint("elementwise", n=N, nprocs=NPROCS, slab_ratio=SLAB_RATIO),
    ]
    return mix * 2


def _record_drift(direct, served, label: str) -> list:
    drift = []
    for field in SIMULATED_FIELDS:
        mine, theirs = getattr(direct, field), getattr(served, field)
        if mine != theirs:
            drift.append(f"{label}.{field}: direct {mine!r} != served {theirs!r}")
    if len(direct.statements) != len(served.statements):
        drift.append(f"{label}.statements: {len(direct.statements)} != "
                     f"{len(served.statements)}")
        return drift
    for index, (mine, theirs) in enumerate(
            zip(direct.statements, served.statements, strict=True)):
        for field in STATEMENT_FIELDS:
            if mine.get(field, 0.0) != theirs.get(field, 0.0):
                drift.append(
                    f"{label}.statement{index + 1}.{field}: direct "
                    f"{mine.get(field)!r} != served {theirs.get(field)!r}"
                )
    return drift


def measure() -> dict:
    points = _points()
    with tempfile.TemporaryDirectory(prefix="bench-service-") as scratch:
        scratch_path = Path(scratch)

        direct_session = Session(
            config=RunConfig(scratch_dir=scratch_path / "direct", seed=SEED))
        start = time.perf_counter()
        direct = [direct_session.run(p, mode="execute") for p in points]
        serial_wall = time.perf_counter() - start
        direct_session.close()

        service = JobService(
            config=RunConfig(scratch_dir=scratch_path / "served", seed=SEED),
            workers=WORKERS,
        )
        handle = serve_in_thread(service)
        try:
            client = ServiceClient(port=handle.port)
            snapshots = [None] * len(points)

            def _submit(index: int) -> None:
                snapshots[index] = client.submit(JobSpec(
                    points=(points[index],),
                    tenant=f"tenant-{index % TENANTS}",
                ))

            start = time.perf_counter()
            submitters = [threading.Thread(target=_submit, args=(i,))
                          for i in range(len(points))]
            for thread in submitters:
                thread.start()
            for thread in submitters:
                thread.join()
            finals = [client.wait(snap["id"]) for snap in snapshots]
            concurrent_wall = time.perf_counter() - start
            served = [client.records(snap["id"])[0] for snap in snapshots]
            metrics = client.metrics()
        finally:
            handle.close()

    parity_drift = []
    for index, (mine, theirs) in enumerate(zip(direct, served, strict=True)):
        parity_drift.extend(_record_drift(mine, theirs, f"job{index + 1}"))
    exact = [mine == theirs
             for mine, theirs in zip(direct, served, strict=True)]
    cpu_count = os.cpu_count() or 1
    return {
        "verified": all(r.verified is True for r in direct + served),
        "all_done": all(f["state"] == "done" for f in finals),
        "parity_drift": parity_drift,
        "records_bit_identical": all(exact),
        "serial_wall_seconds": serial_wall,
        "concurrent_wall_seconds": concurrent_wall,
        "speedup": serial_wall / concurrent_wall if concurrent_wall else 0.0,
        "cpu_count": cpu_count,
        "speedup_enforced": cpu_count >= MIN_CPUS_FOR_SPEEDUP_GATE,
        "compile_cache_hits": metrics["compile_cache"]["hits"],
        "tenants": len(metrics["tenants"]),
        "simulated": {field: getattr(served[0], field)
                      for field in SIMULATED_FIELDS},
    }


def _baseline_drift(baseline: dict, current: dict) -> list:
    return [
        f"simulated.{field}: {value!r} -> {current['simulated'].get(field)!r}"
        for field, value in baseline.get("simulated", {}).items()
        if current["simulated"].get(field) != value
    ]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", type=Path, default=Path("BENCH_service.json"),
                        help="result file (baseline is kept across runs)")
    parser.add_argument("--reset-baseline", action="store_true",
                        help="overwrite the stored baseline with this run")
    args = parser.parse_args(argv)

    existing = {}
    if args.json.exists():
        existing = json.loads(args.json.read_text())

    measurement = measure()

    if not measurement["verified"]:
        print("ERROR: a run failed oracle verification")
        return 1
    if not measurement["all_done"]:
        print("ERROR: not every served job finished DONE")
        return 1
    if measurement["parity_drift"]:
        print("ERROR: served records charged different statistics than "
              "direct Session.run (the service may only change host time):")
        for line in measurement["parity_drift"]:
            print(f"  {line}")
        return 1
    if not measurement["records_bit_identical"]:
        print("ERROR: a served record was not == to its direct twin")
        return 1
    print(f"{len(_points())} served records bit-identical to direct runs "
          f"({measurement['tenants']} tenants, "
          f"{measurement['compile_cache_hits']} shared compile-cache hits)")

    print(f"throughput: serial {measurement['serial_wall_seconds']:.3f}s, "
          f"served {measurement['concurrent_wall_seconds']:.3f}s "
          f"({measurement['speedup']:.2f}x, {measurement['cpu_count']} CPUs)")
    if measurement["speedup_enforced"] and measurement["speedup"] < MIN_SPEEDUP:
        print(f"ERROR: the {WORKERS}-worker service must be at least "
              f"{MIN_SPEEDUP:.1f}x faster than the serial loop on a "
              f"{measurement['cpu_count']}-CPU machine")
        return 1

    result = {
        "benchmark": "service-parity-and-throughput",
        "config": {"n": N, "nprocs": NPROCS, "slab_ratio": SLAB_RATIO,
                   "jobs": len(_points()), "workers": WORKERS,
                   "tenants": TENANTS, "seed": SEED},
    }
    if args.reset_baseline or "baseline" not in existing:
        result["baseline"] = measurement
        print(f"recorded baseline: {measurement['concurrent_wall_seconds']:.3f}s "
              "served wall")
    else:
        result["baseline"] = existing["baseline"]
        result["current"] = measurement
        drift = _baseline_drift(existing["baseline"], measurement)
        result["simulated_drift"] = drift
        if drift:
            print("ERROR: charged statistics moved against the committed "
                  "baseline:")
            for line in drift:
                print(f"  {line}")
            args.json.write_text(json.dumps(result, indent=2) + "\n")
            return 1
        print("charged statistics identical to the committed baseline")

    result["unix_time"] = time.time()
    args.json.write_text(json.dumps(result, indent=2) + "\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
