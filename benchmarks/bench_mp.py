"""Charge-parity + wall-clock benchmark of the multi-process EXECUTE backend.

Runs the fixed two-statement pipeline ``t = a @ b; c = t + d`` (N=256, P=4,
slab ratio 0.25) through the Session API twice — once on the default
in-process simulator, once on the ``backend="processes"`` distributed
backend, where every rank is its own OS process and collectives really move
bytes — and fails on ANY difference between the two records' charged
statistics, per-statement breakdown included.  That is the backend's whole
contract: real processes may only change host time, never simulated cost.

It also measures a small EXECUTE-mode sweep on the thread pool vs the
process pool.  On machines with at least 4 CPUs the process pool must be at
least 2x faster; on smaller machines (CI runners included) the speedup is
reported but not enforced.

Like the sibling benchmarks, the charged numbers of the distributed run are
also compared against the committed ``BENCH_mp.json`` baseline, so backend
drift fails in CI even if both backends drift together.

Usage::

    python -m benchmarks.bench_mp --json BENCH_mp.json
    make bench-mp
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.api import Session, WorkloadPoint  # noqa: E402
from repro.config import RunConfig  # noqa: E402

N = 256
NPROCS = 4
SLAB_RATIO = 0.25
MIN_SPEEDUP = 2.0
MIN_CPUS_FOR_SPEEDUP_GATE = 4

PIPELINE_SOURCE = f"""
program pipeline
  parameter (n = {N}, nprocs = {NPROCS})
  real a(n, n), b(n, n), t(n, n), d(n, n), c(n, n)
!hpf$ processors Pr(nprocs)
!hpf$ template tmpl(n)
!hpf$ distribute tmpl(block) onto Pr
!hpf$ align a(*, :) with tmpl
!hpf$ align t(*, :) with tmpl
!hpf$ align d(*, :) with tmpl
!hpf$ align c(*, :) with tmpl
!hpf$ align b(:, *) with tmpl
  do j = 1, n
    forall (k = 1 : n)
      t(:, j) = sum(a(:, k) * b(k, j))
    end forall
  end do
  c(:, :) = add(t(:, :), d(:, :))
end program
"""

SIMULATED_FIELDS = ("simulated_seconds", "io_time", "compute_time", "comm_time",
                    "io_requests_per_proc", "io_read_bytes_per_proc",
                    "io_write_bytes_per_proc")

STATEMENT_FIELDS = ("seconds", "io", "compute", "comm", "io_requests_per_proc",
                    "bytes_read_per_proc", "bytes_written_per_proc")

SWEEP_POINTS = 4


def _point() -> WorkloadPoint:
    return WorkloadPoint("hpf", slab_ratio=SLAB_RATIO,
                         options={"source": PIPELINE_SOURCE})


def _sweep_points() -> list:
    return [
        WorkloadPoint("gaxpy", n=N, nprocs=NPROCS, slab_ratio=SLAB_RATIO,
                      version="column")
        for _ in range(SWEEP_POINTS)
    ]


def _parity_drift(simulated, distributed) -> list:
    """Field-by-field comparison of the two backends' charged statistics."""
    drift = []
    for field in SIMULATED_FIELDS:
        sim, dist = getattr(simulated, field), getattr(distributed, field)
        if sim != dist:
            drift.append(f"{field}: simulated {sim!r} != processes {dist!r}")
    sim_stmts, dist_stmts = simulated.statements, distributed.statements
    if len(sim_stmts) != len(dist_stmts):
        drift.append(f"statement count: {len(sim_stmts)} != {len(dist_stmts)}")
        return drift
    for index, (sim, dist) in enumerate(zip(sim_stmts, dist_stmts, strict=True)):
        for field in STATEMENT_FIELDS:
            if sim.get(field, 0.0) != dist.get(field, 0.0):
                drift.append(
                    f"statement{index + 1}.{field}: simulated "
                    f"{sim.get(field)!r} != processes {dist.get(field)!r}"
                )
    return drift


def measure() -> dict:
    with tempfile.TemporaryDirectory(prefix="bench-mp-") as scratch:
        simulated = Session(config=RunConfig(scratch_dir=scratch)).execute(_point())
        distributed_session = Session(
            config=RunConfig(scratch_dir=scratch), backend="processes"
        )
        start = time.perf_counter()
        distributed = distributed_session.execute(_point())
        wall = time.perf_counter() - start

        points = _sweep_points()
        threaded_session = Session(config=RunConfig(scratch_dir=scratch))
        start = time.perf_counter()
        threaded = threaded_session.sweep(points, mode="execute",
                                          workers=SWEEP_POINTS)
        threads_wall = time.perf_counter() - start
        start = time.perf_counter()
        pooled = distributed_session.sweep(points, mode="execute",
                                           workers=SWEEP_POINTS)
        processes_wall = time.perf_counter() - start

    sweep_drift = [
        f"point{i}.{field}"
        for i, (a, b) in enumerate(zip(threaded, pooled, strict=True))
        for field in SIMULATED_FIELDS
        if getattr(a, field) != getattr(b, field)
    ]
    cpu_count = os.cpu_count() or 1
    return {
        "wall_seconds": wall,
        "verified": simulated.verified is True and distributed.verified is True,
        "parity_drift": _parity_drift(simulated, distributed),
        "sweep_parity_drift": sweep_drift,
        "simulated": {field: getattr(distributed, field)
                      for field in SIMULATED_FIELDS},
        "statements": [
            {field: stmt.get(field, 0.0) for field in STATEMENT_FIELDS}
            for stmt in distributed.statements
        ],
        "sweep": {
            "points": SWEEP_POINTS,
            "threads_wall_seconds": threads_wall,
            "processes_wall_seconds": processes_wall,
            "speedup": threads_wall / processes_wall if processes_wall else 0.0,
            "cpu_count": cpu_count,
            "speedup_enforced": cpu_count >= MIN_CPUS_FOR_SPEEDUP_GATE,
        },
    }


def _baseline_drift(baseline: dict, current: dict) -> list:
    drift = []
    for field, value in baseline.get("simulated", {}).items():
        now = current["simulated"].get(field)
        if now != value:
            drift.append(f"simulated.{field}: {value!r} -> {now!r}")
    for index, stmt in enumerate(baseline.get("statements", [])):
        for field, value in stmt.items():
            now = current["statements"][index].get(field)
            if now != value:
                drift.append(f"statement{index + 1}.{field}: {value!r} -> {now!r}")
    return drift


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", type=Path, default=Path("BENCH_mp.json"),
                        help="result file (baseline is kept across runs)")
    parser.add_argument("--reset-baseline", action="store_true",
                        help="overwrite the stored baseline with this run")
    args = parser.parse_args(argv)

    existing = {}
    if args.json.exists():
        existing = json.loads(args.json.read_text())

    measurement = measure()

    if not measurement["verified"]:
        print("ERROR: a backend failed oracle verification")
        return 1
    if measurement["parity_drift"]:
        print("ERROR: the processes backend charged different statistics "
              "than the simulator (it may only change host time):")
        for line in measurement["parity_drift"]:
            print(f"  {line}")
        return 1
    if measurement["sweep_parity_drift"]:
        print("ERROR: the process-pool sweep drifted from the thread pool:")
        for line in measurement["sweep_parity_drift"]:
            print(f"  {line}")
        return 1
    print("processes backend charged statistics identical to the simulator "
          "(per-statement breakdown included)")

    sweep = measurement["sweep"]
    print(f"sweep: threads {sweep['threads_wall_seconds']:.3f}s, "
          f"processes {sweep['processes_wall_seconds']:.3f}s "
          f"({sweep['speedup']:.2f}x, {sweep['cpu_count']} CPUs)")
    if sweep["speedup_enforced"] and sweep["speedup"] < MIN_SPEEDUP:
        print(f"ERROR: process-pool sweep must be at least {MIN_SPEEDUP:.1f}x "
              f"faster than threads on a {sweep['cpu_count']}-CPU machine")
        return 1

    result = {
        "benchmark": "multi-process-backend-parity",
        "config": {"n": N, "nprocs": NPROCS, "slab_ratio": SLAB_RATIO,
                   "statements": 2, "sweep_points": SWEEP_POINTS},
    }
    if args.reset_baseline or "baseline" not in existing:
        result["baseline"] = measurement
        print(f"recorded baseline: {measurement['wall_seconds']:.3f}s wall")
    else:
        result["baseline"] = existing["baseline"]
        result["current"] = measurement
        drift = _baseline_drift(existing["baseline"], measurement)
        result["simulated_drift"] = drift
        if drift:
            print("ERROR: charged statistics moved against the committed "
                  "baseline:")
            for line in drift:
                print(f"  {line}")
            args.json.write_text(json.dumps(result, indent=2) + "\n")
            return 1
        print("charged statistics identical to the committed baseline")

    result["unix_time"] = time.time()
    args.json.write_text(json.dumps(result, indent=2) + "\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
