"""Benchmark of the analytic cost model (equations 3–6 and the general form).

Times compiling + cost-estimating the GAXPY program across a grid of problem
sizes and processor counts, and asserts that the compiler's cost model agrees
with the closed-form equations of the paper for the streamed array.
"""

import pytest

from repro.analysis.io_cost import (
    column_slab_fetch_elements,
    column_slab_fetch_requests,
    row_slab_fetch_elements,
    row_slab_fetch_requests,
)
from repro.core import compile_gaxpy
from repro.runtime.slab import SlabbingStrategy


CONFIGS = [(256, 4), (512, 8), (1024, 16), (1024, 64), (2048, 16)]


def bench_cost_model_grid(benchmark):
    """Time cost-model evaluation over the whole grid (both strategies each)."""

    def evaluate():
        plans = []
        for n, p in CONFIGS:
            for strategy in (SlabbingStrategy.COLUMN, SlabbingStrategy.ROW):
                compiled = compile_gaxpy(n, p, slab_ratio=0.25, force_strategy=strategy)
                plans.append(compiled.plan.cost.total_time)
        return plans

    times = benchmark(evaluate)
    assert len(times) == 2 * len(CONFIGS)
    assert all(t > 0 for t in times)


@pytest.mark.parametrize("n,p", CONFIGS)
@pytest.mark.parametrize("ratio", [0.125, 0.25, 0.5, 1.0])
def test_cost_model_matches_paper_equations(n, p, ratio):
    """The compiler's per-array counts equal equations 3–6 for the streamed array."""
    local = n * n // p
    m = int(local * ratio)
    column = compile_gaxpy(n, p, slab_ratio=ratio, force_strategy=SlabbingStrategy.COLUMN)
    row = compile_gaxpy(n, p, slab_ratio=ratio, force_strategy=SlabbingStrategy.ROW)
    col_cost = column.plan.cost.arrays["a"]
    row_cost = row.plan.cost.arrays["a"]
    assert col_cost.fetch_requests == pytest.approx(column_slab_fetch_requests(n, p, m), rel=0.01)
    assert col_cost.fetch_elements == pytest.approx(column_slab_fetch_elements(n, p, m), rel=0.01)
    assert row_cost.fetch_requests == pytest.approx(row_slab_fetch_requests(n, p, m), rel=0.01)
    assert row_cost.fetch_elements == pytest.approx(row_slab_fetch_elements(n, p, m), rel=0.01)


def test_order_of_magnitude_io_reduction():
    """The paper's headline: reorganization cuts the dominant array's I/O by ~N/P x."""
    compiled_col = compile_gaxpy(1024, 16, slab_ratio=0.25, force_strategy=SlabbingStrategy.COLUMN)
    compiled_row = compile_gaxpy(1024, 16, slab_ratio=0.25, force_strategy=SlabbingStrategy.ROW)
    col = compiled_col.plan.cost.arrays["a"]
    row = compiled_row.plan.cost.arrays["a"]
    assert col.fetch_elements / row.fetch_elements == pytest.approx(1024, rel=0.01)
    assert col.fetch_requests / row.fetch_requests == pytest.approx(1024, rel=0.01)
