"""Resilience overhead + recovery benchmark with a drift gate.

Three measurements on the fastpath GAXPY configuration (N=256, P=4,
slab ratio 0.25) and a fixed two-statement pipeline:

* **checksum overhead** — wall clock of the pipeline with checksums on vs
  off.  The gate fails when the checksummed run costs more than
  ``--max-overhead`` (default 5%) extra wall time.
* **recovery cost** — wall clock of the same pipeline under a fixed seeded
  ``FaultPolicy``, reported (not gated — host wall time under injected
  faults is noisy by nature) together with the deterministic resilience
  counters.
* **drift gate** — the charged statistics of the checksummed *and* the
  faulted run must be bit-identical to the checksum-free baseline, and the
  faulted run's resilience counters must reproduce the stored baseline
  exactly (same seed, same schedule, same counters — forever).

Usage::

    python -m benchmarks.bench_resilience --json BENCH_resilience.json
    make bench-resilience
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.api import Session  # noqa: E402
from repro.config import RunConfig  # noqa: E402
from repro.resilience import FaultPolicy  # noqa: E402

# N=768 keeps the host compute large enough that the fixed checksum cost
# (CRC over moved bytes + statement-boundary sidecar saves) sits well under
# the 5% overhead budget instead of riding the wall-clock noise floor.
N = 768
NPROCS = 4
SLAB_RATIO = 0.25

PIPELINE_SOURCE = f"""
program pipeline
  parameter (n = {N}, nprocs = {NPROCS})
  real a(n, n), b(n, n), t(n, n), d(n, n), c(n, n)
!hpf$ processors Pr(nprocs)
!hpf$ template tmpl(n)
!hpf$ distribute tmpl(block) onto Pr
!hpf$ align a(*, :) with tmpl
!hpf$ align t(*, :) with tmpl
!hpf$ align d(*, :) with tmpl
!hpf$ align c(*, :) with tmpl
!hpf$ align b(:, *) with tmpl
  do j = 1, n
    forall (k = 1 : n)
      t(:, j) = sum(a(:, k) * b(k, j))
    end forall
  end do
  c(:, :) = add(t(:, :), d(:, :))
end program
"""

FAULT_POLICY = FaultPolicy(
    seed=1997,
    read_error_rate=0.05,
    write_error_rate=0.02,
    disk_full_rate=0.01,
    torn_write_rate=0.02,
    bitflip_rate=0.01,
)

SIMULATED_FIELDS = ("simulated_seconds", "io_time", "compute_time", "comm_time",
                    "io_requests_per_proc", "io_read_bytes_per_proc",
                    "io_write_bytes_per_proc")


def _execute(checksums: bool, policy) -> tuple:
    with tempfile.TemporaryDirectory(prefix="bench-resilience-") as scratch:
        config = RunConfig(scratch_dir=scratch, checksums=checksums,
                           fault_policy=policy, io_retry_backoff_s=0.0)
        session = Session(config=config, reap_max_age_s=None)
        compiled = session.compile(source=PIPELINE_SOURCE, slab_ratio=SLAB_RATIO)
        start = time.perf_counter()
        record = session.execute(compiled)
        wall = time.perf_counter() - start
    return wall, record


def measure(repeats: int = 3) -> dict:
    walls = {"checksums_off": None, "checksums_on": None, "faulted": None}
    records = {}
    ratios = []
    for _ in range(max(1, repeats)):
        repeat_walls = {}
        for key, (checksums, policy) in {
            "checksums_off": (False, None),
            "checksums_on": (True, None),
            "faulted": (True, FAULT_POLICY),
        }.items():
            wall, record = _execute(checksums, policy)
            records[key] = record
            repeat_walls[key] = wall
            if walls[key] is None or wall < walls[key]:
                walls[key] = wall
        # Pair on/off within the repeat: the two runs execute back to back,
        # so a host-load drift across the whole invocation cancels out of
        # the ratio instead of masquerading as checksum overhead.
        ratios.append(repeat_walls["checksums_on"] / repeat_walls["checksums_off"])
    overhead = min(ratios) - 1.0
    return {
        "wall_seconds": walls,
        "checksum_overhead": overhead,
        "repeats": repeats,
        "verified": all(records[k].verified is True for k in records),
        "simulated": {
            field: getattr(records["checksums_off"], field)
            for field in SIMULATED_FIELDS
        },
        "simulated_drift_vs_checksums_off": [
            f"{key}.{field}"
            for key in ("checksums_on", "faulted")
            for field in SIMULATED_FIELDS
            if getattr(records[key], field) != getattr(records["checksums_off"], field)
        ],
        "resilience": dict(records["faulted"].resilience),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", type=Path, default=Path("BENCH_resilience.json"),
                        help="result file (baseline is kept across runs)")
    parser.add_argument("--repeats", type=int, default=5,
                        help="take the best wall clock of this many runs")
    parser.add_argument("--max-overhead", type=float, default=0.05,
                        help="fail when checksums cost more than this fraction "
                             "of wall time (default 0.05)")
    parser.add_argument("--reset-baseline", action="store_true",
                        help="overwrite the stored baseline with this run")
    args = parser.parse_args(argv)

    existing = {}
    if args.json.exists():
        existing = json.loads(args.json.read_text())

    measurement = measure(repeats=args.repeats)

    print(f"checksums off: {measurement['wall_seconds']['checksums_off']:.3f}s wall")
    print(f"checksums on:  {measurement['wall_seconds']['checksums_on']:.3f}s wall "
          f"({measurement['checksum_overhead'] * 100:+.1f}%)")
    print(f"faulted run:   {measurement['wall_seconds']['faulted']:.3f}s wall, "
          f"{measurement['resilience'].get('retries', 0):.0f} retries, "
          f"{measurement['resilience'].get('corruptions_detected', 0):.0f} "
          "corruptions recovered")

    if not measurement["verified"]:
        print("ERROR: a configuration failed oracle verification")
        return 1
    if measurement["simulated_drift_vs_checksums_off"]:
        print("ERROR: checksums/faults changed charged statistics:")
        for line in measurement["simulated_drift_vs_checksums_off"]:
            print(f"  {line}")
        return 1
    if measurement["checksum_overhead"] > args.max_overhead:
        print(f"ERROR: checksum overhead {measurement['checksum_overhead'] * 100:.1f}% "
              f"exceeds the {args.max_overhead * 100:.0f}% budget")
        return 1
    print("charged statistics identical across all three configurations")

    result = {
        "benchmark": "resilience-overhead-and-recovery",
        "config": {"n": N, "nprocs": NPROCS, "slab_ratio": SLAB_RATIO,
                   "fault_seed": FAULT_POLICY.seed},
    }
    if args.reset_baseline or "baseline" not in existing:
        result["baseline"] = measurement
        print("recorded baseline")
    else:
        result["baseline"] = existing["baseline"]
        result["current"] = measurement
        drift = []
        for field, value in existing["baseline"].get("simulated", {}).items():
            now = measurement["simulated"].get(field)
            if now != value:
                drift.append(f"simulated.{field}: {value!r} -> {now!r}")
        for field, value in existing["baseline"].get("resilience", {}).items():
            now = measurement["resilience"].get(field)
            if now != value:
                drift.append(f"resilience.{field}: {value!r} -> {now!r}")
        result["drift"] = drift
        if drift:
            print("ERROR: drift against the stored baseline (charged statistics "
                  "and seeded fault counters must be reproducible):")
            for line in drift:
                print(f"  {line}")
            args.json.write_text(json.dumps(result, indent=2) + "\n")
            return 1
        print("charged statistics and resilience counters identical to baseline")

    result["unix_time"] = time.time()
    args.json.write_text(json.dumps(result, indent=2) + "\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
