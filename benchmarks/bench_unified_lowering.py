"""Wall-clock parity of the unified lowering pipeline vs the PR-1 fast path.

The unified refactor routes every workload through the generic node-program
executor.  This benchmark proves that the genericity is free: on the fixed
N=256, P=4 EXECUTE sweep (both slabbing strategies) the Session path must
match the wall-clock of the direct PR-1 fast-path kernels within 10%, and the
*charged* statistics of both paths must be identical.

Usage::

    python -m benchmarks.bench_unified_lowering --json BENCH_unified.json
    make bench-unified
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.api import Session, WorkloadPoint  # noqa: E402
from repro.config import ExecutionMode, RunConfig  # noqa: E402

N = 256
NPROCS = 4
SLAB_RATIO = 0.25
VERSIONS = ("column", "row")
TOLERANCE = 1.10

SIMULATED_FIELDS = ("simulated_seconds", "io_time", "compute_time", "comm_time",
                    "io_requests_per_proc", "io_read_bytes_per_proc",
                    "io_write_bytes_per_proc")


def _measure_fastpath(scratch: str) -> dict:
    """The PR-1 fast path: cached compile + direct per-kernel executors."""
    from repro.core.pipeline import compile_gaxpy_cached
    from repro.kernels.gaxpy import (
        generate_gaxpy_inputs,
        run_gaxpy_column_slab,
        run_gaxpy_row_slab,
    )
    from repro.runtime.vm import VirtualMachine

    runners = {"column": run_gaxpy_column_slab, "row": run_gaxpy_row_slab}
    config = RunConfig(scratch_dir=scratch)
    start = time.perf_counter()
    simulated = {}
    for version in VERSIONS:
        compiled = compile_gaxpy_cached(N, NPROCS, slab_ratio=SLAB_RATIO,
                                        force_strategy=version)
        inputs = generate_gaxpy_inputs(N, seed=config.seed)
        with VirtualMachine(NPROCS, compiled.params, config) as vm:
            run = runners[version](vm, compiled, inputs, verify=True)
        simulated[version] = {
            "simulated_seconds": run.simulated_seconds,
            "io_time": run.time_breakdown["io"],
            "compute_time": run.time_breakdown["compute"],
            "comm_time": run.time_breakdown["comm"],
            "io_requests_per_proc": run.io_statistics["io_requests_per_proc"],
            "io_read_bytes_per_proc": run.io_statistics["bytes_read_per_proc"],
            "io_write_bytes_per_proc": run.io_statistics["bytes_written_per_proc"],
            "verified": run.verified,
        }
    return {"wall_seconds": time.perf_counter() - start, "simulated": simulated}


def _measure_unified(scratch: str) -> dict:
    """The unified pipeline: Session -> build_ir -> generic executor."""
    session = Session(config=RunConfig(scratch_dir=scratch))
    points = [
        WorkloadPoint("gaxpy", n=N, nprocs=NPROCS, version=version, slab_ratio=SLAB_RATIO)
        for version in VERSIONS
    ]
    start = time.perf_counter()
    records = session.sweep(points, mode=ExecutionMode.EXECUTE)
    wall = time.perf_counter() - start
    simulated = {
        record.version: {field: getattr(record, field) for field in SIMULATED_FIELDS}
        | {"verified": record.verified}
        for record in records
    }
    return {"wall_seconds": wall, "simulated": simulated}


def measure(repeats: int = 3) -> dict:
    best = {}
    for name, runner in (("fastpath", _measure_fastpath), ("unified", _measure_unified)):
        for _ in range(max(1, repeats)):
            with tempfile.TemporaryDirectory(prefix=f"bench-unified-{name}-") as scratch:
                sample = runner(scratch)
            if name not in best or sample["wall_seconds"] < best[name]["wall_seconds"]:
                best[name] = sample
    return best


def _simulated_drift(fastpath: dict, unified: dict) -> list:
    drift = []
    for version, fields in fastpath["simulated"].items():
        for field, value in fields.items():
            now = unified["simulated"].get(version, {}).get(field)
            if now != value:
                drift.append(f"{version}.{field}: fastpath {value!r} != unified {now!r}")
    return drift


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", type=Path, default=Path("BENCH_unified.json"))
    parser.add_argument("--repeats", type=int, default=3,
                        help="take the best wall clock of this many runs per path")
    args = parser.parse_args(argv)

    results = measure(repeats=args.repeats)
    fastpath, unified = results["fastpath"], results["unified"]
    ratio = unified["wall_seconds"] / fastpath["wall_seconds"]
    drift = _simulated_drift(fastpath, unified)
    report = {
        "benchmark": "unified-lowering-parity",
        "config": {"n": N, "nprocs": NPROCS, "slab_ratio": SLAB_RATIO,
                   "versions": list(VERSIONS), "tolerance": TOLERANCE},
        "fastpath": fastpath,
        "unified": unified,
        "wall_ratio_unified_over_fastpath": ratio,
        "within_tolerance": ratio <= TOLERANCE,
        "simulated_drift": drift,
    }
    report["unix_time"] = time.time()
    args.json.write_text(json.dumps(report, indent=2) + "\n")

    print(f"fastpath: {fastpath['wall_seconds']:.3f}s wall")
    print(f"unified:  {unified['wall_seconds']:.3f}s wall ({ratio:.3f}x)")
    if drift:
        print("ERROR: charged statistics differ between the two paths:")
        for line in drift:
            print(f"  {line}")
        return 1
    print("charged statistics identical on both paths")
    if ratio > TOLERANCE:
        print(f"ERROR: unified path exceeds the fast path by more than "
              f"{(TOLERANCE - 1) * 100:.0f}% ({ratio:.3f}x)")
        return 1
    print(f"unified path within {(TOLERANCE - 1) * 100:.0f}% of the fast path")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
