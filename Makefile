# Tier-1: the correctness gate every PR must keep green.
# Tier-2: perf trajectory, tracked in BENCH_*.json across PRs.

PYTHON ?= python

.PHONY: test test-faults cov lint typecheck check-plans bench bench-unified \
	bench-program bench-planner bench-resilience bench-mp bench-service \
	bench-reset clean-scratch serve

test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

# Fault-injection soak: the seed x rate x workload stress matrix plus the
# kill-and-resume and property-based suites.  Its own CI job — heavier than
# the tier-1 gate and meant to run even when tier-1 is already green.
test-faults:
	PYTHONPATH=src $(PYTHON) -m pytest -q tests/test_resilience_faults.py \
		tests/test_resilience_resume.py tests/test_resilience_properties.py

# Coverage gate (needs pytest-cov): fails under 85% line coverage of repro.
cov:
	PYTHONPATH=src $(PYTHON) -m pytest -q --cov=repro --cov-report=term-missing --cov-fail-under=85

# Static checks: ruff (rule selection lives in ruff.toml) plus the
# charge-discipline AST lint (raw I/O confinement, wall-clock reads, charges
# inside retry loops, frozen-object mutation — see the tool's docstring).
lint:
	ruff check .
	$(PYTHON) tools/lint_charge_discipline.py

# Scoped strict typing for the compiler core and planner (mypy.ini).  Gated
# on mypy being importable so the target degrades gracefully on machines
# without it; CI installs mypy and runs it for real.
typecheck:
	@$(PYTHON) -c "import mypy" 2>/dev/null \
		&& $(PYTHON) -m mypy --config-file mypy.ini src/repro/core src/repro/planner \
		|| echo "mypy not installed; skipping typecheck (CI runs it)"

# Static plan verification over the full differential matrix: every workload
# x strategy x P x slab granularity plus 1-3 statement HPF programs and a
# seeded fuzz sweep.  Asserts the symbolic charge ledger equals PlanCost on
# every plan and matches the executed machine counters where the executor
# follows plan granularity.
check-plans:
	PYTHONPATH=src $(PYTHON) tools/check_plans.py

# Measures the fixed EXECUTE-mode GAXPY sweep and appends to
# BENCH_fastpath.json (the stored baseline is kept; the run fails if any
# *charged* statistic drifts from it — the fast path may only change host
# time).  The script guards its own sys.path, so no install is needed.
bench:
	$(PYTHON) -m benchmarks.bench_fastpath --json BENCH_fastpath.json

# Proves the generic executor matches the PR-1 fast-path wall clock within
# 10% (and charges identical statistics) on the N=256 P=4 EXECUTE sweep.
bench-unified:
	$(PYTHON) -m benchmarks.bench_unified_lowering --json BENCH_unified.json

# Whole-program pipeline (t = a @ b; c = t + d): EXECUTE wall clock plus a
# drift check over the charged statistics, including the per-statement
# breakdown and the intermediate's charged-once LAF reuse.
bench-program:
	$(PYTHON) -m benchmarks.bench_program --json BENCH_program.json

# Plan optimizer: even-split vs cost-model-searched plans on a 3-statement
# chain under one node memory budget.  Fails unless the optimized plan beats
# the even split's charged I/O bytes, both plans verify against the oracle,
# ESTIMATE==EXECUTE counters hold, and no charged statistic drifts from the
# committed baseline (the search is deterministic).
bench-planner:
	$(PYTHON) -m benchmarks.bench_planner --json BENCH_planner.json

# Resilience: checksums-on wall overhead must stay under 5% of the
# checksums-off fastpath, injected faults must leave every charged statistic
# bit-identical, and the seeded fault schedule's resilience counters must
# reproduce the committed baseline exactly.
bench-resilience:
	$(PYTHON) -m benchmarks.bench_resilience --json BENCH_resilience.json

# Multi-process backend: the two-statement pipeline run with one OS process
# per rank must charge statistics bit-identical to the in-process simulator
# (per-statement breakdown included) and match the committed BENCH_mp.json
# baseline.  On machines with >= 4 CPUs the process-pool sweep must also be
# at least 2x faster than the thread pool.
bench-mp:
	$(PYTHON) -m benchmarks.bench_mp --json BENCH_mp.json

# Job service: 8 concurrent mixed-tenant jobs over HTTP must return records
# bit-identical (every charged field) to direct Session.run, match the
# committed BENCH_service.json baseline, and on machines with >= 4 CPUs the
# 4-worker service must be at least 2x faster than the serial loop.
bench-service:
	$(PYTHON) -m benchmarks.bench_service --json BENCH_service.json

# Run the compile-and-run job server (HOST/PORT/WORKERS overridable):
#   make serve PORT=8642 WORKERS=4
HOST ?= 127.0.0.1
PORT ?= 8642
WORKERS ?= 2
serve:
	PYTHONPATH=src $(PYTHON) -m repro.service --host $(HOST) --port $(PORT) --workers $(WORKERS)

# Remove orphaned vm_* scratch directories (left by killed runs) from the
# default scratch dir.  --max-age-s 0 reaps everything not alive right now;
# sessions also do this automatically (age > 24h) at startup.
# (imported as a function rather than -m: the package __init__ already pulls
# in the reaper module, and runpy would warn about the double import)
clean-scratch:
	PYTHONPATH=src $(PYTHON) -c "from repro.resilience.reaper import main; raise SystemExit(main(['--max-age-s', '0']))"

# Re-record the baseline (after an intentional change to the benchmark
# configuration, never to paper over a perf regression).
bench-reset:
	$(PYTHON) -m benchmarks.bench_fastpath --json BENCH_fastpath.json --reset-baseline
