# Tier-1: the correctness gate every PR must keep green.
# Tier-2: perf trajectory, tracked in BENCH_*.json across PRs.

PYTHON ?= python

.PHONY: test cov lint bench bench-unified bench-program bench-planner bench-reset

test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

# Coverage gate (needs pytest-cov): fails under 85% line coverage of repro.
cov:
	PYTHONPATH=src $(PYTHON) -m pytest -q --cov=repro --cov-report=term-missing --cov-fail-under=85

# Static checks (rule selection lives in ruff.toml).
lint:
	ruff check .

# Measures the fixed EXECUTE-mode GAXPY sweep and appends to
# BENCH_fastpath.json (the stored baseline is kept; the run fails if any
# *charged* statistic drifts from it — the fast path may only change host
# time).  The script guards its own sys.path, so no install is needed.
bench:
	$(PYTHON) -m benchmarks.bench_fastpath --json BENCH_fastpath.json

# Proves the generic executor matches the PR-1 fast-path wall clock within
# 10% (and charges identical statistics) on the N=256 P=4 EXECUTE sweep.
bench-unified:
	$(PYTHON) -m benchmarks.bench_unified_lowering --json BENCH_unified.json

# Whole-program pipeline (t = a @ b; c = t + d): EXECUTE wall clock plus a
# drift check over the charged statistics, including the per-statement
# breakdown and the intermediate's charged-once LAF reuse.
bench-program:
	$(PYTHON) -m benchmarks.bench_program --json BENCH_program.json

# Plan optimizer: even-split vs cost-model-searched plans on a 3-statement
# chain under one node memory budget.  Fails unless the optimized plan beats
# the even split's charged I/O bytes, both plans verify against the oracle,
# ESTIMATE==EXECUTE counters hold, and no charged statistic drifts from the
# committed baseline (the search is deterministic).
bench-planner:
	$(PYTHON) -m benchmarks.bench_planner --json BENCH_planner.json

# Re-record the baseline (after an intentional change to the benchmark
# configuration, never to paper over a perf regression).
bench-reset:
	$(PYTHON) -m benchmarks.bench_fastpath --json BENCH_fastpath.json --reset-baseline
