# Tier-1: the correctness gate every PR must keep green.
# Tier-2: perf trajectory, tracked in BENCH_*.json across PRs.

PYTHON ?= python

.PHONY: test bench bench-reset

test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

# Measures the fixed EXECUTE-mode GAXPY sweep and appends to
# BENCH_fastpath.json (the stored baseline is kept; the run fails if any
# *charged* statistic drifts from it — the fast path may only change host
# time).  The script guards its own sys.path, so no install is needed.
bench:
	$(PYTHON) -m benchmarks.bench_fastpath --json BENCH_fastpath.json

# Re-record the baseline (after an intentional change to the benchmark
# configuration, never to paper over a perf regression).
bench-reset:
	$(PYTHON) -m benchmarks.bench_fastpath --json BENCH_fastpath.json --reset-baseline
