"""Tests for slabs, Local Array Files, ICLAs and the I/O engine."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import IOEngineError, RuntimeExecutionError
from repro.machine import Machine
from repro.runtime import (
    IOAccounting,
    IOEngine,
    InCoreLocalArray,
    LocalArrayFile,
    Slab,
    SlabbingStrategy,
    column_slabs,
    make_slabs,
    row_slabs,
)


# ---------------------------------------------------------------------------
# Slab geometry
# ---------------------------------------------------------------------------
class TestSlab:
    def test_shape_and_bytes(self):
        slab = Slab(index=0, row_start=0, row_stop=8, col_start=4, col_stop=10)
        assert slab.shape == (8, 6)
        assert slab.nelements == 48
        assert slab.nbytes(4) == 192

    def test_negative_extent_rejected(self):
        with pytest.raises(IOEngineError):
            Slab(index=0, row_start=5, row_stop=3, col_start=0, col_stop=1)

    def test_contains(self):
        slab = Slab(index=0, row_start=2, row_stop=4, col_start=1, col_stop=3)
        assert slab.contains(2, 1)
        assert not slab.contains(4, 1)

    def test_contiguous_chunks_column_slab_in_fortran_order(self):
        # whole columns of a column-major file -> one contiguous extent
        slab = Slab(index=0, row_start=0, row_stop=16, col_start=0, col_stop=4)
        assert slab.contiguous_chunks((16, 8), order="F") == 1
        # same slab in a row-major file -> one extent per row
        assert slab.contiguous_chunks((16, 8), order="C") == 16

    def test_contiguous_chunks_row_slab(self):
        slab = Slab(index=0, row_start=0, row_stop=4, col_start=0, col_stop=8)
        assert slab.contiguous_chunks((16, 8), order="C") == 1
        assert slab.contiguous_chunks((16, 8), order="F") == 8

    def test_chunks_out_of_bounds(self):
        slab = Slab(index=0, row_start=0, row_stop=20, col_start=0, col_stop=4)
        with pytest.raises(IOEngineError):
            slab.contiguous_chunks((16, 8))


class TestSlabbing:
    def test_column_slabs_cover_disjointly(self):
        slabs = column_slabs((16, 10), 4)
        assert [s.col_start for s in slabs] == [0, 4, 8]
        assert [s.col_stop for s in slabs] == [4, 8, 10]
        assert sum(s.nelements for s in slabs) == 160

    def test_row_slabs_cover_disjointly(self):
        slabs = row_slabs((10, 16), 4)
        assert [s.row_start for s in slabs] == [0, 4, 8]
        assert sum(s.nelements for s in slabs) == 160

    def test_invalid_slab_size(self):
        with pytest.raises(IOEngineError):
            column_slabs((4, 4), 0)

    def test_make_slabs_from_elements(self):
        # 16 rows -> 64 elements per slab = 4 columns per slab
        slabs = make_slabs((16, 12), SlabbingStrategy.COLUMN, 64)
        assert all(s.ncols == 4 for s in slabs)
        assert len(slabs) == 3

    def test_make_slabs_at_least_one_line(self):
        slabs = make_slabs((16, 12), "column", 3)  # less than one column still gives one column
        assert slabs[0].ncols == 1

    def test_strategy_parsing(self):
        assert SlabbingStrategy.from_name("ROW") is SlabbingStrategy.ROW
        assert SlabbingStrategy.from_name(SlabbingStrategy.COLUMN) is SlabbingStrategy.COLUMN
        assert SlabbingStrategy.COLUMN.other() is SlabbingStrategy.ROW
        with pytest.raises(IOEngineError):
            SlabbingStrategy.from_name("diagonal")

    @settings(max_examples=100, deadline=None)
    @given(
        rows=st.integers(1, 60), cols=st.integers(1, 60), per=st.integers(1, 70),
        by_column=st.booleans(),
    )
    def test_slabs_partition_local_array(self, rows, cols, per, by_column):
        slabs = column_slabs((rows, cols), per) if by_column else row_slabs((rows, cols), per)
        covered = np.zeros((rows, cols), dtype=int)
        for slab in slabs:
            covered[slab.row_slice, slab.col_slice] += 1
        assert np.all(covered == 1)


# ---------------------------------------------------------------------------
# LocalArrayFile
# ---------------------------------------------------------------------------
class TestLocalArrayFile:
    def test_round_trip_full(self, tmp_path):
        laf = LocalArrayFile(tmp_path / "x.dat", (8, 6), np.float32)
        data = np.arange(48, dtype=np.float32).reshape(8, 6)
        laf.write_full(data)
        np.testing.assert_array_equal(laf.read_full(), data)

    def test_round_trip_slab(self, tmp_path):
        laf = LocalArrayFile(tmp_path / "x.dat", (8, 6), np.float64, order="C")
        data = np.arange(48, dtype=np.float64).reshape(8, 6)
        laf.write_full(data)
        slab = Slab(index=1, row_start=2, row_stop=5, col_start=1, col_stop=4)
        np.testing.assert_array_equal(laf.read_slab(slab), data[2:5, 1:4])
        laf.write_slab(slab, np.zeros((3, 3)))
        updated = laf.read_full()
        assert np.all(updated[2:5, 1:4] == 0)
        assert updated[0, 0] == 0.0 or updated[0, 1] == 1.0  # untouched region preserved

    def test_shape_mismatch_rejected(self, tmp_path):
        laf = LocalArrayFile(tmp_path / "x.dat", (4, 4))
        with pytest.raises(IOEngineError):
            laf.write_full(np.zeros((3, 3)))
        slab = Slab(index=0, row_start=0, row_stop=2, col_start=0, col_stop=2)
        with pytest.raises(IOEngineError):
            laf.write_slab(slab, np.zeros((3, 3)))

    def test_slab_out_of_bounds(self, tmp_path):
        laf = LocalArrayFile(tmp_path / "x.dat", (4, 4))
        with pytest.raises(IOEngineError):
            laf.read_slab(Slab(index=0, row_start=0, row_stop=5, col_start=0, col_stop=1))

    def test_closed_file_rejected(self, tmp_path):
        laf = LocalArrayFile(tmp_path / "x.dat", (4, 4))
        laf.close()
        with pytest.raises(IOEngineError):
            laf.read_full()

    def test_delete_removes_file(self, tmp_path):
        laf = LocalArrayFile(tmp_path / "x.dat", (4, 4))
        assert laf.exists()
        laf.delete()
        assert not laf.exists()
        laf.delete()  # idempotent

    def test_invalid_order(self, tmp_path):
        with pytest.raises(IOEngineError):
            LocalArrayFile(tmp_path / "x.dat", (4, 4), order="Z")

    def test_contiguous_chunks_depend_on_order(self, tmp_path):
        slab = Slab(index=0, row_start=0, row_stop=2, col_start=0, col_stop=8)
        laf_c = LocalArrayFile(tmp_path / "c.dat", (8, 8), order="C")
        laf_f = LocalArrayFile(tmp_path / "f.dat", (8, 8), order="F")
        assert laf_c.contiguous_chunks(slab) == 1
        assert laf_f.contiguous_chunks(slab) == 8

    @settings(max_examples=30, deadline=None)
    @given(rows=st.integers(1, 20), cols=st.integers(1, 20), order=st.sampled_from(["C", "F"]))
    def test_property_full_round_trip(self, tmp_path_factory, rows, cols, order):
        directory = tmp_path_factory.mktemp("laf")
        laf = LocalArrayFile(directory / "p.dat", (rows, cols), np.float64, order=order)
        rng = np.random.default_rng(rows * 100 + cols)
        data = rng.standard_normal((rows, cols))
        laf.write_full(data)
        np.testing.assert_allclose(laf.read_full(), data)
        laf.delete()


# ---------------------------------------------------------------------------
# InCoreLocalArray
# ---------------------------------------------------------------------------
class TestICLA:
    def test_load_and_get(self):
        icla = InCoreLocalArray(64)
        slab = Slab(index=0, row_start=0, row_stop=4, col_start=0, col_stop=4)
        data = np.ones((4, 4))
        icla.load(slab, data)
        assert icla.holds(slab)
        np.testing.assert_array_equal(icla.get(slab), data)
        assert icla.loads == 1 and icla.hits == 1

    def test_capacity_enforced(self):
        icla = InCoreLocalArray(8)
        slab = Slab(index=0, row_start=0, row_stop=4, col_start=0, col_stop=4)
        with pytest.raises(RuntimeExecutionError):
            icla.load(slab, np.ones((4, 4)))

    def test_get_wrong_slab(self):
        icla = InCoreLocalArray(64)
        s1 = Slab(index=0, row_start=0, row_stop=2, col_start=0, col_stop=2)
        s2 = Slab(index=1, row_start=2, row_stop=4, col_start=0, col_stop=2)
        icla.load(s1, np.zeros((2, 2)))
        with pytest.raises(RuntimeExecutionError):
            icla.get(s2)

    def test_invalidate(self):
        icla = InCoreLocalArray(64)
        slab = Slab(index=0, row_start=0, row_stop=2, col_start=0, col_stop=2)
        icla.load(slab, np.zeros((2, 2)))
        icla.invalidate()
        assert not icla.holds(slab)

    def test_zero_capacity_rejected(self):
        with pytest.raises(RuntimeExecutionError):
            InCoreLocalArray(0)


# ---------------------------------------------------------------------------
# IOEngine
# ---------------------------------------------------------------------------
class TestIOEngine:
    def _laf(self, tmp_path, order="F"):
        laf = LocalArrayFile(tmp_path / "x.dat", (8, 8), np.float32, order=order)
        laf.write_full(np.arange(64, dtype=np.float32).reshape(8, 8))
        return laf

    def test_per_slab_accounting(self, tmp_path):
        machine = Machine(2)
        engine = IOEngine(machine, accounting=IOAccounting.PER_SLAB)
        laf = self._laf(tmp_path)
        slab = Slab(index=0, row_start=0, row_stop=2, col_start=0, col_stop=8)  # row slab, F order
        engine.read_slab(0, laf, slab)
        assert machine.metrics[0].io_read_requests == 1
        assert machine.metrics[0].bytes_read == slab.nbytes(4)

    def test_per_chunk_accounting(self, tmp_path):
        machine = Machine(2)
        engine = IOEngine(machine, accounting="per-chunk")
        laf = self._laf(tmp_path)
        slab = Slab(index=0, row_start=0, row_stop=2, col_start=0, col_stop=8)
        engine.read_slab(0, laf, slab)
        assert machine.metrics[0].io_read_requests == 8  # one per column of a column-major file

    def test_write_requires_data_when_performing_io(self, tmp_path):
        machine = Machine(1)
        engine = IOEngine(machine)
        laf = self._laf(tmp_path)
        slab = Slab(index=0, row_start=0, row_stop=2, col_start=0, col_stop=2)
        with pytest.raises(IOEngineError):
            engine.write_slab(0, laf, slab, None)

    def test_estimate_mode_touches_no_data(self, tmp_path):
        machine = Machine(1)
        engine = IOEngine(machine, perform_io=False)
        laf = LocalArrayFile(tmp_path / "ghost.dat", (8, 8), create=False)
        slab = Slab(index=0, row_start=0, row_stop=8, col_start=0, col_stop=2)
        assert engine.read_slab(0, laf, slab) is None
        engine.write_slab(0, laf, slab, None)
        assert machine.metrics[0].io_requests == 2
        assert not laf.exists()

    def test_read_write_full(self, tmp_path):
        machine = Machine(1)
        engine = IOEngine(machine)
        laf = self._laf(tmp_path)
        data = engine.read_full(0, laf)
        assert data.shape == (8, 8)
        engine.write_full(0, laf, np.zeros((8, 8), dtype=np.float32))
        assert machine.metrics[0].io_read_requests == 1
        assert machine.metrics[0].io_write_requests == 1

    def test_unknown_accounting(self):
        with pytest.raises(IOEngineError):
            IOAccounting.from_name("per-galaxy")
