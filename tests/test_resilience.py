"""Unit coverage of the resilience layer.

Checksums and manifests, LAF integrity verification, idempotent
close/delete, the deterministic fault injector, the I/O engine's retry
loop, the scratch reaper and the Session-level error handling
(``sweep(on_error=...)``) — everything below the program executor, which
``test_resilience_program.py`` covers end to end.
"""

import json

import numpy as np
import pytest

from repro.config import RunConfig
from repro.exceptions import (
    IOEngineError,
    ReproError,
    SlabCorruptionError,
    TransientIOError,
    WorkloadError,
)
from repro.resilience import (
    FaultInjector,
    FaultPolicy,
    ResilienceStats,
    SlabManifest,
    reap_scratch,
    slab_checksum,
)
from repro.runtime.laf import LocalArrayFile
from repro.runtime.slab import Slab
from repro.runtime.vm import VirtualMachine


def _slab(r0, r1, c0, c1, index=0):
    return Slab(index=index, row_start=r0, row_stop=r1, col_start=c0, col_stop=c1)


# ---------------------------------------------------------------------------
# checksums and manifests
# ---------------------------------------------------------------------------
class TestSlabManifest:
    def test_checksum_is_storage_order_independent(self):
        data = np.arange(12, dtype=np.float32).reshape(3, 4)
        assert slab_checksum(data) == slab_checksum(np.asfortranarray(data))

    def test_roundtrip_through_sidecar(self, tmp_path):
        path = tmp_path / "laf.dat.sums.json"
        manifest = SlabManifest(path)
        data = np.ones((4, 4), dtype=np.float32)
        manifest.record((0, 4, 0, 4), slab_checksum(data))
        manifest.save()
        loaded = SlabManifest.load(path)
        assert loaded.matches((0, 4, 0, 4), data) is True
        assert loaded.matches((0, 4, 0, 4), data + 1) is False
        assert loaded.matches((0, 2, 0, 4), data[:2]) is None  # never recorded

    def test_overlapping_write_invalidates_stale_entry(self):
        manifest = SlabManifest()
        manifest.record((0, 4, 0, 4), 1)
        manifest.record((2, 6, 0, 4), 2)  # overlaps rows [2, 4)
        assert manifest.expected((0, 4, 0, 4)) is None
        assert manifest.expected((2, 6, 0, 4)) == 2

    def test_record_full_covers_everything(self):
        manifest = SlabManifest()
        manifest.record((0, 2, 0, 4), 1)
        manifest.record_full((8, 4), 7)
        assert list(manifest.entries) == [(0, 8, 0, 4)]

    def test_malformed_sidecar_is_rejected(self, tmp_path):
        path = tmp_path / "bad.sums.json"
        path.write_text(json.dumps({"version": 1}))
        with pytest.raises(ValueError):
            SlabManifest.load(path)

    def test_unknown_algorithm_is_not_verifiable(self, tmp_path):
        path = tmp_path / "laf.dat.sums.json"
        manifest = SlabManifest(path)
        manifest.record((0, 1, 0, 1), 3)
        manifest.save()
        payload = json.loads(path.read_text())
        payload["algorithm"] = "md5-of-the-future"
        path.write_text(json.dumps(payload))
        loaded = SlabManifest.load(path)
        assert not loaded.verifiable
        assert loaded.matches((0, 1, 0, 1), np.zeros((1, 1))) is None


# ---------------------------------------------------------------------------
# LAF integrity
# ---------------------------------------------------------------------------
class TestLafIntegrity:
    def _laf(self, tmp_path, shape=(8, 8), order="F"):
        return LocalArrayFile(
            tmp_path / "laf_x_p0.dat", shape, np.float32, order=order,
            array_name="x", rank=0,
            manifest=SlabManifest(tmp_path / "laf_x_p0.dat.sums.json"),
        )

    def test_write_read_slab_verifies(self, tmp_path):
        laf = self._laf(tmp_path)
        slab = _slab(0, 4, 0, 8)
        data = np.random.default_rng(0).standard_normal((4, 8)).astype(np.float32)
        laf.write_slab(slab, data)
        np.testing.assert_array_equal(laf.read_slab(slab), data)
        assert laf.verify_checksums() == 1

    def test_manual_byte_flip_is_detected(self, tmp_path):
        laf = self._laf(tmp_path)
        laf.write_full(np.ones((8, 8), dtype=np.float32))
        laf.flush()
        raw = np.memmap(laf.path, dtype=np.uint8, mode="r+")
        raw[0] ^= 0xFF
        del raw
        with pytest.raises(SlabCorruptionError) as err:
            laf.read_full()
        assert err.value.array == "x" and err.value.rank == 0

    def test_injected_torn_write_is_detected(self, tmp_path):
        laf = self._laf(tmp_path)
        slab = _slab(0, 8, 0, 8)
        laf.write_slab(slab, np.ones((8, 8), dtype=np.float32))
        laf._inject_corruption(slab, "torn")
        with pytest.raises(SlabCorruptionError):
            laf.read_slab(slab)

    @pytest.mark.parametrize("order", ["F", "C"])
    def test_injected_bitflip_is_detected_both_orders(self, tmp_path, order):
        laf = self._laf(tmp_path, order=order)
        slab = _slab(2, 6, 2, 6)
        laf.write_slab(slab, np.ones((4, 4), dtype=np.float32))
        laf._inject_corruption(slab, "bitflip")
        with pytest.raises(SlabCorruptionError):
            laf.read_slab(slab)

    def test_overwrite_clears_corruption(self, tmp_path):
        laf = self._laf(tmp_path)
        slab = _slab(0, 8, 0, 8)
        laf.write_slab(slab, np.ones((8, 8), dtype=np.float32))
        laf._inject_corruption(slab, "bitflip")
        fresh = np.full((8, 8), 2.0, dtype=np.float32)
        laf.write_slab(slab, fresh)
        np.testing.assert_array_equal(laf.read_slab(slab), fresh)

    def test_manifest_sidecar_persists_across_reopen(self, tmp_path):
        laf = self._laf(tmp_path)
        laf.write_full(np.ones((8, 8), dtype=np.float32))
        laf.close()
        manifest = SlabManifest.load(tmp_path / "laf_x_p0.dat.sums.json")
        reopened = LocalArrayFile(
            tmp_path / "laf_x_p0.dat", (8, 8), np.float32,
            create=False, array_name="x", rank=0, manifest=manifest,
        )
        assert reopened.verify_checksums() == 1


# ---------------------------------------------------------------------------
# idempotent close / delete, flush-error surfacing
# ---------------------------------------------------------------------------
class TestCloseDelete:
    def test_close_and_delete_are_idempotent(self, tmp_path):
        laf = LocalArrayFile(tmp_path / "a.dat", (4, 4), np.float32)
        laf.write_full(np.zeros((4, 4), dtype=np.float32))
        laf.close()
        laf.close()
        laf.delete()
        laf.delete()
        assert not laf.path.exists()

    def test_delete_removes_sidecar(self, tmp_path):
        laf = LocalArrayFile(
            tmp_path / "a.dat", (4, 4), np.float32,
            manifest=SlabManifest(tmp_path / "a.dat.sums.json"),
        )
        laf.write_full(np.zeros((4, 4), dtype=np.float32))
        laf.close()
        assert (tmp_path / "a.dat.sums.json").exists()
        laf.delete()
        assert not (tmp_path / "a.dat.sums.json").exists()

    def test_flush_failure_surfaces_with_identity(self, tmp_path, monkeypatch):
        laf = LocalArrayFile(
            tmp_path / "a.dat", (4, 4), np.float32, array_name="a", rank=3
        )
        laf.write_full(np.zeros((4, 4), dtype=np.float32))
        monkeypatch.setattr(
            type(laf._mm), "flush",
            lambda self: (_ for _ in ()).throw(OSError("disk gone")),
        )
        with pytest.raises(IOEngineError, match=r"a\[p3\].*disk gone"):
            laf.close()
        # The handle is dropped either way, and repeat closes stay silent.
        assert not laf.handle_open
        laf.close()

    def test_delete_never_masks_flush_error(self, tmp_path, monkeypatch):
        laf = LocalArrayFile(
            tmp_path / "a.dat", (4, 4), np.float32, array_name="a", rank=0
        )
        laf.write_full(np.zeros((4, 4), dtype=np.float32))
        monkeypatch.setattr(
            type(laf._mm), "flush",
            lambda self: (_ for _ in ()).throw(OSError("disk gone")),
        )
        with pytest.raises(IOEngineError, match="disk gone"):
            laf.delete()
        assert not laf.path.exists()  # removed despite the flush failure


# ---------------------------------------------------------------------------
# the fault injector
# ---------------------------------------------------------------------------
class TestFaultInjector:
    def test_draws_are_deterministic(self):
        policy = FaultPolicy(seed=42, read_error_rate=0.3)
        a, b = FaultInjector(policy), FaultInjector(policy)
        schedule_a = [self._fires_read(a, "x[p0]") for _ in range(64)]
        schedule_b = [self._fires_read(b, "x[p0]") for _ in range(64)]
        assert schedule_a == schedule_b
        assert any(schedule_a) and not all(schedule_a)

    @staticmethod
    def _fires_read(injector, site):
        try:
            injector.before_read(site)
        except TransientIOError:
            return True
        return False

    def test_sites_are_independent(self):
        policy = FaultPolicy(seed=42, read_error_rate=0.3)
        injector = FaultInjector(policy)
        a = [self._fires_read(injector, "x[p0]") for _ in range(64)]
        b = [self._fires_read(injector, "y[p1]") for _ in range(64)]
        assert a != b

    def test_consecutive_cap_forces_success(self):
        policy = FaultPolicy(seed=0, read_error_rate=1.0, max_failures_per_site=2)
        injector = FaultInjector(policy)
        fires = [self._fires_read(injector, "x[p0]") for _ in range(9)]
        # rate 1.0: fire, fire, forced pass, fire, fire, forced pass, ...
        assert fires == [True, True, False] * 3

    def test_corruption_cap_is_total(self):
        policy = FaultPolicy(seed=0, torn_write_rate=1.0, max_failures_per_site=2)
        injector = FaultInjector(policy)
        modes = [injector.corrupt_write("x[p0]") for _ in range(10)]
        assert modes.count("torn") == 2
        assert set(modes[2:]) == {None}  # the site's supply is exhausted
        assert injector.stats.torn_writes_injected == 2

    def test_inactive_policy_draws_nothing(self):
        injector = FaultInjector(FaultPolicy(seed=1))
        injector.before_read("x[p0]")
        injector.before_write("x[p0]")
        assert injector.corrupt_write("x[p0]") is None
        assert not injector.stats.any_activity()

    def test_policy_validates_rates(self):
        with pytest.raises(ValueError, match="read_error_rate"):
            FaultPolicy(read_error_rate=1.5)

    def test_stats_as_dict_is_float_valued(self):
        stats = ResilienceStats(retries=3)
        as_dict = stats.as_dict()
        assert as_dict["retries"] == 3.0
        assert all(isinstance(v, float) for v in as_dict.values())


# ---------------------------------------------------------------------------
# the I/O engine retry loop (through a real VM)
# ---------------------------------------------------------------------------
class TestEngineRetries:
    def _vm(self, tmp_path, policy):
        config = RunConfig(
            scratch_dir=tmp_path, fault_policy=policy, io_retry_backoff_s=0.0
        )
        return VirtualMachine(2, None, config)

    def test_transient_faults_are_retried_and_counted(self, tmp_path):
        policy = FaultPolicy(seed=5, read_error_rate=0.4, write_error_rate=0.4)
        with self._vm(tmp_path, policy) as vm:
            laf = LocalArrayFile(
                vm.work_dir / "x.dat", (16, 16), np.float32, array_name="x", rank=0
            )
            data = np.random.default_rng(0).standard_normal((16, 16)).astype(np.float32)
            slab = _slab(0, 16, 0, 16)
            for _ in range(8):
                vm.engine.write_slab(0, laf, slab, data)
                np.testing.assert_array_equal(vm.engine.read_slab(0, laf, slab), data)
            assert vm.resilience.retries > 0
            assert (
                vm.resilience.transient_read_faults
                + vm.resilience.transient_write_faults
            ) == vm.resilience.retries

    def test_retries_exhausted_raises_io_engine_error(self, tmp_path):
        # The config forbids an injector cap that could outlast the retry
        # budget, so exhaustion needs a genuinely persistent host error.
        config = RunConfig(scratch_dir=tmp_path, io_retries=2, io_retry_backoff_s=0.0)
        with VirtualMachine(1, None, config) as vm:
            laf = LocalArrayFile(
                vm.work_dir / "x.dat", (4, 4), np.float32, array_name="x", rank=0
            )

            def broken_read(slab):
                raise OSError("media error")

            laf.read_slab = broken_read
            with pytest.raises(IOEngineError, match=r"x\[p0\] still failing after 2"):
                vm.engine.read_slab(0, laf, _slab(0, 4, 0, 4))

    def test_config_rejects_cap_at_or_above_retries(self, tmp_path):
        policy = FaultPolicy(read_error_rate=0.1, max_failures_per_site=4)
        with pytest.raises(ValueError, match="max_failures_per_site"):
            RunConfig(scratch_dir=tmp_path, fault_policy=policy, io_retries=4)


# ---------------------------------------------------------------------------
# the scratch reaper
# ---------------------------------------------------------------------------
class TestReaper:
    def test_reaps_only_old_vm_dirs(self, tmp_path):
        old = tmp_path / "vm_dead"
        old.mkdir()
        (old / "laf.dat").write_bytes(b"x")
        fresh = tmp_path / "vm_live"
        fresh.mkdir()
        unrelated = tmp_path / "keep_me"
        unrelated.mkdir()
        import os
        import time

        stale = time.time() - 7 * 24 * 3600
        for p in (old, old / "laf.dat"):
            os.utime(p, (stale, stale))
        removed = reap_scratch(tmp_path, max_age_s=3600.0)
        assert removed == [old]
        assert not old.exists() and fresh.exists() and unrelated.exists()

    def test_live_file_keeps_directory(self, tmp_path):
        import os
        import time

        vm_dir = tmp_path / "vm_active"
        vm_dir.mkdir()
        (vm_dir / "laf.dat").write_bytes(b"x")  # fresh mtime
        stale = time.time() - 7 * 24 * 3600
        os.utime(vm_dir, (stale, stale))
        assert reap_scratch(tmp_path, max_age_s=3600.0) == []
        assert vm_dir.exists()

    def test_missing_root_is_empty(self, tmp_path):
        assert reap_scratch(tmp_path / "nope", max_age_s=0.0) == []

    def test_negative_age_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            reap_scratch(tmp_path, max_age_s=-1.0)

    def test_session_startup_reaps(self, tmp_path):
        import os
        import time

        from repro import Session

        old = tmp_path / "vm_orphan"
        old.mkdir()
        stale = time.time() - 7 * 24 * 3600
        os.utime(old, (stale, stale))
        Session(config=RunConfig(scratch_dir=tmp_path))
        assert not old.exists()


# ---------------------------------------------------------------------------
# scratch byte accounting (the job service's disk-quota gauge)
# ---------------------------------------------------------------------------
class TestScratchUsage:
    def _vm_dir(self, tmp_path, name, nbytes):
        directory = tmp_path / name
        directory.mkdir()
        (directory / "slab.laf").write_bytes(b"x" * nbytes)
        return directory

    def test_counts_bytes_per_vm_dir(self, tmp_path):
        from repro.resilience import scratch_usage, scratch_usage_bytes

        self._vm_dir(tmp_path, "vm_aaa", 100)
        self._vm_dir(tmp_path, "vm_bbb", 250)
        (tmp_path / "unrelated").mkdir()  # does not match vm_*
        assert scratch_usage(tmp_path) == {"vm_aaa": 100, "vm_bbb": 250}
        assert scratch_usage_bytes(tmp_path) == 350

    def test_nested_files_are_included(self, tmp_path):
        from repro.resilience import scratch_usage_bytes

        vm_dir = self._vm_dir(tmp_path, "vm_nested", 10)
        deep = vm_dir / "a" / "b"
        deep.mkdir(parents=True)
        (deep / "chunk.laf").write_bytes(b"y" * 90)
        assert scratch_usage_bytes(tmp_path) == 100

    def test_skip_live_omits_owned_directories(self, tmp_path):
        import json
        import os

        from repro.resilience import scratch_usage_bytes

        live = self._vm_dir(tmp_path, "vm_live", 64)
        (live / "owner.json").write_text(json.dumps({"pid": os.getpid()}))
        dead = self._vm_dir(tmp_path, "vm_dead", 32)
        (dead / "owner.json").write_text(json.dumps({"pid": 2 ** 30}))
        # each dir's bytes include its own owner.json marker
        live_marker = (live / "owner.json").stat().st_size
        dead_marker = (dead / "owner.json").stat().st_size
        assert scratch_usage_bytes(tmp_path) == 96 + live_marker + dead_marker
        assert scratch_usage_bytes(tmp_path, skip_live=True) == 32 + dead_marker

    def test_missing_root_is_zero(self, tmp_path):
        from repro.resilience import scratch_usage, scratch_usage_bytes

        assert scratch_usage(tmp_path / "nope") == {}
        assert scratch_usage_bytes(tmp_path / "nope") == 0


# ---------------------------------------------------------------------------
# sweep error handling
# ---------------------------------------------------------------------------
class TestSweepOnError:
    @pytest.fixture()
    def session(self, tmp_path):
        from repro import Session

        return Session(config=RunConfig(scratch_dir=tmp_path), reap_max_age_s=None)

    def _points(self):
        from repro import WorkloadPoint

        good = WorkloadPoint("gaxpy", n=32, nprocs=4, version="row", slab_ratio=0.5)
        bad = WorkloadPoint(
            "hpf", slab_ratio=0.5, options={"source": "this is not a program"}
        )
        return [good, bad, good]

    def test_default_raises(self, session):
        with pytest.raises(ReproError):
            session.sweep(self._points())

    def test_skip_yields_error_record(self, session):
        records = session.sweep(self._points(), on_error="skip")
        assert len(records) == 3
        assert records[0].ok and records[2].ok
        failed = records[1]
        assert not failed.ok
        assert failed.error is not None and "HPFSyntaxError" in failed.error
        assert failed.simulated_seconds == 0.0
        assert records.summary["failed"] == 1
        assert "FAILED" in failed.describe()
        assert failed.to_dict()["error"] == failed.error

    def test_skip_matches_in_parallel(self, session):
        sequential = session.sweep(self._points(), on_error="skip")
        parallel = session.sweep(self._points(), on_error="skip", workers=3)
        assert [r.error for r in sequential] == [r.error for r in parallel]
        assert [r.simulated_seconds for r in sequential] == [
            r.simulated_seconds for r in parallel
        ]

    def test_unknown_mode_rejected(self, session):
        with pytest.raises(WorkloadError, match="on_error"):
            session.sweep(self._points(), on_error="ignore")
