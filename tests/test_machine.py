"""Tests for the simulated machine: cost models, clocks, counters."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import (
    CollectiveError,
    IOEngineError,
    MachineConfigurationError,
)
from repro.machine import (
    DiskModel,
    DiskParameters,
    Machine,
    MachineParameters,
    NetworkModel,
    NetworkParameters,
    ProcessorModel,
    ProcessorParameters,
    get_preset,
    touchstone_delta,
)
from repro.machine.clock import ClockSet, ProcessorClock
from repro.machine.metrics import MetricsSet, OperationCounters


# ---------------------------------------------------------------------------
# parameters and presets
# ---------------------------------------------------------------------------
class TestParameters:
    def test_presets_exist(self):
        for name in ["touchstone-delta", "paragon", "ibm-sp1", "modern"]:
            params = get_preset(name)
            assert isinstance(params, MachineParameters)

    def test_unknown_preset(self):
        with pytest.raises(MachineConfigurationError):
            get_preset("cray-t3d")

    def test_invalid_disk_parameters(self):
        with pytest.raises(MachineConfigurationError):
            DiskParameters(read_bandwidth=0)
        with pytest.raises(MachineConfigurationError):
            DiskParameters(request_latency=-1)

    def test_invalid_network_parameters(self):
        with pytest.raises(MachineConfigurationError):
            NetworkParameters(bandwidth=-1)

    def test_invalid_processor_parameters(self):
        with pytest.raises(MachineConfigurationError):
            ProcessorParameters(memory_bytes=0)

    def test_read_time_is_affine(self):
        disk = DiskParameters(request_latency=0.01, read_bandwidth=1e6)
        assert disk.read_time(0, 1) == pytest.approx(0.01)
        assert disk.read_time(1_000_000, 1) == pytest.approx(1.01)
        assert disk.read_time(1_000_000, 10) == pytest.approx(1.10)

    def test_collective_rounds_log2(self):
        net = NetworkParameters()
        assert net.collective_rounds(1) == 0
        assert net.collective_rounds(2) == 1
        assert net.collective_rounds(4) == 2
        assert net.collective_rounds(5) == 3
        assert net.collective_rounds(64) == 6

    def test_describe(self):
        assert "MB/s" in touchstone_delta().describe()


# ---------------------------------------------------------------------------
# individual models
# ---------------------------------------------------------------------------
class TestDiskModel:
    def test_counters_accumulate(self):
        disk = DiskModel(params=DiskParameters())
        disk.read(1000, 2)
        disk.write(500, 1)
        assert disk.read_requests == 2
        assert disk.write_requests == 1
        assert disk.bytes_read == 1000
        assert disk.bytes_written == 500
        assert disk.total_requests == 3
        assert disk.total_bytes == 1500
        assert disk.busy_time > 0

    def test_negative_rejected(self):
        disk = DiskModel(params=DiskParameters())
        with pytest.raises(IOEngineError):
            disk.read(-1)

    def test_reset(self):
        disk = DiskModel(params=DiskParameters())
        disk.read(1000)
        disk.reset()
        assert disk.snapshot() == {
            "read_requests": 0,
            "write_requests": 0,
            "bytes_read": 0,
            "bytes_written": 0,
            "busy_time": 0.0,
        }


class TestNetworkModel:
    def test_global_sum_cost_grows_with_procs(self):
        net = NetworkModel(params=NetworkParameters())
        t4 = net.global_sum(4096, 4)
        t64 = net.global_sum(4096, 64)
        assert t64 > t4

    def test_invalid_collective(self):
        net = NetworkModel(params=NetworkParameters())
        with pytest.raises(CollectiveError):
            net.global_sum(10, 0)
        with pytest.raises(CollectiveError):
            net.send(-5)

    def test_all_to_all_single_proc_is_free(self):
        net = NetworkModel(params=NetworkParameters())
        assert net.all_to_all(1024, 1) == 0.0


class TestProcessorModel:
    def test_compute_time(self):
        proc = ProcessorModel(params=ProcessorParameters(flop_time=1e-6))
        assert proc.compute(1000) == pytest.approx(1e-3)
        assert proc.flops == 1000

    def test_memory_budget(self):
        proc = ProcessorModel(params=ProcessorParameters(memory_bytes=1024))
        assert proc.fits_in_memory(1024)
        assert not proc.fits_in_memory(1025)

    def test_negative_flops_rejected(self):
        proc = ProcessorModel(params=ProcessorParameters())
        with pytest.raises(MachineConfigurationError):
            proc.compute(-1)


# ---------------------------------------------------------------------------
# clocks
# ---------------------------------------------------------------------------
class TestClocks:
    def test_advance_categories(self):
        clock = ProcessorClock(rank=0)
        clock.advance(1.0, "io")
        clock.advance(2.0, "compute")
        clock.advance(0.5, "comm")
        assert clock.now == pytest.approx(3.5)
        assert clock.breakdown()["io"] == pytest.approx(1.0)

    def test_unknown_category(self):
        with pytest.raises(MachineConfigurationError):
            ProcessorClock(rank=0).advance(1.0, "gpu")

    def test_negative_advance(self):
        with pytest.raises(MachineConfigurationError):
            ProcessorClock(rank=0).advance(-1.0)

    def test_synchronize_charges_idle(self):
        clocks = ClockSet(3)
        clocks[0].advance(5.0, "compute")
        clocks[1].advance(2.0, "compute")
        clocks.synchronize()
        assert clocks[1].now == pytest.approx(5.0)
        assert clocks[1].idle_time == pytest.approx(3.0)
        assert clocks[2].idle_time == pytest.approx(5.0)
        assert clocks.elapsed() == pytest.approx(5.0)

    def test_breakdown_uses_maximum(self):
        clocks = ClockSet(2)
        clocks[0].advance(3.0, "io")
        clocks[1].advance(1.0, "io")
        assert clocks.breakdown()["io"] == pytest.approx(3.0)


# ---------------------------------------------------------------------------
# metrics
# ---------------------------------------------------------------------------
class TestMetrics:
    def test_io_metrics(self):
        counters = OperationCounters()
        counters.record_read(4096, 2)
        counters.record_write(1024, 1)
        assert counters.io_requests == 3
        assert counters.io_bytes == 5120

    def test_merge(self):
        a = OperationCounters()
        a.record_read(10, 1)
        b = OperationCounters()
        b.record_read(20, 2)
        merged = a.merge(b)
        assert merged.io_read_requests == 3
        assert merged.bytes_read == 30

    def test_metrics_set_aggregations(self):
        metrics = MetricsSet(2)
        metrics[0].record_read(100, 1)
        metrics[1].record_read(300, 3)
        assert metrics.max_per_processor()["bytes_read"] == 300
        assert metrics.total()["bytes_read"] == 400
        assert metrics.mean()["io_read_requests"] == pytest.approx(2.0)


# ---------------------------------------------------------------------------
# Machine integration
# ---------------------------------------------------------------------------
class TestMachine:
    def test_construction_from_preset_name(self):
        machine = Machine(4, "paragon")
        assert machine.params.name == "intel-paragon"
        assert machine.nprocs == 4

    def test_invalid_nprocs(self):
        with pytest.raises(MachineConfigurationError):
            Machine(0)

    def test_charges_update_clock_metrics_and_models(self):
        machine = Machine(2)
        machine.charge_read(0, 1_000_000, 1)
        machine.charge_compute(0, 1e6)
        machine.charge_write(1, 500_000, 2)
        assert machine.metrics[0].bytes_read == 1_000_000
        assert machine.disks[0].read_requests == 1
        assert machine.clocks[0].io_time > 0
        assert machine.clocks[0].compute_time > 0
        assert machine.metrics[1].io_write_requests == 2
        assert machine.elapsed() > 0

    def test_global_sum_synchronizes(self):
        machine = Machine(4)
        machine.charge_compute(0, 1e7)  # rank 0 is ahead
        machine.charge_global_sum(4096, nelements=1024)
        times = [machine.clocks[r].now for r in range(4)]
        assert max(times) == pytest.approx(min(times))
        assert all(machine.metrics[r].collectives == 1 for r in range(4))

    def test_send_charges_both_endpoints(self):
        machine = Machine(3)
        machine.charge_send(0, 2, 1024)
        assert machine.metrics[0].messages == 1
        assert machine.metrics[2].messages == 1
        assert machine.metrics[1].messages == 0

    def test_bad_rank_rejected(self):
        machine = Machine(2)
        with pytest.raises(MachineConfigurationError):
            machine.charge_send(0, 5, 10)

    def test_io_statistics(self):
        machine = Machine(2)
        machine.charge_read(0, 2048, 4)
        stats = machine.io_statistics()
        assert stats["io_requests_per_proc"] == 4
        assert stats["bytes_read_per_proc"] == 2048

    def test_reset(self):
        machine = Machine(2)
        machine.charge_read(0, 2048, 4)
        machine.charge_global_sum(128)
        machine.reset()
        assert machine.elapsed() == 0.0
        assert machine.metrics.total()["io_requests"] == 0
        assert machine.network.messages == 0

    def test_broadcast_and_all_to_all(self):
        machine = Machine(4)
        t1 = machine.charge_broadcast(4096)
        t2 = machine.charge_all_to_all(1024)
        assert t1 > 0 and t2 > 0
        assert machine.network.collectives == 2


# ---------------------------------------------------------------------------
# property tests on cost monotonicity
# ---------------------------------------------------------------------------
@settings(max_examples=100, deadline=None)
@given(
    nbytes=st.integers(0, 10**8),
    more=st.integers(1, 10**7),
    nrequests=st.integers(1, 1000),
)
def test_read_time_monotone_in_bytes(nbytes, more, nrequests):
    disk = DiskParameters()
    assert disk.read_time(nbytes + more, nrequests) > disk.read_time(nbytes, nrequests)


@settings(max_examples=100, deadline=None)
@given(nbytes=st.integers(0, 10**8), nrequests=st.integers(1, 1000), extra=st.integers(1, 1000))
def test_read_time_monotone_in_requests(nbytes, nrequests, extra):
    disk = DiskParameters()
    assert disk.read_time(nbytes, nrequests + extra) > disk.read_time(nbytes, nrequests)


@settings(max_examples=50, deadline=None)
@given(nprocs=st.integers(1, 1024))
def test_collective_rounds_is_ceil_log2(nprocs):
    net = NetworkParameters()
    expected = math.ceil(math.log2(nprocs)) if nprocs > 1 else 0
    assert net.collective_rounds(nprocs) == expected
