"""Tests for the additional out-of-core kernels (elementwise, transpose)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import ExecutionMode, RunConfig
from repro.exceptions import RuntimeExecutionError
from repro.hpf import Alignment, ArrayDescriptor, ProcessorGrid, Template
from repro.kernels.elementwise import run_elementwise
from repro.kernels.transpose import run_transpose
from repro.runtime import VirtualMachine


def column_block_descriptor(n, p, name="x", dtype=np.float32):
    grid = ProcessorGrid("Pr", p)
    template = Template("d", n, grid, ["block"])
    return ArrayDescriptor(name, (n, n), Alignment(template, ["*", ":"]), dtype=dtype)


def make_vm(p, tmp_path, mode=ExecutionMode.EXECUTE):
    return VirtualMachine(p, "delta", RunConfig(scratch_dir=tmp_path, mode=mode))


# ---------------------------------------------------------------------------
# elementwise
# ---------------------------------------------------------------------------
class TestElementwise:
    @pytest.mark.parametrize("strategy", ["column", "row"])
    @pytest.mark.parametrize("op", [np.add, np.multiply])
    def test_matches_dense_reference(self, tmp_path, strategy, op):
        n, p = 32, 4
        desc = column_block_descriptor(n, p)
        rng = np.random.default_rng(3)
        a = rng.standard_normal((n, n)).astype(np.float32)
        b = rng.standard_normal((n, n)).astype(np.float32)
        with make_vm(p, tmp_path) as vm:
            result = run_elementwise(vm, desc, a, b, op=op, slab_elements=64, strategy=strategy)
        assert result.verified is True
        np.testing.assert_allclose(result.result, op(a, b), rtol=1e-4, atol=1e-5)

    def test_io_volume_is_one_pass(self, tmp_path):
        n, p = 32, 4
        desc = column_block_descriptor(n, p)
        a = np.ones((n, n), dtype=np.float32)
        with make_vm(p, tmp_path) as vm:
            result = run_elementwise(vm, desc, a, a, slab_elements=64)
        local_bytes = desc.local_nbytes(0)
        stats = result.io_statistics
        assert stats["bytes_read_per_proc"] == 2 * local_bytes       # a and b once each
        assert stats["bytes_written_per_proc"] == local_bytes        # c once

    def test_no_communication_charged(self, tmp_path):
        n, p = 32, 4
        desc = column_block_descriptor(n, p)
        a = np.ones((n, n), dtype=np.float32)
        with make_vm(p, tmp_path) as vm:
            run_elementwise(vm, desc, a, a, slab_elements=64)
            assert vm.machine.network.collectives == 0

    def test_estimate_mode(self, tmp_path):
        desc = column_block_descriptor(32, 4)
        with make_vm(4, tmp_path, mode=ExecutionMode.ESTIMATE) as vm:
            result = run_elementwise(vm, desc, None, None, slab_elements=64)
        assert result.result is None
        assert result.simulated_seconds > 0

    def test_rejects_non_2d(self, tmp_path):
        grid = ProcessorGrid("Pr", 2)
        template = Template("d", 8, grid, ["block"])
        desc = ArrayDescriptor("v", (8,), Alignment(template, [":"]))
        with make_vm(2, tmp_path) as vm:
            with pytest.raises(RuntimeExecutionError):
                run_elementwise(vm, desc, None, None)

    @settings(max_examples=8, deadline=None)
    @given(blocks=st.integers(1, 4), p=st.sampled_from([2, 4]), seed=st.integers(0, 1000))
    def test_property_correctness(self, tmp_path_factory, blocks, p, seed):
        n = blocks * p * 2
        desc = column_block_descriptor(n, p)
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((n, n)).astype(np.float32)
        b = rng.standard_normal((n, n)).astype(np.float32)
        with make_vm(p, tmp_path_factory.mktemp("ew")) as vm:
            result = run_elementwise(vm, desc, a, b, slab_elements=max(n, 8))
        assert result.verified is True


# ---------------------------------------------------------------------------
# transpose
# ---------------------------------------------------------------------------
class TestTranspose:
    @pytest.mark.parametrize("n,p", [(16, 2), (32, 4), (24, 4)])
    def test_matches_numpy_transpose(self, tmp_path, n, p):
        desc = column_block_descriptor(n, p)
        rng = np.random.default_rng(n + p)
        a = rng.standard_normal((n, n)).astype(np.float32)
        with make_vm(p, tmp_path) as vm:
            result = run_transpose(vm, desc, a, cols_per_slab=4)
        assert result.verified is True
        np.testing.assert_allclose(result.result, a.T, rtol=1e-5)

    def test_exchanges_are_charged(self, tmp_path):
        n, p = 16, 4
        desc = column_block_descriptor(n, p)
        a = np.ones((n, n), dtype=np.float32)
        with make_vm(p, tmp_path) as vm:
            run_transpose(vm, desc, a, cols_per_slab=4)
            assert vm.machine.network.collectives > 0
            assert vm.machine.metrics[0].io_read_requests > 0
            assert vm.machine.metrics[0].io_write_requests > 0

    def test_rejects_rectangular(self, tmp_path):
        grid = ProcessorGrid("Pr", 2)
        template = Template("d", 8, grid, ["block"])
        desc = ArrayDescriptor("r", (8, 8), Alignment(template, ["*", ":"]))
        bad = ArrayDescriptor("r2", (4, 8), Alignment(template, ["*", ":"]))
        with make_vm(2, tmp_path) as vm:
            with pytest.raises(RuntimeExecutionError):
                run_transpose(vm, bad, np.zeros((4, 8), dtype=np.float32))

    def test_estimate_mode(self, tmp_path):
        desc = column_block_descriptor(16, 2)
        with make_vm(2, tmp_path, mode=ExecutionMode.ESTIMATE) as vm:
            result = run_transpose(vm, desc, None)
        assert result.result is None
        assert result.simulated_seconds > 0
