"""Property-based slab fuzzing over random N / P / slab_ratio grids.

Two charge invariants of the compilation pipeline, checked on randomly drawn
configurations (seeded ``random`` — no extra dependencies):

* **mode equivalence** — ``ESTIMATE`` and ``EXECUTE`` report identical
  charged I/O counters for every slab-driven workload (the estimate drives
  the same slab loops charge-only, so any divergence means the executor and
  the cost accounting disagree about the generated program), and
* **slab-size invariance** — for single-pass statements (elementwise,
  transpose) the total bytes read and written are independent of the slab
  size: slabbing may change *request counts*, never data volume.
"""

import random

import pytest

from repro.api import Session, WorkloadPoint
from repro.config import RunConfig
from repro.core.ir import build_pipeline_ir
from repro.core.pipeline import compile_program
from repro.runtime.executor import ProgramExecutor
from repro.runtime.vm import VirtualMachine

SEED = 20260726

CHARGED_FIELDS = (
    "io_requests_per_proc",
    "io_read_bytes_per_proc",
    "io_write_bytes_per_proc",
)


def _charged(record):
    return tuple(getattr(record, field) for field in CHARGED_FIELDS)


def _random_configs(rng, count):
    """Random (n, nprocs, slab_ratio) with n divisible by nprocs (executable)."""
    configs = []
    for _ in range(count):
        nprocs = rng.choice([1, 2, 4])
        n = nprocs * rng.randint(2, 12)
        slab_ratio = rng.choice([0.125, 0.25, 0.3, 0.5, 0.75, 1.0])
        configs.append((n, nprocs, slab_ratio))
    return configs


# ---------------------------------------------------------------------------
# invariant 1: ESTIMATE and EXECUTE charge identical I/O counters
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("workload", ["elementwise", "transpose"])
def test_estimate_equals_execute_charges(tmp_path, workload):
    rng = random.Random(SEED)
    session = Session(config=RunConfig(scratch_dir=tmp_path))
    for n, nprocs, slab_ratio in _random_configs(rng, 6):
        point = WorkloadPoint(workload, n=n, nprocs=nprocs, slab_ratio=slab_ratio)
        estimate = session.estimate(point)
        execute = session.execute(point)
        assert _charged(estimate) == _charged(execute), (
            f"{workload} N={n} P={nprocs} ratio={slab_ratio}: "
            f"ESTIMATE charges {_charged(estimate)} but EXECUTE charges "
            f"{_charged(execute)}"
        )
        assert execute.verified is True


def test_estimate_equals_execute_charges_whole_program(tmp_path):
    rng = random.Random(SEED + 1)
    for index, (n, nprocs, slab_ratio) in enumerate(_random_configs(rng, 4)):
        compiled = compile_program(
            build_pipeline_ir(n, nprocs), slab_ratio=slab_ratio
        )
        executor = ProgramExecutor(compiled)
        estimate = executor.estimate()
        dense = {
            name: _seeded_dense(compiled.program, name, SEED + index)
            for name in compiled.program.input_arrays()
        }
        with VirtualMachine(
            nprocs, compiled.params, RunConfig(scratch_dir=tmp_path / str(index))
        ) as vm:
            execute = executor.execute(vm, dense)
        assert estimate.io_statistics == execute.io_statistics, (
            f"pipeline N={n} P={nprocs} ratio={slab_ratio}: modes disagree"
        )
        assert execute.verified is True
        # per-statement charge deltas agree between the modes too
        for est_stmt, exe_stmt in zip(estimate.statements, execute.statements, strict=True):
            for field in ("bytes_read_per_proc", "bytes_written_per_proc",
                          "io_requests_per_proc"):
                assert est_stmt[field] == exe_stmt[field]


def _seeded_dense(program, name, seed):
    import numpy as np

    descriptor = program.arrays[name]
    rng = np.random.default_rng((seed, hash(name) & 0xFFFF))
    return rng.standard_normal(descriptor.shape).astype(descriptor.dtype)


# ---------------------------------------------------------------------------
# invariant 2: bytes moved are slab-size-invariant for single-pass statements
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("workload", ["elementwise", "transpose"])
def test_bytes_are_slab_size_invariant(tmp_path, workload):
    rng = random.Random(SEED + 2)
    session = Session(config=RunConfig(scratch_dir=tmp_path))
    for _ in range(4):
        nprocs = rng.choice([1, 2, 4])
        n = nprocs * rng.randint(2, 12)
        ratios = rng.sample([0.125, 0.2, 0.25, 0.4, 0.5, 0.75, 1.0], 4)
        volumes = set()
        requests = []
        for slab_ratio in ratios:
            record = session.estimate(
                WorkloadPoint(workload, n=n, nprocs=nprocs, slab_ratio=slab_ratio)
            )
            volumes.add(
                (record.io_read_bytes_per_proc, record.io_write_bytes_per_proc)
            )
            requests.append(record.io_requests_per_proc)
        assert len(volumes) == 1, (
            f"{workload} N={n} P={nprocs}: bytes moved varied with the slab "
            f"ratio ({sorted(volumes)})"
        )
        # sanity: smaller slabs never yield fewer requests
        paired = sorted(zip(ratios, requests, strict=True), key=lambda item: item[0])
        ordered = [count for _, count in paired]
        assert ordered == sorted(ordered, reverse=True) or len(set(ordered)) == 1


def test_pipeline_elementwise_statement_bytes_are_slab_invariant(tmp_path):
    """In a whole program, statement 2 (elementwise) keeps the invariance."""
    rng = random.Random(SEED + 3)
    nprocs = 4
    n = 32
    volumes = set()
    for slab_ratio in rng.sample([0.125, 0.25, 0.5, 1.0], 3):
        compiled = compile_program(build_pipeline_ir(n, nprocs), slab_ratio=slab_ratio)
        estimate = ProgramExecutor(compiled).estimate()
        stmt2 = estimate.statements[1]
        volumes.add((stmt2["bytes_read_per_proc"], stmt2["bytes_written_per_proc"]))
    assert len(volumes) == 1
