"""Differential matrix for the static plan verifier.

Three oracles must agree on every compiled plan:

1. the **symbolic ledger** the verifier derives by walking the node program,
2. the cost model's **PlanCost**, and
3. the **executed charges** the machine counters accumulate (``ESTIMATE``
   and ``EXECUTE`` charge identically by construction, so the cheap mode
   suffices here).

Every workload builder x strategy x processor count x slab granularity —
even and uneven slabs both — must verify clean with exact ledger equality;
hypothesis widens the sweep.  The file also pins the three defects the
verifier surfaced while being brought up (see ``TestSurfacedDefects``) and
the ``Session`` / planner integration of the ``check=`` modes.

Known executed-granularity deviation: the row-strategy reduction executor
flushes the result in one request per *streamed* row slab (batching the
plan's per-column flush into row strips), so its write **request** count
differs from the plan while the bytes agree exactly — see
``src/repro/runtime/README.md``.  Executed-equality assertions therefore
always compare bytes, and compare request counts wherever the executor
follows the plan's slab granularity.  The single-operand reduction executes
a broadcast schedule whose charges deliberately diverge from the paper's
re-read model (its docstring explains why), so it is excluded from
executed-equality entirely.
"""

import dataclasses
import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Session, WorkloadPoint
from repro.check import CheckFinding, CheckReport, Severity, check_compiled
from repro.config import ExecutionMode, RunConfig
from repro.core.analysis import analyze_program
from repro.core.ir import (
    build_elementwise_ir,
    build_gaxpy_ir,
    build_pipeline_ir,
    build_transpose_ir,
)
from repro.core.node_program import LoopOp
from repro.core.pipeline import compile_program
from repro.exceptions import CompilationError, PlanVerificationError
from repro.hpf.frontend import frontend_to_ir
from repro.hpf.parser import parse_program
from repro.runtime import NodeProgramExecutor, VirtualMachine
from repro.runtime.executor import ProgramExecutor

SINGLE_OPERAND_SOURCE = """
program square
  parameter (n = 16, nprocs = 4)
  real a(n, n), c(n, n)
!hpf$ processors Pr(nprocs)
!hpf$ template tmpl(n)
!hpf$ distribute tmpl(block) onto Pr
!hpf$ align a(*, :) with tmpl
!hpf$ align c(*, :) with tmpl
  do j = 1, n
    forall (k = 1 : n)
      c(:, j) = sum(a(:, k) * a(k, j))
    end forall
  end do
end program
"""

BUILDERS = {
    "gaxpy": build_gaxpy_ir,
    "elementwise": build_elementwise_ir,
    "transpose": build_transpose_ir,
    "pipeline": build_pipeline_ir,
}


def compile_and_check(build, n, nprocs, **kwargs):
    compiled = compile_program(BUILDERS[build](n, nprocs), **kwargs)
    report = check_compiled(compiled)
    assert report.ok, report.describe()
    return compiled, report


# ---------------------------------------------------------------------------
# the static matrix: ledger == PlanCost on every compiled plan
# ---------------------------------------------------------------------------
class TestStaticMatrix:
    # n = 16 divides evenly into 4 x 4 local columns; n = 23 leaves uneven
    # ranks *and* a partial last slab, the case nominal counting overcharges.
    @pytest.mark.parametrize("n", [16, 23])
    @pytest.mark.parametrize("nprocs", [1, 4])
    @pytest.mark.parametrize("strategy", [None, "column", "row"])
    @pytest.mark.parametrize("build", ["gaxpy", "elementwise"])
    def test_single_statement_verifies_exactly(self, build, n, nprocs, strategy):
        compiled, report = compile_and_check(
            build, n, nprocs, slab_ratio=0.3, force_strategy=strategy
        )
        assert report.ledger.compare_plan_cost(compiled.plan.cost) == []

    @pytest.mark.parametrize("n", [16, 23])
    @pytest.mark.parametrize("nprocs", [1, 4])
    def test_transpose_verifies_exactly(self, n, nprocs):
        compiled, report = compile_and_check("transpose", n, nprocs, slab_ratio=0.5)
        assert report.ledger.compare_plan_cost(compiled.plan.cost) == []

    @pytest.mark.parametrize("n", [16, 23])
    @pytest.mark.parametrize("nprocs", [1, 4])
    @pytest.mark.parametrize("ratio", [0.5, 0.17])
    def test_whole_program_verifies_exactly(self, n, nprocs, ratio):
        compiled, report = compile_and_check("pipeline", n, nprocs, slab_ratio=ratio)
        # per-statement drift would already fail report.ok; this pins the
        # summed-ledger-vs-combined-cost leg explicitly
        assert report.ledger.compare_plan_cost(compiled.cost) == []
        assert report.checked_statements == len(compiled.statements)

    @pytest.mark.parametrize("ratio", [0.5, 0.25])
    @pytest.mark.parametrize("strategy", [None, "column", "row"])
    def test_single_operand_program_verifies(self, ratio, strategy):
        ir = frontend_to_ir(parse_program(SINGLE_OPERAND_SOURCE))
        compiled = compile_program(ir, slab_ratio=ratio, force_strategy=strategy)
        report = check_compiled(compiled)
        assert report.ok, report.describe()

    @settings(max_examples=25, deadline=None)
    @given(
        build=st.sampled_from(sorted(BUILDERS)),
        n=st.integers(min_value=8, max_value=48),
        nprocs=st.sampled_from([1, 2, 4]),
        ratio=st.floats(min_value=0.1, max_value=0.9),
    )
    def test_fuzzed_plans_verify_clean(self, build, n, nprocs, ratio):
        compiled = compile_program(BUILDERS[build](n, nprocs), slab_ratio=ratio)
        report = check_compiled(compiled)
        assert report.ok, report.describe()


# ---------------------------------------------------------------------------
# executed charges: the machine counters agree with the symbolic walk
# ---------------------------------------------------------------------------
def executed_statistics(compiled, scratch):
    config = RunConfig(scratch_dir=scratch, mode=ExecutionMode.ESTIMATE)
    with VirtualMachine(compiled.nprocs, compiled.params, config) as vm:
        if hasattr(compiled, "statements"):
            ProgramExecutor(compiled).run(vm, None, verify=False)
        else:
            NodeProgramExecutor(compiled).run(vm, None, verify=False)
        return vm.io_statistics()


class TestExecutedCharges:
    # exact_requests=False marks plans containing a row-strategy reduction,
    # whose executor batches the result flush (bytes still exact).
    CASES = [
        ("gaxpy", 24, 4, {"force_strategy": "column"}, True),
        ("gaxpy", 24, 4, {"force_strategy": "row"}, False),
        ("gaxpy", 16, 1, {}, True),
        ("elementwise", 24, 4, {}, True),
        ("transpose", 24, 4, {}, True),
        ("pipeline", 24, 4, {}, False),
    ]

    @pytest.mark.parametrize("build,n,nprocs,kwargs,exact_requests", CASES)
    def test_ledger_matches_machine_counters(
        self, tmp_path, build, n, nprocs, kwargs, exact_requests
    ):
        compiled, report = compile_and_check(
            build, n, nprocs, slab_ratio=0.3, **kwargs
        )
        ledger = report.ledger
        stats = executed_statistics(compiled, tmp_path)
        assert stats["bytes_read_per_proc"] == ledger.read_bytes
        assert stats["bytes_written_per_proc"] == ledger.write_bytes
        assert stats["io_read_requests_per_proc"] == ledger.read_requests
        if exact_requests:
            assert stats["io_write_requests_per_proc"] == ledger.write_requests
            assert stats["io_requests_per_proc"] == ledger.io_requests


# ---------------------------------------------------------------------------
# defects the verifier surfaced in the existing pipeline, pinned forever
# ---------------------------------------------------------------------------
class TestSurfacedDefects:
    def test_transpose_exchange_payload_telescopes_on_uneven_slabs(self):
        # estimate_transpose used to charge a full nominal slab per exchange
        # pair; with 17 columns over 4 ranks the last slab is partial and the
        # total exchanged volume must telescope to exactly the local size.
        compiled = compile_program(build_transpose_ir(17, 4), slab_ratio=0.5)
        cost = compiled.plan.cost
        rows, cols = compiled.plan.entries["src"].local_shape
        assert cost.collective_count * cost.collective_elements_each == rows * cols
        assert check_compiled(compiled).ok

    def test_single_operand_analysis_keeps_streamed_role(self):
        # ``c(:, j) = sum(a(:, k) * a(k, j))`` references `a` in both roles;
        # the coefficient-role view used to overwrite the streamed-role entry
        # in the access table, hiding the distributed reduce dimension and
        # turning off the global sum the schedule requires.
        ir = frontend_to_ir(parse_program(SINGLE_OPERAND_SOURCE))
        analysis = analyze_program(ir)
        assert analysis.needs_global_sum is True

    def test_single_operand_column_walks_all_result_columns(self):
        # The two-operand column nest iterates the coefficient's *local*
        # columns; with one operand those are only n/P of the result, so the
        # generated program used to undercharge I/O, flops and collectives by
        # a factor of P.  The single-operand schedule must stage the local
        # part once and walk all n result columns.
        ir = frontend_to_ir(parse_program(SINGLE_OPERAND_SOURCE))
        compiled = compile_program(ir, slab_ratio=0.5, force_strategy="column")
        report = check_compiled(compiled)
        assert report.ok, report.describe()
        stage, per_column, flush = compiled.node_program.ops
        assert isinstance(per_column, LoopOp)
        assert per_column.lines_of == "" and per_column.slabs_of == ""
        assert per_column.trip_count == 16  # all n columns, not n / P


# ---------------------------------------------------------------------------
# Session integration: check modes, report attachment, run records
# ---------------------------------------------------------------------------
def hpf_point(**kwargs):
    kwargs.setdefault("slab_ratio", 0.5)
    return WorkloadPoint(
        "hpf", options={"source": SINGLE_OPERAND_SOURCE}, **kwargs
    )


def failing_report():
    finding = CheckFinding(
        code="ledger-drift",
        severity=Severity.ERROR,
        message="injected for testing",
        statement="square",
    )
    return CheckReport(findings=(finding,), checked_statements=1)


class TestSessionCheckModes:
    def test_default_warn_attaches_clean_report(self, tmp_path):
        session = Session(config=RunConfig(scratch_dir=tmp_path))
        compiled = session.compile(hpf_point())
        assert compiled.check is not None
        assert compiled.check.ok
        assert compiled.program.check is compiled.check

    def test_run_record_carries_check_summary(self, tmp_path):
        session = Session(config=RunConfig(scratch_dir=tmp_path))
        record = session.run(hpf_point(), mode=ExecutionMode.ESTIMATE)
        assert record.plan["check"]["ok"] is True
        assert record.plan["check"]["errors"] == 0

    def test_check_off_skips_verification(self, tmp_path):
        session = Session(config=RunConfig(scratch_dir=tmp_path), check="off")
        compiled = session.compile(hpf_point())
        assert compiled.check is None

    def test_error_mode_raises_on_failing_plan(self, tmp_path, monkeypatch):
        import repro.check

        monkeypatch.setattr(
            repro.check, "check_compiled", lambda compiled: failing_report()
        )
        session = Session(config=RunConfig(scratch_dir=tmp_path), check="error")
        with pytest.raises(PlanVerificationError) as excinfo:
            session.compile(hpf_point())
        assert excinfo.value.report.codes() == ("ledger-drift",)

    def test_warn_mode_warns_and_keeps_the_report(self, tmp_path, monkeypatch):
        import repro.check

        monkeypatch.setattr(
            repro.check, "check_compiled", lambda compiled: failing_report()
        )
        session = Session(config=RunConfig(scratch_dir=tmp_path))
        with pytest.warns(UserWarning, match="FAILED verification"):
            compiled = session.compile(hpf_point())
        assert not compiled.check.ok

    def test_verification_runs_once_per_cached_plan(self, tmp_path, monkeypatch):
        import repro.check

        calls = []
        real = repro.check.check_compiled

        def counting(compiled):
            calls.append(compiled)
            return real(compiled)

        monkeypatch.setattr(repro.check, "check_compiled", counting)
        session = Session(config=RunConfig(scratch_dir=tmp_path))
        first = session.compile(hpf_point())
        second = session.compile(hpf_point())
        assert len(calls) == 1
        assert second.check is first.check

    def test_invalid_mode_is_rejected(self, tmp_path):
        from repro.exceptions import WorkloadError

        with pytest.raises(WorkloadError):
            Session(config=RunConfig(scratch_dir=tmp_path), check="loudly")


# ---------------------------------------------------------------------------
# planner integration: verified search stays no worse than the even split
# ---------------------------------------------------------------------------
class TestPlannerUnderCheck:
    BUDGET = 24 * 1024

    def test_verified_search_is_no_worse_than_even_split(self):
        ir = build_pipeline_ir(16, 4)
        even = compile_program(
            build_pipeline_ir(16, 4),
            memory_budget_bytes=self.BUDGET,
            optimizer="none",
        )
        checked = compile_program(
            ir,
            memory_budget_bytes=self.BUDGET,
            optimizer="greedy",
            check="error",
        )
        assert checked.cost.total_time <= even.cost.total_time
        decision = checked.planner
        assert decision is not None
        assert decision.predicted_total_time <= decision.even_total_time
        assert checked.check is not None and checked.check.ok

    def test_checked_and_unchecked_search_agree(self):
        # Verification must only *reject* broken candidates, never change the
        # ranking of healthy ones — the winning plan is identical.
        plain = compile_program(
            build_pipeline_ir(16, 4),
            memory_budget_bytes=self.BUDGET,
            optimizer="greedy",
        )
        checked = compile_program(
            build_pipeline_ir(16, 4),
            memory_budget_bytes=self.BUDGET,
            optimizer="greedy",
            check="error",
        )
        assert checked.cost.total_time == plain.cost.total_time
        assert checked.cost.io_bytes == plain.cost.io_bytes

    def test_compile_program_error_mode_raises_on_failing_plan(self, monkeypatch):
        # End-to-end: a cost-model/codegen divergence must surface as
        # PlanVerificationError from compile_program, not a silent plan.
        import repro.check

        monkeypatch.setattr(
            repro.check, "check_compiled", lambda compiled: failing_report()
        )
        with pytest.raises(PlanVerificationError) as excinfo:
            compile_program(build_gaxpy_ir(16, 4), slab_ratio=0.5, check="error")
        assert not excinfo.value.report.ok

    def test_compile_program_warn_mode_warns_and_attaches(self, monkeypatch):
        import repro.check

        monkeypatch.setattr(
            repro.check, "check_compiled", lambda compiled: failing_report()
        )
        with pytest.warns(UserWarning, match="FAILED verification"):
            compiled = compile_program(
                build_gaxpy_ir(16, 4), slab_ratio=0.5, check="warn"
            )
        assert compiled.check is not None and not compiled.check.ok

    def test_planner_rejects_unverifiable_candidates(self, monkeypatch):
        # Force every candidate to fail verification: the search must surface
        # a compilation error rather than return an unverified plan.
        import repro.check

        monkeypatch.setattr(
            repro.check, "check_compiled", lambda compiled: failing_report()
        )
        with pytest.raises(CompilationError):
            compile_program(
                build_pipeline_ir(16, 4),
                memory_budget_bytes=self.BUDGET,
                optimizer="greedy",
                check="error",
            )
