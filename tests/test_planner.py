"""The plan optimizer: budget arithmetic, search strategies, pipeline wiring.

The load-bearing guarantee under test: for every program of the differential
matrix, the planner's chosen plan has a predicted :class:`PlanCost` no worse
than the even split's, the charged ``ESTIMATE`` counters equal the
``EXECUTE`` counters, and the executed numerics still match the NumPy oracle.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import ExecutionMode, RunConfig
from repro.core.ir import (
    build_elementwise_ir,
    build_gaxpy_ir,
    build_pipeline_ir,
    build_transpose_ir,
)
from repro.core.pipeline import compile_program, compile_whole_program
from repro.exceptions import CompilationError
from repro.hpf.frontend import frontend_to_ir
from repro.hpf.parser import parse_program
from repro.planner import (
    OPTIMIZERS,
    PlanChoice,
    budget_grid,
    even_choice,
    plan_whole_program,
    split_by_weights,
    split_evenly,
    transfer_neighbors,
)
from repro.runtime.vm import VirtualMachine

from tests.test_differential import (
    THREE_STATEMENT_SOURCE,
    assert_matches_oracle,
)


# ---------------------------------------------------------------------------
# budget arithmetic (satellite: the remainder-dropping even split)
# ---------------------------------------------------------------------------
class TestSplitEvenly:
    @given(total=st.integers(1, 10**9), parts=st.integers(1, 64))
    @settings(max_examples=200, deadline=None)
    def test_conserves_total_and_is_near_equal(self, total, parts):
        if total < parts:
            with pytest.raises(CompilationError):
                split_evenly(total, parts)
            return
        shares = split_evenly(total, parts)
        assert sum(shares) == total
        assert max(shares) - min(shares) <= 1
        assert all(share >= 1 for share in shares)

    def test_remainder_is_redistributed_not_dropped(self):
        # The historical bug: 100 // 3 == 33 dropped one unit.
        assert split_evenly(100, 3) == [34, 33, 33]

    def test_rejects_nonpositive_parts(self):
        with pytest.raises(CompilationError):
            split_evenly(10, 0)


class TestSplitByWeights:
    @given(
        total=st.integers(10, 10**7),
        weights=st.lists(st.floats(0.0, 100.0), min_size=1, max_size=8),
    )
    @settings(max_examples=200, deadline=None)
    def test_conserves_total(self, total, weights):
        shares = split_by_weights(total, weights)
        assert sum(shares) == total
        assert all(share >= 0 for share in shares)

    def test_proportionality(self):
        assert split_by_weights(100, [3.0, 1.0]) == [75, 25]

    def test_minimums_are_respected(self):
        shares = split_by_weights(100, [1.0, 0.0], minimums=[0, 10])
        assert shares[1] >= 10 and sum(shares) == 100

    def test_rejects_negative_weights(self):
        with pytest.raises(CompilationError):
            split_by_weights(10, [-1.0, 2.0])


# ---------------------------------------------------------------------------
# satellite property test: the per-array even split under one byte budget
# never over-allocates, yet reaches the budget to within one slab line per
# array (plus sub-element change) whenever no array is clamped to its full
# local size.
# ---------------------------------------------------------------------------
class TestEvenSplitAllocation:
    @given(
        n=st.sampled_from([32, 48, 64, 96]),
        nprocs=st.sampled_from([1, 2, 4]),
        budget=st.integers(4 * 64, 4 * 64 * 64),
    )
    @settings(max_examples=60, deadline=None)
    def test_allocated_bytes_bounded_by_budget_within_one_line(
        self, n, nprocs, budget
    ):
        ir = build_elementwise_ir(n, nprocs)
        itemsize = ir.arrays["a"].itemsize
        local = max(
            ir.arrays["a"].local_shape(r)[0] * ir.arrays["a"].local_shape(r)[1]
            for r in range(nprocs)
        )
        names = ("a", "b", "c")
        # One slab line (column strategy: one local column) per array must fit.
        line = max(ir.arrays["a"].local_shape(0)[0], 1)
        if budget // len(names) < (line + 1) * itemsize:
            return  # too small for a whole line; the compiler clamps to one line
        compiled = compile_program(ir, memory_budget_bytes=budget)
        entries = compiled.plan.entries
        allocated = sum(entries[name].slab_elements for name in names) * itemsize
        assert allocated <= budget, "allocation exceeded the byte budget"
        if all(entries[name].slab_elements < local for name in names):
            # Not clamped: the shortfall is less than one slab line plus one
            # element of slack per array.
            slack = sum((line + 1) * itemsize for _ in names)
            assert budget - allocated < slack

    def test_odd_budget_not_worse_than_floored_budget(self):
        # Redistributing the remainder can only grow the common slab.
        ir = build_elementwise_ir(64, 2)
        odd = compile_program(ir, memory_budget_bytes=3 * 4096 + 2)
        floored = compile_program(ir, memory_budget_bytes=3 * 4096)
        assert (
            odd.plan.entries["a"].slab_elements
            >= floored.plan.entries["a"].slab_elements
        )


# ---------------------------------------------------------------------------
# search-space enumeration
# ---------------------------------------------------------------------------
class TestSpace:
    def test_even_choice_matches_split_evenly(self):
        ir = build_pipeline_ir(64, 4)
        choice = even_choice(ir, 100_001)
        assert sum(choice.statement_budgets) == 100_001
        assert choice.policies == ("proportional", "-")

    def test_budget_grid_conserves_total(self):
        vectors = list(budget_grid(10_000, 3, 12))
        assert len(vectors) == 55  # C(11, 2)
        for vector in vectors:
            assert sum(vector) == 10_000
            assert all(b >= 1 for b in vector)

    def test_transfer_neighbors_conserve_total(self):
        for moved in transfer_neighbors((100, 200, 300), 50):
            assert sum(moved) == 600
        assert len(list(transfer_neighbors((100, 200), 150))) == 1  # one donor fits

    def test_plan_choice_validates(self):
        with pytest.raises(CompilationError):
            PlanChoice((100,), ("proportional", "-"))
        with pytest.raises(CompilationError):
            PlanChoice((0, 100), ("proportional", "-"))

    def test_plan_choice_describe(self):
        choice = PlanChoice((100, 200), ("proportional", "-"))
        assert choice.describe() == "s0:100B/proportional s1:200B/-"
        assert choice.total_budget == 300

    def test_policy_instance_rejects_unknown_names(self):
        from repro.planner import policy_instance

        with pytest.raises(CompilationError, match="unknown allocation policy"):
            policy_instance("random")

    def test_zero_weights_fall_back_to_even_split(self):
        assert split_by_weights(10, [0.0, 0.0]) == [5, 5]


# ---------------------------------------------------------------------------
# the no-worse guarantee over the differential matrix
# ---------------------------------------------------------------------------
N = 16
BUDGET = 6 * 1024  # small enough that every N=16 program is genuinely slabbed

MATRIX = [
    pytest.param(lambda: build_gaxpy_ir(N, 1), id="gaxpy-p1"),
    pytest.param(lambda: build_gaxpy_ir(N, 4), id="gaxpy-p4"),
    pytest.param(lambda: build_gaxpy_ir(N, 4, dtype="float64"), id="gaxpy-f64"),
    pytest.param(lambda: build_elementwise_ir(N, 4, op="add"), id="elementwise-add"),
    pytest.param(
        lambda: build_elementwise_ir(N, 1, op="multiply"), id="elementwise-mul"
    ),
    pytest.param(lambda: build_transpose_ir(N, 4), id="transpose"),
    pytest.param(lambda: build_pipeline_ir(N, 1), id="pipeline-p1"),
    pytest.param(lambda: build_pipeline_ir(N, 4), id="pipeline-p4"),
    pytest.param(
        lambda: build_pipeline_ir(N, 4, dtype="float64"), id="pipeline-f64"
    ),
    pytest.param(
        lambda: frontend_to_ir(parse_program(THREE_STATEMENT_SOURCE)),
        id="three-statement-chain",
    ),
]


def _cost_key(cost):
    return (cost.total_time, cost.io_time, cost.io_bytes)


@pytest.mark.parametrize("build", MATRIX)
@pytest.mark.parametrize("optimizer", ["greedy", "exhaustive"])
def test_planner_no_worse_than_even_split(build, optimizer):
    even = compile_program(build(), memory_budget_bytes=BUDGET, optimizer="none")
    optimized = compile_program(build(), memory_budget_bytes=BUDGET, optimizer=optimizer)
    assert _cost_key(optimized.predicted_cost) <= _cost_key(even.predicted_cost)
    decision = optimized.planner
    assert decision is not None and decision.optimizer == optimizer
    assert decision.predicted_total_time <= decision.even_total_time
    assert decision.improvement >= 1.0


@pytest.mark.parametrize("build", MATRIX)
def test_planner_matches_oracle_and_mode_parity(build, tmp_path):
    """Optimized plans still execute correctly and charge mode-invariant I/O."""
    compiled = compile_program(build(), memory_budget_bytes=BUDGET, optimizer="greedy")
    assert_matches_oracle(compiled, tmp_path / "exec")

    from repro.core.pipeline import CompiledWholeProgram
    from repro.runtime.executor import NodeProgramExecutor, ProgramExecutor
    from tests.test_differential import (
        _single_statement_inputs,
        generate_dense_inputs,
    )

    dense = generate_dense_inputs(compiled.program)
    counters = {}
    for mode in (ExecutionMode.ESTIMATE, ExecutionMode.EXECUTE):
        with VirtualMachine(
            compiled.nprocs,
            compiled.params,
            RunConfig(scratch_dir=tmp_path / mode.value, mode=mode),
        ) as vm:
            if isinstance(compiled, CompiledWholeProgram):
                executor = ProgramExecutor(compiled)
                result = (
                    executor.estimate(vm)
                    if mode is ExecutionMode.ESTIMATE
                    else executor.execute(vm, dense, verify=False)
                )
            else:
                executor = NodeProgramExecutor(compiled)
                result = (
                    executor.run(vm, None, verify=False)
                    if mode is ExecutionMode.ESTIMATE
                    else executor.execute(
                        vm, _single_statement_inputs(compiled, dense), verify=False
                    )
                )
            counters[mode] = {
                key: result.io_statistics.get(key)
                for key in (
                    "io_requests_per_proc",
                    "bytes_read_per_proc",
                    "bytes_written_per_proc",
                )
            }
    assert counters[ExecutionMode.ESTIMATE] == counters[ExecutionMode.EXECUTE]


# ---------------------------------------------------------------------------
# search behaviour specifics
# ---------------------------------------------------------------------------
class TestSearchStrategies:
    def test_greedy_shifts_budget_toward_the_reduction(self):
        # In t = a @ b; c = t + d the elementwise statement's I/O volume is
        # slab-invariant while the reduction's re-reads shrink with memory:
        # the search must give the reduction statement the larger share.
        ir = build_pipeline_ir(256, 4)
        optimized = compile_whole_program(
            ir, memory_budget_bytes=48 * 1024, optimizer="greedy"
        )
        even = compile_whole_program(ir, memory_budget_bytes=48 * 1024)
        budgets = optimized.planner.statement_budgets
        assert budgets[0] > budgets[1]
        assert optimized.cost.total_time < even.cost.total_time
        assert optimized.cost.io_bytes < even.cost.io_bytes

    def test_optimizer_none_reproduces_even_split(self):
        ir = build_pipeline_ir(64, 4)
        legacy = compile_whole_program(ir, memory_budget_bytes=32 * 1024 + 1)
        assert legacy.planner.optimizer == "none"
        assert legacy.planner.statement_budgets == (16_385, 16_384)
        assert legacy.planner.predicted_total_time == legacy.planner.even_total_time

    @pytest.mark.parametrize("optimizer", ["beam", "exhaustive"])
    def test_other_strategies_at_least_match_even(self, optimizer):
        ir = build_pipeline_ir(256, 4)
        even = compile_whole_program(ir, memory_budget_bytes=48 * 1024)
        optimized = compile_whole_program(
            ir, memory_budget_bytes=48 * 1024, optimizer=optimizer
        )
        assert optimized.cost.total_time <= even.cost.total_time

    def test_conflicting_slab_specs_rejected_with_optimizer_too(self):
        # The exactly-one-spec validation must run before the planner
        # fast-path, not only on the legacy path.
        with pytest.raises(CompilationError, match="exactly one of"):
            compile_program(
                build_gaxpy_ir(N, 4),
                memory_budget_bytes=BUDGET,
                slab_ratio=0.25,
                optimizer="greedy",
            )

    def test_unknown_optimizer_is_rejected(self):
        with pytest.raises(CompilationError, match="unknown plan optimizer"):
            compile_whole_program(
                build_pipeline_ir(64, 4),
                memory_budget_bytes=32 * 1024,
                optimizer="simulated-annealing",
            )

    def test_optimizers_tuple_is_public(self):
        assert set(OPTIMIZERS) == {"none", "greedy", "beam", "exhaustive"}

    def test_pinned_policy_bypasses_the_search(self):
        from repro.core.memory_alloc import EqualAllocation

        compiled = compile_whole_program(
            build_pipeline_ir(64, 4),
            memory_budget_bytes=32 * 1024,
            policy=EqualAllocation(),
            optimizer="greedy",
        )
        assert compiled.planner is None

    def test_plan_whole_program_returns_compiled_statements(self):
        from repro.machine.parameters import touchstone_delta

        ir = build_pipeline_ir(64, 4)
        decision, units = plan_whole_program(
            ir, touchstone_delta(), 64 * 1024, optimizer="greedy"
        )
        assert len(units) == 2
        assert sum(decision.statement_budgets) == 64 * 1024

    def test_budget_too_small_raises_legacy_message(self):
        with pytest.raises(CompilationError, match="cannot be split"):
            compile_whole_program(build_pipeline_ir(64, 4), memory_budget_bytes=1)

    def test_infeasible_even_split_surfaces_the_real_error(self):
        # 16 bytes over two statements: each statement's split cannot cover
        # one slab line per array, and the planner must surface the original
        # allocation error instead of swallowing it as "infeasible".
        from repro.exceptions import ReproError

        with pytest.raises(ReproError):
            compile_whole_program(
                build_pipeline_ir(64, 4), memory_budget_bytes=16, optimizer="greedy"
            )

    def test_decision_describe_and_whole_program_describe(self):
        compiled = compile_whole_program(
            build_pipeline_ir(256, 4), memory_budget_bytes=48 * 1024, optimizer="greedy"
        )
        text = compiled.describe()
        assert "plan optimizer [greedy]" in text
        assert "chosen budgets" in text
        choice = compiled.planner.choice
        assert sum(choice.statement_budgets) == 48 * 1024


# ---------------------------------------------------------------------------
# executed numerics of a searched three-statement program
# ---------------------------------------------------------------------------
def test_three_statement_chain_executes_under_every_optimizer(tmp_path):
    for optimizer in ("none", "greedy"):
        ir = frontend_to_ir(parse_program(THREE_STATEMENT_SOURCE))
        compiled = compile_program(
            ir, memory_budget_bytes=9 * 1024, optimizer=optimizer
        )
        outputs = assert_matches_oracle(compiled, tmp_path / optimizer)
        assert set(outputs) == {"t", "u", "c"}
        assert np.isfinite(compiled.cost.total_time)
