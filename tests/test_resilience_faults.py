"""Fault-injection stress matrix (the ``make test-faults`` CI job).

A seed x rate x workload sweep: every combination executes under injected
faults and must (a) still verify against the dense reference and (b) report
charged statistics bit-identical to the fault-free run of the same point.
Heavier than the unit suite by design — this is the soak coverage that runs
as its own CI job, not inside the tier-1 gate.
"""

import pytest

from repro import Session, WorkloadPoint
from repro.config import RunConfig
from repro.resilience import FaultPolicy

PROGRAM_SOURCE = """
program chain
  parameter (n = 16, nprocs = 2)
  real a(n, n), t(n, n), d(n, n), c(n, n)
!hpf$ processors Pr(nprocs)
!hpf$ template tmpl(n)
!hpf$ distribute tmpl(block) onto Pr
!hpf$ align a(*, :) with tmpl
!hpf$ align t(*, :) with tmpl
!hpf$ align d(*, :) with tmpl
!hpf$ align c(*, :) with tmpl
  t(:, :) = add(a(:, :), d(:, :))
  c(:, :) = multiply(t(:, :), a(:, :))
end program
"""

POINTS = {
    "gaxpy": WorkloadPoint("gaxpy", n=32, nprocs=4, version="row", slab_ratio=0.25),
    "elementwise": WorkloadPoint("elementwise", n=32, nprocs=4, slab_ratio=0.25),
    "transpose": WorkloadPoint("transpose", n=32, nprocs=4, slab_ratio=0.25),
    "program": None,  # compiled from PROGRAM_SOURCE below
}

RATE_MIXES = {
    "transient": dict(read_error_rate=0.3, write_error_rate=0.2, disk_full_rate=0.1),
    "corrupting": dict(torn_write_rate=0.15, bitflip_rate=0.15),
    "everything": dict(
        read_error_rate=0.2,
        write_error_rate=0.1,
        disk_full_rate=0.05,
        torn_write_rate=0.1,
        bitflip_rate=0.05,
    ),
}


def _charged(record):
    return (
        record.simulated_seconds,
        record.io_time,
        record.compute_time,
        record.comm_time,
        record.io_requests_per_proc,
        record.io_read_bytes_per_proc,
        record.io_write_bytes_per_proc,
        record.statements,
    )


def _execute(tmp_path, workload_key, policy, tag):
    config = RunConfig(
        scratch_dir=tmp_path / tag, fault_policy=policy, io_retry_backoff_s=0.0
    )
    session = Session(config=config, reap_max_age_s=None)
    point = POINTS[workload_key]
    if point is None:
        point = session.compile(source=PROGRAM_SOURCE, slab_ratio=0.25)
    return session.execute(point)


@pytest.mark.parametrize("seed", [1, 17, 4242])
@pytest.mark.parametrize("mix", sorted(RATE_MIXES))
@pytest.mark.parametrize("workload_key", sorted(POINTS))
def test_fault_stress(tmp_path, workload_key, mix, seed):
    policy = FaultPolicy(seed=seed, **RATE_MIXES[mix])
    clean = _execute(tmp_path, workload_key, None, "clean")
    faulty = _execute(tmp_path, workload_key, policy, f"faulty_{mix}_{seed}")
    assert clean.verified is True
    assert faulty.verified is True, (
        f"{workload_key} under {mix} faults (seed {seed}) failed verification"
    )
    assert _charged(faulty) == _charged(clean), (
        f"{workload_key} under {mix} faults (seed {seed}) drifted in charged stats"
    )
