"""Unit and property tests for the one-dimensional distribution algebra."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import DistributionError
from repro.hpf.distribution import (
    BlockCyclicDistribution,
    BlockDistribution,
    CyclicDistribution,
    ReplicatedDistribution,
    make_distribution,
)


# ---------------------------------------------------------------------------
# BLOCK
# ---------------------------------------------------------------------------
class TestBlockDistribution:
    def test_paper_example_extents(self):
        # 1024 columns over 16 processors -> 64 columns each (paper, Table 1 setup)
        dist = BlockDistribution(1024, 16)
        assert all(dist.local_size(p) == 64 for p in range(16))

    def test_owner_is_contiguous(self):
        dist = BlockDistribution(64, 4)
        owners = dist.owners()
        assert list(owners[:16]) == [0] * 16
        assert list(owners[16:32]) == [1] * 16
        assert list(owners[-16:]) == [3] * 16

    def test_uneven_extent_last_processor_short(self):
        dist = BlockDistribution(10, 4)  # ceil(10/4) = 3 -> sizes 3,3,3,1
        assert [dist.local_size(p) for p in range(4)] == [3, 3, 3, 1]

    def test_some_processors_may_own_nothing(self):
        dist = BlockDistribution(4, 8)  # block = 1 -> procs 4..7 own nothing
        assert [dist.local_size(p) for p in range(8)] == [1, 1, 1, 1, 0, 0, 0, 0]

    def test_local_bounds(self):
        dist = BlockDistribution(100, 3)  # block = 34
        assert dist.local_bounds(0) == (0, 34)
        assert dist.local_bounds(1) == (34, 68)
        assert dist.local_bounds(2) == (68, 100)

    def test_out_of_range_index_raises(self):
        dist = BlockDistribution(8, 2)
        with pytest.raises(DistributionError):
            dist.owner(8)
        with pytest.raises(DistributionError):
            dist.owner(-1)

    def test_out_of_range_processor_raises(self):
        dist = BlockDistribution(8, 2)
        with pytest.raises(DistributionError):
            dist.local_size(2)

    def test_out_of_range_local_index_raises(self):
        dist = BlockDistribution(10, 4)
        with pytest.raises(DistributionError):
            dist.local_to_global(3, 2)  # proc 3 owns only 1 element

    def test_zero_extent(self):
        dist = BlockDistribution(0, 4)
        assert all(dist.local_size(p) == 0 for p in range(4))

    def test_invalid_construction(self):
        with pytest.raises(DistributionError):
            BlockDistribution(10, 0)
        with pytest.raises(DistributionError):
            BlockDistribution(-1, 2)


# ---------------------------------------------------------------------------
# CYCLIC and CYCLIC(k)
# ---------------------------------------------------------------------------
class TestCyclicDistribution:
    def test_round_robin_owner(self):
        dist = CyclicDistribution(10, 3)
        assert list(dist.owners()) == [0, 1, 2, 0, 1, 2, 0, 1, 2, 0]

    def test_local_sizes_sum_to_extent(self):
        dist = CyclicDistribution(10, 3)
        assert [dist.local_size(p) for p in range(3)] == [4, 3, 3]

    def test_local_indices_strided(self):
        dist = CyclicDistribution(12, 4)
        np.testing.assert_array_equal(dist.local_indices(1), [1, 5, 9])


class TestBlockCyclicDistribution:
    def test_block_two_owners(self):
        dist = BlockCyclicDistribution(12, 3, block=2)
        assert list(dist.owners()) == [0, 0, 1, 1, 2, 2, 0, 0, 1, 1, 2, 2]

    def test_partial_last_block(self):
        dist = BlockCyclicDistribution(7, 2, block=2)  # blocks: [0,1],[2,3],[4,5],[6]
        assert [dist.local_size(p) for p in range(2)] == [4, 3]

    def test_invalid_block_size(self):
        with pytest.raises(DistributionError):
            BlockCyclicDistribution(8, 2, block=0)

    def test_reduces_to_cyclic_with_block_one(self):
        bc = BlockCyclicDistribution(17, 4, block=1)
        cy = CyclicDistribution(17, 4)
        assert list(bc.owners()) == list(cy.owners())


# ---------------------------------------------------------------------------
# Replicated
# ---------------------------------------------------------------------------
class TestReplicatedDistribution:
    def test_identity_mapping(self):
        dist = ReplicatedDistribution(9, 1)
        assert not dist.is_distributed()
        assert dist.local_size(0) == 9
        assert dist.global_to_local(5) == 5
        assert dist.local_to_global(0, 5) == 5


# ---------------------------------------------------------------------------
# factory
# ---------------------------------------------------------------------------
class TestFactory:
    def test_block(self):
        assert isinstance(make_distribution("block", 8, 2), BlockDistribution)

    def test_cyclic(self):
        assert isinstance(make_distribution("cyclic", 8, 2), CyclicDistribution)

    def test_block_cyclic(self):
        dist = make_distribution("cyclic", 8, 2, block=3)
        assert isinstance(dist, BlockCyclicDistribution)

    def test_collapsed(self):
        assert isinstance(make_distribution("*", 8, 2), ReplicatedDistribution)

    def test_unknown_kind(self):
        with pytest.raises(DistributionError):
            make_distribution("diagonal", 8, 2)


# ---------------------------------------------------------------------------
# property-based invariants shared by all distributions
# ---------------------------------------------------------------------------
_dist_strategy = st.sampled_from(["block", "cyclic", "cyclic2", "cyclic3"])


def _build(kind: str, extent: int, nprocs: int):
    if kind == "block":
        return BlockDistribution(extent, nprocs)
    if kind == "cyclic":
        return CyclicDistribution(extent, nprocs)
    if kind == "cyclic2":
        return BlockCyclicDistribution(extent, nprocs, block=2)
    return BlockCyclicDistribution(extent, nprocs, block=3)


@settings(max_examples=200, deadline=None)
@given(kind=_dist_strategy, extent=st.integers(1, 200), nprocs=st.integers(1, 17))
def test_round_trip_global_local(kind, extent, nprocs):
    """global -> (owner, local) -> global must be the identity."""
    dist = _build(kind, extent, nprocs)
    for g in range(extent):
        owner = dist.owner(g)
        local = dist.global_to_local(g)
        assert dist.local_to_global(owner, local) == g


@settings(max_examples=200, deadline=None)
@given(kind=_dist_strategy, extent=st.integers(0, 200), nprocs=st.integers(1, 17))
def test_local_sizes_partition_extent(kind, extent, nprocs):
    """Every global index is owned by exactly one processor."""
    if extent == 0:
        dist = _build(kind, 1, nprocs)  # constructors reject extent 0 only for cyclic? keep simple
        dist = _build(kind, extent, nprocs) if kind == "block" else dist
        return
    dist = _build(kind, extent, nprocs)
    assert sum(dist.local_size(p) for p in range(nprocs)) == extent
    seen = set()
    for p in range(nprocs):
        for g in dist.local_indices(p):
            assert g not in seen
            seen.add(int(g))
    assert seen == set(range(extent))


@settings(max_examples=200, deadline=None)
@given(kind=_dist_strategy, extent=st.integers(1, 200), nprocs=st.integers(1, 17))
def test_owner_matches_local_indices(kind, extent, nprocs):
    """owner(g) == p exactly when g is among local_indices(p)."""
    dist = _build(kind, extent, nprocs)
    for p in range(nprocs):
        for g in dist.local_indices(p):
            assert dist.owner(int(g)) == p


@settings(max_examples=100, deadline=None)
@given(kind=_dist_strategy, extent=st.integers(1, 120), nprocs=st.integers(1, 12))
def test_block_locality_of_block_distribution(kind, extent, nprocs):
    """BLOCK keeps each processor's indices contiguous."""
    if kind != "block":
        return
    dist = _build(kind, extent, nprocs)
    for p in range(nprocs):
        indices = dist.local_indices(p)
        if len(indices) > 1:
            assert np.all(np.diff(indices) == 1)
