"""Tests for the virtual machine, collectives, redistribution and prefetching."""

import numpy as np
import pytest

from repro.config import ExecutionMode, RunConfig
from repro.exceptions import CollectiveError, RuntimeExecutionError
from repro.hpf import Alignment, ArrayDescriptor, ProcessorGrid, Template
from repro.machine import Machine
from repro.runtime import VirtualMachine, global_sum, broadcast, point_to_point
from repro.runtime.prefetch import NoPrefetch, OverlapPrefetch
from repro.runtime.redistribution import (
    arrival_layout_rows,
    redistribute_to_descriptor,
    redistribution_cost,
)


def make_descriptor(n=16, p=4, column=True, name="x", dtype=np.float32):
    grid = ProcessorGrid("Pr", p)
    template = Template("d", n, grid, ["block"])
    align = Alignment(template, ["*", ":"] if column else [":", "*"])
    return ArrayDescriptor(name, (n, n), align, dtype=dtype)


# ---------------------------------------------------------------------------
# collectives
# ---------------------------------------------------------------------------
class TestCollectives:
    def test_global_sum_values_and_cost(self):
        machine = Machine(4)
        contributions = {r: np.full(8, float(r)) for r in range(4)}
        total = global_sum(machine, contributions, shape=(8,), itemsize=8)
        np.testing.assert_allclose(total, np.full(8, 6.0))
        assert machine.network.collectives == 1
        assert all(machine.metrics[r].collectives == 1 for r in range(4))

    def test_global_sum_estimate_mode(self):
        machine = Machine(4)
        assert global_sum(machine, None, shape=(8,), itemsize=8) is None
        assert machine.network.collectives == 1

    def test_global_sum_missing_contribution(self):
        machine = Machine(3)
        with pytest.raises(CollectiveError):
            global_sum(machine, {0: np.zeros(4), 1: np.zeros(4)}, shape=(4,), itemsize=8)

    def test_global_sum_shape_mismatch(self):
        machine = Machine(2)
        with pytest.raises(CollectiveError):
            global_sum(machine, {0: np.zeros(4), 1: np.zeros(5)}, shape=(4,), itemsize=8)

    def test_broadcast(self):
        machine = Machine(4)
        data = np.arange(6.0)
        out = broadcast(machine, data, shape=(6,), itemsize=8)
        np.testing.assert_array_equal(out, data)
        with pytest.raises(CollectiveError):
            broadcast(machine, np.zeros(3), shape=(6,), itemsize=8)

    def test_point_to_point(self):
        machine = Machine(3)
        payload = np.ones(4)
        out = point_to_point(machine, 0, 2, payload, nbytes=32)
        np.testing.assert_array_equal(out, payload)
        assert machine.metrics[0].messages == 1
        assert machine.metrics[2].messages == 1


# ---------------------------------------------------------------------------
# VirtualMachine
# ---------------------------------------------------------------------------
class TestVirtualMachine:
    def test_create_scatter_gather(self, tmp_path):
        desc = make_descriptor()
        dense = np.arange(256, dtype=np.float32).reshape(16, 16)
        with VirtualMachine(4, "delta", RunConfig(scratch_dir=tmp_path)) as vm:
            array = vm.create_array(desc, initial=dense)
            np.testing.assert_array_equal(vm.to_dense(array), dense)
            assert vm.get_array("x") is array

    def test_duplicate_array_name_rejected(self, tmp_path):
        desc = make_descriptor()
        with VirtualMachine(4, "delta", RunConfig(scratch_dir=tmp_path)) as vm:
            vm.create_array(desc, initial=np.zeros((16, 16), dtype=np.float32))
            with pytest.raises(RuntimeExecutionError):
                vm.create_array(desc, initial=np.zeros((16, 16), dtype=np.float32))

    def test_unknown_array(self, tmp_path):
        with VirtualMachine(2, "delta", RunConfig(scratch_dir=tmp_path)) as vm:
            with pytest.raises(RuntimeExecutionError):
                vm.get_array("nope")

    def test_non_2d_rejected(self, tmp_path):
        grid = ProcessorGrid("Pr", 2)
        template = Template("d", 8, grid, ["block"])
        desc = ArrayDescriptor("v", (8,), Alignment(template, [":"]))
        with VirtualMachine(2, "delta", RunConfig(scratch_dir=tmp_path)) as vm:
            with pytest.raises(RuntimeExecutionError):
                vm.create_array(desc)

    def test_estimate_mode_creates_no_files(self, tmp_path):
        desc = make_descriptor()
        config = RunConfig(scratch_dir=tmp_path, mode=ExecutionMode.ESTIMATE)
        vm = VirtualMachine(4, "delta", config)
        array = vm.create_array(desc)
        assert not any(tmp_path.iterdir())
        with pytest.raises(RuntimeExecutionError):
            vm.to_dense(array)
        vm.cleanup()

    def test_cleanup_removes_files(self, tmp_path):
        desc = make_descriptor()
        config = RunConfig(scratch_dir=tmp_path)
        vm = VirtualMachine(4, "delta", config)
        vm.create_array(desc, initial=np.zeros((16, 16), dtype=np.float32))
        files = list(tmp_path.rglob("*.dat"))
        assert len(files) == 4
        vm.cleanup()
        assert not list(tmp_path.rglob("*.dat"))

    def test_keep_files(self, tmp_path):
        desc = make_descriptor()
        config = RunConfig(scratch_dir=tmp_path, keep_files=True)
        vm = VirtualMachine(4, "delta", config)
        vm.create_array(desc, initial=np.zeros((16, 16), dtype=np.float32))
        vm.cleanup()
        assert len(list(tmp_path.rglob("*.dat"))) == 4

    def test_initial_write_charging(self, tmp_path):
        desc = make_descriptor()
        with VirtualMachine(4, "delta", RunConfig(scratch_dir=tmp_path)) as vm:
            vm.create_array(desc, initial=np.zeros((16, 16), dtype=np.float32),
                            charge_initial_write=True)
            assert vm.machine.metrics[0].io_write_requests == 1
        with VirtualMachine(4, "delta", RunConfig(scratch_dir=tmp_path)) as vm:
            vm.create_array(desc, initial=np.zeros((16, 16), dtype=np.float32))
            assert vm.machine.metrics[0].io_write_requests == 0

    def test_reset_costs_keeps_data(self, tmp_path):
        desc = make_descriptor()
        dense = np.ones((16, 16), dtype=np.float32)
        with VirtualMachine(4, "delta", RunConfig(scratch_dir=tmp_path)) as vm:
            array = vm.create_array(desc, initial=dense)
            vm.machine.charge_read(0, 100, 1)
            vm.reset_costs()
            assert vm.elapsed() == 0.0
            np.testing.assert_array_equal(vm.to_dense(array), dense)


# ---------------------------------------------------------------------------
# redistribution
# ---------------------------------------------------------------------------
class TestRedistribution:
    def test_arrival_layout(self):
        dist = arrival_layout_rows(16, 4)
        assert dist.local_size(0) == 4

    def test_cost_fields(self):
        desc = make_descriptor()
        cost = redistribution_cost(desc)
        assert cost["read_bytes_per_proc"] == desc.nbytes // 4
        assert cost["write_bytes_per_proc"] == desc.local_nbytes(0)

    def test_execute_mode_produces_correct_distribution(self, tmp_path):
        desc = make_descriptor()
        dense = np.arange(256, dtype=np.float32).reshape(16, 16)
        with VirtualMachine(4, "delta", RunConfig(scratch_dir=tmp_path)) as vm:
            array = redistribute_to_descriptor(vm, desc, dense)
            np.testing.assert_array_equal(vm.to_dense(array), dense)
            # reads + all-to-all + writes were charged
            assert vm.machine.metrics[0].io_read_requests >= 1
            assert vm.machine.metrics[0].io_write_requests >= 1
            assert vm.machine.network.collectives >= 1

    def test_execute_mode_requires_data(self, tmp_path):
        desc = make_descriptor()
        with VirtualMachine(4, "delta", RunConfig(scratch_dir=tmp_path)) as vm:
            with pytest.raises(RuntimeExecutionError):
                redistribute_to_descriptor(vm, desc, None)

    def test_estimate_mode_charges_only(self, tmp_path):
        desc = make_descriptor()
        config = RunConfig(scratch_dir=tmp_path, mode=ExecutionMode.ESTIMATE)
        vm = VirtualMachine(4, "delta", config)
        redistribute_to_descriptor(vm, desc)
        assert vm.elapsed() > 0
        vm.cleanup()


# ---------------------------------------------------------------------------
# prefetching
# ---------------------------------------------------------------------------
class TestPrefetch:
    def test_no_prefetch_charges_full_read(self):
        machine = Machine(2)
        policy = NoPrefetch()
        policy.begin_compute(0, 100.0)
        visible = policy.charge_read(machine, 0, 1_000_000, 1)
        expected = machine.params.disk.read_time(1_000_000, 1, contention=2)
        assert visible == pytest.approx(expected)

    def test_overlap_hides_reads_behind_compute(self):
        machine = Machine(2)
        policy = OverlapPrefetch(efficiency=1.0)
        policy.begin_compute(0, 1000.0)
        visible = policy.charge_read(machine, 0, 1_000_000, 1)
        assert visible == pytest.approx(0.0)
        # counters still see the full traffic
        assert machine.metrics[0].bytes_read == 1_000_000

    def test_partial_overlap(self):
        machine = Machine(1)
        policy = OverlapPrefetch(efficiency=0.5)
        full = machine.params.disk.read_time(10_000_000, 1, contention=1)
        policy.begin_compute(0, full)  # only half the window may be used
        visible = policy.charge_read(machine, 0, 10_000_000, 1)
        assert visible == pytest.approx(full * 0.5, rel=1e-6)

    def test_invalid_efficiency(self):
        with pytest.raises(RuntimeExecutionError):
            OverlapPrefetch(efficiency=1.5)

    def test_negative_window_rejected(self):
        with pytest.raises(RuntimeExecutionError):
            NoPrefetch().begin_compute(0, -1.0)
