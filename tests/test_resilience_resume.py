"""Checkpoint/resume: SIGKILL a child mid-program, resume from its journal.

The acceptance scenario of the resilience PR: a 3-statement program killed
after statement 1 must resume executing only statements 2-3.  The child
process runs with ``FaultPolicy(crash_after_statement=1)`` — SIGKILL fires
right after the journal commits the first statement — and the parent
resumes from the orphaned ``vm_*`` scratch directory via
``Session.run(..., resume=...)``.
"""

import json
import os
import signal
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro import Session
from repro.config import ExecutionMode, RunConfig
from repro.exceptions import WorkloadError

pytestmark = pytest.mark.skipif(
    sys.platform == "win32", reason="SIGKILL semantics are POSIX-only"
)

PROGRAM_SOURCE = """
program chain
  parameter (n = 16, nprocs = 2)
  real a(n, n), t(n, n), d(n, n), u(n, n), e(n, n), c(n, n)
!hpf$ processors Pr(nprocs)
!hpf$ template tmpl(n)
!hpf$ distribute tmpl(block) onto Pr
!hpf$ align a(*, :) with tmpl
!hpf$ align t(*, :) with tmpl
!hpf$ align d(*, :) with tmpl
!hpf$ align u(*, :) with tmpl
!hpf$ align e(*, :) with tmpl
!hpf$ align c(*, :) with tmpl
  t(:, :) = add(a(:, :), d(:, :))
  u(:, :) = multiply(t(:, :), e(:, :))
  c(:, :) = add(u(:, :), a(:, :))
end program
"""

CHILD_SCRIPT = textwrap.dedent(
    """
    import sys
    from repro import Session
    from repro.config import RunConfig
    from repro.resilience import FaultPolicy

    scratch, crash_after = sys.argv[1], int(sys.argv[2])
    policy = FaultPolicy(crash_after_statement=crash_after)
    session = Session(
        config=RunConfig(scratch_dir=scratch, fault_policy=policy, keep_files=True),
        reap_max_age_s=None,
    )
    session.execute(session.compile(source=PROGRAM, slab_ratio=0.25))
    print("survived", flush=True)  # only reached when the hook never fires
    """
).replace("PROGRAM", repr(PROGRAM_SOURCE))


def _run_child(scratch, crash_after: int) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    repo_src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = repo_src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-c", CHILD_SCRIPT, str(scratch), str(crash_after)],
        capture_output=True,
        text=True,
        env=env,
        timeout=120,
    )


def _orphaned_vm_dir(scratch):
    vm_dirs = sorted(scratch.glob("vm_*"))
    assert len(vm_dirs) == 1, f"expected one orphaned vm dir, got {vm_dirs}"
    return vm_dirs[0]


class TestKillAndResume:
    def test_killed_after_statement_1_resumes_statements_2_and_3(self, tmp_path):
        proc = _run_child(tmp_path, crash_after=1)
        assert proc.returncode == -signal.SIGKILL, proc.stderr
        assert "survived" not in proc.stdout

        vm_dir = _orphaned_vm_dir(tmp_path)
        journal = json.loads((vm_dir / "journal.json").read_text())
        assert journal["complete"] is False
        assert [e["index"] for e in journal["statements"]] == [0]

        session = Session(
            config=RunConfig(scratch_dir=tmp_path), reap_max_age_s=None
        )
        record = session.run(
            session.compile(source=PROGRAM_SOURCE, slab_ratio=0.25),
            mode="execute",
            resume=vm_dir,
        )
        assert record.verified is True
        skipped = [s.get("skipped", 0.0) for s in record.statements]
        assert skipped == [1.0, 0.0, 0.0]
        assert record.resilience["statements_skipped"] == 1.0
        # The skipped statement charges nothing on resume.
        assert record.statements[0]["seconds"] == 0.0

    def test_killed_after_statement_2_skips_two(self, tmp_path):
        proc = _run_child(tmp_path, crash_after=2)
        assert proc.returncode == -signal.SIGKILL, proc.stderr
        vm_dir = _orphaned_vm_dir(tmp_path)
        session = Session(
            config=RunConfig(scratch_dir=tmp_path), reap_max_age_s=None
        )
        record = session.run(
            session.compile(source=PROGRAM_SOURCE, slab_ratio=0.25),
            mode="execute",
            resume=vm_dir,
        )
        assert record.verified is True
        assert [s.get("skipped", 0.0) for s in record.statements] == [1.0, 1.0, 0.0]

    def test_corrupted_checkpoint_restarts_from_the_damage(self, tmp_path):
        proc = _run_child(tmp_path, crash_after=2)
        assert proc.returncode == -signal.SIGKILL, proc.stderr
        vm_dir = _orphaned_vm_dir(tmp_path)

        # Damage a LAF of the first checkpointed statement's result array.
        journal = json.loads((vm_dir / "journal.json").read_text())
        target = journal["statements"][0]["arrays"]["t"]["files"][0]["path"]
        raw = np.memmap(target, dtype=np.uint8, mode="r+")
        raw[0] ^= 0xFF
        del raw

        session = Session(
            config=RunConfig(scratch_dir=tmp_path), reap_max_age_s=None
        )
        record = session.run(
            session.compile(source=PROGRAM_SOURCE, slab_ratio=0.25),
            mode="execute",
            resume=vm_dir,
        )
        # Statement 1's checkpoint failed validation, so everything re-ran.
        assert record.verified is True
        assert record.resilience["statements_skipped"] == 0.0

    def test_different_program_invalidates_checkpoint(self, tmp_path):
        proc = _run_child(tmp_path, crash_after=1)
        assert proc.returncode == -signal.SIGKILL, proc.stderr
        vm_dir = _orphaned_vm_dir(tmp_path)
        other = PROGRAM_SOURCE.replace(
            "c(:, :) = add(u(:, :), a(:, :))",
            "c(:, :) = multiply(u(:, :), a(:, :))",
        )
        session = Session(
            config=RunConfig(scratch_dir=tmp_path), reap_max_age_s=None
        )
        record = session.run(
            session.compile(source=other, slab_ratio=0.25),
            mode="execute",
            resume=vm_dir,
        )
        # Fingerprint mismatch: the stale journal is discarded entirely.
        assert record.verified is True
        assert record.resilience["statements_skipped"] == 0.0

    def test_resume_of_complete_run_skips_everything(self, tmp_path):
        session = Session(
            config=RunConfig(scratch_dir=tmp_path, keep_files=True),
            reap_max_age_s=None,
        )
        compiled = session.compile(source=PROGRAM_SOURCE, slab_ratio=0.25)
        first = session.execute(compiled)
        assert first.verified is True
        vm_dir = _orphaned_vm_dir(tmp_path)
        record = session.run(compiled, mode="execute", resume=vm_dir)
        assert record.verified is True
        assert [s.get("skipped", 0.0) for s in record.statements] == [1.0, 1.0, 1.0]
        assert record.simulated_seconds == 0.0

    def test_resume_requires_execute_mode(self, tmp_path):
        session = Session(
            config=RunConfig(scratch_dir=tmp_path), reap_max_age_s=None
        )
        compiled = session.compile(source=PROGRAM_SOURCE, slab_ratio=0.25)
        with pytest.raises(WorkloadError, match="resume"):
            session.run(compiled, mode=ExecutionMode.ESTIMATE, resume=tmp_path)
