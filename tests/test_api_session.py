"""Tests for the unified Workload/Session API (:mod:`repro.api`)."""

import dataclasses

import pytest

import repro
from repro.api import (
    CompiledWorkload,
    Session,
    Workload,
    WorkloadPoint,
    available_workloads,
    get_workload,
    register_workload,
    unregister_workload,
)
from repro.config import ExecutionMode, RunConfig
from repro.exceptions import WorkloadError

GAXPY_SOURCE = """
program gaxpy
  parameter (n = 64, nprocs = 4)
  real a(n, n), b(n, n), c(n, n)
!hpf$ processors Pr(nprocs)
!hpf$ template d(n)
!hpf$ distribute d(block) onto Pr
!hpf$ align a(*, :) with d
!hpf$ align c(*, :) with d
!hpf$ align b(:, *) with d
  do j = 1, n
    forall (k = 1 : n)
      c(:, j) = sum(a(:, k) * b(k, j))
    end forall
  end do
end program
"""


def make_session(tmp_path, **kwargs):
    return Session(config=RunConfig(scratch_dir=tmp_path), **kwargs)


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------
class TestRegistry:
    def test_builtins_registered(self):
        assert {"gaxpy", "transpose", "elementwise", "hpf"} <= set(available_workloads())

    def test_round_trip(self):
        for name in available_workloads():
            workload = get_workload(name)
            assert isinstance(workload, Workload)
            assert workload.name == name

    def test_unknown_workload_rejected(self):
        with pytest.raises(WorkloadError, match="unknown workload"):
            get_workload("fft")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(WorkloadError, match="already registered"):

            @register_workload("gaxpy")
            class Duplicate(Workload):  # pragma: no cover - never instantiated twice
                def compile(self, point, params):
                    raise NotImplementedError

                def estimate(self, compiled, vm):
                    raise NotImplementedError

                def execute(self, compiled, vm, verify):
                    raise NotImplementedError

    def test_register_and_unregister_custom_workload(self):
        class Noop(Workload):
            versions = ("",)

            def compile(self, point, params):
                return CompiledWorkload(workload=self, point=point, params=params)

            def estimate(self, compiled, vm):
                raise NotImplementedError

            def execute(self, compiled, vm, verify):
                raise NotImplementedError

        register_workload("noop-test")(Noop)
        try:
            assert "noop-test" in available_workloads()
            assert get_workload("noop-test").name == "noop-test"
        finally:
            unregister_workload("noop-test")
        assert "noop-test" not in available_workloads()

    def test_non_workload_class_rejected(self):
        with pytest.raises(WorkloadError, match="Workload subclass"):
            register_workload("bogus")(dict)


# ---------------------------------------------------------------------------
# points
# ---------------------------------------------------------------------------
class TestWorkloadPoint:
    def test_points_are_hashable_and_mapping_order_insensitive(self):
        a = WorkloadPoint("gaxpy", n=64, nprocs=4, version="row",
                          slab_elements={"a": 16, "b": 32})
        b = WorkloadPoint("gaxpy", n=64, nprocs=4, version="row",
                          slab_elements={"b": 32, "a": 16})
        assert a == b and hash(a) == hash(b)
        assert a.slab_elements_dict() == {"a": 16, "b": 32}

    def test_validation(self):
        with pytest.raises(WorkloadError):
            WorkloadPoint("")
        with pytest.raises(WorkloadError):
            WorkloadPoint("gaxpy", n=64, nprocs=0)

    def test_unhashable_option_values_rejected_with_clear_error(self):
        with pytest.raises(WorkloadError, match="unhashable"):
            WorkloadPoint("gaxpy", n=64, nprocs=4, options={"weights": [1, 2, 3]})
        # hashable equivalents are fine
        point = WorkloadPoint("gaxpy", n=64, nprocs=4, version="row", slab_ratio=0.5,
                              options={"weights": (1, 2, 3)})
        assert hash(point)

    def test_workload_specific_validation(self):
        session = Session()
        with pytest.raises(WorkloadError, match="slab_ratio or slab_elements"):
            session.compile(WorkloadPoint("gaxpy", n=64, nprocs=4, version="row"))
        with pytest.raises(WorkloadError, match="no version"):
            session.compile(WorkloadPoint("gaxpy", n=64, nprocs=4, version="diagonal",
                                          slab_ratio=0.5))
        with pytest.raises(WorkloadError, match="source"):
            session.compile(WorkloadPoint("hpf", slab_ratio=0.5))
        with pytest.raises(WorkloadError, match="elementwise op"):
            session.compile(WorkloadPoint("elementwise", n=32, nprocs=4,
                                          options={"op": "divide"}))

    def test_label_mentions_workload_and_version(self):
        point = WorkloadPoint("gaxpy", n=64, nprocs=4, version="row", slab_ratio=0.5)
        assert "gaxpy" in point.label() and "row" in point.label()


# ---------------------------------------------------------------------------
# session: compile cache
# ---------------------------------------------------------------------------
class TestCompileCache:
    def test_cache_hit_returns_same_object(self):
        session = Session()
        point = WorkloadPoint("gaxpy", n=64, nprocs=4, version="row", slab_ratio=0.5)
        one = session.compile(point)
        two = session.compile(WorkloadPoint("gaxpy", n=64, nprocs=4, version="row",
                                            slab_ratio=0.5))
        assert one is two
        info = session.cache_info()
        assert info["hits"] == 1 and info["misses"] == 1

    def test_cache_eviction_is_lru(self):
        session = Session(compile_cache_size=1)
        a = WorkloadPoint("gaxpy", n=32, nprocs=2, version="row", slab_ratio=0.5)
        b = WorkloadPoint("gaxpy", n=64, nprocs=2, version="row", slab_ratio=0.5)
        session.compile(a)
        session.compile(b)
        session.compile(a)
        assert session.cache_info()["size"] == 1
        assert session.cache_info()["hits"] == 0

    def test_compiled_program_is_frozen(self):
        compiled = Session().compile(
            WorkloadPoint("gaxpy", n=64, nprocs=4, version="row", slab_ratio=0.5)
        )
        with pytest.raises(dataclasses.FrozenInstanceError):
            compiled.program.nprocs = 99
        with pytest.raises(dataclasses.FrozenInstanceError):
            compiled.program.plan = None

    def test_cache_hits_are_not_mutated_by_executors(self, tmp_path):
        """Running a cached program twice must leave it unchanged."""
        session = make_session(tmp_path)
        point = WorkloadPoint("gaxpy", n=32, nprocs=2, version="row", slab_ratio=0.5)
        compiled = session.compile(point)
        before = (compiled.program.plan, compiled.program.node_program,
                  compiled.program.analysis)
        first = session.run(point, mode=ExecutionMode.EXECUTE)
        second = session.run(point, mode=ExecutionMode.EXECUTE)
        assert session.compile(point) is compiled
        assert (compiled.program.plan, compiled.program.node_program,
                compiled.program.analysis) == before
        assert first == second


# ---------------------------------------------------------------------------
# session: single runs per workload
# ---------------------------------------------------------------------------
class TestSessionRun:
    def test_gaxpy_matches_legacy_shim(self, tmp_path):
        from repro.analysis.sweep import SweepPoint, run_gaxpy_point

        point = WorkloadPoint("gaxpy", n=64, nprocs=4, version="row", slab_ratio=0.25)
        record = make_session(tmp_path).run(point, mode=ExecutionMode.EXECUTE)
        with pytest.warns(DeprecationWarning):
            legacy = run_gaxpy_point(
                SweepPoint(n=64, nprocs=4, version="row", slab_ratio=0.25),
                mode=ExecutionMode.EXECUTE,
                config=RunConfig(scratch_dir=tmp_path),
            )
        assert record.simulated_seconds == legacy["time"]
        assert record.io_requests_per_proc == legacy["io_requests_per_proc"]
        assert record.io_bytes_per_proc == legacy["io_bytes_per_proc"]
        assert record.verified is True and legacy["verified"] == 1.0

    @pytest.mark.parametrize("workload,kwargs", [
        ("transpose", {}),
        ("elementwise", {"version": "column"}),
        ("elementwise", {"version": "row", "options": {"op": "multiply"}}),
    ])
    def test_execute_verifies_against_dense_reference(self, tmp_path, workload, kwargs):
        point = WorkloadPoint(workload, n=32, nprocs=4, **kwargs)
        record = make_session(tmp_path).run(point, mode=ExecutionMode.EXECUTE)
        assert record.verified is True
        assert record.mode == "execute"
        assert record.simulated_seconds > 0
        assert record.io_requests_per_proc > 0

    @pytest.mark.parametrize("workload", ["gaxpy", "transpose", "elementwise"])
    def test_estimate_mode(self, tmp_path, workload):
        kwargs = {"version": "row", "slab_ratio": 0.5} if workload == "gaxpy" else {}
        point = WorkloadPoint(workload, n=32, nprocs=4, **kwargs)
        record = make_session(tmp_path).run(point, mode=ExecutionMode.ESTIMATE)
        assert record.mode == "estimate"
        assert record.verified is None
        assert record.simulated_seconds > 0

    def test_estimate_and_execute_agree_on_io_for_descriptor_kernels(self, tmp_path):
        """The ESTIMATE path charges the same I/O the EXECUTE path performs."""
        session = make_session(tmp_path)
        for workload in ("transpose", "elementwise"):
            point = WorkloadPoint(workload, n=32, nprocs=4)
            estimate = session.run(point, mode=ExecutionMode.ESTIMATE)
            execute = session.run(point, mode=ExecutionMode.EXECUTE)
            assert estimate.io_requests_per_proc == execute.io_requests_per_proc
            assert estimate.io_bytes_per_proc == execute.io_bytes_per_proc

    def test_verify_false_skips_verification(self, tmp_path):
        point = WorkloadPoint("gaxpy", n=32, nprocs=2, version="row", slab_ratio=0.5)
        record = make_session(tmp_path).run(point, mode=ExecutionMode.EXECUTE, verify=False)
        assert record.verified is None

    def test_default_version_lets_the_compiler_choose(self, tmp_path):
        """version "" compiles without a forced strategy and reports the choice."""
        session = make_session(tmp_path)
        point = WorkloadPoint("gaxpy", n=48, nprocs=4, slab_ratio=0.5)
        compiled = session.compile(point)
        chosen = compiled.program.plan.strategy.value
        assert compiled.program.decision is not None  # the cost model really chose
        for mode in (ExecutionMode.ESTIMATE, ExecutionMode.EXECUTE):
            record = session.run(point, mode=mode)
            assert record.version == chosen
        assert session.run(point, mode=ExecutionMode.EXECUTE).verified is True

    def test_transpose_and_elementwise_honor_slab_ratio(self, tmp_path):
        """A slab_ratio on descriptor-backed points must change the I/O pattern."""
        session = make_session(tmp_path)
        for workload in ("transpose", "elementwise"):
            coarse = session.run(WorkloadPoint(workload, n=32, nprocs=4, slab_ratio=1.0),
                                 mode=ExecutionMode.ESTIMATE)
            fine = session.run(WorkloadPoint(workload, n=32, nprocs=4, slab_ratio=0.125),
                               mode=ExecutionMode.ESTIMATE)
            assert fine.io_requests_per_proc > coarse.io_requests_per_proc, workload

    def test_slab_ratio_one_means_one_slab_even_for_uneven_n(self, tmp_path):
        """Ratio sizing must use the real ceil-based local shapes (n=10, p=4)."""
        session = make_session(tmp_path)
        record = session.run(WorkloadPoint("transpose", n=10, nprocs=4, slab_ratio=1.0),
                             mode=ExecutionMode.ESTIMATE)
        # one read per source column-slab + one write per target slab = 2
        assert record.io_requests_per_proc == 2
        record = session.run(WorkloadPoint("elementwise", n=10, nprocs=4, slab_ratio=1.0),
                             mode=ExecutionMode.ESTIMATE)
        # a, b read in one slab each + c written in one slab = 3
        assert record.io_requests_per_proc == 3

    def test_descriptor_kernels_reject_ambiguous_slab_specs(self):
        session = Session()
        with pytest.raises(WorkloadError, match="not a per-array"):
            session.compile(WorkloadPoint("transpose", n=32, nprocs=4,
                                          slab_elements={"t": 64}))
        with pytest.raises(WorkloadError, match="not both"):
            session.compile(WorkloadPoint("transpose", n=32, nprocs=4, slab_ratio=0.5,
                                          options={"cols_per_slab": 4}))
        with pytest.raises(WorkloadError, match="option"):
            session.compile(WorkloadPoint("elementwise", n=32, nprocs=4,
                                          slab_elements={"e": 64}))
        with pytest.raises(WorkloadError, match="not both"):
            session.compile(WorkloadPoint("elementwise", n=32, nprocs=4, slab_ratio=0.5,
                                          options={"slab_elements": 64}))

    def test_incore_version(self, tmp_path):
        point = WorkloadPoint("gaxpy", n=32, nprocs=2, version="incore")
        session = make_session(tmp_path)
        assert session.run(point, mode=ExecutionMode.ESTIMATE).simulated_seconds > 0
        assert session.run(point, mode=ExecutionMode.EXECUTE).verified is True


# ---------------------------------------------------------------------------
# session: HPF source frontend
# ---------------------------------------------------------------------------
class TestHpfWorkload:
    def test_compile_resolves_sizes_from_source(self):
        compiled = Session().compile(source=GAXPY_SOURCE, slab_ratio=0.25)
        assert compiled.point.workload == "hpf"
        assert compiled.n == 64 and compiled.nprocs == 4
        assert compiled.program is not None

    def test_run_both_modes(self, tmp_path):
        session = make_session(tmp_path)
        compiled = session.compile(source=GAXPY_SOURCE, slab_ratio=0.25)
        estimate = session.run(compiled, mode=ExecutionMode.ESTIMATE)
        assert estimate.simulated_seconds > 0 and estimate.verified is None
        execute = session.run(compiled, mode=ExecutionMode.EXECUTE)
        assert execute.verified is True

    def test_sweepable_via_point(self, tmp_path):
        point = WorkloadPoint("hpf", slab_ratio=0.5, options={"source": GAXPY_SOURCE})
        records = make_session(tmp_path).sweep([point], mode=ExecutionMode.ESTIMATE)
        assert records[0].n == 64 and records[0].nprocs == 4
        assert records[0].version in ("column", "row")

    def test_single_operand_program_runs_in_both_modes(self, tmp_path):
        """c = a @ a: ESTIMATE works and EXECUTE verifies against the dense square."""
        source = GAXPY_SOURCE.replace("real a(n, n), b(n, n), c(n, n)",
                                      "real a(n, n), c(n, n)")
        source = source.replace("!hpf$ align b(:, *) with d\n", "")
        source = source.replace("sum(a(:, k) * b(k, j))", "sum(a(:, k) * a(k, j))")
        session = make_session(tmp_path)
        compiled = session.compile(source=source, slab_ratio=0.5)
        assert compiled.program.analysis.streamed == compiled.program.analysis.coefficient
        estimate = session.run(compiled, mode=ExecutionMode.ESTIMATE)
        assert estimate.simulated_seconds > 0
        execute = session.run(compiled, mode=ExecutionMode.EXECUTE)
        assert execute.verified is True
        assert execute.simulated_seconds > 0
        assert execute.io_requests_per_proc > 0

    def test_requires_exactly_one_slab_spec(self):
        session = Session()
        with pytest.raises(WorkloadError, match="exactly one"):
            session.compile(WorkloadPoint("hpf", options={"source": GAXPY_SOURCE}))
        with pytest.raises(WorkloadError, match="exactly one"):
            session.compile(WorkloadPoint("hpf", slab_ratio=0.5,
                                          slab_elements={"a": 16, "b": 16},
                                          options={"source": GAXPY_SOURCE}))


# ---------------------------------------------------------------------------
# session: mixed sweeps (the acceptance criterion)
# ---------------------------------------------------------------------------
def _mixed_points():
    return [
        WorkloadPoint("gaxpy", n=32, nprocs=2, version="column", slab_ratio=0.5),
        WorkloadPoint("gaxpy", n=32, nprocs=2, version="row", slab_ratio=0.5),
        WorkloadPoint("gaxpy", n=32, nprocs=2, version="incore"),
        WorkloadPoint("transpose", n=32, nprocs=4),
        WorkloadPoint("elementwise", n=32, nprocs=4, version="row"),
        WorkloadPoint("elementwise", n=32, nprocs=2,
                      options={"op": "multiply", "slab_elements": 64}),
    ]


class TestMixedSweep:
    @pytest.mark.parametrize("mode", [ExecutionMode.ESTIMATE, ExecutionMode.EXECUTE])
    def test_parallel_records_identical_to_sequential(self, tmp_path, mode):
        session = make_session(tmp_path)
        sequential = session.sweep(_mixed_points(), mode=mode, workers=1)
        parallel = session.sweep(_mixed_points(), mode=mode, workers=4)
        assert len(sequential) == len(parallel) == len(_mixed_points())
        for seq, par in zip(sequential, parallel, strict=True):
            assert seq == par  # RunRecord is a dataclass: per-field equality
        workloads = [r.workload for r in sequential]
        assert workloads == [p.workload for p in _mixed_points()]
        if mode is ExecutionMode.EXECUTE:
            assert all(r.verified is True for r in sequential)
        else:
            assert all(r.verified is None for r in sequential)

    def test_sweep_forwards_verify_flag(self, tmp_path):
        """The legacy driver dropped verify; Session.sweep must not."""
        session = make_session(tmp_path)
        records = session.sweep(_mixed_points(), mode=ExecutionMode.EXECUTE,
                                workers=4, verify=False)
        assert all(r.verified is None for r in records)


# ---------------------------------------------------------------------------
# records
# ---------------------------------------------------------------------------
class TestRunRecord:
    def test_to_dict_keeps_types(self, tmp_path):
        point = WorkloadPoint("gaxpy", n=32, nprocs=2, version="row", slab_ratio=0.5)
        record = make_session(tmp_path).run(point, mode=ExecutionMode.EXECUTE)
        flat = record.to_dict()
        assert isinstance(flat["version"], str) and flat["version"] == "row"
        assert isinstance(flat["workload"], str)
        assert isinstance(flat["n"], int) and flat["n"] == 32
        assert isinstance(flat["time"], float)
        assert flat["verified"] is True
        assert flat["io_bytes_per_proc"] == (
            flat["io_read_bytes_per_proc"] + flat["io_write_bytes_per_proc"]
        )

    def test_describe_mentions_verification(self, tmp_path):
        point = WorkloadPoint("elementwise", n=32, nprocs=4)
        record = make_session(tmp_path).run(point, mode=ExecutionMode.EXECUTE)
        assert "verified: True" in record.describe()

    def test_records_are_frozen(self, tmp_path):
        record = make_session(tmp_path).run(
            WorkloadPoint("gaxpy", n=32, nprocs=2, version="incore"),
            mode=ExecutionMode.ESTIMATE,
        )
        with pytest.raises(dataclasses.FrozenInstanceError):
            record.simulated_seconds = 0.0


# ---------------------------------------------------------------------------
# session lifecycle: close() and the context-manager protocol
# ---------------------------------------------------------------------------
class TestSessionClose:
    def test_context_manager_closes(self, tmp_path):
        with make_session(tmp_path) as session:
            session.run(WorkloadPoint("gaxpy", n=32, nprocs=2, slab_ratio=0.5),
                        mode="estimate")
        assert session.closed is True

    def test_closed_session_rejects_work(self, tmp_path):
        session = make_session(tmp_path)
        session.close()
        point = WorkloadPoint("gaxpy", n=32, nprocs=2, slab_ratio=0.5)
        with pytest.raises(WorkloadError, match="closed"):
            session.compile(point)
        with pytest.raises(WorkloadError, match="closed"):
            session.run(point)
        with pytest.raises(WorkloadError, match="closed"):
            with session:
                pass

    def test_close_is_idempotent(self, tmp_path):
        session = make_session(tmp_path)
        session.close()
        session.close()
        assert session.closed is True

    def test_close_reclaims_kept_scratch(self, tmp_path):
        # keep_files=True leaves each run's vm_* scratch on disk; close()
        # sweeps what this session created.
        session = Session(config=RunConfig(scratch_dir=tmp_path, keep_files=True))
        session.run(WorkloadPoint("gaxpy", n=32, nprocs=2, slab_ratio=0.5),
                    mode="execute")
        leftovers = list(tmp_path.glob("vm_*"))
        assert leftovers, "keep_files=True should have kept the scratch dir"
        session.close()
        assert list(tmp_path.glob("vm_*")) == []

    def test_close_flushes_plan_cache_and_clears_compile_cache(self, tmp_path):
        session = Session(
            config=RunConfig(scratch_dir=tmp_path / "scratch"),
            plan_cache_dir=tmp_path / "plans",
        )
        source = """
        program square
          parameter (n = 32, nprocs = 2)
          real a(n, n), c(n, n)
        !hpf$ processors Pr(nprocs)
        !hpf$ template d(n)
        !hpf$ distribute d(block) onto Pr
        !hpf$ align a(*, :) with d
        !hpf$ align c(*, :) with d
          do j = 1, n
            forall (k = 1 : n)
              c(:, j) = sum(a(:, k) * a(k, j))
            end forall
          end do
        end program
        """
        session.compile(source=source,
                        options={"memory_budget_bytes": 32 * 1024})
        stored = list((tmp_path / "plans").glob("*.json"))
        assert stored, "budget compile should have persisted a plan"
        stored[0].unlink()  # simulate a lost best-effort write
        session.close()
        assert list((tmp_path / "plans").glob("*.json")), "close() flushes"
        assert session.cache_info()["size"] == 0

    def test_sessions_can_share_one_plan_cache(self, tmp_path):
        from repro.planner import PlanCache

        shared = PlanCache(tmp_path / "plans")
        first = Session(config=RunConfig(scratch_dir=tmp_path / "a"),
                        plan_cache=shared)
        second = Session(config=RunConfig(scratch_dir=tmp_path / "b"),
                         plan_cache=shared)
        assert first.plan_cache is shared and second.plan_cache is shared


# ---------------------------------------------------------------------------
# package-level exports
# ---------------------------------------------------------------------------
def test_top_level_session_quickstart(tmp_path):
    session = repro.Session(config=repro.RunConfig(scratch_dir=tmp_path))
    record = session.run(
        repro.WorkloadPoint("gaxpy", n=32, nprocs=2, version="row", slab_ratio=0.5),
        mode="execute",
    )
    assert isinstance(record, repro.RunRecord)
    assert record.verified is True
