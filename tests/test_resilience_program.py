"""Program-level fault recovery: charge-neutral retries and regeneration.

Runs real multi-statement programs under seeded fault policies and asserts
the paper-facing invariant of the resilience layer: a run that detected and
recovered faults reports *exactly* the same charged statistics (simulated
seconds, per-processor I/O counters, per-statement breakdowns) as a clean
run, with all the recovery work visible only in the host-side
``resilience`` counters.
"""

import numpy as np
import pytest

from repro import Session, WorkloadPoint
from repro.config import RunConfig
from repro.resilience import FaultPolicy

PROGRAM_SOURCE = """
program chain
  parameter (n = 16, nprocs = 2)
  real a(n, n), t(n, n), d(n, n), u(n, n), e(n, n), c(n, n)
!hpf$ processors Pr(nprocs)
!hpf$ template tmpl(n)
!hpf$ distribute tmpl(block) onto Pr
!hpf$ align a(*, :) with tmpl
!hpf$ align t(*, :) with tmpl
!hpf$ align d(*, :) with tmpl
!hpf$ align u(*, :) with tmpl
!hpf$ align e(*, :) with tmpl
!hpf$ align c(*, :) with tmpl
  t(:, :) = add(a(:, :), d(:, :))
  u(:, :) = multiply(t(:, :), e(:, :))
  c(:, :) = add(u(:, :), a(:, :))
end program
"""

FAULTY = FaultPolicy(
    seed=3,
    read_error_rate=0.2,
    write_error_rate=0.1,
    disk_full_rate=0.05,
    torn_write_rate=0.1,
    bitflip_rate=0.05,
)


def _session(tmp_path, policy=None, **config_kwargs):
    config = RunConfig(
        scratch_dir=tmp_path, fault_policy=policy,
        io_retry_backoff_s=0.0, **config_kwargs
    )
    return Session(config=config, reap_max_age_s=None)


def _charged_fields(record):
    return {
        "simulated_seconds": record.simulated_seconds,
        "io_time": record.io_time,
        "compute_time": record.compute_time,
        "comm_time": record.comm_time,
        "io_requests_per_proc": record.io_requests_per_proc,
        "io_read_bytes_per_proc": record.io_read_bytes_per_proc,
        "io_write_bytes_per_proc": record.io_write_bytes_per_proc,
        "statements": record.statements,
    }


class TestProgramRecovery:
    def test_faulty_program_verifies_and_charges_identically(self, tmp_path):
        clean = _session(tmp_path).execute(
            _session(tmp_path).compile(source=PROGRAM_SOURCE, slab_ratio=0.25)
        )
        session = _session(tmp_path, FAULTY)
        faulty = session.execute(session.compile(source=PROGRAM_SOURCE, slab_ratio=0.25))
        assert clean.verified and faulty.verified
        assert _charged_fields(faulty) == _charged_fields(clean)
        assert faulty.resilience["corruptions_detected"] > 0
        assert faulty.resilience["retries"] > 0

    def test_resilience_counters_are_deterministic(self, tmp_path):
        session = _session(tmp_path, FAULTY)
        compiled = session.compile(source=PROGRAM_SOURCE, slab_ratio=0.25)
        first = session.execute(compiled)
        # A fresh session restarts the injector's draw sequence.
        second = _session(tmp_path, FAULTY).execute(compiled)
        assert first.resilience == second.resilience

    def test_quiet_run_reports_no_resilience_block(self, tmp_path):
        session = _session(tmp_path)
        record = session.execute(session.compile(source=PROGRAM_SOURCE, slab_ratio=0.25))
        assert "resilience" not in record.to_dict()
        assert all(v == 0.0 for v in record.resilience.values())

    def test_faulty_run_serializes_counters(self, tmp_path):
        session = _session(tmp_path, FAULTY)
        record = session.execute(session.compile(source=PROGRAM_SOURCE, slab_ratio=0.25))
        assert record.to_dict()["resilience"]["corruptions_detected"] > 0

    def test_checksums_off_disables_detection(self, tmp_path):
        # Corruption-only policy with verification off: damage flows into
        # the final gather unchecked, so verification against the oracle
        # must fail — proving the checksums are what catches it.
        policy = FaultPolicy(seed=1, torn_write_rate=1.0, max_failures_per_site=3)
        session = _session(tmp_path, policy, checksums=False)
        record = session.execute(
            session.compile(source=PROGRAM_SOURCE, slab_ratio=0.25)
        )
        assert record.verified is False
        assert record.resilience["corruptions_detected"] == 0.0
        assert record.resilience["torn_writes_injected"] > 0

    @pytest.mark.parametrize(
        "point",
        [
            WorkloadPoint("gaxpy", n=32, nprocs=4, version="row", slab_ratio=0.25),
            WorkloadPoint("gaxpy", n=32, nprocs=4, version="column", slab_ratio=0.25),
            WorkloadPoint("elementwise", n=32, nprocs=4, slab_ratio=0.25),
            WorkloadPoint("transpose", n=32, nprocs=4, slab_ratio=0.25),
        ],
        ids=["gaxpy-row", "gaxpy-col", "elementwise", "transpose"],
    )
    def test_single_statement_workloads_recover(self, tmp_path, point):
        clean = _session(tmp_path).execute(point)
        faulty = _session(tmp_path, FAULTY).execute(point)
        assert clean.verified and faulty.verified
        assert _charged_fields(faulty) == _charged_fields(clean)

    def test_journal_records_every_statement(self, tmp_path):
        import json

        session = _session(tmp_path, keep_files=True)
        record = session.execute(
            session.compile(source=PROGRAM_SOURCE, slab_ratio=0.25)
        )
        assert record.verified
        vm_dirs = sorted(tmp_path.glob("vm_*"))
        assert len(vm_dirs) == 1
        journal = json.loads((vm_dirs[0] / "journal.json").read_text())
        assert journal["complete"] is True
        assert [entry["index"] for entry in journal["statements"]] == [0, 1, 2]
        for entry in journal["statements"]:
            for arrays in entry["arrays"].values():
                for file_info in arrays["files"]:
                    assert (vm_dirs[0] / file_info["path"]).exists() or (
                        tmp_path / file_info["path"]
                    ).exists() or file_info["path"].startswith(str(vm_dirs[0]))
