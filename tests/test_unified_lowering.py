"""Tests for the unified lowering pipeline.

Every workload — gaxpy, transpose, elementwise, parsed HPF programs — lowers
through one ``ProgramIR → strip-mine → cost model → reorganize → NodeProgram
→ executor`` pipeline in both ESTIMATE and EXECUTE modes.  These tests pin

* that every built-in compiles to a real node program,
* that the unified path charges *bit-identical* statistics to the historical
  per-kernel entry points,
* that single-operand HPF programs (``c = a @ a``) execute with verified
  numerics, and
* that the prefetch policies only ever touch the simulated clock.
"""

import numpy as np
import pytest

from repro.api import Lowering, Session, Workload, WorkloadPoint, register_workload, unregister_workload
from repro.config import ExecutionMode, RunConfig
from repro.core.ir import (
    ArrayRef,
    ElementwiseStatement,
    FullRange,
    TransposeStatement,
    build_elementwise_ir,
    build_gaxpy_ir,
    build_transpose_ir,
)
from repro.core.pipeline import compile_program
from repro.exceptions import CompilationError, RuntimeExecutionError
from repro.hpf import Alignment, ArrayDescriptor, ProcessorGrid, Template
from repro.kernels.elementwise import run_elementwise
from repro.kernels.transpose import run_transpose
from repro.runtime import NodeProgramExecutor, ReductionInputs, VirtualMachine
from repro.runtime.executor import run_reduction_single_operand

SINGLE_OPERAND_SOURCE = """
program square
  parameter (n = 64, nprocs = 4)
  real a(n, n), c(n, n)
!hpf$ processors Pr(nprocs)
!hpf$ template d(n)
!hpf$ distribute d(block) onto Pr
!hpf$ align a(*, :) with d
!hpf$ align c(*, :) with d
  do j = 1, n
    forall (k = 1 : n)
      c(:, j) = sum(a(:, k) * a(k, j))
    end forall
  end do
end program
"""


def make_session(tmp_path, **config_kwargs):
    return Session(config=RunConfig(scratch_dir=tmp_path, **config_kwargs))


def column_block_descriptor(n, p, name="x", dtype=np.float32):
    grid = ProcessorGrid("Pr", p)
    template = Template("d", n, grid, ["block"])
    return ArrayDescriptor(name, (n, n), Alignment(template, ["*", ":"]), dtype=dtype)


# ---------------------------------------------------------------------------
# every workload compiles to a real node program
# ---------------------------------------------------------------------------
class TestEveryWorkloadLowers:
    @pytest.mark.parametrize("point", [
        WorkloadPoint("gaxpy", n=32, nprocs=4, version="row", slab_ratio=0.5),
        WorkloadPoint("transpose", n=32, nprocs=4),
        WorkloadPoint("elementwise", n=32, nprocs=4, version="row"),
    ])
    def test_compiles_through_the_pipeline(self, point):
        compiled = Session().compile(point)
        program = compiled.program
        assert program is not None
        assert program.node_program.ops  # a real generated program
        assert program.plan.cost.total_time > 0
        assert program.node_program.pretty().startswith("!")

    def test_unequal_per_array_slabs_rejected(self):
        """The fused schedule needs conformal slabs; unequal sizes would make
        the charged statistics contradict the per-array plan entries."""
        with pytest.raises(CompilationError, match="conformal"):
            compile_program(
                build_elementwise_ir(64, 4),
                slab_elements={"a": 512, "b": 2048, "c": 1024},
            )
        with pytest.raises(CompilationError, match="conformal"):
            compile_program(
                build_transpose_ir(64, 4), slab_elements={"src": 64, "dst": 128}
            )

    def test_elementwise_node_program_matches_cost_model(self):
        compiled = compile_program(
            build_elementwise_ir(64, 4, op="multiply"),
            slab_elements={"a": 128, "b": 128, "c": 128},
        )
        totals = compiled.node_program.operation_totals()
        cost = compiled.plan.cost
        assert totals["read_requests:a"] == cost.arrays["a"].fetch_requests
        assert totals["read_elements:a"] == cost.arrays["a"].fetch_elements
        assert totals["write_requests:c"] == cost.arrays["c"].write_requests
        assert totals["flops"] == cost.flops

    def test_transpose_node_program_matches_cost_model(self):
        compiled = compile_program(build_transpose_ir(64, 4), slab_ratio=0.25)
        totals = compiled.node_program.operation_totals()
        cost = compiled.plan.cost
        assert totals["read_requests:src"] == cost.arrays["src"].fetch_requests
        assert totals["write_requests:dst"] == cost.arrays["dst"].write_requests
        assert totals["all_to_alls"] == cost.arrays["src"].fetch_requests
        assert "all-to-all" in compiled.node_program.pretty()

    def test_new_statement_validation(self):
        ref = ArrayRef("a", [FullRange(), FullRange()])
        other = ArrayRef("b", [FullRange(), FullRange()])
        with pytest.raises(CompilationError, match="operator"):
            ElementwiseStatement(result=ref, operands=(other, other), op="divide")
        with pytest.raises(CompilationError, match="two operands"):
            ElementwiseStatement(result=ref, operands=(other,))
        with pytest.raises(CompilationError, match="distinct"):
            TransposeStatement(result=ref, operand=ref)
        with pytest.raises(CompilationError, match="square"):
            grid = ProcessorGrid("Pr", 2)
            template = Template("d", 8, grid, ["block"])
            arrays = {
                "src": ArrayDescriptor("src", (4, 8), Alignment(template, ["*", ":"])),
                "dst": ArrayDescriptor("dst", (4, 8), Alignment(template, ["*", ":"])),
            }
            from repro.core.ir import ProgramIR
            compile_program(
                ProgramIR(
                    name="bad",
                    arrays=arrays,
                    loops=(),
                    statement=TransposeStatement(
                        result=ArrayRef("dst", [FullRange(), FullRange()]),
                        operand=ArrayRef("src", [FullRange(), FullRange()]),
                    ),
                ),
                slab_ratio=0.5,
            )


# ---------------------------------------------------------------------------
# the unified path charges bit-identical statistics to the legacy kernels
# ---------------------------------------------------------------------------
class TestChargeParityWithKernels:
    @pytest.mark.parametrize("mode", [ExecutionMode.ESTIMATE, ExecutionMode.EXECUTE])
    def test_elementwise(self, tmp_path, mode):
        n, p, slab = 32, 4, 64
        record = make_session(tmp_path / "s").run(
            WorkloadPoint("elementwise", n=n, nprocs=p,
                          options={"op": "multiply", "slab_elements": slab}),
            mode=mode,
        )
        desc = column_block_descriptor(n, p, name="e")
        rng = np.random.default_rng(1994)
        a = rng.standard_normal((n, n)).astype(np.float32)
        b = rng.standard_normal((n, n)).astype(np.float32)
        dense = (a, b) if mode is ExecutionMode.EXECUTE else (None, None)
        with VirtualMachine(p, None, RunConfig(scratch_dir=tmp_path / "k", mode=mode)) as vm:
            kernel = run_elementwise(vm, desc, *dense, op=np.multiply, slab_elements=slab)
        assert record.simulated_seconds == kernel.simulated_seconds
        assert record.io_requests_per_proc == kernel.io_statistics["io_requests_per_proc"]
        assert record.io_read_bytes_per_proc == kernel.io_statistics["bytes_read_per_proc"]
        assert record.io_write_bytes_per_proc == kernel.io_statistics["bytes_written_per_proc"]

    @pytest.mark.parametrize("mode", [ExecutionMode.ESTIMATE, ExecutionMode.EXECUTE])
    def test_transpose(self, tmp_path, mode):
        n, p, cols = 32, 4, 4
        record = make_session(tmp_path / "s").run(
            WorkloadPoint("transpose", n=n, nprocs=p, options={"cols_per_slab": cols}),
            mode=mode,
        )
        desc = column_block_descriptor(n, p, name="t")
        rng = np.random.default_rng(1994)
        dense = rng.standard_normal((n, n)).astype(np.float32) if mode is ExecutionMode.EXECUTE else None
        with VirtualMachine(p, None, RunConfig(scratch_dir=tmp_path / "k", mode=mode)) as vm:
            kernel = run_transpose(vm, desc, dense, cols_per_slab=cols)
        assert record.simulated_seconds == kernel.simulated_seconds
        assert record.io_requests_per_proc == kernel.io_statistics["io_requests_per_proc"]
        assert record.io_read_bytes_per_proc == kernel.io_statistics["bytes_read_per_proc"]
        assert record.io_write_bytes_per_proc == kernel.io_statistics["bytes_written_per_proc"]


# ---------------------------------------------------------------------------
# single-operand HPF programs execute end to end
# ---------------------------------------------------------------------------
class TestSingleOperandExecute:
    @pytest.mark.parametrize("version", ["", "column", "row"])
    def test_verified_against_dense_square(self, tmp_path, version):
        session = make_session(tmp_path)
        point = WorkloadPoint("hpf", version=version, slab_ratio=0.5,
                              options={"source": SINGLE_OPERAND_SOURCE})
        record = session.run(point, mode=ExecutionMode.EXECUTE)
        assert record.verified is True
        assert record.max_abs_error is not None and record.max_abs_error < 1e-1
        assert record.n == 64 and record.nprocs == 4

    def test_engine_numerics_match_numpy(self, tmp_path):
        compiled = Session().compile(source=SINGLE_OPERAND_SOURCE, slab_ratio=0.5)
        n = 64
        rng = np.random.default_rng(5)
        a = rng.standard_normal((n, n)).astype(np.float32)
        inputs = ReductionInputs(streamed=a, coefficient=a)
        with VirtualMachine(4, compiled.program.params,
                            RunConfig(scratch_dir=tmp_path)) as vm:
            result = run_reduction_single_operand(vm, compiled.program, inputs)
        assert result.verified is True
        reference = a.astype(np.float64) @ a.astype(np.float64)
        np.testing.assert_allclose(result.result, reference, rtol=2e-3, atol=1e-3)

    def test_charges_cover_io_compute_and_comm(self, tmp_path):
        session = make_session(tmp_path)
        record = session.run(
            WorkloadPoint("hpf", slab_ratio=0.5, options={"source": SINGLE_OPERAND_SOURCE}),
            mode=ExecutionMode.EXECUTE,
        )
        assert record.io_time > 0
        assert record.compute_time > 0
        assert record.comm_time > 0  # broadcasts + global sums

    def test_executor_dispatches_single_operand(self, tmp_path):
        compiled = Session().compile(source=SINGLE_OPERAND_SOURCE, slab_ratio=0.5)
        inputs = ReductionInputs(*(np.zeros((64, 64), dtype=np.float32),) * 2)
        with VirtualMachine(4, compiled.program.params,
                            RunConfig(scratch_dir=tmp_path)) as vm:
            result = NodeProgramExecutor(compiled.program).execute(vm, inputs, verify=False)
        assert "single-operand" in result.strategy


# ---------------------------------------------------------------------------
# a custom workload needs only build_ir()
# ---------------------------------------------------------------------------
class TestBuildIrOnlyWorkload:
    def test_full_contract_from_one_hook(self, tmp_path):
        class MatmulOnly(Workload):
            def build_ir(self, point, params):
                return Lowering(
                    ir=build_gaxpy_ir(point.n, point.nprocs, dtype=point.dtype),
                    slab_ratio=point.slab_ratio or 0.5,
                )

        register_workload("unit-matmul")(MatmulOnly)
        try:
            session = make_session(tmp_path)
            point = WorkloadPoint("unit-matmul", n=32, nprocs=2, slab_ratio=0.5)
            estimate = session.run(point, mode=ExecutionMode.ESTIMATE)
            assert estimate.simulated_seconds > 0
            assert estimate.version in ("column", "row")
            execute = session.run(point, mode=ExecutionMode.EXECUTE)
            assert execute.verified is True
        finally:
            unregister_workload("unit-matmul")

    def test_workload_without_build_ir_reports_clear_error(self):
        class Empty(Workload):
            pass

        register_workload("unit-empty")(Empty)
        try:
            with pytest.raises(NotImplementedError, match="build_ir"):
                Session().compile(WorkloadPoint("unit-empty", n=8, nprocs=2))
        finally:
            unregister_workload("unit-empty")


# ---------------------------------------------------------------------------
# prefetch policies flow Session -> VM -> executor
# ---------------------------------------------------------------------------
class TestPrefetchWiring:
    def test_default_is_none_and_unchanged(self, tmp_path):
        baseline = make_session(tmp_path / "a").run(
            WorkloadPoint("gaxpy", n=32, nprocs=2, version="column", slab_ratio=0.5),
            mode=ExecutionMode.EXECUTE,
        )
        explicit = make_session(tmp_path / "b", prefetch="none").run(
            WorkloadPoint("gaxpy", n=32, nprocs=2, version="column", slab_ratio=0.5),
            mode=ExecutionMode.EXECUTE,
        )
        assert baseline == explicit

    def test_overlap_hides_io_but_keeps_counters(self, tmp_path):
        point = WorkloadPoint("gaxpy", n=32, nprocs=2, version="column", slab_ratio=0.25)
        baseline = make_session(tmp_path / "a").run(point, mode=ExecutionMode.EXECUTE)
        overlapped = make_session(tmp_path / "b", prefetch="overlap").run(
            point, mode=ExecutionMode.EXECUTE
        )
        assert overlapped.simulated_seconds < baseline.simulated_seconds
        assert overlapped.io_requests_per_proc == baseline.io_requests_per_proc
        assert overlapped.io_read_bytes_per_proc == baseline.io_read_bytes_per_proc
        assert overlapped.io_write_bytes_per_proc == baseline.io_write_bytes_per_proc
        assert overlapped.verified is True

    def test_partial_efficiency_hides_less(self, tmp_path):
        point = WorkloadPoint("gaxpy", n=32, nprocs=2, version="column", slab_ratio=0.25)
        full = make_session(tmp_path / "a", prefetch="overlap").run(
            point, mode=ExecutionMode.EXECUTE)
        half = make_session(tmp_path / "b", prefetch="overlap",
                            prefetch_efficiency=0.5).run(point, mode=ExecutionMode.EXECUTE)
        assert full.simulated_seconds <= half.simulated_seconds

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="prefetch"):
            RunConfig(prefetch="psychic")


# ---------------------------------------------------------------------------
# executor guards
# ---------------------------------------------------------------------------
class TestExecutorGuards:
    def test_bulk_estimate_rejects_machine_for_data_movement(self):
        from repro.machine import Machine

        compiled = compile_program(build_elementwise_ir(16, 2),
                                   slab_elements={"a": 32, "b": 32, "c": 32})
        with pytest.raises(RuntimeExecutionError, match="reduction"):
            NodeProgramExecutor(compiled).estimate(machine=Machine(2))

    def test_bulk_estimate_builds_its_own_vm_for_data_movement(self):
        compiled = compile_program(build_transpose_ir(16, 2), slab_ratio=0.5)
        result = NodeProgramExecutor(compiled).estimate()
        assert result.simulated_seconds > 0
        assert result.mode is ExecutionMode.ESTIMATE

    @pytest.mark.parametrize("mode", [ExecutionMode.ESTIMATE, ExecutionMode.EXECUTE])
    def test_two_operand_engines_reject_single_operand_programs(self, tmp_path, mode):
        """Direct engine calls must fail clearly, not crash in numpy."""
        from repro.runtime.executor import (
            run_reduction_column,
            run_reduction_incore,
            run_reduction_row,
        )

        compiled = Session().compile(source=SINGLE_OPERAND_SOURCE, slab_ratio=0.5)
        for engine in (run_reduction_column, run_reduction_row, run_reduction_incore):
            with VirtualMachine(4, compiled.program.params,
                                RunConfig(scratch_dir=tmp_path, mode=mode)) as vm:
                with pytest.raises(RuntimeExecutionError, match="single_operand"):
                    engine(vm, compiled.program, None, verify=False)
