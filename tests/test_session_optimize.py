"""Session-level plan optimization: the ``optimize`` knob, per-point sweep
overrides, the planner-cache stats, and the compile-cache keying fix (two
budget-allocation policies must never share one cached compilation)."""

import pytest

import repro.api.workload as workload_module
from repro.api import Session, WorkloadPoint
from repro.config import RunConfig
from repro.exceptions import CompilationError, WorkloadError


N = 256
NPROCS = 4
BUDGET = 48 * 1024

PIPELINE_SOURCE = f"""
program pipeline
  parameter (n = {N}, nprocs = {NPROCS})
  real a(n, n), b(n, n), t(n, n), d(n, n), c(n, n)
!hpf$ processors Pr(nprocs)
!hpf$ template tmpl(n)
!hpf$ distribute tmpl(block) onto Pr
!hpf$ align a(*, :) with tmpl
!hpf$ align t(*, :) with tmpl
!hpf$ align d(*, :) with tmpl
!hpf$ align c(*, :) with tmpl
!hpf$ align b(:, *) with tmpl
  do j = 1, n
    forall (k = 1 : n)
      t(:, j) = sum(a(:, k) * b(k, j))
    end forall
  end do
  c(:, :) = add(t(:, :), d(:, :))
end program
"""


def _budget_point(**kwargs) -> WorkloadPoint:
    return WorkloadPoint(
        "hpf",
        options={"source": PIPELINE_SOURCE, "memory_budget_bytes": BUDGET},
        **kwargs,
    )


@pytest.fixture(autouse=True)
def _fresh_global_compile_cache():
    """Isolate the process-wide compile cache so planner stats are observable."""
    with workload_module._COMPILE_CACHE_LOCK:
        workload_module._COMPILE_CACHE.clear()
    yield
    with workload_module._COMPILE_CACHE_LOCK:
        workload_module._COMPILE_CACHE.clear()


# ---------------------------------------------------------------------------
# the optimize knob and its resolution order
# ---------------------------------------------------------------------------
class TestOptimizeKnob:
    def test_session_default_is_greedy(self):
        session = Session()
        assert session.optimize == "greedy"
        compiled = session.compile(_budget_point())
        assert compiled.point.optimize == "greedy"
        assert compiled.program.planner is not None
        assert compiled.program.planner.optimizer == "greedy"

    def test_point_field_wins_over_session_default(self):
        session = Session(optimize="greedy")
        compiled = session.compile(_budget_point(optimize="none"))
        assert compiled.point.optimize == "none"
        assert compiled.program.planner.optimizer == "none"

    def test_call_override_wins_over_point_field(self):
        session = Session()
        compiled = session.compile(_budget_point(optimize="none"), optimize="greedy")
        assert compiled.point.optimize == "greedy"

    def test_invalid_choices_are_rejected(self):
        with pytest.raises(WorkloadError, match="unknown optimize"):
            WorkloadPoint("gaxpy", n=8, slab_ratio=0.5, optimize="anneal")
        with pytest.raises(CompilationError, match="unknown plan optimizer"):
            Session(optimize="anneal")

    def test_greedy_plan_no_worse_than_even_in_record(self, tmp_path):
        session = Session(config=RunConfig(scratch_dir=tmp_path))
        even = session.estimate(_budget_point(optimize="none"))
        greedy = session.estimate(_budget_point(optimize="greedy"))
        assert greedy.plan["predicted_seconds"] <= even.plan["predicted_seconds"]
        assert (
            greedy.plan["predicted_seconds"] <= greedy.plan["even_predicted_seconds"]
        )
        assert greedy.plan["optimizer"] == "greedy"
        assert len(greedy.plan["statement_budgets"]) == 2

    def test_slab_ratio_points_report_no_search_ran(self):
        session = Session()
        record = session.estimate(
            WorkloadPoint("gaxpy", n=32, nprocs=2, version="row", slab_ratio=0.5)
        )
        # The session default is greedy, but slab_ratio compilations have no
        # budget to search: the record must say what actually happened.
        assert record.plan["optimizer"] == "none"
        assert "statement_budgets" not in record.plan
        assert record.plan["predicted_seconds"] > 0


# ---------------------------------------------------------------------------
# the compile-cache keying fix
# ---------------------------------------------------------------------------
class TestCompileCacheKeying:
    def test_policies_do_not_share_cache_entries(self):
        session = Session()
        even = session.compile(_budget_point(), optimize="none")
        greedy = session.compile(_budget_point(), optimize="greedy")
        info = session.cache_info()
        assert info["misses"] == 2 and info["hits"] == 0
        assert even is not greedy
        # And the plans genuinely differ on this I/O-bound pipeline.
        assert (
            greedy.program.planner.statement_budgets
            != even.program.planner.statement_budgets
        )

    def test_same_policy_still_hits(self):
        session = Session()
        first = session.compile(_budget_point())
        second = session.compile(_budget_point())
        assert first is second
        assert session.cache_info()["hits"] == 1

    def test_planner_stats_in_cache_info(self):
        session = Session()
        info = session.cache_info()
        for key in ("planner_hits", "planner_misses", "planner_stores",
                    "planner_size", "planner_persistent"):
            assert key in info
        assert info["planner_persistent"] == 0
        session.compile(_budget_point())
        after = session.cache_info()
        assert after["planner_misses"] == 1 and after["planner_stores"] == 1


# ---------------------------------------------------------------------------
# sweep: per-point overrides and the summary
# ---------------------------------------------------------------------------
class TestSweepOptimize:
    def test_per_point_override_list(self, tmp_path):
        session = Session(config=RunConfig(scratch_dir=tmp_path))
        records = session.sweep(
            [_budget_point(), _budget_point()],
            mode="estimate",
            optimize=["none", "greedy"],
        )
        assert [r.plan["optimizer"] for r in records] == ["none", "greedy"]
        assert records[1].plan["predicted_seconds"] <= records[0].plan[
            "predicted_seconds"
        ]

    def test_override_length_mismatch_raises(self):
        session = Session()
        with pytest.raises(WorkloadError, match="optimize"):
            session.sweep([_budget_point()], optimize=["none", "greedy"])

    def test_summary_reports_cache_deltas(self, tmp_path):
        session = Session(config=RunConfig(scratch_dir=tmp_path))
        points = [_budget_point(), _budget_point(), _budget_point()]
        result = session.sweep(points, mode="estimate", optimize="greedy")
        assert result.summary["points"] == 3
        # One real compile + one planner search; the repeats hit the caches.
        assert result.summary["compile_misses"] == 1
        assert result.summary["compile_hits"] == 2
        assert result.summary["planner_misses"] == 1
        assert result.summary["optimizers"] == {"greedy": 3}
        # A second sweep replays the session plan cache for fresh compiles.
        session.clear_cache()
        with workload_module._COMPILE_CACHE_LOCK:
            workload_module._COMPILE_CACHE.clear()
        again = session.sweep(points[:1], mode="estimate", optimize="greedy")
        assert again.summary["planner_hits"] == 1

    def test_sweep_result_is_a_list(self):
        session = Session()
        result = session.sweep(
            [WorkloadPoint("gaxpy", n=16, nprocs=2, version="row", slab_ratio=0.5)],
            mode="estimate",
        )
        assert isinstance(result, list) and len(result) == 1
        # A slab_ratio point searched nothing, and the summary says so.
        assert result.summary["optimizers"] == {"none": 1}

    def test_parallel_sweep_matches_sequential(self, tmp_path):
        session = Session(config=RunConfig(scratch_dir=tmp_path))
        points = [_budget_point(optimize="none"), _budget_point(optimize="greedy")]
        sequential = session.sweep(points, mode="estimate")
        parallel = session.sweep(points, mode="estimate", workers=2)
        for one, two in zip(sequential, parallel, strict=True):
            assert one.simulated_seconds == two.simulated_seconds
            assert one.plan["optimizer"] == two.plan["optimizer"]


# ---------------------------------------------------------------------------
# persistent session plan cache
# ---------------------------------------------------------------------------
class TestSessionPlanCachePersistence:
    def test_new_session_replays_from_disk(self, tmp_path):
        cache_dir = tmp_path / "plans"
        first = Session(plan_cache_dir=cache_dir)
        first.compile(_budget_point())
        assert first.cache_info()["planner_stores"] == 1

        with workload_module._COMPILE_CACHE_LOCK:
            workload_module._COMPILE_CACHE.clear()
        second = Session(plan_cache_dir=cache_dir)
        compiled = second.compile(_budget_point())
        info = second.cache_info()
        assert info["planner_hits"] == 1 and info["planner_misses"] == 0
        assert compiled.program.planner.cache_status == "hit"

    def test_executed_record_matches_estimate_counters(self, tmp_path):
        """ESTIMATE == EXECUTE parity holds for planner-chosen plans."""
        session = Session(config=RunConfig(scratch_dir=tmp_path / "scratch"))
        point = _budget_point(optimize="greedy")
        estimate = session.estimate(point)
        execute = session.execute(point)
        assert execute.verified is True
        for field in ("io_requests_per_proc", "io_read_bytes_per_proc",
                      "io_write_bytes_per_proc"):
            assert getattr(estimate, field) == getattr(execute, field)
        assert estimate.plan == execute.plan
