"""Property-based resilience testing: seeded fault schedules vs the oracle.

Hypothesis draws fault policies (seeds and per-kind rates under the retry
budget's convergence bound) and asserts the out-of-core execution still
converges to the in-core NumPy oracle, with charged statistics bit-identical
to a fault-free run and deterministic resilience counters — the differential
harness of PR 4 pointed at the fault injector of this PR.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import RunConfig
from repro.core.ir import build_pipeline_ir
from repro.core.pipeline import compile_program
from repro.resilience import FaultPolicy
from repro.runtime.executor import ProgramExecutor, program_reference
from repro.runtime.vm import VirtualMachine

from tests.test_differential import generate_dense_inputs

N = 16
NPROCS = 2

rates = st.floats(min_value=0.0, max_value=0.25, allow_nan=False)

policies = st.builds(
    FaultPolicy,
    seed=st.integers(min_value=0, max_value=2**31),
    read_error_rate=rates,
    write_error_rate=rates,
    disk_full_rate=rates,
    torn_write_rate=rates,
    bitflip_rate=rates,
    max_failures_per_site=st.just(2),
)


def _run(tmp_path, policy, tag):
    compiled = compile_program(build_pipeline_ir(N, NPROCS), slab_ratio=0.25)
    dense = generate_dense_inputs(compiled.program)
    config = RunConfig(
        scratch_dir=tmp_path / tag, fault_policy=policy,
        io_retries=4, io_retry_backoff_s=0.0,
    )
    with VirtualMachine(NPROCS, compiled.params, config) as vm:
        result = ProgramExecutor(compiled).execute(
            vm, dense, verify=False, collect_outputs=True
        )
    oracle = program_reference(compiled.program, dense)
    return result, oracle


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(policy=policies)
def test_faulted_execution_converges_to_oracle(tmp_path, policy):
    faulty, oracle = _run(tmp_path, policy, f"faulty_{policy.seed}")
    clean, _ = _run(tmp_path, None, f"clean_{policy.seed}")
    for name in faulty.outputs:
        np.testing.assert_allclose(
            faulty.outputs[name].astype(np.float64), oracle[name],
            rtol=1e-3, atol=1e-3,
            err_msg=f"array {name!r} diverged under policy {policy}",
        )
    # Charged statistics are bit-identical to the fault-free run.
    assert faulty.simulated_seconds == clean.simulated_seconds
    assert faulty.time_breakdown == clean.time_breakdown
    assert faulty.io_statistics == clean.io_statistics
    assert faulty.statements == clean.statements


@settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(policy=policies)
def test_resilience_counters_are_reproducible(tmp_path, policy):
    first, _ = _run(tmp_path, policy, f"first_{policy.seed}")
    second, _ = _run(tmp_path, policy, f"second_{policy.seed}")
    assert first.resilience == second.resilience
