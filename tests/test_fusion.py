"""Statement fusion: legality, pricing, execution, caching.

The tentpole under test: when a producer's result slabs are conformal with
its single consumer's operand slabs, the planner may compile the pair into
one fused unit whose slab loop runs both statements' per-slab work with the
intermediate resident — the intermediate's Local Array Files are never
written or read, in ESTIMATE and EXECUTE mode alike.

Guarantees pinned here:

* legality — diamond dataflow, reduction producers/consumers, multi-use
  intermediates, program outputs and non-conformal slab plans all refuse to
  fuse;
* no-worse — with fusion on, the chosen plan's predicted cost never exceeds
  the unfused even split (the optimizer's baseline safety net);
* charge parity — fused ESTIMATE counters equal fused EXECUTE counters, and
  the static verifier's symbolic ledger agrees with both;
* numerics — every 1–4-statement chain still matches the NumPy oracle;
* caching — the fusion mode is part of the plan-cache fingerprint and the
  compile cache key, and cached fused decisions replay exactly.
"""

import pytest

from repro.api import Session, WorkloadPoint
from repro.api.workload import get_workload
from repro.check import check_compiled
from repro.config import ExecutionMode, RunConfig
from repro.core.analysis import FusedElementwisePhase
from repro.core.pipeline import (
    compile_program,
    compile_whole_program,
    fuse_statement_pair,
    normalize_fusion,
)
from repro.exceptions import CompilationError
from repro.hpf.frontend import frontend_to_ir
from repro.hpf.parser import parse_program
from repro.machine.parameters import MachineParameters
from repro.planner import plan_whole_program
from repro.planner.plan_cache import PlanCache, plan_fingerprint
from repro.planner.space import PlanChoice, fusable_edges, fusion_masks
from repro.runtime.executor import ProgramExecutor
from repro.runtime.vm import VirtualMachine

from tests.test_differential import assert_matches_oracle, generate_dense_inputs

N = 16
NPROCS = 4
BUDGET = 8 * 1024


def _chain_source(n_elementwise: int) -> str:
    """A reduction followed by ``n_elementwise`` chained elementwise statements."""
    arrays = ["a", "b", "t"] + [f"d{i}" for i in range(n_elementwise)] + [
        f"r{i}" for i in range(n_elementwise)
    ]
    decls = ", ".join(f"{name}(n, n)" for name in arrays)
    aligns = "\n".join(
        f"!hpf$ align {name}({'*, :' if name != 'b' else ':, *'}) with tmpl"
        for name in arrays
    )
    ops = ["add", "multiply", "subtract"]
    body = []
    previous = "t"
    for i in range(n_elementwise):
        op = ops[i % len(ops)]
        body.append(f"  r{i}(:, :) = {op}({previous}(:, :), d{i}(:, :))")
        previous = f"r{i}"
    statements = "\n".join(body)
    return f"""
program chain
  parameter (n = {N}, nprocs = {NPROCS})
  real {decls}
!hpf$ processors Pr(nprocs)
!hpf$ template tmpl(n)
!hpf$ distribute tmpl(block) onto Pr
{aligns}
  do j = 1, n
    forall (k = 1 : n)
      t(:, j) = sum(a(:, k) * b(k, j))
    end forall
  end do
{statements}
end program
"""


ELEMENTWISE_PAIR_SOURCE = """
program pair
  parameter (n = 16, nprocs = 4)
  real a(n, n), b(n, n), t(n, n), d(n, n), c(n, n)
!hpf$ processors Pr(nprocs)
!hpf$ template tmpl(n)
!hpf$ distribute tmpl(block) onto Pr
!hpf$ align a(*, :) with tmpl
!hpf$ align b(*, :) with tmpl
!hpf$ align t(*, :) with tmpl
!hpf$ align d(*, :) with tmpl
!hpf$ align c(*, :) with tmpl
  t(:, :) = add(a(:, :), b(:, :))
  c(:, :) = multiply(t(:, :), d(:, :))
end program
"""

DIAMOND_SOURCE = """
program diamond
  parameter (n = 16, nprocs = 4)
  real a(n, n), b(n, n), t(n, n), d(n, n), c(n, n), e(n, n), f(n, n)
!hpf$ processors Pr(nprocs)
!hpf$ template tmpl(n)
!hpf$ distribute tmpl(block) onto Pr
!hpf$ align a(*, :) with tmpl
!hpf$ align b(*, :) with tmpl
!hpf$ align t(*, :) with tmpl
!hpf$ align d(*, :) with tmpl
!hpf$ align c(*, :) with tmpl
!hpf$ align e(*, :) with tmpl
!hpf$ align f(*, :) with tmpl
  t(:, :) = add(a(:, :), b(:, :))
  c(:, :) = multiply(t(:, :), d(:, :))
  f(:, :) = subtract(t(:, :), e(:, :))
end program
"""

INDEPENDENT_SOURCE = """
program independent
  parameter (n = 16, nprocs = 4)
  real a(n, n), b(n, n), t(n, n), d(n, n), e(n, n), c(n, n)
!hpf$ processors Pr(nprocs)
!hpf$ template tmpl(n)
!hpf$ distribute tmpl(block) onto Pr
!hpf$ align a(*, :) with tmpl
!hpf$ align b(*, :) with tmpl
!hpf$ align t(*, :) with tmpl
!hpf$ align d(*, :) with tmpl
!hpf$ align e(*, :) with tmpl
!hpf$ align c(*, :) with tmpl
  t(:, :) = add(a(:, :), b(:, :))
  c(:, :) = multiply(d(:, :), e(:, :))
end program
"""


def _ir(source):
    return frontend_to_ir(parse_program(source))


def _compile(source, *, fusion="off", optimizer="greedy", budget=BUDGET):
    return compile_program(
        _ir(source),
        MachineParameters(),
        memory_budget_bytes=budget,
        optimizer=optimizer,
        fusion=fusion,
    )


def _estimate_io(compiled):
    vm = VirtualMachine(
        compiled.nprocs, compiled.params, RunConfig(mode=ExecutionMode.ESTIMATE)
    )
    ProgramExecutor(compiled).estimate(vm)
    return vm.io_statistics()


# ---------------------------------------------------------------------------
# plan-space legality
# ---------------------------------------------------------------------------
class TestFusableEdges:
    def test_elementwise_pair_has_one_edge(self):
        assert fusable_edges(_ir(ELEMENTWISE_PAIR_SOURCE)) == (0,)

    def test_reduction_producer_refused(self):
        # t = a @ b feeds the first elementwise statement; reductions never fuse.
        assert fusable_edges(_ir(_chain_source(2))) == (1,)

    def test_diamond_dataflow_refused(self):
        # t has two consumers: fusing it into either would starve the other.
        assert fusable_edges(_ir(DIAMOND_SOURCE)) == ()

    def test_program_output_refused(self):
        # t is never consumed — a program output, not an intermediate; fusing
        # it away would drop an observable result.
        assert fusable_edges(_ir(INDEPENDENT_SOURCE)) == ()

    def test_preserve_set_vetoes_an_edge(self):
        ir = _ir(ELEMENTWISE_PAIR_SOURCE)
        assert fusable_edges(ir, preserve=("t",)) == ()

    def test_four_statement_chain_edges(self):
        # reduction -> r0 -> r1 -> r2: edges (1, 2) share r1, masks never
        # fuse both at once.
        ir = _ir(_chain_source(3))
        edges = fusable_edges(ir)
        assert edges == (1, 2)
        masks = list(fusion_masks(edges))
        assert () in masks
        assert (1,) in masks and (2,) in masks
        assert (1, 2) not in masks


class TestPlanChoiceFusion:
    def test_rejects_adjacent_edges(self):
        with pytest.raises(CompilationError):
            PlanChoice((1024, 1024, 1024, 1024), ("even",) * 4, fused_edges=(0, 1))

    def test_rejects_out_of_range_edge(self):
        with pytest.raises(CompilationError):
            PlanChoice((1024, 1024), ("even", "even"), fused_edges=(1,))

    def test_describe_names_the_pair(self):
        choice = PlanChoice((1024, 1024), ("even", "even"), fused_edges=(0,))
        assert "fuse(s0,s1)" in choice.describe()


# ---------------------------------------------------------------------------
# compile-time refusals
# ---------------------------------------------------------------------------
class TestConformality:
    def test_non_conformal_slab_extents_refuse_to_fuse(self):
        ir = _ir(ELEMENTWISE_PAIR_SOURCE)
        params = MachineParameters()
        producer = compile_program(
            ir.statement_program(0), params,
            slab_elements={"a": 64, "b": 64, "t": 64},
        )
        consumer = compile_program(
            ir.statement_program(1), params,
            slab_elements={"t": 32, "d": 32, "c": 32},
        )
        with pytest.raises(CompilationError):
            fuse_statement_pair(ir, 0, producer, consumer, params)

    def test_strategy_mismatch_refuses_to_fuse(self):
        ir = _ir(ELEMENTWISE_PAIR_SOURCE)
        params = MachineParameters()
        producer = compile_program(
            ir.statement_program(0), params, slab_ratio=0.5,
            force_strategy="column",
        )
        consumer = compile_program(
            ir.statement_program(1), params, slab_ratio=0.5,
            force_strategy="row",
        )
        with pytest.raises(CompilationError):
            fuse_statement_pair(ir, 0, producer, consumer, params)

    def test_conformal_pair_fuses(self):
        ir = _ir(ELEMENTWISE_PAIR_SOURCE)
        params = MachineParameters()
        units = [
            compile_program(
                ir.statement_program(i), params,
                slab_elements={name: 64 for name in
                               (s.result.array,) + tuple(r.array for r in s.operands)},
            )
            for i, s in enumerate(ir.statements)
        ]
        fused = fuse_statement_pair(ir, 0, units[0], units[1], params)
        assert isinstance(fused.analysis, FusedElementwisePhase)
        assert fused.analysis.intermediate == "t"
        # The fused plan charges the intermediate zero traffic.
        assert "t" not in fused.plan.cost.arrays


class TestNormalizeFusion:
    def test_modes(self):
        assert normalize_fusion(None) == "off"
        assert normalize_fusion("on") == "auto"
        assert normalize_fusion("auto") == "auto"
        assert normalize_fusion("off") == "off"

    def test_rejects_unknown(self):
        with pytest.raises(CompilationError):
            normalize_fusion("always")


# ---------------------------------------------------------------------------
# the planner's fusion dimension
# ---------------------------------------------------------------------------
class TestPlannerFusion:
    def test_off_is_the_default_and_never_fuses(self):
        compiled = _compile(_chain_source(2))
        assert compiled.planner.fused_edges == ()
        assert len(compiled.statements) == 3

    def test_on_fuses_the_legal_edge(self):
        compiled = _compile(_chain_source(2), fusion="on")
        assert compiled.planner.fused_edges == (1,)
        assert len(compiled.statements) == 2
        step = compiled.schedule.steps[-1]
        assert step.fused == ("r0",)

    def test_fused_charges_strictly_fewer_io_bytes(self):
        unfused = _compile(_chain_source(2))
        fused = _compile(_chain_source(2), fusion="on")
        assert fused.cost.io_bytes < unfused.cost.io_bytes
        stats_unfused = _estimate_io(unfused)
        stats_fused = _estimate_io(fused)
        fused_bytes = (stats_fused["bytes_read_per_proc"]
                       + stats_fused["bytes_written_per_proc"])
        unfused_bytes = (stats_unfused["bytes_read_per_proc"]
                         + stats_unfused["bytes_written_per_proc"])
        assert fused_bytes < unfused_bytes

    @pytest.mark.parametrize("optimizer", ["greedy", "beam", "exhaustive"])
    def test_no_worse_than_unfused_even_split(self, optimizer):
        ir = _ir(_chain_source(2))
        params = MachineParameters()
        decision, _ = plan_whole_program(
            ir, params, memory_budget_bytes=BUDGET,
            optimizer=optimizer, fusion="on",
        )
        # The even-split baseline seeds every search; fusion may only displace
        # it with strictly cheaper plans.
        assert decision.predicted_total_time <= decision.even_total_time

    def test_optimizer_none_disables_fusion(self):
        compiled = _compile(_chain_source(2), fusion="on", optimizer="none")
        assert compiled.planner.fused_edges == ()

    def test_diamond_never_fuses_under_search(self):
        compiled = compile_whole_program(
            _ir(DIAMOND_SOURCE), MachineParameters(),
            memory_budget_bytes=BUDGET, optimizer="greedy", fusion="on",
        )
        assert compiled.planner.fused_edges == ()

    def test_verifier_accepts_every_fused_plan(self):
        for n_elementwise in (1, 2, 3):
            compiled = _compile(_chain_source(n_elementwise), fusion="on")
            report = check_compiled(compiled)
            assert report.ok, report.describe()


# ---------------------------------------------------------------------------
# execution: parity, numerics, prefetch composition
# ---------------------------------------------------------------------------
class TestFusedExecution:
    @pytest.mark.parametrize("n_elementwise", [1, 2, 3])
    def test_chain_matches_oracle_with_fusion(self, tmp_path, n_elementwise):
        compiled = _compile(_chain_source(n_elementwise), fusion="on")
        assert_matches_oracle(compiled, tmp_path)

    def test_pure_elementwise_pair_matches_oracle(self, tmp_path):
        compiled = _compile(ELEMENTWISE_PAIR_SOURCE, fusion="on")
        assert compiled.planner.fused_edges == (0,)
        assert len(compiled.statements) == 1
        assert_matches_oracle(compiled, tmp_path)

    def test_estimate_equals_execute_charges(self, tmp_path):
        compiled = _compile(_chain_source(2), fusion="on")
        estimate_stats = _estimate_io(compiled)
        dense = generate_dense_inputs(compiled.program)
        with VirtualMachine(
            compiled.nprocs, compiled.params, RunConfig(scratch_dir=tmp_path)
        ) as vm:
            result = ProgramExecutor(compiled).execute(vm, dense, verify=True)
            execute_stats = vm.io_statistics()
        assert result.verified is True
        assert estimate_stats == execute_stats

    def test_symbolic_ledger_matches_executed_counters(self):
        compiled = _compile(_chain_source(2), fusion="on")
        report = check_compiled(compiled)
        assert report.ok
        stats = _estimate_io(compiled)
        assert stats["bytes_read_per_proc"] == report.ledger.read_bytes
        assert stats["bytes_written_per_proc"] == report.ledger.write_bytes

    def test_fused_away_intermediate_has_no_laf(self, tmp_path):
        compiled = _compile(_chain_source(2), fusion="on")
        dense = generate_dense_inputs(compiled.program)
        with VirtualMachine(
            compiled.nprocs, compiled.params, RunConfig(scratch_dir=tmp_path)
        ) as vm:
            ProgramExecutor(compiled).execute(vm, dense, verify=True)
            assert "r0" not in vm.arrays  # never materialized
            assert "t" in vm.arrays  # the reduction's result still is

    def test_composes_with_prefetch_overlap(self, tmp_path):
        compiled = _compile(_chain_source(2), fusion="on")
        dense = generate_dense_inputs(compiled.program)
        with VirtualMachine(
            compiled.nprocs, compiled.params,
            RunConfig(scratch_dir=tmp_path, prefetch="overlap"),
        ) as vm:
            result = ProgramExecutor(compiled).execute(vm, dense, verify=True)
        assert result.verified is True


# ---------------------------------------------------------------------------
# caching: fingerprints, payloads, compile LRU
# ---------------------------------------------------------------------------
class TestFusionCaching:
    def test_plan_fingerprint_includes_fusion(self):
        ir = _ir(_chain_source(2))
        params = MachineParameters()
        common = dict(
            memory_budget_bytes=BUDGET, optimizer="greedy",
            strategies=("column", "row"), force_strategy=None,
        )
        off = plan_fingerprint(ir, params, fusion="off", **common)
        on = plan_fingerprint(ir, params, fusion="auto", **common)
        assert off != on

    def test_plan_cache_roundtrips_fused_edges(self, tmp_path):
        cache = PlanCache(tmp_path)
        choice = PlanChoice((4096, 2048, 2048), ("even",) * 3, fused_edges=(1,))
        cache.store("key", choice)
        fresh = PlanCache(tmp_path)
        replayed = fresh.lookup("key")
        assert replayed == choice
        assert replayed.fused_edges == (1,)

    def test_stale_payload_version_is_a_miss(self, tmp_path):
        import json
        cache = PlanCache(tmp_path)
        (tmp_path / "old.json").write_text(json.dumps({
            "version": 1,
            "statement_budgets": [4096, 4096],
            "policies": ["even", "even"],
        }))
        assert cache.lookup("old") is None

    def test_cached_fused_decision_replays(self):
        ir = _ir(_chain_source(2))
        params = MachineParameters()
        cache = PlanCache()
        first, _ = plan_whole_program(
            ir, params, memory_budget_bytes=BUDGET,
            optimizer="greedy", fusion="on", plan_cache=cache,
        )
        second, _ = plan_whole_program(
            ir, params, memory_budget_bytes=BUDGET,
            optimizer="greedy", fusion="on", plan_cache=cache,
        )
        assert first.fused_edges == second.fused_edges == (1,)
        assert second.cache_status == "hit"
        assert first.predicted_io_bytes == second.predicted_io_bytes

    def test_compile_cache_key_includes_fusion(self):
        workload = get_workload("hpf")
        params = MachineParameters()
        base = dict(source=_chain_source(2), memory_budget_bytes=BUDGET)
        point_off = WorkloadPoint("hpf", optimize="greedy", options=base)
        point_on = WorkloadPoint(
            "hpf", optimize="greedy", options={**base, "fusion": "on"},
        )
        compiled_off = workload.compile(point_off, params)
        compiled_on = workload.compile(point_on, params)
        assert compiled_off is not compiled_on
        assert compiled_off.program.planner.fused_edges == ()
        assert compiled_on.program.planner.fused_edges == (1,)
        # Same point again: served from the LRU, same object.
        assert workload.compile(point_on, params) is compiled_on


# ---------------------------------------------------------------------------
# the Session surface
# ---------------------------------------------------------------------------
class TestSessionFusion:
    def test_run_record_reports_fused_edges(self, tmp_path):
        session = Session(config=RunConfig(scratch_dir=tmp_path))
        point = WorkloadPoint(
            "hpf", optimize="greedy",
            options={"source": _chain_source(2),
                     "memory_budget_bytes": BUDGET, "fusion": "on"},
        )
        record = session.execute(point)
        assert record.verified is True
        assert tuple(record.plan["fused_edges"]) == (1,)

    def test_fusion_beats_unfused_through_the_session(self, tmp_path):
        session = Session(config=RunConfig(scratch_dir=tmp_path))
        base = {"source": _chain_source(2), "memory_budget_bytes": BUDGET}
        unfused = session.execute(
            WorkloadPoint("hpf", optimize="greedy", options=base)
        )
        fused = session.execute(
            WorkloadPoint("hpf", optimize="greedy",
                          options={**base, "fusion": "on"})
        )
        assert fused.verified is True and unfused.verified is True
        assert fused.io_bytes_per_proc < unfused.io_bytes_per_proc
