"""Whole-program compilation: multi-statement programs on the unified pipeline.

Covers the PR-4 tentpole end to end:

* the multi-statement :class:`~repro.core.ir.ProgramIR` and its dataflow
  validation (forward/cyclic uses, double assignment, undeclared arrays),
* the mini-HPF frontend lowering statement *sequences*,
* :func:`~repro.core.pipeline.compile_whole_program` (shared memory budget,
  summed program-level :class:`~repro.core.cost_model.PlanCost`,
  :class:`~repro.core.codegen.ProgramSchedule` with LAF-reuse annotations),
* the :class:`~repro.runtime.executor.ProgramExecutor` in both modes, with
  the charge-accounting guarantee that an intermediate's I/O is charged
  exactly once (written by its producer, read by its consumer, never
  regenerated), and
* the Session API surface (``compile(source=...)`` → ``run`` → records with
  per-statement cost breakdowns) plus the memory-budget compile cache fix.
"""

import numpy as np
import pytest

from repro.api import Session, WorkloadPoint
from repro.config import ExecutionMode, RunConfig
from repro.exceptions import CompilationError, HPFSemanticError
from repro.core.ir import build_pipeline_ir
from repro.core.pipeline import (
    CompiledWholeProgram,
    compile_gaxpy_cached,
    compile_program,
    compile_whole_program,
)
from repro.hpf.frontend import frontend_to_ir
from repro.hpf.parser import parse_program
from repro.runtime.executor import ProgramExecutor, program_reference
from repro.runtime.vm import VirtualMachine


N = 64
NPROCS = 4

TWO_STATEMENT_SOURCE = """
program pipeline
  parameter (n = 64, nprocs = 4)
  real a(n, n), b(n, n), t(n, n), d(n, n), c(n, n)
!hpf$ processors Pr(nprocs)
!hpf$ template tmpl(n)
!hpf$ distribute tmpl(block) onto Pr
!hpf$ align a(*, :) with tmpl
!hpf$ align t(*, :) with tmpl
!hpf$ align d(*, :) with tmpl
!hpf$ align c(*, :) with tmpl
!hpf$ align b(:, *) with tmpl
  do j = 1, n
    forall (k = 1 : n)
      t(:, j) = sum(a(:, k) * b(k, j))
    end forall
  end do
  c(:, :) = add(t(:, :), d(:, :))
end program
"""

TRANSPOSE_THEN_MULTIPLY_SOURCE = """
program transpose_mm
  parameter (n = 32, nprocs = 4)
  real a(n, n), u(n, n), b(n, n), c(n, n)
!hpf$ processors Pr(nprocs)
!hpf$ template tmpl(n)
!hpf$ distribute tmpl(block) onto Pr
!hpf$ align a(*, :) with tmpl
!hpf$ align u(*, :) with tmpl
!hpf$ align c(*, :) with tmpl
!hpf$ align b(:, *) with tmpl
  u(:, :) = transpose(a(:, :))
  do j = 1, n
    forall (k = 1 : n)
      c(:, j) = sum(u(:, k) * b(k, j))
    end forall
  end do
end program
"""


def _dense_inputs(program, seed=7):
    rng = np.random.default_rng(seed)
    return {
        name: rng.standard_normal(program.arrays[name].shape).astype(
            program.arrays[name].dtype
        )
        for name in program.input_arrays()
    }


# ---------------------------------------------------------------------------
# IR: statement sequences and dataflow validation
# ---------------------------------------------------------------------------
class TestMultiStatementIR:
    def test_builder_produces_two_statements(self):
        ir = build_pipeline_ir(N, NPROCS)
        assert ir.is_multi_statement()
        assert ir.input_arrays() == ("a", "b", "d")
        assert ir.intermediate_arrays() == ("t",)
        assert ir.output_arrays() == ("c",)
        assert len(ir.loop_nests[0]) == 2 and ir.loop_nests[1] == ()

    def test_statement_accessor_rejects_multi(self):
        ir = build_pipeline_ir(N, NPROCS)
        with pytest.raises(CompilationError, match="has 2 statements"):
            _ = ir.statement
        with pytest.raises(CompilationError, match="has 2 statements"):
            _ = ir.loops

    def test_statement_program_shares_descriptors(self):
        ir = build_pipeline_ir(N, NPROCS)
        sub0 = ir.statement_program(0)
        sub1 = ir.statement_program(1)
        assert sub0.arrays["t"] is ir.arrays["t"]
        assert sub1.arrays["t"] is ir.arrays["t"]
        assert sub0.statement.result.array == "t"
        assert sub1.statement.result.array == "c"

    def test_describe_lists_every_statement(self):
        text = build_pipeline_ir(N, NPROCS).describe()
        assert "sum_{k}" in text and "add(t(:, :), d(:, :))" in text


# ---------------------------------------------------------------------------
# frontend: statement sequences from source text
# ---------------------------------------------------------------------------
class TestMultiStatementFrontend:
    def test_two_statement_source_lowers(self):
        ir = frontend_to_ir(parse_program(TWO_STATEMENT_SOURCE))
        assert len(ir.statements) == 2
        assert ir.intermediate_arrays() == ("t",)

    def test_transpose_then_multiply_lowers(self):
        ir = frontend_to_ir(parse_program(TRANSPOSE_THEN_MULTIPLY_SOURCE))
        assert len(ir.statements) == 2
        assert ir.intermediate_arrays() == ("u",)

    def test_undeclared_array_message(self):
        bad = TWO_STATEMENT_SOURCE.replace(
            "c(:, :) = add(t(:, :), d(:, :))",
            "c(:, :) = add(t(:, :), q(:, :))",
        )
        with pytest.raises(
            HPFSemanticError, match="statement references undeclared array 'q'"
        ):
            frontend_to_ir(parse_program(bad))

    def test_forward_dataflow_message(self):
        bad = TWO_STATEMENT_SOURCE.replace(
            """  do j = 1, n
    forall (k = 1 : n)
      t(:, j) = sum(a(:, k) * b(k, j))
    end forall
  end do
  c(:, :) = add(t(:, :), d(:, :))""",
            """  c(:, :) = add(t(:, :), d(:, :))
  do j = 1, n
    forall (k = 1 : n)
      t(:, j) = sum(a(:, k) * b(k, j))
    end forall
  end do""",
        )
        with pytest.raises(
            CompilationError,
            match="forward dataflow: statement 1 consumes 't' before statement 2",
        ):
            frontend_to_ir(parse_program(bad))

    def test_cyclic_dataflow_message(self):
        bad = TWO_STATEMENT_SOURCE.replace(
            "c(:, :) = add(t(:, :), d(:, :))",
            "c(:, :) = add(c(:, :), d(:, :))",
        )
        with pytest.raises(
            CompilationError, match="cyclic dataflow: statement 2 .* its own result 'c'"
        ):
            frontend_to_ir(parse_program(bad))

    def test_double_assignment_message(self):
        bad = TWO_STATEMENT_SOURCE.replace(
            "c(:, :) = add(t(:, :), d(:, :))",
            "c(:, :) = add(t(:, :), d(:, :))\n  c(:, :) = add(t(:, :), d(:, :))",
        )
        with pytest.raises(
            CompilationError, match="array 'c' is assigned by more than one statement"
        ):
            frontend_to_ir(parse_program(bad))

    def test_non_conformal_slab_message(self):
        ir = frontend_to_ir(parse_program(TWO_STATEMENT_SOURCE))
        with pytest.raises(
            CompilationError,
            match="elementwise/transpose statements stream conformal slabs",
        ):
            compile_program(
                ir,
                slab_elements={"a": 1024, "b": 1024, "t": 1024, "d": 512, "c": 1024},
            )

    def test_loop_nest_still_requires_single_statement(self):
        bad = TWO_STATEMENT_SOURCE.replace(
            "      t(:, j) = sum(a(:, k) * b(k, j))\n",
            "      t(:, j) = sum(a(:, k) * b(k, j))\n"
            "      t(:, j) = sum(a(:, k) * b(k, j))\n",
        )
        with pytest.raises(HPFSemanticError, match="perfect loop nest"):
            frontend_to_ir(parse_program(bad))


# ---------------------------------------------------------------------------
# compilation: shared budget, summed cost, schedule
# ---------------------------------------------------------------------------
class TestWholeProgramCompilation:
    def test_compile_program_dispatches_to_whole_program(self):
        compiled = compile_program(build_pipeline_ir(N, NPROCS), slab_ratio=0.25)
        assert isinstance(compiled, CompiledWholeProgram)
        assert len(compiled.statements) == 2

    def test_summed_cost_equals_statement_costs(self):
        compiled = compile_program(build_pipeline_ir(N, NPROCS), slab_ratio=0.25)
        parts = compiled.statement_costs()
        assert compiled.cost.io_time == pytest.approx(sum(p.io_time for p in parts))
        assert compiled.cost.compute_time == pytest.approx(
            sum(p.compute_time for p in parts)
        )
        assert compiled.cost.comm_time == pytest.approx(sum(p.comm_time for p in parts))
        assert compiled.cost.flops == pytest.approx(sum(p.flops for p in parts))

    def test_intermediate_charged_once_in_plan(self):
        """The acceptance criterion: t is written once and read once, ever."""
        compiled = compile_program(build_pipeline_ir(N, NPROCS), slab_ratio=0.25)
        t_local = max(
            compiled.program.arrays["t"].local_size(r) for r in range(NPROCS)
        )
        t_cost = compiled.cost.arrays["t"]
        assert t_cost.write_elements == pytest.approx(t_local)  # one producer pass
        assert t_cost.fetch_elements == pytest.approx(t_local)  # one consumer pass

    def test_memory_budget_is_split_between_statements(self):
        ir = build_pipeline_ir(N, NPROCS)
        whole = compile_whole_program(ir, memory_budget_bytes=64 * 1024)
        # Each statement was compiled under half the budget: its slab
        # allocation must fit in 32 KiB of float32 elements.
        for compiled in whole.statements:
            allocated = sum(compiled.plan.allocation.values())
            assert allocated * 4 <= 32 * 1024

    def test_slab_spec_is_exclusive(self):
        ir = build_pipeline_ir(N, NPROCS)
        with pytest.raises(CompilationError, match="exactly one of"):
            compile_whole_program(ir, slab_ratio=0.25, memory_budget_bytes=1 << 20)
        with pytest.raises(CompilationError, match="exactly one of"):
            compile_whole_program(ir)

    def test_schedule_annotates_laf_reuse(self):
        compiled = compile_program(build_pipeline_ir(N, NPROCS), slab_ratio=0.25)
        schedule = compiled.schedule
        assert schedule.intermediates == ("t",)
        assert schedule.step(0).fresh_inputs == ("a", "b")
        assert schedule.step(1).laf_inputs == ("t",)
        assert schedule.step(1).fresh_inputs == ("d",)
        text = schedule.pretty()
        assert "reuse LAF written by an earlier step" in text

    def test_schedule_totals_sum_statements(self):
        compiled = compile_program(build_pipeline_ir(N, NPROCS), slab_ratio=0.25)
        totals = compiled.schedule.operation_totals()
        per_stmt = [s.node_program.operation_totals() for s in compiled.statements]
        assert totals["flops"] == pytest.approx(sum(t["flops"] for t in per_stmt))
        assert totals["read_elements:t"] == pytest.approx(
            per_stmt[1]["read_elements:t"]
        )


# ---------------------------------------------------------------------------
# execution: both modes, LAF reuse, charge accounting
# ---------------------------------------------------------------------------
class TestProgramExecution:
    def test_execute_verifies_against_oracle(self, tmp_path):
        compiled = compile_program(build_pipeline_ir(N, NPROCS), slab_ratio=0.25)
        dense = _dense_inputs(compiled.program)
        with VirtualMachine(NPROCS, compiled.params, RunConfig(scratch_dir=tmp_path)) as vm:
            result = ProgramExecutor(compiled).execute(vm, dense)
        assert result.verified is True
        reference = program_reference(compiled.program, dense)
        np.testing.assert_allclose(result.result, reference["c"], rtol=1e-4, atol=1e-3)
        assert set(result.outputs) == {"t", "c"}

    def test_estimate_matches_execute_charges(self, tmp_path):
        compiled = compile_program(build_pipeline_ir(N, NPROCS), slab_ratio=0.25)
        estimate = ProgramExecutor(compiled).estimate()
        dense = _dense_inputs(compiled.program)
        with VirtualMachine(NPROCS, compiled.params, RunConfig(scratch_dir=tmp_path)) as vm:
            execute = ProgramExecutor(compiled).execute(vm, dense)
        assert estimate.io_statistics == execute.io_statistics
        assert estimate.simulated_seconds == pytest.approx(execute.simulated_seconds)

    def test_intermediate_io_charged_exactly_once(self, tmp_path):
        """Charge accounting for the executed run, per statement.

        Statement 1 writes ``t`` (and only ``t``); statement 2 reads exactly
        one pass over ``t`` and ``d`` and writes ``c`` — nothing is
        regenerated, so the byte counters match the local array sizes
        exactly.
        """
        compiled = compile_program(build_pipeline_ir(N, NPROCS), slab_ratio=0.25)
        arrays = compiled.program.arrays
        itemsize = arrays["t"].itemsize
        local_bytes = {
            name: max(arrays[name].local_size(r) for r in range(NPROCS)) * itemsize
            for name in arrays
        }
        dense = _dense_inputs(compiled.program)
        with VirtualMachine(NPROCS, compiled.params, RunConfig(scratch_dir=tmp_path)) as vm:
            result = ProgramExecutor(compiled).execute(vm, dense)
        stmt1, stmt2 = result.statements
        # producer: one write pass over t, nothing else written
        assert stmt1["bytes_written_per_proc"] == pytest.approx(local_bytes["t"])
        # consumer: exactly one read pass over t and d — t is not regenerated
        assert stmt2["bytes_read_per_proc"] == pytest.approx(
            local_bytes["t"] + local_bytes["d"]
        )
        assert stmt2["bytes_written_per_proc"] == pytest.approx(local_bytes["c"])

    def test_transpose_then_multiply_executes(self, tmp_path):
        ir = frontend_to_ir(parse_program(TRANSPOSE_THEN_MULTIPLY_SOURCE))
        compiled = compile_program(ir, slab_ratio=0.5)
        dense = _dense_inputs(compiled.program)
        with VirtualMachine(4, compiled.params, RunConfig(scratch_dir=tmp_path)) as vm:
            result = ProgramExecutor(compiled).execute(vm, dense)
        assert result.verified is True
        reference = program_reference(compiled.program, dense)
        np.testing.assert_allclose(result.result, reference["c"], rtol=1e-4, atol=1e-3)

    def test_repeated_runs_on_one_vm_still_raise(self, tmp_path):
        """Array reuse is scoped to ProgramExecutor: independent runs on one
        VM keep the duplicate-array guard instead of reading stale data."""
        from repro.core.ir import build_elementwise_ir
        from repro.exceptions import RuntimeExecutionError
        from repro.runtime.executor import NodeProgramExecutor

        compiled = compile_program(build_elementwise_ir(16, 2), slab_ratio=0.5)
        dense = {
            "a": np.full((16, 16), 1.0, dtype="float32"),
            "b": np.full((16, 16), 1.0, dtype="float32"),
        }
        with VirtualMachine(2, compiled.params, RunConfig(scratch_dir=tmp_path)) as vm:
            NodeProgramExecutor(compiled).execute(vm, dense, verify=False)
            with pytest.raises(RuntimeExecutionError, match="already exists in this VM"):
                NodeProgramExecutor(compiled).execute(vm, dense, verify=False)

    def test_unverified_run_gathers_only_final_output(self, tmp_path):
        compiled = compile_program(build_pipeline_ir(N, NPROCS), slab_ratio=0.25)
        dense = _dense_inputs(compiled.program)
        with VirtualMachine(NPROCS, compiled.params, RunConfig(scratch_dir=tmp_path)) as vm:
            result = ProgramExecutor(compiled).execute(vm, dense, verify=False)
        assert set(result.outputs) == {"c"}  # intermediate t not materialized
        assert result.result is result.outputs["c"]

    def test_collect_outputs_gathers_intermediates(self, tmp_path):
        compiled = compile_program(build_pipeline_ir(N, NPROCS), slab_ratio=0.25)
        dense = _dense_inputs(compiled.program)
        with VirtualMachine(NPROCS, compiled.params, RunConfig(scratch_dir=tmp_path)) as vm:
            result = ProgramExecutor(compiled).execute(
                vm, dense, verify=False, collect_outputs=True
            )
        assert set(result.outputs) == {"t", "c"}

    def test_mixed_strategy_cost_label(self):
        compiled = compile_program(build_pipeline_ir(N, NPROCS), slab_ratio=0.25)
        strategies = {c.plan.strategy for c in compiled.statements}
        if len(strategies) > 1:
            assert compiled.cost.strategy is None
            assert "plan [mixed]" in compiled.cost.describe()
        else:  # pragma: no cover - depends on the cost model's choice
            assert compiled.cost.strategy in strategies

    def test_execute_requires_program_inputs(self, tmp_path):
        compiled = compile_program(build_pipeline_ir(N, NPROCS), slab_ratio=0.25)
        from repro.exceptions import RuntimeExecutionError

        with VirtualMachine(NPROCS, compiled.params, RunConfig(scratch_dir=tmp_path)) as vm:
            with pytest.raises(RuntimeExecutionError, match="missing \\['b', 'd'\\]"):
                ProgramExecutor(compiled).execute(
                    vm, {"a": np.zeros((N, N), dtype="float32")}
                )


# ---------------------------------------------------------------------------
# Session API: source programs end to end, per-statement records
# ---------------------------------------------------------------------------
class TestSessionWholeProgram:
    def test_compile_estimate_execute_roundtrip(self, tmp_path):
        session = Session(config=RunConfig(scratch_dir=tmp_path))
        compiled = session.compile(source=TWO_STATEMENT_SOURCE, slab_ratio=0.25)
        assert compiled.point.n == N and compiled.point.nprocs == NPROCS

        estimate = session.estimate(compiled)
        assert estimate.version == "program"
        assert len(estimate.statements) == 2
        assert estimate.simulated_seconds == pytest.approx(
            sum(s["seconds"] for s in estimate.statements)
        )

        record = session.execute(compiled)
        assert record.verified is True
        assert len(record.statements) == 2
        assert (record.io_requests_per_proc, record.io_read_bytes_per_proc,
                record.io_write_bytes_per_proc) == (
            estimate.io_requests_per_proc, estimate.io_read_bytes_per_proc,
            estimate.io_write_bytes_per_proc,
        )

    def test_sweep_mixes_whole_programs_and_kernels(self, tmp_path):
        session = Session(config=RunConfig(scratch_dir=tmp_path))
        points = [
            WorkloadPoint(
                "hpf", slab_ratio=0.25, options={"source": TWO_STATEMENT_SOURCE}
            ),
            WorkloadPoint("gaxpy", n=N, nprocs=NPROCS, version="row", slab_ratio=0.25),
        ]
        records = session.sweep(points, mode=ExecutionMode.EXECUTE)
        assert [r.workload for r in records] == ["hpf", "gaxpy"]
        assert all(r.verified for r in records)

    def test_record_to_dict_carries_statements(self, tmp_path):
        session = Session(config=RunConfig(scratch_dir=tmp_path))
        record = session.estimate(
            WorkloadPoint("hpf", slab_ratio=0.25, options={"source": TWO_STATEMENT_SOURCE})
        )
        flat = record.to_dict()
        assert len(flat["statements"]) == 2
        assert all("io" in s and "seconds" in s for s in flat["statements"])

    def test_memory_budget_source_compiles(self, tmp_path):
        session = Session(config=RunConfig(scratch_dir=tmp_path))
        record = session.estimate(
            WorkloadPoint(
                "hpf",
                options={"source": TWO_STATEMENT_SOURCE,
                         "memory_budget_bytes": 128 * 1024},
            )
        )
        assert record.simulated_seconds > 0


# ---------------------------------------------------------------------------
# compile cache: memory-budget points are cacheable (satellite fix)
# ---------------------------------------------------------------------------
class TestMemoryBudgetCompileCache:
    def test_budget_compiles_hit_the_cache(self):
        from repro.core.pipeline import _compile_gaxpy_cached

        before = _compile_gaxpy_cached.cache_info()
        first = compile_gaxpy_cached(48, 4, memory_budget_bytes=96 * 1024)
        second = compile_gaxpy_cached(48, 4, memory_budget_bytes=96 * 1024)
        after = _compile_gaxpy_cached.cache_info()
        assert second is first
        assert after.hits == before.hits + 1

    def test_policies_are_hashable_and_value_compared(self):
        from repro.core.memory_alloc import (
            EqualAllocation,
            ProportionalAllocation,
            SearchAllocation,
        )

        assert hash(ProportionalAllocation()) == hash(ProportionalAllocation())
        assert ProportionalAllocation() == ProportionalAllocation()
        assert hash(EqualAllocation()) == hash(EqualAllocation())
        assert SearchAllocation(fractions=5) != SearchAllocation(fractions=9)

    def test_distinct_budgets_do_not_collide(self):
        a = compile_gaxpy_cached(48, 4, memory_budget_bytes=96 * 1024)
        b = compile_gaxpy_cached(48, 4, memory_budget_bytes=192 * 1024)
        assert a is not b

    def test_unhashable_policy_falls_back_uncached(self):
        from repro.core.memory_alloc import ProportionalAllocation

        class UnhashablePolicy(ProportionalAllocation):
            __hash__ = None

        first = compile_gaxpy_cached(
            48, 4, memory_budget_bytes=96 * 1024, policy=UnhashablePolicy()
        )
        second = compile_gaxpy_cached(
            48, 4, memory_budget_bytes=96 * 1024, policy=UnhashablePolicy()
        )
        assert first is not second
        assert first.plan.strategy is second.plan.strategy
