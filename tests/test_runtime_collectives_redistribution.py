"""Direct tests for :mod:`repro.runtime.collectives` and
:mod:`repro.runtime.redistribution` (previously covered only indirectly
through the kernels)."""

import numpy as np
import pytest

from repro.config import ExecutionMode, RunConfig
from repro.exceptions import CollectiveError, RuntimeExecutionError
from repro.hpf import Alignment, ArrayDescriptor, ProcessorGrid, Template
from repro.machine import Machine
from repro.runtime import VirtualMachine, broadcast, global_sum, point_to_point
from repro.runtime.collectives import payload_bytes
from repro.runtime.redistribution import (
    arrival_layout_rows,
    redistribute_to_descriptor,
    redistribution_cost,
)


def column_block_descriptor(n, p, name="x", dtype=np.float32):
    grid = ProcessorGrid("Pr", p)
    template = Template("d", n, grid, ["block"])
    return ArrayDescriptor(name, (n, n), Alignment(template, ["*", ":"]), dtype=dtype)


# ---------------------------------------------------------------------------
# collectives
# ---------------------------------------------------------------------------
class TestPayloadBytes:
    def test_product_of_shape_times_itemsize(self):
        assert payload_bytes((4, 8), 4) == 128
        assert payload_bytes((), 8) == 8  # scalar payload


class TestGlobalSum:
    def test_sums_contributions_elementwise(self):
        machine = Machine(3)
        contributions = {rank: np.full(5, float(rank + 1)) for rank in range(3)}
        total = global_sum(machine, contributions, shape=(5,), itemsize=8)
        np.testing.assert_array_equal(total, np.full(5, 6.0))
        assert machine.network.collectives == 1
        assert machine.elapsed() > 0

    def test_estimate_mode_charges_without_data(self):
        machine = Machine(4)
        assert global_sum(machine, None, shape=(16,), itemsize=4) is None
        assert machine.network.collectives == 1
        assert machine.metrics[0].messages > 0

    def test_missing_contribution_rejected(self):
        machine = Machine(3)
        contributions = {0: np.zeros(4), 2: np.zeros(4)}
        with pytest.raises(CollectiveError, match="expected 3 contributions"):
            global_sum(machine, contributions, shape=(4,), itemsize=8)
        contributions = {0: np.zeros(4), 1: np.zeros(4), 3: np.zeros(4)}
        with pytest.raises(CollectiveError, match="missing contribution from rank 2"):
            global_sum(machine, contributions, shape=(4,), itemsize=8)

    def test_wrong_shape_rejected(self):
        machine = Machine(2)
        contributions = {0: np.zeros(4), 1: np.zeros(5)}
        with pytest.raises(CollectiveError, match="shape"):
            global_sum(machine, contributions, shape=(4,), itemsize=8)

    def test_synchronizes_clocks_before_charging(self):
        machine = Machine(2)
        machine.charge_compute(0, 1e9)  # rank 0 runs ahead
        ahead = machine.clocks[0].now
        global_sum(machine, None, shape=(4,), itemsize=8)
        # a blocking collective makes the slowest processor set the pace
        assert machine.clocks[1].now > ahead - 1e-12


class TestBroadcast:
    def test_returns_payload_and_charges_everyone(self):
        machine = Machine(4)
        data = np.arange(6, dtype=np.float64)
        out = broadcast(machine, data, shape=(6,), itemsize=8)
        np.testing.assert_array_equal(out, data)
        assert machine.network.collectives == 1
        assert all(machine.clocks[r].now > 0 for r in range(4))

    def test_estimate_mode_returns_none(self):
        machine = Machine(2)
        assert broadcast(machine, None, shape=(6,), itemsize=8) is None
        assert machine.network.collectives == 1

    def test_shape_mismatch_rejected(self):
        machine = Machine(2)
        with pytest.raises(CollectiveError, match="broadcast"):
            broadcast(machine, np.zeros(5), shape=(6,), itemsize=8)


class TestPointToPoint:
    def test_delivers_data_and_charges_both_endpoints(self):
        machine = Machine(3)
        payload = np.ones(8)
        out = point_to_point(machine, 0, 2, payload, nbytes=64)
        np.testing.assert_array_equal(out, payload)
        assert machine.metrics[0].messages == 1
        assert machine.metrics[2].messages == 1
        assert machine.metrics[1].messages == 0
        assert machine.clocks[1].now == 0.0

    def test_invalid_rank_rejected(self):
        from repro.exceptions import MachineConfigurationError

        machine = Machine(2)
        with pytest.raises(MachineConfigurationError):
            point_to_point(machine, 0, 5, None, nbytes=8)


# ---------------------------------------------------------------------------
# redistribution
# ---------------------------------------------------------------------------
class TestRedistributionCost:
    def test_per_processor_counts(self):
        desc = column_block_descriptor(32, 4)
        costs = redistribution_cost(desc)
        stripe = desc.nbytes // 4
        assert costs["read_bytes_per_proc"] == stripe
        assert costs["read_requests_per_proc"] == 1
        assert costs["alltoall_bytes_per_pair"] == stripe // 4
        assert costs["write_bytes_per_proc"] == desc.local_nbytes(0)
        assert costs["write_requests_per_proc"] == 1

    def test_arrival_layout_stripes_rows(self):
        layout = arrival_layout_rows(16, 4)
        assert layout.owner(0) == 0
        assert layout.owner(15) == 3


class TestRedistributeToDescriptor:
    def test_execute_round_trips_the_data(self, tmp_path):
        n, p = 16, 4
        desc = column_block_descriptor(n, p, name="r")
        rng = np.random.default_rng(3)
        dense = rng.standard_normal((n, n)).astype(np.float32)
        with VirtualMachine(p, None, RunConfig(scratch_dir=tmp_path)) as vm:
            array = redistribute_to_descriptor(vm, desc, dense)
            np.testing.assert_array_equal(vm.to_dense(array), dense)
            stats = vm.io_statistics()
            assert stats["io_read_requests_per_proc"] == 1
            assert stats["io_write_requests_per_proc"] == 1
            assert vm.machine.network.collectives == 1

    def test_estimate_mode_charges_the_analytic_cost(self):
        n, p = 32, 4
        desc = column_block_descriptor(n, p, name="r")
        vm = VirtualMachine(p, None, RunConfig(mode=ExecutionMode.ESTIMATE))
        redistribute_to_descriptor(vm, desc)
        costs = redistribution_cost(desc)
        stats = vm.io_statistics()
        assert stats["bytes_read_per_proc"] == costs["read_bytes_per_proc"]
        assert stats["bytes_written_per_proc"] == costs["write_bytes_per_proc"]
        assert stats["io_requests_per_proc"] == 2  # one read + one write
        assert vm.machine.network.collectives == 1
        assert vm.elapsed() > 0

    def test_execute_mode_requires_arrival_data(self, tmp_path):
        desc = column_block_descriptor(8, 2, name="r")
        with VirtualMachine(2, None, RunConfig(scratch_dir=tmp_path)) as vm:
            with pytest.raises(RuntimeExecutionError, match="arrival data"):
                redistribute_to_descriptor(vm, desc)
