"""Differential testing: every compiled program vs the in-core NumPy oracle.

The harness (:func:`assert_matches_oracle`) executes any compiled program —
single- or multi-statement, any workload, either slab strategy, any processor
count — on a real ``EXECUTE``-mode virtual machine with seeded dense inputs,
evaluates the *same statement list* in core with NumPy
(:func:`repro.runtime.executor.program_reference`), and asserts the
out-of-core numerics match within the dtype's tolerance.

This is the safety net under the whole-program refactor: any future change
to the slab loops, the exchange schedules or the LAF reuse machinery that
alters numerics fails here, against an oracle that knows nothing about slabs.
"""

import numpy as np
import pytest

from repro.config import RunConfig
from repro.core.ir import (
    build_elementwise_ir,
    build_gaxpy_ir,
    build_pipeline_ir,
    build_transpose_ir,
)
from repro.core.pipeline import CompiledWholeProgram, compile_program
from repro.hpf.frontend import frontend_to_ir
from repro.hpf.parser import parse_program
from repro.runtime.executor import (
    NodeProgramExecutor,
    ProgramExecutor,
    ReductionInputs,
    program_reference,
)
from repro.runtime.vm import VirtualMachine


# ---------------------------------------------------------------------------
# the harness
# ---------------------------------------------------------------------------
def _tolerances(dtype) -> dict:
    """Comparison tolerances scaled to the dtype's precision."""
    if np.dtype(dtype).itemsize <= 4:
        return {"rtol": 1e-3, "atol": 1e-3}
    return {"rtol": 1e-9, "atol": 1e-9}


def generate_dense_inputs(program, seed: int = 11) -> dict:
    """Seeded dense data for every program input array."""
    rng = np.random.default_rng(seed)
    return {
        name: rng.standard_normal(program.arrays[name].shape).astype(
            program.arrays[name].dtype
        )
        for name in program.input_arrays()
    }


def _single_statement_inputs(compiled, dense):
    from repro.core.ir import ReductionStatement

    statement = compiled.program.statement
    if isinstance(statement, ReductionStatement):
        analysis = compiled.analysis
        return ReductionInputs(
            streamed=dense[analysis.streamed],
            coefficient=dense[analysis.coefficient],
        )
    return dense


def assert_matches_oracle(compiled, scratch, seed: int = 11) -> dict:
    """Execute ``compiled`` and assert every output matches the NumPy oracle.

    Returns the mapping of output array name to executed dense result, so
    callers can run extra assertions.
    """
    program = compiled.program
    dense = generate_dense_inputs(program, seed)
    oracle = program_reference(program, dense)
    with VirtualMachine(
        compiled.nprocs, compiled.params, RunConfig(scratch_dir=scratch)
    ) as vm:
        if isinstance(compiled, CompiledWholeProgram):
            result = ProgramExecutor(compiled).execute(
                vm, dense, verify=False, collect_outputs=True
            )
            outputs = result.outputs
        else:
            statement = program.statement
            result = NodeProgramExecutor(compiled).execute(
                vm, _single_statement_inputs(compiled, dense), verify=False
            )
            outputs = {statement.result.array: result.result}
    for name, actual in outputs.items():
        np.testing.assert_allclose(
            actual.astype(np.float64),
            oracle[name],
            err_msg=f"array {name!r} of {program.name} diverged from the oracle",
            **_tolerances(program.arrays[name].dtype),
        )
    return outputs


# ---------------------------------------------------------------------------
# single-statement workloads x strategies x processor counts
# ---------------------------------------------------------------------------
N = 16


@pytest.mark.parametrize("nprocs", [1, 4])
@pytest.mark.parametrize("strategy", ["column", "row"])
def test_gaxpy_matches_oracle(tmp_path, nprocs, strategy):
    compiled = compile_program(
        build_gaxpy_ir(N, nprocs), slab_ratio=0.5, force_strategy=strategy
    )
    assert_matches_oracle(compiled, tmp_path)


@pytest.mark.parametrize("nprocs", [1, 4])
def test_gaxpy_cost_model_choice_matches_oracle(tmp_path, nprocs):
    compiled = compile_program(build_gaxpy_ir(N, nprocs), slab_ratio=0.25)
    assert_matches_oracle(compiled, tmp_path)


@pytest.mark.parametrize("dtype", ["float32", "float64"])
def test_gaxpy_dtypes_match_oracle(tmp_path, dtype):
    compiled = compile_program(
        build_gaxpy_ir(N, 4, dtype=dtype), slab_ratio=0.5, force_strategy="row"
    )
    assert_matches_oracle(compiled, tmp_path)


@pytest.mark.parametrize("nprocs", [1, 4])
@pytest.mark.parametrize("strategy", ["column", "row"])
@pytest.mark.parametrize("op", ["add", "multiply", "subtract"])
def test_elementwise_matches_oracle(tmp_path, nprocs, strategy, op):
    compiled = compile_program(
        build_elementwise_ir(N, nprocs, op=op), slab_ratio=0.3, force_strategy=strategy
    )
    assert_matches_oracle(compiled, tmp_path)


@pytest.mark.parametrize("nprocs", [1, 4])
def test_transpose_matches_oracle(tmp_path, nprocs):
    compiled = compile_program(build_transpose_ir(N, nprocs), slab_ratio=0.5)
    assert_matches_oracle(compiled, tmp_path)


SINGLE_OPERAND_SOURCE = """
program square
  parameter (n = 16, nprocs = 4)
  real a(n, n), c(n, n)
!hpf$ processors Pr(nprocs)
!hpf$ template tmpl(n)
!hpf$ distribute tmpl(block) onto Pr
!hpf$ align a(*, :) with tmpl
!hpf$ align c(*, :) with tmpl
  do j = 1, n
    forall (k = 1 : n)
      c(:, j) = sum(a(:, k) * a(k, j))
    end forall
  end do
end program
"""


def test_single_operand_reduction_matches_oracle(tmp_path):
    compiled = compile_program(
        frontend_to_ir(parse_program(SINGLE_OPERAND_SOURCE)), slab_ratio=0.5
    )
    assert_matches_oracle(compiled, tmp_path)


# ---------------------------------------------------------------------------
# multi-statement programs
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("nprocs", [1, 4])
@pytest.mark.parametrize("dtype", ["float32", "float64"])
def test_two_statement_pipeline_matches_oracle(tmp_path, nprocs, dtype):
    compiled = compile_program(
        build_pipeline_ir(N, nprocs, dtype=dtype), slab_ratio=0.25
    )
    assert_matches_oracle(compiled, tmp_path)


@pytest.mark.parametrize("strategy", ["column", "row"])
def test_two_statement_pipeline_both_strategies(tmp_path, strategy):
    # Forcing the reduction strategy must not change the numerics; the
    # elementwise statement accepts both slab directions too.
    compiled = compile_program(
        build_pipeline_ir(N, 4), slab_ratio=0.25, force_strategy=strategy
    )
    assert_matches_oracle(compiled, tmp_path)


THREE_STATEMENT_SOURCE = """
program chain
  parameter (n = 16, nprocs = 4)
  real a(n, n), b(n, n), t(n, n), d(n, n), u(n, n), e(n, n), c(n, n)
!hpf$ processors Pr(nprocs)
!hpf$ template tmpl(n)
!hpf$ distribute tmpl(block) onto Pr
!hpf$ align a(*, :) with tmpl
!hpf$ align t(*, :) with tmpl
!hpf$ align d(*, :) with tmpl
!hpf$ align u(*, :) with tmpl
!hpf$ align e(*, :) with tmpl
!hpf$ align c(*, :) with tmpl
!hpf$ align b(:, *) with tmpl
  do j = 1, n
    forall (k = 1 : n)
      t(:, j) = sum(a(:, k) * b(k, j))
    end forall
  end do
  u(:, :) = add(t(:, :), d(:, :))
  c(:, :) = multiply(u(:, :), e(:, :))
end program
"""


def test_three_statement_chain_matches_oracle(tmp_path):
    compiled = compile_program(
        frontend_to_ir(parse_program(THREE_STATEMENT_SOURCE)), slab_ratio=0.25
    )
    outputs = assert_matches_oracle(compiled, tmp_path)
    assert set(outputs) == {"t", "u", "c"}


TRANSPOSE_PIPELINE_SOURCE = """
program transpose_mm
  parameter (n = 16, nprocs = 4)
  real a(n, n), u(n, n), b(n, n), c(n, n)
!hpf$ processors Pr(nprocs)
!hpf$ template tmpl(n)
!hpf$ distribute tmpl(block) onto Pr
!hpf$ align a(*, :) with tmpl
!hpf$ align u(*, :) with tmpl
!hpf$ align c(*, :) with tmpl
!hpf$ align b(:, *) with tmpl
  u(:, :) = transpose(a(:, :))
  do j = 1, n
    forall (k = 1 : n)
      c(:, j) = sum(u(:, k) * b(k, j))
    end forall
  end do
end program
"""


def test_transpose_then_multiply_matches_oracle(tmp_path):
    compiled = compile_program(
        frontend_to_ir(parse_program(TRANSPOSE_PIPELINE_SOURCE)), slab_ratio=0.5
    )
    outputs = assert_matches_oracle(compiled, tmp_path)
    # u really is the transpose, c really is u @ b
    dense = generate_dense_inputs(compiled.program)
    np.testing.assert_allclose(
        outputs["u"], np.asarray(dense["a"], dtype=np.float64).T, rtol=1e-3, atol=1e-3
    )


# ---------------------------------------------------------------------------
# seeds: the harness is deterministic per seed, distinct across seeds
# ---------------------------------------------------------------------------
def test_harness_is_seed_deterministic(tmp_path):
    compiled = compile_program(build_pipeline_ir(N, 4), slab_ratio=0.25)
    first = assert_matches_oracle(compiled, tmp_path / "one", seed=3)
    second = assert_matches_oracle(compiled, tmp_path / "two", seed=3)
    np.testing.assert_array_equal(first["c"], second["c"])
    third = assert_matches_oracle(compiled, tmp_path / "three", seed=4)
    assert not np.array_equal(first["c"], third["c"])
