"""The compile-and-run service: parity, admission, cancellation, the wire.

The headline guarantee is *parity*: a record that travelled
``JobSpec -> HTTP -> JobService -> Session.run -> JSON -> RunRecord`` is
``==`` (every charged field bit-identical) to a direct ``Session.run`` of
the same point.  Everything else — admission caps, cancellation, draining,
malformed requests — is the operational shell around that guarantee.
"""

import asyncio
import json
import socket
import threading

import pytest

from repro.api import Session
from repro.api.records import RunRecord
from repro.api.workload import WorkloadPoint
from repro.config import RunConfig
from repro.service import (
    AdmissionController,
    AdmissionPolicy,
    AdmissionRejected,
    Job,
    JobService,
    JobSpec,
    JobState,
    ServiceClient,
    ServiceClosedError,
    ServiceError,
    UnknownJobError,
    point_from_json,
    point_to_json,
    serve_in_thread,
    spec_from_json,
)

SEED = 20260808

HPF_SQUARE = """
program square
  parameter (n = 64, nprocs = 4)
  real a(n, n), c(n, n)
!hpf$ processors Pr(nprocs)
!hpf$ template d(n)
!hpf$ distribute d(block) onto Pr
!hpf$ align a(*, :) with d
!hpf$ align c(*, :) with d
  do j = 1, n
    forall (k = 1 : n)
      c(:, j) = sum(a(:, k) * a(k, j))
    end forall
  end do
end program
"""


def _config(tmp_path, **overrides):
    return RunConfig(scratch_dir=tmp_path / "scratch", seed=SEED, **overrides)


def _point(workload="gaxpy", n=48, **kw):
    kw.setdefault("nprocs", 4)
    kw.setdefault("slab_ratio", 0.25)
    return WorkloadPoint(workload, n=n, **kw)


@pytest.fixture()
def service_handle(tmp_path):
    handle = serve_in_thread(JobService(config=_config(tmp_path), workers=2))
    yield handle
    handle.close()


# ---------------------------------------------------------------------------
# spec validation and wire codecs
# ---------------------------------------------------------------------------
class TestJobSpec:
    def test_needs_points(self):
        with pytest.raises(ServiceError, match="at least one"):
            JobSpec(points=())

    def test_rejects_bad_mode(self):
        with pytest.raises(ServiceError, match="mode"):
            JobSpec(points=(_point(),), mode="simulate")

    def test_rejects_negative_budgets_and_timeouts(self):
        with pytest.raises(ServiceError, match="memory_budget_bytes"):
            JobSpec(points=(_point(),), memory_budget_bytes=-1)
        with pytest.raises(ServiceError, match="scratch_bytes"):
            JobSpec(points=(_point(),), scratch_bytes=-1)
        with pytest.raises(ServiceError, match="timeout_s"):
            JobSpec(points=(_point(),), timeout_s=0)

    def test_point_roundtrip(self):
        point = _point(options={"memory_budget_bytes": 4096})
        assert point_from_json(point_to_json(point)) == point

    def test_unknown_point_field_rejected(self):
        with pytest.raises(ServiceError, match="unknown point fields"):
            point_from_json({"workload": "gaxpy", "slab_ration": 0.5})

    def test_unknown_spec_field_rejected(self):
        with pytest.raises(ServiceError, match="unknown job fields"):
            spec_from_json({"points": [point_to_json(_point())], "quota": 1})

    def test_points_xor_source(self):
        with pytest.raises(ServiceError, match="exactly one"):
            spec_from_json({})
        with pytest.raises(ServiceError, match="exactly one"):
            spec_from_json({"points": [point_to_json(_point())], "source": "x"})

    def test_memory_budget_defaults_to_largest_point_option(self):
        spec = spec_from_json({"points": [
            point_to_json(_point(options={"memory_budget_bytes": 1000})),
            point_to_json(_point(options={"memory_budget_bytes": 9000})),
        ]})
        assert spec.memory_budget_bytes == 9000


class TestLifecycle:
    def test_illegal_transition_raises(self, tmp_path):
        job = Job(1, JobSpec(points=(_point(),)), tmp_path)
        with pytest.raises(ServiceError, match="illegal transition"):
            job.advance(JobState.RUNNING)  # QUEUED cannot skip ADMITTED

    def test_terminal_states_are_final(self, tmp_path):
        job = Job(2, JobSpec(points=(_point(),)), tmp_path)
        job.advance(JobState.CANCELLED)
        assert job.terminal
        with pytest.raises(ServiceError):
            job.advance(JobState.ADMITTED)


# ---------------------------------------------------------------------------
# admission control (unit level)
# ---------------------------------------------------------------------------
class TestAdmission:
    def _job(self, tmp_path, job_id, **spec_kw):
        scratch = tmp_path / f"job-{job_id}"
        scratch.mkdir(parents=True, exist_ok=True)
        return Job(job_id, JobSpec(points=(_point(),), **spec_kw), scratch)

    def test_queue_depth_rejects(self, tmp_path):
        control = AdmissionController(AdmissionPolicy(max_queue_depth=2))
        control.check_enqueue(1, JobSpec(points=(_point(),)))
        with pytest.raises(AdmissionRejected, match="queue full"):
            control.check_enqueue(2, JobSpec(points=(_point(),)))
        assert control.rejections == 1

    def test_impossible_demand_rejects_outright(self, tmp_path):
        control = AdmissionController(AdmissionPolicy(memory_budget_bytes=100))
        with pytest.raises(AdmissionRejected, match="never be admitted"):
            control.check_enqueue(0, JobSpec(points=(_point(),),
                                             memory_budget_bytes=101))

    def test_memory_cap_defers_then_admits_after_release(self, tmp_path):
        control = AdmissionController(AdmissionPolicy(memory_budget_bytes=100))
        first = self._job(tmp_path, 1, memory_budget_bytes=60)
        second = self._job(tmp_path, 2, memory_budget_bytes=60)
        assert control.try_admit(first) is True
        assert control.try_admit(second) is False  # 120 > 100: defer
        assert control.deferrals == 1
        control.release(first)
        assert control.try_admit(second) is True
        assert control.peak_memory_in_flight <= 100

    def test_scratch_quota_counts_measured_bytes(self, tmp_path):
        control = AdmissionController(AdmissionPolicy(scratch_quota_bytes=1000))
        first = self._job(tmp_path, 1)
        vm_dir = first.scratch_dir / "vm_deadbeef"
        vm_dir.mkdir()
        (vm_dir / "slab.laf").write_bytes(b"x" * 900)
        assert control.try_admit(first) is True
        second = self._job(tmp_path, 2, scratch_bytes=200)
        assert control.try_admit(second) is False  # 900 measured + 200 declared
        control.release(first)
        assert control.try_admit(second) is True
        stats = control.stats()
        assert stats["peak_scratch_in_flight_bytes"] <= 1000

    def test_release_is_idempotent(self, tmp_path):
        control = AdmissionController(AdmissionPolicy())
        job = self._job(tmp_path, 1)
        control.release(job)
        assert control.try_admit(job) is True
        control.release(job)
        control.release(job)
        assert control.stats()["in_flight"] == 0


# ---------------------------------------------------------------------------
# end to end over HTTP
# ---------------------------------------------------------------------------
class TestServiceParity:
    def test_concurrent_multitenant_parity(self, tmp_path):
        """8 concurrent mixed-tenant jobs, all bit-identical to direct runs."""
        points = [
            _point("gaxpy", n=48),
            _point("gaxpy", n=64),
            _point("transpose", n=48),
            _point("transpose", n=64),
            _point("elementwise", n=48),
            _point("elementwise", n=64),
            _point("gaxpy", n=48, slab_ratio=0.5),
            _point("transpose", n=48, slab_ratio=0.5),
        ]
        with Session(config=_config(tmp_path / "direct")) as session:
            direct = [session.run(p, mode="execute") for p in points]

        handle = serve_in_thread(
            JobService(config=_config(tmp_path / "served"), workers=4)
        )
        try:
            client = ServiceClient(port=handle.port)
            snapshots = [None] * len(points)

            def _submit(i):
                snapshots[i] = client.submit(JobSpec(
                    points=(points[i],), tenant=f"tenant-{i % 4}"))

            threads = [threading.Thread(target=_submit, args=(i,))
                       for i in range(len(points))]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            for i, snap in enumerate(snapshots):
                final = client.wait(snap["id"])
                assert final["state"] == "done", final
                (record,) = client.records(snap["id"])
                assert record == direct[i]  # every charged field, bit-identical
            metrics = client.metrics()
            assert metrics["jobs"]["done"] == len(points)
            assert len(metrics["tenants"]) == 4
        finally:
            handle.close()

    def test_record_json_roundtrip_is_lossless(self, tmp_path):
        with Session(config=_config(tmp_path)) as session:
            record = session.run(_point(), mode="execute")
        wire = json.loads(json.dumps(record.to_json_dict()))
        assert RunRecord.from_json_dict(wire) == record

    def test_record_from_json_rejects_unknown_fields(self, tmp_path):
        with Session(config=_config(tmp_path)) as session:
            record = session.run(_point(), mode="estimate")
        wire = record.to_json_dict()
        wire["bogus"] = 1
        with pytest.raises(ValueError, match="unknown RunRecord fields"):
            RunRecord.from_json_dict(wire)


class TestServiceEndToEnd:
    def test_streaming_preserves_order(self, tmp_path, service_handle):
        client = ServiceClient(port=service_handle.port)
        spec = JobSpec(points=(_point(n=48), _point(n=64), _point("transpose")),
                       mode="estimate")
        snap = client.submit(spec)
        events = list(client.stream(snap["id"]))
        record_events, terminal = events[:-1], events[-1]
        assert [e["index"] for e in record_events] == [0, 1, 2]
        assert terminal == {"state": "done", "error": None, "records": 3}

    def test_late_stream_subscriber_replays_all_records(self, tmp_path,
                                                        service_handle):
        client = ServiceClient(port=service_handle.port)
        snap = client.submit(JobSpec(points=(_point(), _point(n=64)),
                                     mode="estimate"))
        client.wait(snap["id"])  # finish first ...
        events = list(client.stream(snap["id"]))  # ... then subscribe
        assert [e["index"] for e in events[:-1]] == [0, 1]
        assert events[-1]["state"] == "done"

    def test_cancel_queued_job_is_immediate(self, tmp_path):
        # one worker + a running job keeps the second job QUEUED
        handle = serve_in_thread(JobService(config=_config(tmp_path), workers=1))
        try:
            client = ServiceClient(port=handle.port)
            running = client.submit(JobSpec(points=(_point(n=64),) * 2))
            queued = client.submit(JobSpec(points=(_point(),)))
            cancelled = client.cancel(queued["id"])
            assert cancelled["state"] == "cancelled"
            final = client.wait(running["id"])
            assert final["state"] == "done"
        finally:
            handle.close()

    def test_cancel_mid_run_keeps_partial_records_and_reclaims_scratch(
            self, tmp_path):
        handle = serve_in_thread(JobService(config=_config(tmp_path), workers=1))
        try:
            client = ServiceClient(port=handle.port)
            snap = client.submit(JobSpec(points=(_point(),) * 3))
            job = handle.server.service.get(snap["id"])
            events = []
            for event in client.stream(snap["id"]):
                events.append(event)
                if "record" in event and event["index"] == 0:
                    client.cancel(snap["id"])
            assert events[-1]["state"] == "cancelled"
            assert 1 <= events[-1]["records"] < 3  # partial results survive
            assert not job.scratch_dir.exists()  # scratch reclaimed
        finally:
            handle.close()

    def test_admission_queues_under_cap_and_peak_never_exceeds(self, tmp_path):
        cap = 100
        service = JobService(
            config=_config(tmp_path), workers=4,
            policy=AdmissionPolicy(memory_budget_bytes=cap),
        )
        handle = serve_in_thread(service)
        try:
            client = ServiceClient(port=handle.port)
            snaps = [client.submit(JobSpec(points=(_point(),), mode="estimate",
                                           memory_budget_bytes=60))
                     for _ in range(4)]
            for snap in snaps:
                assert client.wait(snap["id"])["state"] == "done"
            stats = client.metrics()["admission"]
            assert stats["admissions"] == 4
            assert stats["deferrals"] >= 1  # two 60s never fit under 100
            assert stats["peak_memory_in_flight_bytes"] <= cap
        finally:
            handle.close()

    def test_admission_rejects_map_to_429(self, tmp_path):
        service = JobService(
            config=_config(tmp_path),
            policy=AdmissionPolicy(memory_budget_bytes=100),
        )
        handle = serve_in_thread(service)
        try:
            client = ServiceClient(port=handle.port)
            with pytest.raises(AdmissionRejected, match="never be admitted"):
                client.submit(JobSpec(points=(_point(),),
                                      memory_budget_bytes=101))
        finally:
            handle.close()

    def test_unknown_workload_is_rejected_at_submit(self, tmp_path,
                                                    service_handle):
        client = ServiceClient(port=service_handle.port)
        with pytest.raises(ServiceError, match="[Uu]nknown workload"):
            client.submit(JobSpec(points=(WorkloadPoint("nonesuch"),)))
        assert client.jobs() == []  # rejected submissions never get an id

    def test_job_failure_is_contained(self, tmp_path, service_handle):
        client = ServiceClient(port=service_handle.port)
        # valid at submit time, fails in compile: hpf program with bad syntax
        snap = client.submit_source("this is not hpf",
                                    memory_budget_bytes=1 << 20)
        final = client.wait(snap["id"])
        assert final["state"] == "failed"
        assert "HPFSyntaxError" in final["error"]
        # the service keeps serving
        ok = client.submit(JobSpec(points=(_point(),), mode="estimate"))
        assert client.wait(ok["id"])["state"] == "done"


class TestHttpSurface:
    def test_malformed_requests_get_4xx(self, service_handle):
        def _raw(payload: bytes) -> int:
            with socket.create_connection(("127.0.0.1", service_handle.port),
                                          timeout=30) as sock:
                sock.sendall(payload)
                status_line = sock.makefile("rb").readline().decode()
            return int(status_line.split()[1])

        assert _raw(b"NONSENSE\r\n\r\n") == 400  # malformed request line
        assert _raw(b"GET /nonesuch HTTP/1.1\r\n\r\n") == 404
        assert _raw(b"PUT /jobs HTTP/1.1\r\n\r\n") == 405
        assert _raw(b"POST /jobs HTTP/1.1\r\n"
                    b"Content-Length: 7\r\n\r\nnotjson") == 400
        assert _raw(b"POST /jobs HTTP/1.1\r\n"
                    b"Content-Length: 999999999\r\n\r\n") == 413
        assert _raw(b"GET /jobs/notanumber HTTP/1.1\r\n\r\n") == 404

    def test_unknown_job_is_404(self, service_handle):
        client = ServiceClient(port=service_handle.port)
        with pytest.raises(UnknownJobError):
            client.job(4242)

    def test_health_and_metrics(self, service_handle):
        client = ServiceClient(port=service_handle.port)
        assert client.health() is True
        metrics = client.metrics()
        assert metrics["queue_depth"] == 0
        assert metrics["admission"]["max_queue_depth"] == 64
        assert 0.0 <= metrics["compile_cache"]["hit_rate"] <= 1.0


# ---------------------------------------------------------------------------
# in-process asyncio behaviour: drain, timeout, shared caches
# ---------------------------------------------------------------------------
class TestServiceInProcess:
    def test_graceful_drain_finishes_queued_work(self, tmp_path):
        async def scenario():
            service = JobService(config=_config(tmp_path), workers=1)
            await service.start()
            jobs = [await service.submit(JobSpec(points=(_point(),),
                                                 mode="estimate"))
                    for _ in range(3)]
            await service.close(drain=True)  # queued jobs still run
            assert [j.state for j in jobs] == [JobState.DONE] * 3
            with pytest.raises(ServiceClosedError):
                await service.submit(JobSpec(points=(_point(),)))
            return jobs

        jobs = asyncio.run(scenario())
        assert all(not j.scratch_dir.exists() for j in jobs)

    def test_close_without_drain_cancels_queued_jobs(self, tmp_path):
        async def scenario():
            service = JobService(config=_config(tmp_path), workers=1)
            await service.start()
            first = await service.submit(JobSpec(points=(_point(),),
                                                 mode="estimate"))
            queued = [await service.submit(JobSpec(points=(_point(),)))
                      for _ in range(3)]
            await service.close(drain=False)
            return first, queued

        first, queued = asyncio.run(scenario())
        # the in-flight job ran to its boundary; the queued ones never started
        assert first.state in (JobState.DONE, JobState.CANCELLED)
        assert all(j.state is JobState.CANCELLED for j in queued)
        assert all(not j.scratch_dir.exists() for j in queued)

    def test_timeout_fails_job_and_reclaims_scratch(self, tmp_path):
        async def scenario():
            service = JobService(config=_config(tmp_path), workers=1)
            await service.start()
            job = await service.submit(JobSpec(points=(_point(n=64),),
                                               timeout_s=1e-9))
            await service.wait(job.id)
            assert job.state is JobState.FAILED
            assert job.error.startswith("JobTimeout")
            await service.close()
            return job

        job = asyncio.run(scenario())
        assert not job.scratch_dir.exists()

    def test_tenants_share_compile_and_plan_caches(self, tmp_path):
        async def scenario():
            service = JobService(
                config=_config(tmp_path), workers=2,
                plan_cache_dir=tmp_path / "plans",
            )
            await service.start()
            # a budget-compiled HPF program exercises the plan search (and
            # hence the shared plan cache), unlike descriptor workloads
            point = WorkloadPoint("hpf", options={
                "source": HPF_SQUARE, "memory_budget_bytes": 48 * 1024})
            for tenant in ("alice", "bob", "carol"):
                job = await service.submit(JobSpec(
                    points=(point,), tenant=tenant, mode="estimate"))
                await service.wait(job.id)
                assert job.state is JobState.DONE
            metrics = service.metrics()
            await service.close()
            return metrics

        metrics = asyncio.run(scenario())
        # first tenant misses, the other two hit the shared compile LRU
        assert metrics["compile_cache"]["hits"] >= 2
        assert metrics["plan_cache"]["stores"] >= 1

    def test_job_ids_are_monotonic(self, tmp_path):
        async def scenario():
            service = JobService(config=_config(tmp_path))
            await service.start()
            ids = [
                (await service.submit(JobSpec(points=(_point(),),
                                              mode="estimate"))).id
                for _ in range(5)
            ]
            await service.close()
            return ids

        ids = asyncio.run(scenario())
        assert ids == sorted(ids) and len(set(ids)) == 5
