"""Plan-cache persistence: round-trips, invalidation, graceful corruption."""

import json

import pytest

from repro.core.ir import build_pipeline_ir
from repro.core.pipeline import compile_whole_program
from repro.machine.parameters import ibm_sp1, touchstone_delta
from repro.planner import PlanCache, PlanChoice, plan_fingerprint, plan_whole_program


BUDGET = 48 * 1024


def _fingerprint(ir, params=None, **overrides):
    defaults = dict(
        memory_budget_bytes=BUDGET,
        optimizer="greedy",
        strategies=["column", "row"],
        force_strategy=None,
    )
    defaults.update(overrides)
    return plan_fingerprint(ir, params or touchstone_delta(), **defaults)


# ---------------------------------------------------------------------------
# the store itself
# ---------------------------------------------------------------------------
class TestPlanCacheStore:
    def test_memory_roundtrip(self):
        cache = PlanCache()
        choice = PlanChoice((100, 200), ("proportional", "-"))
        assert cache.lookup("k") is None
        cache.store("k", choice)
        assert cache.lookup("k") == choice
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1 and stats["stores"] == 1
        assert stats["persistent"] == 0

    def test_disk_roundtrip_across_instances(self, tmp_path):
        first = PlanCache(tmp_path)
        choice = PlanChoice((300, 100), ("equal", "-"))
        first.store("deadbeef", choice)
        # A brand-new instance over the same directory replays the winner.
        second = PlanCache(tmp_path)
        assert second.lookup("deadbeef") == choice
        assert second.stats()["hits"] == 1
        assert second.stats()["persistent"] == 1

    def test_lru_eviction_keeps_disk_copy(self, tmp_path):
        cache = PlanCache(tmp_path, capacity=1)
        cache.store("one", PlanChoice((10,), ("proportional",)))
        cache.store("two", PlanChoice((20,), ("proportional",)))
        # "one" was evicted from memory but survives on disk.
        assert cache.lookup("one") == PlanChoice((10,), ("proportional",))

    def test_corrupt_file_is_a_miss(self, tmp_path):
        cache = PlanCache(tmp_path)
        (tmp_path / "bad.json").write_text("{not json")
        assert cache.lookup("bad") is None
        assert cache.stats()["misses"] == 1

    def test_wrong_payload_version_is_a_miss(self, tmp_path):
        cache = PlanCache(tmp_path)
        (tmp_path / "old.json").write_text(
            json.dumps({"version": 0, "statement_budgets": [1], "policies": ["-"]})
        )
        assert cache.lookup("old") is None

    def test_clear_disk(self, tmp_path):
        cache = PlanCache(tmp_path)
        cache.store("gone", PlanChoice((10,), ("-",)))
        cache.clear(disk=True)
        assert PlanCache(tmp_path).lookup("gone") is None

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=0)


# ---------------------------------------------------------------------------
# concurrent-writer safety and crash recovery
# ---------------------------------------------------------------------------
class TestAtomicPersistence:
    def test_concurrent_writers_never_tear_an_entry(self, tmp_path):
        """Many threads storing the same key: the file is always whole JSON.

        Regression test: a shared ``<key>.json.tmp`` staging name let two
        writers interleave into a torn entry; per-writer ``mkstemp`` +
        ``os.replace`` makes every publish atomic.
        """
        import threading

        cache = PlanCache(tmp_path)
        choices = [PlanChoice((100 + i,), ("proportional",)) for i in range(8)]
        start = threading.Barrier(8)

        def hammer(choice):
            start.wait()
            for _ in range(25):
                cache.store("contended", choice)

        threads = [threading.Thread(target=hammer, args=(c,)) for c in choices]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        payload = json.loads((tmp_path / "contended.json").read_text())
        assert tuple(payload["statement_budgets"]) in {
            tuple(c.statement_budgets) for c in choices
        }
        # no staging files survive the dust settling
        assert list(tmp_path.glob("*.tmp")) == []

    def test_crash_mid_write_leaves_previous_entry_intact(self, tmp_path,
                                                          monkeypatch):
        import os as os_module

        cache = PlanCache(tmp_path)
        before = PlanChoice((111,), ("proportional",))
        cache.store("durable", before)

        def explode(src, dst):
            raise OSError("simulated crash between stage and publish")

        monkeypatch.setattr(os_module, "replace", explode)
        cache.store("durable", PlanChoice((999,), ("equal",)))
        monkeypatch.undo()
        # the published file still holds the previous complete entry ...
        assert PlanCache(tmp_path).lookup("durable") == before
        # ... and clear(disk=True) sweeps any orphaned staging file
        cache.clear(disk=True)
        assert list(tmp_path.glob("*.tmp")) == []

    def test_orphaned_tmp_files_are_ignored_by_lookup(self, tmp_path):
        cache = PlanCache(tmp_path)
        (tmp_path / "deadbeef-orphan.tmp").write_text("{torn")
        assert cache.lookup("deadbeef") is None

    def test_flush_rewrites_dropped_files(self, tmp_path):
        cache = PlanCache(tmp_path)
        choice = PlanChoice((42,), ("proportional",))
        cache.store("flushme", choice)
        (tmp_path / "flushme.json").unlink()  # a best-effort write "lost"
        assert cache.flush() == 1
        assert PlanCache(tmp_path).lookup("flushme") == choice

    def test_memory_only_cache_flushes_nothing(self):
        cache = PlanCache()
        cache.store("k", PlanChoice((1,), ("-",)))
        assert cache.flush() == 0


# ---------------------------------------------------------------------------
# fingerprint invalidation
# ---------------------------------------------------------------------------
class TestFingerprint:
    def test_stable_for_identical_inputs(self):
        assert _fingerprint(build_pipeline_ir(64, 4)) == _fingerprint(
            build_pipeline_ir(64, 4)
        )

    def test_changes_with_machine_parameters(self):
        ir = build_pipeline_ir(64, 4)
        assert _fingerprint(ir, touchstone_delta()) != _fingerprint(ir, ibm_sp1())

    def test_changes_with_dtype(self):
        assert _fingerprint(build_pipeline_ir(64, 4)) != _fingerprint(
            build_pipeline_ir(64, 4, dtype="float64")
        )

    def test_changes_with_processor_count(self):
        assert _fingerprint(build_pipeline_ir(64, 4)) != _fingerprint(
            build_pipeline_ir(64, 8)
        )

    def test_changes_with_budget_and_optimizer(self):
        ir = build_pipeline_ir(64, 4)
        base = _fingerprint(ir)
        assert base != _fingerprint(ir, memory_budget_bytes=BUDGET + 1)
        assert base != _fingerprint(ir, optimizer="exhaustive")
        assert base != _fingerprint(ir, force_strategy="row")


# ---------------------------------------------------------------------------
# the planner using the cache
# ---------------------------------------------------------------------------
class TestPlannerWithCache:
    def test_search_once_replay_after(self, tmp_path):
        ir = build_pipeline_ir(256, 4)
        cache = PlanCache(tmp_path)
        first, _ = plan_whole_program(
            ir, touchstone_delta(), BUDGET, optimizer="greedy", plan_cache=cache
        )
        assert first.cache_status == "miss"
        second, _ = plan_whole_program(
            ir, touchstone_delta(), BUDGET, optimizer="greedy", plan_cache=cache
        )
        assert second.cache_status == "hit"
        assert second.statement_budgets == first.statement_budgets
        assert second.policies == first.policies
        assert second.predicted_total_time == pytest.approx(first.predicted_total_time)
        # The replay skipped the search: far fewer candidates were priced.
        assert second.candidates_evaluated < first.candidates_evaluated

    def test_replay_across_processes_simulated(self, tmp_path):
        """A fresh cache instance over the same directory replays the plan."""
        ir = build_pipeline_ir(256, 4)
        searched, _ = plan_whole_program(
            ir, touchstone_delta(), BUDGET, optimizer="greedy",
            plan_cache=PlanCache(tmp_path),
        )
        replayed, _ = plan_whole_program(
            ir, touchstone_delta(), BUDGET, optimizer="greedy",
            plan_cache=PlanCache(tmp_path),
        )
        assert replayed.cache_status == "hit"
        assert replayed.statement_budgets == searched.statement_budgets

    def test_changed_machine_is_a_fresh_search(self, tmp_path):
        ir = build_pipeline_ir(256, 4)
        cache = PlanCache(tmp_path)
        plan_whole_program(
            ir, touchstone_delta(), BUDGET, optimizer="greedy", plan_cache=cache
        )
        other, _ = plan_whole_program(
            ir, ibm_sp1(), BUDGET, optimizer="greedy", plan_cache=cache
        )
        assert other.cache_status == "miss"

    def test_stale_entry_with_wrong_shape_triggers_research(self, tmp_path):
        """A cached choice that no longer matches the program is ignored."""
        ir = build_pipeline_ir(256, 4)
        cache = PlanCache(tmp_path)
        key = _fingerprint(ir)
        cache.store(key, PlanChoice((BUDGET,), ("proportional",)))  # 1 != 2 stmts
        decision, _ = plan_whole_program(
            ir, touchstone_delta(), BUDGET, optimizer="greedy", plan_cache=cache
        )
        assert decision.cache_status == "miss"
        assert len(decision.statement_budgets) == 2

    def test_compile_whole_program_threads_the_cache(self, tmp_path):
        ir = build_pipeline_ir(256, 4)
        cache = PlanCache(tmp_path)
        first = compile_whole_program(
            ir, memory_budget_bytes=BUDGET, optimizer="greedy", plan_cache=cache
        )
        second = compile_whole_program(
            ir, memory_budget_bytes=BUDGET, optimizer="greedy", plan_cache=cache
        )
        assert first.planner.cache_status == "miss"
        assert second.planner.cache_status == "hit"
        assert second.cost.total_time == pytest.approx(first.cost.total_time)
