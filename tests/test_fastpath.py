"""Tests for the fast-path execution engine.

Covers the persistent LAF memmap handles and their LRU cache, the
charge-only re-read used by the batched kernels, the parallel cached sweep
driver, and the cost-model fix for single-operand statements.
"""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.analysis.sweep import SweepPoint, sweep_gaxpy
from repro.config import ExecutionMode, RunConfig
from repro.core.cost_model import CostModel
from repro.core.pipeline import compile_gaxpy_cached
from repro.core.stripmine import SlabPlanEntry
from repro.exceptions import IOEngineError
from repro.machine import Machine
from repro.machine.parameters import touchstone_delta
from repro.runtime import (
    IOAccounting,
    IOEngine,
    LafHandleCache,
    LocalArrayFile,
    Slab,
    SlabbingStrategy,
    VirtualMachine,
)


# ---------------------------------------------------------------------------
# persistent handles and the LRU handle cache
# ---------------------------------------------------------------------------
class TestPersistentHandles:
    def test_handle_is_reused_across_accesses(self, tmp_path):
        laf = LocalArrayFile(tmp_path / "x.dat", (8, 6), np.float32)
        slab = Slab(index=0, row_start=0, row_stop=8, col_start=0, col_stop=2)
        assert not laf.handle_open
        laf.write_full(np.arange(48, dtype=np.float32).reshape(8, 6))
        assert laf.handle_open
        first = laf._mm
        laf.read_slab(slab)
        laf.read_full()
        assert laf._mm is first  # no re-open between accesses

    def test_close_flushes_and_invalidates(self, tmp_path):
        laf = LocalArrayFile(tmp_path / "x.dat", (4, 4), np.float64)
        data = np.arange(16, dtype=np.float64).reshape(4, 4)
        laf.write_full(data)  # sync=False: flushed by close()
        laf.close()
        assert not laf.handle_open
        with pytest.raises(IOEngineError):
            laf.read_full()
        on_disk = np.fromfile(tmp_path / "x.dat", dtype=np.float64).reshape(4, 4, order="F")
        np.testing.assert_array_equal(on_disk, data)

    def test_sync_writes_flush_immediately(self, tmp_path):
        laf = LocalArrayFile(tmp_path / "x.dat", (4, 4), np.float32, order="C")
        laf.write_full(np.zeros((4, 4), dtype=np.float32), sync=True)
        slab = Slab(index=0, row_start=1, row_stop=3, col_start=0, col_stop=4)
        laf.write_slab(slab, np.ones((2, 4), dtype=np.float32), sync=True)
        on_disk = np.fromfile(tmp_path / "x.dat", dtype=np.float32).reshape(4, 4)
        assert on_disk[1:3].sum() == 8

    def test_delete_invalidates_handle_and_file(self, tmp_path):
        laf = LocalArrayFile(tmp_path / "x.dat", (4, 4))
        laf.write_full(np.ones((4, 4)))
        assert laf.handle_open
        laf.delete()
        assert not laf.handle_open
        assert not laf.exists()
        with pytest.raises(IOEngineError):
            laf.read_slab(Slab(index=0, row_start=0, row_stop=1, col_start=0, col_stop=1))
        with pytest.raises(IOEngineError):
            laf.write_full(np.zeros((4, 4)))
        laf.delete()  # still idempotent

    def test_lru_cache_bounds_open_handles(self, tmp_path):
        cache = LafHandleCache(capacity=2)
        lafs = [
            LocalArrayFile(tmp_path / f"{i}.dat", (4, 4), np.float64, handle_cache=cache)
            for i in range(3)
        ]
        for i, laf in enumerate(lafs):
            laf.write_full(np.full((4, 4), float(i)))
        assert len(cache) == 2
        assert cache.evictions == 1
        assert not lafs[0].handle_open  # least recently used was evicted
        assert lafs[1].handle_open and lafs[2].handle_open
        # Evicted handle was flushed; access transparently reopens it.
        np.testing.assert_array_equal(lafs[0].read_full(), np.zeros((4, 4)))
        assert lafs[0].handle_open
        assert not lafs[1].handle_open  # reopening 0 evicted the next LRU
        for laf in lafs:
            laf.delete()
        assert len(cache) == 0

    def test_cache_rejects_silly_capacity(self):
        with pytest.raises(IOEngineError):
            LafHandleCache(capacity=0)

    def test_vm_cleanup_empties_handle_cache(self, tmp_path):
        from repro.core import compile_gaxpy
        from repro.kernels import generate_gaxpy_inputs, run_gaxpy_row_slab

        compiled = compile_gaxpy(32, 2, slab_ratio=0.5)
        vm = VirtualMachine(2, compiled.params, RunConfig(scratch_dir=tmp_path))
        run_gaxpy_row_slab(vm, compiled, generate_gaxpy_inputs(32), verify=False)
        assert len(vm.handle_cache) > 0
        vm.cleanup()
        assert len(vm.handle_cache) == 0


# ---------------------------------------------------------------------------
# LAF slab round-trips in both storage orders
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("order", ["F", "C"])
def test_slab_round_trip_preserves_data_in_both_orders(tmp_path, order):
    laf = LocalArrayFile(tmp_path / "x.dat", (8, 6), np.float64, order=order)
    rng = np.random.default_rng(7)
    data = rng.standard_normal((8, 6))
    laf.write_full(data)
    expected = data.copy()
    for slab in (
        Slab(index=0, row_start=0, row_stop=8, col_start=1, col_stop=3),  # whole columns
        Slab(index=1, row_start=2, row_stop=4, col_start=0, col_stop=6),  # whole rows
        Slab(index=2, row_start=1, row_stop=5, col_start=2, col_stop=5),  # interior block
    ):
        np.testing.assert_array_equal(laf.read_slab(slab), expected[slab.row_slice, slab.col_slice])
        patch = rng.standard_normal(slab.shape)
        laf.write_slab(slab, patch)
        expected[slab.row_slice, slab.col_slice] = patch
    laf.close()
    reopened = LocalArrayFile(tmp_path / "x.dat", (8, 6), np.float64, order=order)
    np.testing.assert_array_equal(reopened.read_full(), expected)


@pytest.mark.parametrize("order,whole_cols,whole_rows,interior", [
    ("F", 1, 6, 3),   # column-major: whole columns contiguous, else one extent per column
    ("C", 8, 1, 4),   # row-major: whole rows contiguous, else one extent per row
])
def test_contiguous_chunk_counts_by_order(tmp_path, order, whole_cols, whole_rows, interior):
    laf = LocalArrayFile(tmp_path / "x.dat", (8, 6), np.float64, order=order)
    assert laf.contiguous_chunks(Slab(index=0, row_start=0, row_stop=8, col_start=1, col_stop=3)) == whole_cols
    assert laf.contiguous_chunks(Slab(index=1, row_start=2, row_stop=4, col_start=0, col_stop=6)) == whole_rows
    assert laf.contiguous_chunks(Slab(index=2, row_start=1, row_stop=5, col_start=2, col_stop=5)) == interior


# ---------------------------------------------------------------------------
# charge-only re-reads match real reads exactly
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("accounting", [IOAccounting.PER_SLAB, IOAccounting.PER_CHUNK])
def test_charge_read_slab_matches_real_read(tmp_path, accounting):
    slab = Slab(index=0, row_start=0, row_stop=3, col_start=0, col_stop=8)
    machines = [Machine(2), Machine(2)]
    for i, machine in enumerate(machines):
        engine = IOEngine(machine, accounting=accounting)
        laf = LocalArrayFile(tmp_path / f"{i}.dat", (8, 8), np.float32)
        laf.write_full(np.zeros((8, 8), dtype=np.float32))
        if i == 0:
            engine.read_slab(1, laf, slab)
        else:
            engine.charge_read_slab(1, laf, slab)
    real, charged = machines
    assert real.metrics[1].io_read_requests == charged.metrics[1].io_read_requests
    assert real.metrics[1].bytes_read == charged.metrics[1].bytes_read
    assert real.clocks.elapsed() == charged.clocks.elapsed()


def test_charge_fetch_is_free_when_icla_holds_the_slab(tmp_path):
    """charge_fetch must mirror fetch_slab: an ICLA hit costs nothing."""
    from repro.core.ir import build_gaxpy_ir

    program = build_gaxpy_ir(16, 2)
    descriptor = program.arrays["a"]
    vm = VirtualMachine(2, None, RunConfig(scratch_dir=tmp_path))
    array = vm.create_array(
        descriptor,
        initial=np.zeros((16, 16), dtype=descriptor.dtype),
        icla_elements=256,
    )
    ocla = array.local(0)
    rows = descriptor.local_shape(0)[0]
    held = Slab(index=0, row_start=0, row_stop=rows, col_start=0, col_stop=2)
    other = Slab(index=1, row_start=0, row_stop=rows, col_start=2, col_stop=4)
    ocla.fetch_slab(held)  # charged once, loads the ICLA
    reads = vm.machine.metrics[0].io_read_requests
    ocla.charge_fetch(held)  # ICLA hit: fetch_slab would be free, so is this
    assert vm.machine.metrics[0].io_read_requests == reads
    ocla.charge_fetch(other)  # not resident: charged like a real re-read
    assert vm.machine.metrics[0].io_read_requests == reads + 1
    vm.cleanup()


# ---------------------------------------------------------------------------
# parallel cached sweep driver
# ---------------------------------------------------------------------------
def _sweep_grid():
    return [
        SweepPoint(n=n, nprocs=p, version=version, slab_ratio=0.5)
        for n, p in ((32, 2), (64, 4))
        for version in ("column", "row", "incore")
    ]


def test_parallel_execute_sweep_matches_sequential(tmp_path):
    config = RunConfig(scratch_dir=tmp_path)
    sequential = sweep_gaxpy(_sweep_grid(), mode=ExecutionMode.EXECUTE, config=config)
    parallel = sweep_gaxpy(_sweep_grid(), mode=ExecutionMode.EXECUTE, config=config, workers=4)
    assert len(sequential) == len(parallel) == 6
    for seq, par in zip(sequential, parallel, strict=True):
        assert set(seq) == set(par)
        for field in seq:
            if isinstance(seq[field], float) and np.isnan(seq[field]):
                assert np.isnan(par[field]), field
            else:
                assert seq[field] == par[field], field


def test_parallel_estimate_sweep_matches_sequential():
    sequential = sweep_gaxpy(_sweep_grid())
    parallel = sweep_gaxpy(_sweep_grid(), workers=4)
    for seq, par in zip(sequential, parallel, strict=True):
        for field in seq:
            if isinstance(seq[field], float) and np.isnan(seq[field]):
                assert np.isnan(par[field]), field
            else:
                assert seq[field] == par[field], field


def test_compile_cache_shares_programs():
    params = touchstone_delta()
    one = compile_gaxpy_cached(64, 4, params, slab_ratio=0.25, force_strategy="row")
    two = compile_gaxpy_cached(64, 4, params, slab_ratio=0.25,
                               force_strategy=SlabbingStrategy.ROW)
    other = compile_gaxpy_cached(64, 4, params, slab_ratio=0.5, force_strategy="row")
    assert one is two
    assert other is not one
    assert one.plan.strategy is SlabbingStrategy.ROW


# ---------------------------------------------------------------------------
# cost model: single-operand (coefficient == streamed) statements
# ---------------------------------------------------------------------------
def _entry(name, strategy, local_shape, num_slabs, lines):
    return SlabPlanEntry(
        array=name,
        strategy=strategy,
        slab_elements=lines * (local_shape[0] if strategy is SlabbingStrategy.COLUMN
                               else local_shape[1]),
        local_shape=local_shape,
        num_slabs=num_slabs,
        lines_per_slab=lines,
        storage_order="F" if strategy is SlabbingStrategy.COLUMN else "C",
    )


@pytest.mark.parametrize("strategy", [SlabbingStrategy.COLUMN, SlabbingStrategy.ROW])
def test_single_operand_statement_keeps_coefficient_reread_cost(strategy):
    analysis = SimpleNamespace(
        streamed="a", coefficient="a", result="c",
        outer_loop=SimpleNamespace(extent=16),
    )
    entries = {
        "a": _entry("a", strategy, (16, 8), num_slabs=4, lines=2),
        "c": _entry("c", strategy, (16, 8), num_slabs=4, lines=2),
    }
    model = CostModel(touchstone_delta(), nprocs=4)
    costs = model._counts(analysis, strategy, entries)
    assert set(costs) == {"a", "c"}
    merged = costs["a"]
    local = 16.0 * 8.0
    if strategy is SlabbingStrategy.COLUMN:
        # streamed role: refetched per result column; coefficient role: once.
        assert merged.fetch_requests == 16 * 4 + 4
        assert merged.fetch_elements == 16 * local + local
    else:
        # streamed role: each slab once; coefficient role: once per streamed slab.
        assert merged.fetch_requests == 4 + 4 * 4
        assert merged.fetch_elements == local + 4 * local
