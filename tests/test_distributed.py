"""The process-parallel EXECUTE backend: charge parity, failure handling, sweeps.

The backend's whole contract is that running a point with one OS process per
rank changes *nothing* about the record — every charged statistic must be
bit-identical to the single-process simulator.  The differential matrix here
compares full records field-by-field (only ``unix_time`` is exempt) across
workload kinds, processor counts, dtypes and start methods.  The rest of the
file covers the failure path (a SIGKILLed rank worker must surface as a
clean :class:`DistributedExecutionError` with its scratch reclaimed), the
process-pool sweep, and the reaper's live-owner protection.
"""

import json
import multiprocessing
import os

import numpy as np
import pytest

from repro.api.session import Session
from repro.api.workload import WorkloadPoint, get_workload
from repro.config import ExecutionMode, RunConfig
from repro.exceptions import DistributedExecutionError, WorkloadError
from repro.machine.parameters import MachineParameters
from repro.resilience.faults import FaultPolicy
from repro.resilience.reaper import OWNER_FILE, reap_scratch, write_owner_file
from repro.runtime.distributed import (
    SHM_THRESHOLD_BYTES,
    PipeTransport,
    default_start_method,
    execute_distributed,
)
from repro.runtime.vm import VirtualMachine

PROGRAM_SOURCE = """
program pipeline
  parameter (n = 64, nprocs = 4)
  real a(n, n), b(n, n), t(n, n), d(n, n), c(n, n)
!hpf$ processors Pr(nprocs)
!hpf$ template tmpl(n)
!hpf$ distribute tmpl(block) onto Pr
!hpf$ align a(*, :) with tmpl
!hpf$ align t(*, :) with tmpl
!hpf$ align d(*, :) with tmpl
!hpf$ align c(*, :) with tmpl
!hpf$ align b(:, *) with tmpl
  do j = 1, n
    forall (k = 1 : n)
      t(:, j) = sum(a(:, k) * b(k, j))
    end forall
  end do
  c(:, :) = add(t(:, :), d(:, :))
end program
"""

FUSABLE_SOURCE = """
program pair
  parameter (n = 16, nprocs = 4)
  real a(n, n), b(n, n), t(n, n), d(n, n), c(n, n)
!hpf$ processors Pr(nprocs)
!hpf$ template tmpl(n)
!hpf$ distribute tmpl(block) onto Pr
!hpf$ align a(*, :) with tmpl
!hpf$ align b(*, :) with tmpl
!hpf$ align t(*, :) with tmpl
!hpf$ align d(*, :) with tmpl
!hpf$ align c(*, :) with tmpl
  t(:, :) = add(a(:, :), b(:, :))
  c(:, :) = multiply(t(:, :), d(:, :))
end program
"""


def run_config(tmp_path, **kwargs):
    return RunConfig(mode=ExecutionMode.EXECUTE, scratch_dir=tmp_path, **kwargs)


def comparable(record):
    out = record.to_dict()
    out.pop("unix_time", None)
    return out


def simulated_record(compiled, config, verify=True):
    with VirtualMachine(compiled.nprocs, compiled.params, config) as vm:
        return compiled.execute(vm, verify=verify)


# ---------------------------------------------------------------------------
# charge parity: the differential matrix
# ---------------------------------------------------------------------------
MATRIX = [
    pytest.param(
        WorkloadPoint("gaxpy", n=64, nprocs=4, slab_ratio=0.25, version="column"),
        id="gaxpy-column-f32-p4",
    ),
    pytest.param(
        WorkloadPoint("gaxpy", n=64, nprocs=4, slab_ratio=0.25, version="row",
                      dtype="float64"),
        id="gaxpy-row-f64-p4",
    ),
    pytest.param(
        WorkloadPoint("gaxpy", n=64, nprocs=1, slab_ratio=0.25, version="column"),
        id="gaxpy-column-f32-p1",
    ),
    pytest.param(
        WorkloadPoint("gaxpy", n=32, nprocs=4, version="incore"),
        id="gaxpy-incore-p4",
    ),
    pytest.param(
        WorkloadPoint("transpose", n=64, nprocs=4, slab_ratio=0.25),
        id="transpose-p4",
    ),
    pytest.param(
        WorkloadPoint("elementwise", n=64, nprocs=4, slab_ratio=0.25,
                      dtype="float64"),
        id="elementwise-f64-p4",
    ),
    pytest.param(
        WorkloadPoint("hpf", slab_ratio=0.25, options={"source": PROGRAM_SOURCE}),
        id="hpf-two-statement-p4",
    ),
    pytest.param(
        WorkloadPoint("hpf", slab_ratio=0.25,
                      options={"source": FUSABLE_SOURCE, "fusion": "on"}),
        id="hpf-fused-p4",
    ),
]


class TestChargeParity:
    @pytest.mark.parametrize("point", MATRIX)
    def test_record_bit_identical_to_simulator(self, tmp_path, point):
        params = MachineParameters()
        compiled = get_workload(point.workload).compile(point, params)
        config = run_config(tmp_path)
        sim = simulated_record(compiled, config)
        dist = execute_distributed(compiled, config, verify=True)
        assert comparable(dist) == comparable(sim)
        assert dist.verified is True
        assert not list(tmp_path.glob("vm_*")), "distributed scratch leaked"

    @pytest.mark.parametrize("method", ["fork", "spawn"])
    def test_start_methods_agree(self, tmp_path, method):
        if method not in multiprocessing.get_all_start_methods():
            pytest.skip(f"start method {method!r} unavailable")
        point = WorkloadPoint("gaxpy", n=64, nprocs=4, slab_ratio=0.25,
                              version="column")
        compiled = get_workload("gaxpy").compile(point, MachineParameters())
        config = run_config(tmp_path)
        sim = simulated_record(compiled, config)
        dist = execute_distributed(compiled, config, verify=True,
                                   start_method=method)
        assert comparable(dist) == comparable(sim)

    def test_transient_faults_match_simulator(self, tmp_path):
        """Rank-local injection sums to the simulator's global fault counts."""
        point = WorkloadPoint("gaxpy", n=64, nprocs=4, slab_ratio=0.25,
                              version="column")
        compiled = get_workload("gaxpy").compile(point, MachineParameters())
        policy = FaultPolicy(read_error_rate=0.05, write_error_rate=0.02, seed=3)
        config = run_config(tmp_path, fault_policy=policy)
        sim = simulated_record(compiled, config)
        dist = execute_distributed(compiled, config, verify=True)
        assert comparable(dist) == comparable(sim)
        assert sim.resilience["retries"] > 0, "the policy injected nothing"

    def test_session_backend_routes_execute(self, tmp_path):
        point = WorkloadPoint("gaxpy", n=64, nprocs=4, slab_ratio=0.25,
                              version="column")
        sim = Session(config=run_config(tmp_path)).run(point, mode="execute")
        dist = Session(config=run_config(tmp_path),
                       backend="processes").run(point, mode="execute")
        assert comparable(dist) == comparable(sim)

    def test_session_estimate_stays_analytic(self, tmp_path):
        point = WorkloadPoint("gaxpy", n=64, nprocs=4, slab_ratio=0.25,
                              version="column")
        session = Session(config=run_config(tmp_path), backend="processes")
        record = session.run(point, mode="estimate")
        assert record.mode == "estimate" and record.simulated_seconds > 0


# ---------------------------------------------------------------------------
# failure handling
# ---------------------------------------------------------------------------
class TestWorkerFailure:
    def test_sigkilled_rank_worker_surfaces_and_reclaims_scratch(self, tmp_path):
        """SIGKILL on one rank: clean error, peers torn down, no scratch left."""
        point = WorkloadPoint("hpf", slab_ratio=0.25,
                              options={"source": PROGRAM_SOURCE})
        compiled = get_workload("hpf").compile(point, MachineParameters())
        policy = FaultPolicy(crash_after_statement=1, crash_rank=1)
        config = run_config(tmp_path, fault_policy=policy)
        with pytest.raises(DistributedExecutionError) as excinfo:
            execute_distributed(compiled, config, verify=True)
        assert excinfo.value.rank == 1
        assert excinfo.value.exitcode is not None
        assert not list(tmp_path.glob("vm_*")), "failed run leaked scratch"

    def test_worker_exception_ships_traceback(self, tmp_path, monkeypatch):
        """A raising worker reports its traceback instead of a bare exit code."""
        import repro.runtime.distributed.worker as worker_mod

        point = WorkloadPoint("gaxpy", n=64, nprocs=2, slab_ratio=0.25,
                              version="column")
        compiled = get_workload("gaxpy").compile(point, MachineParameters())

        def boom(rank, nprocs, spec, transport):
            raise RuntimeError("deliberate worker failure")

        # fork inherits the patched module, so every worker raises on entry
        monkeypatch.setattr(worker_mod, "_run", boom)
        with pytest.raises(DistributedExecutionError,
                           match="deliberate worker failure"):
            execute_distributed(compiled, run_config(tmp_path), verify=True,
                                start_method="fork")
        assert not list(tmp_path.glob("vm_*"))

    def test_session_rejects_resume_on_processes_backend(self, tmp_path):
        session = Session(config=run_config(tmp_path), backend="processes")
        point = WorkloadPoint("gaxpy", n=64, nprocs=4, slab_ratio=0.25,
                              version="column")
        with pytest.raises(WorkloadError, match="resume"):
            session.run(point, mode="execute", resume=tmp_path / "vm_dead")

    def test_session_rejects_corruption_injection(self, tmp_path):
        config = run_config(tmp_path,
                            fault_policy=FaultPolicy(bitflip_rate=0.5, seed=1))
        session = Session(config=config, backend="processes")
        point = WorkloadPoint("gaxpy", n=64, nprocs=4, slab_ratio=0.25,
                              version="column")
        with pytest.raises(WorkloadError, match="corruption"):
            session.run(point, mode="execute")

    def test_session_validates_backend_and_start_method(self, tmp_path):
        with pytest.raises(WorkloadError, match="backend"):
            Session(config=run_config(tmp_path), backend="mpi")
        with pytest.raises(WorkloadError, match="start_method"):
            Session(config=run_config(tmp_path), backend="processes",
                    start_method="teleport")

    def test_default_start_method_is_available(self):
        assert default_start_method() in multiprocessing.get_all_start_methods()


# ---------------------------------------------------------------------------
# transport
# ---------------------------------------------------------------------------
def _transport_child(peers, conn):
    transport = PipeTransport(1, 2, peers)
    try:
        small = transport.broadcast_from(None, 0)
        big = transport.broadcast_from(None, 0)
        conn.send((small, float(big[0]), float(big[-1]), big.nbytes))
    finally:
        transport.close()
        conn.close()


class TestPipeTransport:
    def test_broadcast_inline_and_shared_memory(self):
        """Payloads below and above the shm threshold arrive intact."""
        ctx = multiprocessing.get_context("fork")
        a_end, b_end = ctx.Pipe(True)
        parent_conn, child_conn = ctx.Pipe(False)
        proc = ctx.Process(target=_transport_child,
                           args=({0: b_end}, child_conn), daemon=True)
        proc.start()
        b_end.close()
        child_conn.close()
        transport = PipeTransport(0, 2, {1: a_end})
        try:
            big = np.arange(SHM_THRESHOLD_BYTES // 8 + 16, dtype=np.float64)
            transport.broadcast_from({"answer": 42}, 0)
            transport.broadcast_from(big, 0)
            small, first, last, nbytes = parent_conn.recv()
        finally:
            transport.close()
            proc.join(timeout=10)
        assert small == {"answer": 42}
        assert (first, last) == (float(big[0]), float(big[-1]))
        assert nbytes == big.nbytes and nbytes >= SHM_THRESHOLD_BYTES


# ---------------------------------------------------------------------------
# sweeps
# ---------------------------------------------------------------------------
class TestProcessSweep:
    POINTS = [
        WorkloadPoint("gaxpy", n=32, nprocs=4, slab_ratio=0.25, version="column"),
        WorkloadPoint("gaxpy", n=64, nprocs=4, slab_ratio=0.25, version="column"),
        WorkloadPoint("elementwise", n=32, nprocs=4, slab_ratio=0.25),
    ]

    def test_process_pool_matches_sequential(self, tmp_path):
        sequential = Session(config=run_config(tmp_path)).sweep(
            self.POINTS, mode="execute"
        )
        pooled = Session(config=run_config(tmp_path), backend="processes").sweep(
            self.POINTS, mode="execute", workers=2
        )
        assert [comparable(r) for r in pooled] == [comparable(r) for r in sequential]
        assert pooled.summary["points"] == len(self.POINTS)

    def test_workers_must_be_positive(self, tmp_path):
        session = Session(config=run_config(tmp_path))
        for workers in (0, -1):
            with pytest.raises(WorkloadError, match="workers must be at least 1"):
                session.sweep(self.POINTS[:1], workers=workers)

    def test_error_records_counted_under_error_bucket(self, tmp_path):
        good = self.POINTS[0]
        bad = WorkloadPoint("hpf", slab_ratio=0.25,
                            options={"source": "not a program"})
        result = Session(config=run_config(tmp_path)).sweep(
            [good, bad], mode="estimate", on_error="skip"
        )
        assert result.summary["failed"] == 1
        assert result.summary["optimizers"]["error"] == 1
        assert "error" not in (result[0].plan.get("optimizer"),)
        assert result[1].error is not None

    def test_error_record_carries_requested_optimizer(self, tmp_path):
        bad = WorkloadPoint("hpf", slab_ratio=0.25,
                            options={"source": "not a program"})
        result = Session(config=run_config(tmp_path), optimize="beam").sweep(
            [bad], mode="estimate", on_error="skip", optimize="greedy"
        )
        assert result[0].plan == {"optimizer": "greedy"}
        result = Session(config=run_config(tmp_path), optimize="beam").sweep(
            [bad], mode="estimate", on_error="skip"
        )
        assert result[0].plan == {"optimizer": "beam"}

    def test_process_sweep_skip_converts_failures(self, tmp_path):
        bad = WorkloadPoint("hpf", slab_ratio=0.25,
                            options={"source": "not a program"})
        session = Session(config=run_config(tmp_path), backend="processes")
        result = session.sweep([self.POINTS[0], bad, self.POINTS[1]],
                               mode="estimate", workers=2, on_error="skip")
        assert [r.error is None for r in result] == [True, False, True]
        assert result.summary["optimizers"]["error"] == 1


# ---------------------------------------------------------------------------
# the reaper's live-owner protection
# ---------------------------------------------------------------------------
class TestReaperOwnership:
    def make_stale_dir(self, tmp_path, name="vm_stale"):
        victim = tmp_path / name
        victim.mkdir()
        (victim / "slab.bin").write_bytes(b"x" * 16)
        old = 1.0  # epoch — ancient by any max-age
        os.utime(victim / "slab.bin", (old, old))
        os.utime(victim, (old, old))
        return victim

    def test_live_owner_is_never_reaped(self, tmp_path):
        victim = self.make_stale_dir(tmp_path)
        write_owner_file(victim)  # this process: alive by construction
        os.utime(victim / OWNER_FILE, (1.0, 1.0))
        os.utime(victim, (1.0, 1.0))
        assert reap_scratch(tmp_path, max_age_s=0.0) == []
        assert victim.exists()

    def test_dead_owner_is_reaped(self, tmp_path):
        victim = self.make_stale_dir(tmp_path)
        ctx = multiprocessing.get_context("fork")
        proc = ctx.Process(target=lambda: None)
        proc.start()
        proc.join()
        (victim / OWNER_FILE).write_text(
            json.dumps({"pid": proc.pid, "started_unix": 1.0})
        )
        os.utime(victim / OWNER_FILE, (1.0, 1.0))
        os.utime(victim, (1.0, 1.0))
        assert reap_scratch(tmp_path, max_age_s=0.0) == [victim]
        assert not victim.exists()

    def test_unreadable_owner_file_falls_back_to_age(self, tmp_path):
        victim = self.make_stale_dir(tmp_path)
        (victim / OWNER_FILE).write_text("not json")
        os.utime(victim / OWNER_FILE, (1.0, 1.0))
        os.utime(victim, (1.0, 1.0))
        assert reap_scratch(tmp_path, max_age_s=0.0) == [victim]

    def test_vm_writes_owner_file(self, tmp_path):
        config = run_config(tmp_path)
        with VirtualMachine(2, MachineParameters(), config) as vm:
            owner = json.loads((vm.work_dir / OWNER_FILE).read_text())
            assert owner["pid"] == os.getpid()

    def test_distributed_job_dir_carries_owner_file(self, tmp_path):
        """The parent stamps the job dir so a concurrent reaper skips it."""
        point = WorkloadPoint("gaxpy", n=32, nprocs=2, slab_ratio=0.25,
                              version="column")
        compiled = get_workload("gaxpy").compile(point, MachineParameters())
        config = run_config(tmp_path, keep_files=True)
        execute_distributed(compiled, config, verify=True)
        job_dirs = list(tmp_path.glob("vm_*"))
        assert job_dirs and (job_dirs[0] / OWNER_FILE).exists()
