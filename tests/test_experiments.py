"""Integration tests for the experiment harness (scaled-down configurations).

The paper-scale shape assertions live in ``benchmarks/``; here the harness is
exercised end to end at small sizes, including the execute mode where the
arithmetic is really performed and verified.
"""

import math

import pytest

from repro.analysis.io_cost import paper_io_costs
from repro.analysis.report import format_markdown_table, format_table, format_time
from repro.analysis.sweep import SweepPoint, run_gaxpy_point, sweep_gaxpy
from repro.config import ExecutionMode, RunConfig
from repro.exceptions import CostModelError, ExperimentError
from repro.experiments import (
    Figure10Config,
    MemoryAllocationAblationConfig,
    PrefetchAblationConfig,
    StorageOrderAblationConfig,
    Table1Config,
    Table2Config,
    run_figure10,
    run_memory_allocation_ablation,
    run_prefetch_ablation,
    run_storage_order_ablation,
    run_table1,
    run_table2,
)


# ---------------------------------------------------------------------------
# analytic helpers
# ---------------------------------------------------------------------------
class TestIOCostFormulas:
    def test_paper_numbers(self):
        costs = paper_io_costs(1024, 16, 16384)
        assert costs["column"]["T_fetch"] == pytest.approx(1024 ** 3 / (16384 * 16))
        assert costs["column"]["T_data"] == pytest.approx(1024 ** 3 / 16)
        assert costs["row"]["T_fetch"] == pytest.approx(1024 ** 2 / (16384 * 16))
        assert costs["row"]["T_data"] == pytest.approx(1024 ** 2 / 16)

    def test_column_to_row_ratio_is_n(self):
        n, p, m = 512, 8, 8192
        costs = paper_io_costs(n, p, m)
        assert costs["column"]["T_data"] / costs["row"]["T_data"] == pytest.approx(n)

    def test_validation(self):
        with pytest.raises(CostModelError):
            paper_io_costs(0, 4, 16)
        with pytest.raises(CostModelError):
            paper_io_costs(64, 4, 10 ** 9)


class TestReportFormatting:
    def test_format_table_aligns_columns(self):
        table = format_table(["a", "bb"], [[1, 2], [333, 4]], title="t")
        lines = table.splitlines()
        assert lines[0] == "t"
        assert all(len(line) == len(lines[1]) for line in lines[1:])

    def test_markdown_table(self):
        md = format_markdown_table(["x", "y"], [[1, 2]])
        assert md.splitlines()[1] == "|---|---|"

    def test_format_time(self):
        assert format_time(1.234567) == "1.23"


# ---------------------------------------------------------------------------
# sweep driver
# ---------------------------------------------------------------------------
class TestSweep:
    def test_invalid_version_rejected(self):
        with pytest.raises(ExperimentError):
            SweepPoint(n=64, nprocs=4, version="diagonal", slab_ratio=0.5)

    def test_out_of_core_point_needs_slab_spec(self):
        with pytest.raises(ExperimentError):
            SweepPoint(n=64, nprocs=4, version="row")

    def test_estimate_and_execute_agree_on_io_counters(self, tmp_path):
        point = SweepPoint(n=64, nprocs=4, version="row", slab_ratio=0.25)
        estimate = run_gaxpy_point(point, mode=ExecutionMode.ESTIMATE)
        execute = run_gaxpy_point(
            point, mode=ExecutionMode.EXECUTE, config=RunConfig(scratch_dir=tmp_path)
        )
        assert execute["io_requests_per_proc"] == pytest.approx(
            estimate["io_requests_per_proc"], rel=0.05
        )
        assert execute["verified"] == 1.0

    def test_sweep_returns_one_record_per_point(self):
        points = [
            SweepPoint(n=64, nprocs=2, version=v, slab_ratio=0.5) for v in ("column", "row")
        ] + [SweepPoint(n=64, nprocs=2, version="incore")]
        records = sweep_gaxpy(points)
        assert len(records) == 3
        assert {r["version"] for r in records} == {"column", "row", "incore"}

    def test_point_label(self):
        point = SweepPoint(n=64, nprocs=4, version="row", slab_ratio=0.5)
        assert "row" in point.label()


# ---------------------------------------------------------------------------
# figures / tables at scaled-down size (execute mode)
# ---------------------------------------------------------------------------
class TestFigure10:
    def test_scaled_down_execute(self, tmp_path, monkeypatch):
        monkeypatch.setenv("TMPDIR", str(tmp_path))
        config = Figure10Config().scaled_down()
        result = run_figure10(config)
        assert set(result["series"].keys()) == set(config.processor_counts)
        for series in result["series"].values():
            assert len(series) == len(config.slab_ratios)
            times = [t for _, t in sorted(series, key=lambda x: x[0], reverse=True)]
            assert all(t2 >= t1 * 0.999 for t1, t2 in zip(times, times[1:], strict=False))
        assert "Figure 10" in result["table"]


class TestTable1:
    def test_scaled_down_execute(self, tmp_path, monkeypatch):
        monkeypatch.setenv("TMPDIR", str(tmp_path))
        config = Table1Config().scaled_down()
        result = run_table1(config)
        cells = result["cells"]
        for nprocs in config.processor_counts:
            for ratio in config.slab_ratios:
                assert cells[(ratio, nprocs, "row")] < cells[(ratio, nprocs, "column")]
            assert cells[("incore", nprocs)] <= cells[(max(config.slab_ratios), nprocs, "row")] * 1.01
        assert all(s > 1 for s in result["speedups"].values())
        assert "Table 1" in result["table"]

    def test_paper_reference_included_at_full_scale_only(self):
        small = run_table1(Table1Config(n=64, processor_counts=(2,), slab_ratios=(1.0,)))
        assert small["paper"] is None


class TestTable2:
    def test_scaled_down_execute(self, tmp_path, monkeypatch):
        monkeypatch.setenv("TMPDIR", str(tmp_path))
        config = Table2Config().scaled_down()
        result = run_table2(config)
        best = result["best"]
        assert best["vary_a"]["time"] <= best["vary_b"]["time"] * 1.001
        assert len(result["rows"]) == 2 * len(config.varied_lines)
        assert "Table 2" in result["table"]

    def test_lines_to_elements(self):
        config = Table2Config(n=2048, nprocs=16)
        assert config.lines_to_elements("a", 256) == 256 * 128


# ---------------------------------------------------------------------------
# ablations
# ---------------------------------------------------------------------------
class TestAblations:
    def test_memory_allocation_policies_ordered(self):
        result = run_memory_allocation_ablation(
            MemoryAllocationAblationConfig(n=512, nprocs=8, memory_budget_bytes=64 * 1024)
        )
        rows = {r["policy"]: r for r in result["rows"]}
        assert rows["search"]["predicted_total_time"] <= rows["equal"]["predicted_total_time"] * 1.001
        assert rows["proportional"]["slab_a_elements"] >= rows["proportional"]["slab_b_elements"]

    def test_storage_order_inflation(self):
        result = run_storage_order_ablation(StorageOrderAblationConfig(n=256, nprocs=4))
        assert result["request_inflation"] > 1
        matched, mismatched = result["rows"]
        assert mismatched["read_time"] > matched["read_time"]

    def test_prefetch_savings_monotone_in_efficiency(self):
        result = run_prefetch_ablation(PrefetchAblationConfig(n=256, nprocs=4))
        savings = [r["savings"] for r in result["rows"]]
        assert savings == sorted(savings)
        assert math.isclose(savings[0], 0.0, abs_tol=1e-9)
