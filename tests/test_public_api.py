"""Smoke tests for the package-level public API and configuration objects."""


import repro
from repro.config import ExecutionMode, RunConfig, default_config


class TestPackageExports:
    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_top_level_names(self):
        for name in (
            "Machine",
            "ProcessorGrid",
            "Template",
            "Alignment",
            "ArrayDescriptor",
            "compile_gaxpy",
            "compile_program",
            "compile_source",
            "VirtualMachine",
            "NodeProgramExecutor",
            "RunConfig",
            "ExecutionMode",
            "ReproError",
            "Session",
            "WorkloadPoint",
            "CompiledWorkload",
            "RunRecord",
            "Workload",
            "register_workload",
            "get_workload",
            "available_workloads",
        ):
            assert hasattr(repro, name), f"repro.{name} missing"
            assert name in repro.__all__

    def test_end_to_end_through_top_level_names(self, tmp_path):
        compiled = repro.compile_gaxpy(32, 2, slab_ratio=0.5)
        from repro.kernels import generate_gaxpy_inputs

        inputs = generate_gaxpy_inputs(32)
        with repro.VirtualMachine(2, compiled.params, RunConfig(scratch_dir=tmp_path)) as vm:
            result = repro.NodeProgramExecutor(compiled).execute(vm, inputs)
        assert result.verified is True

    def test_end_to_end_through_session_api(self, tmp_path):
        session = repro.Session(config=RunConfig(scratch_dir=tmp_path))
        point = repro.WorkloadPoint("gaxpy", n=32, nprocs=2, version="row", slab_ratio=0.5)
        assert session.run(point, mode="execute").verified is True
        assert set(repro.available_workloads()) >= {"gaxpy", "transpose", "elementwise", "hpf"}


class TestRunConfig:
    def test_defaults(self):
        config = default_config()
        assert config.mode is ExecutionMode.EXECUTE
        assert config.verify is True
        assert config.seed == 1994

    def test_string_mode_accepted(self):
        assert RunConfig(mode="estimate").mode is ExecutionMode.ESTIMATE

    def test_with_mode(self):
        config = default_config()
        other = config.with_mode("estimate")
        assert other.mode is ExecutionMode.ESTIMATE
        assert config.mode is ExecutionMode.EXECUTE

    def test_ensure_scratch_dir(self, tmp_path):
        config = RunConfig(scratch_dir=tmp_path / "nested" / "laf")
        path = config.ensure_scratch_dir()
        assert path.is_dir()
