"""Mutation tests for the static plan verifier.

One test class per defect class in the taxonomy
(:mod:`repro.check.report`): each hand-builds a *bad* node program or plan
exhibiting exactly that defect and asserts the verifier reports it under the
stable finding code — and that the minimally-repaired twin verifies clean.
The differential matrix (``test_check_differential.py``) proves real compiled
plans pass; these tests prove broken plans *fail*.
"""

import dataclasses
import math

import pytest

from repro.check import (
    ChargeLedger,
    CheckReport,
    Severity,
    check_collective_alignment,
    check_compiled,
    check_node_program,
)
from repro.core.cost_model import ArrayIOCost, PlanCost
from repro.core.ir import build_gaxpy_ir
from repro.core.node_program import (
    AllToAllOp,
    ComputeOp,
    GlobalSumOp,
    IOReadOp,
    IOWriteOp,
    LoopOp,
    NodeProgram,
    OwnerStoreOp,
)
from repro.core.pipeline import compile_program
from repro.core.reorganize import AccessPlan
from repro.core.stripmine import SlabPlanEntry
from repro.exceptions import PlanVerificationError
from repro.runtime.slab import SlabbingStrategy

ITEMSIZE = 4


# ---------------------------------------------------------------------------
# fixture plumbing: hand-built plans with deliberately uneven slabs
# ---------------------------------------------------------------------------
def make_entry(name, local_shape=(8, 5), lines_per_slab=2,
               strategy=SlabbingStrategy.COLUMN):
    rows, cols = local_shape
    per_line = rows if strategy is SlabbingStrategy.COLUMN else cols
    lines = cols if strategy is SlabbingStrategy.COLUMN else rows
    return SlabPlanEntry(
        array=name,
        strategy=strategy,
        slab_elements=per_line * lines_per_slab,
        local_shape=local_shape,
        num_slabs=math.ceil(lines / lines_per_slab),
        lines_per_slab=lines_per_slab,
        storage_order="F" if strategy is SlabbingStrategy.COLUMN else "C",
    )


def make_plan(*entries, cost=None):
    table = {entry.array: entry for entry in entries}
    if cost is None:
        cost = PlanCost(
            strategy=SlabbingStrategy.COLUMN,
            arrays={},
            flops=0.0,
            collective_count=0.0,
            collective_elements_each=0.0,
            itemsize=ITEMSIZE,
            nprocs=4,
            io_time=0.0,
            compute_time=0.0,
            comm_time=0.0,
        )
    return AccessPlan(
        strategy=SlabbingStrategy.COLUMN,
        entries=table,
        allocation={name: e.slab_elements * ITEMSIZE for name, e in table.items()},
        cost=cost,
    )


def stream_and_flush(a, c):
    """The canonical clean shape: one read pass over ``a``, one write pass
    over ``c``, two flops per streamed element."""
    return NodeProgram("unit", "column-slab", [
        LoopOp("l", a.num_slabs, [
            IOReadOp("a", "slab", float(a.slab_elements)),
            ComputeOp("work", 2.0 * a.slab_elements, per_slab_of="a"),
        ], slabs_of="a"),
        LoopOp("w", c.num_slabs, [
            IOWriteOp("c", "slab", float(c.slab_elements)),
        ], slabs_of="c"),
    ])


def run_check(program, plan, *, nprocs=4, initialized=("a",), budget=None):
    return check_node_program(
        program, plan, itemsize=ITEMSIZE, nprocs=nprocs,
        initialized=initialized, budget_bytes=budget, statement="unit",
    )


def codes(findings):
    return [f.code for f in findings]


# ---------------------------------------------------------------------------
# the clean walk is *exact* on uneven slabs
# ---------------------------------------------------------------------------
class TestCleanWalk:
    def test_no_findings_and_exact_ledger(self):
        # 5 columns in slabs of 2: the third slab holds only one line, so a
        # nominal count (3 slabs x 16 elements) would charge 48 — the exact
        # walk must charge the true local size, 40.
        a, c = make_entry("a"), make_entry("c")
        ledger, findings = run_check(stream_and_flush(a, c), make_plan(a, c))
        assert findings == []
        traffic = ledger.arrays["a"]
        assert traffic.read_requests == 3
        assert traffic.read_elements == 40  # not 3 x 16 = 48
        assert ledger.arrays["c"].write_elements == 40
        assert ledger.flops == 80  # 2 flops x 40 streamed elements

    def test_paired_slab_line_loops_collapse_to_total_lines(self):
        # A lines_of loop nested in its slabs_of partner enumerates each of
        # the 5 lines exactly once, not 3 x 2 = 6 times.
        a, c = make_entry("a"), make_entry("c")
        program = NodeProgram("unit", "column-slab", [
            LoopOp("l", a.num_slabs, [
                IOReadOp("a", "slab", float(a.slab_elements)),
                LoopOp("m", a.lines_per_slab, [
                    GlobalSumOp(8.0, target="column"),
                    OwnerStoreOp("c"),
                ], lines_of="a"),
            ], slabs_of="a"),
            LoopOp("w", c.num_slabs, [
                IOWriteOp("c", "slab", float(c.slab_elements)),
            ], slabs_of="c"),
        ])
        ledger, findings = run_check(program, make_plan(a, c))
        assert findings == []
        assert ledger.global_sum_count == 5  # one per line, exactly
        assert ledger.global_sum_elements == 40

    def test_congruent_slab_loop_aligns_other_arrays(self):
        # The fused elementwise loop enumerates slabs of all arrays in
        # lockstep; operand reads under a loop annotated for the *result*
        # must still telescope to each operand's exact local size.
        a, b, c = make_entry("a"), make_entry("b"), make_entry("c")
        program = NodeProgram("unit", "column-slab", [
            LoopOp("l", c.num_slabs, [
                IOReadOp("a", "slab", float(a.slab_elements)),
                IOReadOp("b", "slab", float(b.slab_elements)),
                ComputeOp("op", float(c.slab_elements), per_slab_of="c"),
                IOWriteOp("c", "slab", float(c.slab_elements)),
            ], slabs_of="c"),
        ])
        ledger, findings = run_check(program, make_plan(a, b, c),
                                     initialized=("a", "b"))
        assert findings == []
        assert ledger.arrays["a"].read_elements == 40
        assert ledger.arrays["b"].read_elements == 40
        assert ledger.arrays["c"].write_elements == 40


# ---------------------------------------------------------------------------
# budget-overflow
# ---------------------------------------------------------------------------
class TestBudgetOverflow:
    def test_resident_slabs_over_budget(self):
        a, c = make_entry("a"), make_entry("c")  # 2 x 16 elements x 4 bytes
        _, findings = run_check(stream_and_flush(a, c), make_plan(a, c),
                                budget=64)
        assert "budget-overflow" in codes(findings)

    def test_one_line_floor_is_not_an_overflow(self):
        # The strip-miner cannot slice below one line per array; a budget
        # smaller than that floor is legitimately overshot.
        a = make_entry("a", lines_per_slab=1)
        c = make_entry("c", lines_per_slab=1)
        _, findings = run_check(stream_and_flush(a, c), make_plan(a, c),
                                budget=16)
        assert findings == []

    def test_sufficient_budget_is_clean(self):
        a, c = make_entry("a"), make_entry("c")
        _, findings = run_check(stream_and_flush(a, c), make_plan(a, c),
                                budget=4096)
        assert findings == []


# ---------------------------------------------------------------------------
# read-before-write
# ---------------------------------------------------------------------------
class TestReadBeforeWrite:
    def test_unstaged_read_is_flagged(self):
        a, c = make_entry("a"), make_entry("c")
        _, findings = run_check(stream_and_flush(a, c), make_plan(a, c),
                                initialized=())
        assert codes(findings) == ["read-before-write"]

    def test_read_after_write_is_clean(self):
        a, c = make_entry("a"), make_entry("c")
        program = NodeProgram("unit", "column-slab", [
            LoopOp("w", c.num_slabs,
                   [IOWriteOp("c", "slab", float(c.slab_elements))],
                   slabs_of="c"),
            LoopOp("r", c.num_slabs,
                   [IOReadOp("c", "slab", float(c.slab_elements))],
                   slabs_of="c"),
        ])
        _, findings = run_check(program, make_plan(a, c), initialized=())
        assert findings == []


# ---------------------------------------------------------------------------
# double-write
# ---------------------------------------------------------------------------
class TestDoubleWrite:
    def test_flushing_every_slab_twice_is_flagged(self):
        a, c = make_entry("a"), make_entry("c")
        flush = LoopOp("w", c.num_slabs,
                       [IOWriteOp("c", "slab", float(c.slab_elements))],
                       slabs_of="c")
        program = NodeProgram("unit", "column-slab", [flush, flush])
        _, findings = run_check(program, make_plan(a, c))
        assert "double-write" in codes(findings)

    def test_single_flush_is_clean(self):
        a, c = make_entry("a"), make_entry("c")
        _, findings = run_check(stream_and_flush(a, c), make_plan(a, c))
        assert findings == []


# ---------------------------------------------------------------------------
# collective-mismatch (the statically detected deadlock)
# ---------------------------------------------------------------------------
class TestCollectiveMismatch:
    def _program(self, total):
        return NodeProgram("unit", "column-slab", [
            LoopOp("l", 3, [GlobalSumOp(float(total), target="col")]),
        ])

    def test_diverging_rank_is_flagged(self):
        ranks = [self._program(8), self._program(8), self._program(16),
                 self._program(8)]
        findings = check_collective_alignment(ranks)
        assert codes(findings) == ["collective-mismatch"]
        assert findings[0].severity is Severity.ERROR

    def test_rank_missing_a_collective_is_flagged(self):
        silent = NodeProgram("unit", "column-slab", [LoopOp("l", 3, [])])
        findings = check_collective_alignment([self._program(8), silent])
        assert codes(findings) == ["collective-mismatch"]

    def test_spmd_replicas_match(self):
        assert check_collective_alignment([self._program(8)] * 4) == []

    def test_loop_structure_matters_but_empty_loops_do_not(self):
        # An extra collective-free loop must not break alignment ...
        padded = NodeProgram("unit", "column-slab", [
            LoopOp("x", 7, []),
            LoopOp("l", 3, [GlobalSumOp(8.0, target="col")]),
        ])
        assert check_collective_alignment([self._program(8), padded]) == []
        # ... but a different trip count around a collective must.
        slower = NodeProgram("unit", "column-slab", [
            LoopOp("l", 4, [GlobalSumOp(8.0, target="col")]),
        ])
        findings = check_collective_alignment([self._program(8), slower])
        assert codes(findings) == ["collective-mismatch"]


# ---------------------------------------------------------------------------
# ledger-drift
# ---------------------------------------------------------------------------
class TestLedgerDrift:
    def _cost(self, **overrides):
        base = dict(
            strategy=SlabbingStrategy.COLUMN,
            arrays={
                "a": ArrayIOCost("a", fetch_requests=3, fetch_elements=40,
                                 write_requests=0, write_elements=0),
                "c": ArrayIOCost("c", fetch_requests=0, fetch_elements=0,
                                 write_requests=3, write_elements=40),
            },
            flops=80.0,
            collective_count=0.0,
            collective_elements_each=0.0,
            itemsize=ITEMSIZE,
            nprocs=4,
            io_time=0.0,
            compute_time=0.0,
            comm_time=0.0,
        )
        base.update(overrides)
        return PlanCost(**base)

    def _ledger(self):
        a, c = make_entry("a"), make_entry("c")
        ledger, findings = run_check(stream_and_flush(a, c), make_plan(a, c))
        assert findings == []
        return ledger

    def test_exact_agreement_has_no_problems(self):
        assert self._ledger().compare_plan_cost(self._cost()) == []

    def test_flop_drift_is_reported(self):
        problems = self._ledger().compare_plan_cost(self._cost(flops=81.0))
        assert any("flops" in p for p in problems)

    def test_io_drift_is_reported_per_array_and_field(self):
        wrong = self._cost()
        wrong.arrays["a"] = ArrayIOCost("a", fetch_requests=4,
                                        fetch_elements=48, write_requests=0,
                                        write_elements=0)
        problems = self._ledger().compare_plan_cost(wrong)
        assert any(p.startswith("a.fetch_requests") for p in problems)
        assert any(p.startswith("a.fetch_elements") for p in problems)

    def test_phantom_cost_array_is_reported(self):
        wrong = self._cost()
        wrong.arrays["ghost"] = ArrayIOCost("ghost", 1, 16, 0, 0)
        problems = self._ledger().compare_plan_cost(wrong)
        assert any(p.startswith("ghost.") for p in problems)

    def test_collective_drift_is_reported(self):
        problems = self._ledger().compare_plan_cost(
            self._cost(collective_count=5.0, collective_elements_each=8.0))
        assert any("collective_count" in p for p in problems)
        assert any("collective_elements" in p for p in problems)


# ---------------------------------------------------------------------------
# structural defects: malformed-loop / malformed-plan / unknown-array
# ---------------------------------------------------------------------------
class TestStructuralDefects:
    def test_slab_loop_trip_contradicting_plan(self):
        a, c = make_entry("a"), make_entry("c")
        program = NodeProgram("unit", "column-slab", [
            LoopOp("l", a.num_slabs + 1,
                   [IOReadOp("a", "slab", float(a.slab_elements))],
                   slabs_of="a"),
        ])
        _, findings = run_check(program, make_plan(a, c))
        assert "malformed-loop" in codes(findings)

    def test_line_loop_outside_any_slab_loop(self):
        a, c = make_entry("a"), make_entry("c")
        program = NodeProgram("unit", "column-slab", [
            LoopOp("m", a.lines_per_slab, [OwnerStoreOp("c")], lines_of="a"),
        ])
        _, findings = run_check(program, make_plan(a, c))
        assert "malformed-loop" in codes(findings)

    def test_doubly_annotated_loop(self):
        a, c = make_entry("a"), make_entry("c")
        program = NodeProgram("unit", "column-slab", [
            LoopOp("l", a.num_slabs, [], slabs_of="a", lines_of="a"),
        ])
        _, findings = run_check(program, make_plan(a, c))
        assert "malformed-loop" in codes(findings)

    def test_io_on_unplanned_array(self):
        a, c = make_entry("a"), make_entry("c")
        program = NodeProgram("unit", "column-slab", [
            LoopOp("l", a.num_slabs,
                   [IOReadOp("ghost", "slab", 16.0)], slabs_of="a"),
        ])
        _, findings = run_check(program, make_plan(a, c),
                                initialized=("a", "ghost"))
        assert "unknown-array" in codes(findings)

    def test_loop_over_unplanned_array(self):
        a, c = make_entry("a"), make_entry("c")
        program = NodeProgram("unit", "column-slab", [
            LoopOp("l", 3, [], slabs_of="ghost"),
        ])
        _, findings = run_check(program, make_plan(a, c))
        assert "unknown-array" in codes(findings)

    def test_inconsistent_plan_entry(self):
        a, c = make_entry("a"), make_entry("c")
        broken = dataclasses.replace(a, slab_elements=a.slab_elements - 1)
        _, findings = run_check(stream_and_flush(broken, c),
                                make_plan(broken, c))
        assert "malformed-plan" in codes(findings)


# ---------------------------------------------------------------------------
# collective gating and conventions
# ---------------------------------------------------------------------------
class TestCollectiveConventions:
    def _sum_program(self, a, c):
        return NodeProgram("unit", "column-slab", [
            LoopOp("l", 5, [GlobalSumOp(4.0, target="col")]),
        ])

    def test_uniprocessor_charges_no_collectives(self):
        # The executor skips collectives when nprocs == 1 and the cost model
        # charges none; the symbolic walk must agree.
        a, c = make_entry("a"), make_entry("c")
        ledger, _ = run_check(self._sum_program(a, c), make_plan(a, c),
                              nprocs=1)
        assert ledger.collective_count == 0
        assert ledger.collective_elements_total == 0

    def test_multiprocessor_global_sums(self):
        a, c = make_entry("a"), make_entry("c")
        ledger, _ = run_check(self._sum_program(a, c), make_plan(a, c),
                              nprocs=4)
        assert ledger.global_sum_count == 5
        assert ledger.collective_count == 5  # machine-level == per-rank
        assert ledger.collective_elements_total == 20

    def test_all_to_all_scales_with_nprocs(self):
        # Each rank's slab loop triggers its own exchange, so the machine
        # performs nprocs x the per-rank count (the PlanCost convention).
        a, c = make_entry("a"), make_entry("c")
        program = NodeProgram("unit", "column-slab", [
            LoopOp("l", a.num_slabs, [
                AllToAllOp(float(a.slab_elements), per_slab_of="a"),
            ], slabs_of="a"),
        ])
        ledger, _ = run_check(program, make_plan(a, c), nprocs=4)
        assert ledger.all_to_all_count == a.num_slabs
        assert ledger.collective_count == 4 * a.num_slabs
        # per-pair payload telescopes to the exact local size, 40 not 48
        assert ledger.all_to_all_elements == 40
        assert ledger.collective_elements_total == 160


# ---------------------------------------------------------------------------
# check_compiled end to end: a real plan, then a mutated one
# ---------------------------------------------------------------------------
class TestCheckCompiled:
    def test_real_compiled_plan_verifies_clean(self):
        compiled = compile_program(build_gaxpy_ir(16, 4), slab_ratio=0.5)
        report = check_compiled(compiled)
        assert report.ok, report.describe()
        assert report.checked_statements == 1
        assert report.ledger is not None
        assert report.ledger.compare_plan_cost(compiled.plan.cost) == []

    def test_mutated_node_program_fails_with_ledger_drift(self):
        compiled = compile_program(build_gaxpy_ir(16, 4), slab_ratio=0.5)
        # Drop the flush loop: the result is never written and every charge
        # the cost model attributes to it goes missing from the ledger.
        broken = NodeProgram(
            compiled.node_program.name,
            compiled.node_program.strategy,
            compiled.node_program.ops[:-1],
        )
        report = check_compiled(dataclasses.replace(compiled, node_program=broken))
        assert not report.ok
        assert "ledger-drift" in report.codes()

    def test_report_summary_shape(self):
        compiled = compile_program(build_gaxpy_ir(16, 4), slab_ratio=0.5)
        summary = check_compiled(compiled).summary()
        assert summary["ok"] is True
        assert summary["errors"] == 0
        assert summary["statements"] == 1

    def test_verification_error_carries_report(self):
        report = CheckReport(findings=(), checked_statements=1)
        error = PlanVerificationError("nope", report=report)
        assert error.report is report
        assert isinstance(error, Exception)


# ---------------------------------------------------------------------------
# the ledger's merge arithmetic
# ---------------------------------------------------------------------------
class TestLedgerMerge:
    def test_add_accumulates_all_channels(self):
        first = ChargeLedger(itemsize=4, nprocs=4)
        first.traffic("a").read_requests = 2
        first.flops = 10
        first.global_sum_count = 1
        second = ChargeLedger(itemsize=4, nprocs=4)
        second.traffic("a").read_requests = 3
        second.traffic("b").write_elements = 7
        second.flops = 5
        second.all_to_all_count = 2
        first.add(second)
        assert first.arrays["a"].read_requests == 5
        assert first.arrays["b"].write_elements == 7
        assert first.flops == 15
        assert first.collective_count == 1 + 4 * 2

    def test_add_rejects_mismatched_machine_shape(self):
        with pytest.raises(ValueError):
            ChargeLedger(itemsize=4, nprocs=4).add(
                ChargeLedger(itemsize=8, nprocs=4))
