"""Correctness and consistency tests for the executable GAXPY kernels."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import ExecutionMode, RunConfig
from repro.core import compile_gaxpy
from repro.exceptions import RuntimeExecutionError
from repro.kernels import (
    GaxpyInputs,
    generate_gaxpy_inputs,
    gaxpy_reference,
    run_gaxpy_column_slab,
    run_gaxpy_incore,
    run_gaxpy_row_slab,
    run_compiled_gaxpy,
)
from repro.runtime import NodeProgramExecutor, VirtualMachine
from repro.runtime.slab import SlabbingStrategy


def make_vm(nprocs, params, tmp_path, mode=ExecutionMode.EXECUTE):
    return VirtualMachine(nprocs, params, RunConfig(scratch_dir=tmp_path, mode=mode))


# ---------------------------------------------------------------------------
# reference and inputs
# ---------------------------------------------------------------------------
class TestReference:
    def test_reference_equals_numpy_matmul(self):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((16, 16))
        b = rng.standard_normal((16, 16))
        np.testing.assert_allclose(gaxpy_reference(a, b), a @ b, rtol=1e-10)

    def test_inputs_are_reproducible(self):
        one = generate_gaxpy_inputs(32, seed=7)
        two = generate_gaxpy_inputs(32, seed=7)
        np.testing.assert_array_equal(one.streamed, two.streamed)
        assert one.n == 32


# ---------------------------------------------------------------------------
# numerical correctness of every program version
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("runner", [run_gaxpy_column_slab, run_gaxpy_row_slab, run_gaxpy_incore])
@pytest.mark.parametrize("n,p,ratio", [(32, 2, 0.5), (64, 4, 0.25), (48, 4, 1.0)])
def test_versions_match_dense_reference(tmp_path, runner, n, p, ratio):
    compiled = compile_gaxpy(n, p, slab_ratio=ratio)
    inputs = generate_gaxpy_inputs(n)
    with make_vm(p, compiled.params, tmp_path) as vm:
        result = runner(vm, compiled, inputs)
    assert result.verified is True
    reference = gaxpy_reference(inputs.streamed, inputs.coefficient)
    np.testing.assert_allclose(result.result, reference, rtol=2e-3, atol=1e-3)


def test_all_versions_agree_with_each_other(tmp_path):
    n, p = 64, 4
    compiled = compile_gaxpy(n, p, slab_ratio=0.25)
    inputs = generate_gaxpy_inputs(n)
    results = {}
    for name, runner in [("column", run_gaxpy_column_slab), ("row", run_gaxpy_row_slab),
                         ("incore", run_gaxpy_incore)]:
        with make_vm(p, compiled.params, tmp_path / name) as vm:
            results[name] = runner(vm, compiled, inputs).result
    np.testing.assert_allclose(results["column"], results["row"], rtol=1e-4, atol=1e-4)
    np.testing.assert_allclose(results["column"], results["incore"], rtol=1e-4, atol=1e-4)


# ---------------------------------------------------------------------------
# I/O accounting matches the compiler's predictions
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("strategy,runner", [
    (SlabbingStrategy.COLUMN, run_gaxpy_column_slab),
    (SlabbingStrategy.ROW, run_gaxpy_row_slab),
])
def test_executed_io_counts_match_cost_model(tmp_path, strategy, runner):
    n, p, ratio = 64, 4, 0.25
    compiled = compile_gaxpy(n, p, slab_ratio=ratio, force_strategy=strategy)
    inputs = generate_gaxpy_inputs(n)
    with make_vm(p, compiled.params, tmp_path) as vm:
        result = runner(vm, compiled, inputs, verify=False)
    predicted = compiled.plan.cost
    # read requests per processor
    predicted_reads = sum(c.fetch_requests for c in predicted.arrays.values())
    assert result.io_statistics["io_read_requests_per_proc"] == pytest.approx(predicted_reads, rel=0.01)
    # bytes read per processor
    itemsize = compiled.program.arrays["a"].itemsize
    predicted_bytes = sum(c.fetch_elements for c in predicted.arrays.values()) * itemsize
    assert result.io_statistics["bytes_read_per_proc"] == pytest.approx(predicted_bytes, rel=0.01)


def test_row_slab_does_order_of_magnitude_less_io(tmp_path):
    n, p, ratio = 64, 4, 0.125
    compiled = compile_gaxpy(n, p, slab_ratio=ratio)
    inputs = generate_gaxpy_inputs(n)
    with make_vm(p, compiled.params, tmp_path / "c") as vm:
        column = run_gaxpy_column_slab(vm, compiled, inputs, verify=False)
    with make_vm(p, compiled.params, tmp_path / "r") as vm:
        row = run_gaxpy_row_slab(vm, compiled, inputs, verify=False)
    # At the full 1K size the ratio is ~N; at this test size it is still several-fold.
    assert column.io_statistics["bytes_read_per_proc"] > 5 * row.io_statistics["bytes_read_per_proc"]
    assert column.io_statistics["io_read_requests_per_proc"] > 5 * row.io_statistics["io_read_requests_per_proc"]
    assert column.simulated_seconds > row.simulated_seconds


def test_estimate_mode_charges_without_files(tmp_path):
    compiled = compile_gaxpy(64, 4, slab_ratio=0.25, force_strategy="row")
    with make_vm(4, compiled.params, tmp_path, mode=ExecutionMode.ESTIMATE) as vm:
        result = run_gaxpy_row_slab(vm, compiled, None, verify=False)
    assert result.result is None
    assert result.simulated_seconds > 0
    assert not list(tmp_path.rglob("*.dat"))


def test_executor_estimate_matches_kernel_charges(tmp_path):
    """The bulk estimator and the loop-by-loop estimate-mode kernel agree closely."""
    compiled = compile_gaxpy(64, 4, slab_ratio=0.25, force_strategy="column")
    with make_vm(4, compiled.params, tmp_path, mode=ExecutionMode.ESTIMATE) as vm:
        kernel_estimate = run_gaxpy_column_slab(vm, compiled, None, verify=False)
    bulk = NodeProgramExecutor(compiled).estimate()
    assert bulk.simulated_seconds == pytest.approx(kernel_estimate.simulated_seconds, rel=0.05)
    assert bulk.io_statistics["io_requests_per_proc"] == pytest.approx(
        kernel_estimate.io_statistics["io_requests_per_proc"], rel=0.05
    )


# ---------------------------------------------------------------------------
# executor dispatch and validation
# ---------------------------------------------------------------------------
class TestExecutor:
    def test_dispatches_to_chosen_strategy(self, tmp_path):
        compiled = compile_gaxpy(48, 4, slab_ratio=0.5)  # optimizer picks row slabs
        inputs = generate_gaxpy_inputs(48)
        with make_vm(4, compiled.params, tmp_path) as vm:
            result = NodeProgramExecutor(compiled).execute(vm, inputs)
        assert result.strategy == "row-slab"
        assert result.verified is True

    def test_execute_requires_execute_mode(self, tmp_path):
        compiled = compile_gaxpy(32, 2, slab_ratio=0.5)
        with make_vm(2, compiled.params, tmp_path, mode=ExecutionMode.ESTIMATE) as vm:
            with pytest.raises(RuntimeExecutionError):
                NodeProgramExecutor(compiled).execute(vm, generate_gaxpy_inputs(32))

    def test_execute_rejects_foreign_inputs(self, tmp_path):
        compiled = compile_gaxpy(32, 2, slab_ratio=0.5)
        with make_vm(2, compiled.params, tmp_path) as vm:
            with pytest.raises(RuntimeExecutionError):
                NodeProgramExecutor(compiled).execute(vm, object())

    def test_estimate_describe(self):
        compiled = compile_gaxpy(128, 8, slab_ratio=0.25)
        result = NodeProgramExecutor(compiled).estimate()
        assert "estimate" in result.describe()

    def test_run_compiled_dispatcher(self, tmp_path):
        compiled = compile_gaxpy(32, 2, slab_ratio=0.5, force_strategy="column")
        inputs = generate_gaxpy_inputs(32)
        with make_vm(2, compiled.params, tmp_path) as vm:
            result = run_compiled_gaxpy(vm, compiled, inputs)
        assert result.strategy == "column-slab"


# ---------------------------------------------------------------------------
# kernel guards
# ---------------------------------------------------------------------------
def test_uneven_distribution_rejected(tmp_path):
    compiled = compile_gaxpy(30, 4, slab_ratio=0.5)  # 30 not divisible by 4
    inputs = GaxpyInputs(
        streamed=np.zeros((30, 30), dtype=np.float32),
        coefficient=np.zeros((30, 30), dtype=np.float32),
    )
    with make_vm(4, compiled.params, tmp_path) as vm:
        with pytest.raises(RuntimeExecutionError):
            run_gaxpy_row_slab(vm, compiled, inputs)


# ---------------------------------------------------------------------------
# property test: correctness over random sizes / processor counts / slabs
# ---------------------------------------------------------------------------
@settings(max_examples=10, deadline=None)
@given(
    blocks=st.integers(2, 5),
    p=st.sampled_from([2, 4]),
    ratio=st.sampled_from([0.25, 0.5, 1.0]),
    row=st.booleans(),
    seed=st.integers(0, 2**16),
)
def test_property_out_of_core_product_is_correct(tmp_path_factory, blocks, p, ratio, row, seed):
    n = blocks * p * 2
    compiled = compile_gaxpy(n, p, slab_ratio=ratio,
                             force_strategy="row" if row else "column")
    inputs = generate_gaxpy_inputs(n, seed=seed)
    scratch = tmp_path_factory.mktemp("prop")
    runner = run_gaxpy_row_slab if row else run_gaxpy_column_slab
    with make_vm(p, compiled.params, scratch) as vm:
        result = runner(vm, compiled, inputs, verify=True)
    assert result.verified is True
