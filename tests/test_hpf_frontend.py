"""Tests for the mini-HPF lexer, parser and front end."""

import pytest

from repro.exceptions import HPFSemanticError, HPFSyntaxError
from repro.hpf.frontend import compile_source, frontend_to_ir
from repro.hpf.lexer import DIRECTIVE, EOF, IDENT, NUMBER, tokenize
from repro.hpf.parser import parse_program
from repro.core.analysis import analyze_program
from repro.core.ir import LoopKind
from repro.runtime.slab import SlabbingStrategy


GAXPY_SOURCE = """
program gaxpy
  parameter (n = 64, nprocs = 4)
  real a(n, n), b(n, n), c(n, n)
!hpf$ processors Pr(nprocs)
!hpf$ template d(n)
!hpf$ distribute d(block) onto Pr
!hpf$ align a(*, :) with d
!hpf$ align c(*, :) with d
!hpf$ align b(:, *) with d
  do j = 1, n
    forall (k = 1 : n)
      c(:, j) = sum(a(:, k) * b(k, j))
    end forall
  end do
end program
"""


# ---------------------------------------------------------------------------
# lexer
# ---------------------------------------------------------------------------
class TestLexer:
    def test_tokenizes_directives_and_code(self):
        tokens = tokenize(GAXPY_SOURCE)
        kinds = [t.kind for t in tokens]
        assert DIRECTIVE in kinds
        assert kinds[-1] == EOF
        idents = [t.text for t in tokens if t.kind == IDENT]
        assert "program" in idents and "forall" in idents

    def test_positions_are_one_based(self):
        tokens = tokenize("program p\n")
        assert tokens[0].line == 1
        assert tokens[0].column == 1

    def test_comments_are_skipped(self):
        tokens = tokenize("! a comment\nprogram p\n")
        assert tokens[0].is_ident("program")

    def test_trailing_comment_stripped(self):
        tokens = tokenize("do j = 1, n   ! loop over columns\n")
        texts = [t.text for t in tokens if t.kind in (IDENT, NUMBER)]
        assert texts == ["do", "j", "1", "n"]

    def test_bad_character(self):
        with pytest.raises(HPFSyntaxError):
            tokenize("do j = 1, n; end do\n")


# ---------------------------------------------------------------------------
# parser
# ---------------------------------------------------------------------------
class TestParser:
    def test_parses_gaxpy(self):
        ast = parse_program(GAXPY_SOURCE)
        assert ast.name == "gaxpy"
        assert ast.parameters == {"n": 64, "nprocs": 4}
        assert [a.name for a in ast.arrays] == ["a", "b", "c"]
        assert ast.processors[0].name == "Pr"
        assert ast.distributes[0].patterns == ("block",)
        assert len(ast.aligns) == 3
        outer = ast.body[0]
        assert outer.kind == "do" and outer.index == "j"
        inner = outer.body[0]
        assert inner.kind == "forall" and inner.index == "k"
        statement = inner.body[0]
        assert statement.reduction == "sum"
        assert statement.target.array == "c"

    def test_align_entries(self):
        ast = parse_program(GAXPY_SOURCE)
        entries = {a.array: a.entries for a in ast.aligns}
        assert entries["a"] == ("*", ":")
        assert entries["b"] == (":", "*")

    def test_missing_end_raises(self):
        with pytest.raises(HPFSyntaxError):
            parse_program("program p\n do j = 1, 4\n")

    def test_mismatched_end_raises(self):
        bad = "program p\n do j = 1, 4\n end forall\nend program\n"
        with pytest.raises(HPFSyntaxError):
            parse_program(bad)

    def test_non_reduction_statement_rejected(self):
        bad = GAXPY_SOURCE.replace("sum(a(:, k) * b(k, j))", "copy(a(:, k))")
        with pytest.raises(HPFSyntaxError):
            parse_program(bad)

    def test_unknown_directive_rejected(self):
        bad = GAXPY_SOURCE.replace("!hpf$ template d(n)", "!hpf$ dynamic d(n)")
        with pytest.raises(HPFSyntaxError):
            parse_program(bad)


# ---------------------------------------------------------------------------
# front end lowering
# ---------------------------------------------------------------------------
class TestFrontend:
    def test_lowered_ir_matches_builder(self):
        ir = frontend_to_ir(parse_program(GAXPY_SOURCE))
        assert ir.name == "gaxpy"
        assert ir.arrays["a"].distribution_name() == "column-block"
        assert ir.arrays["b"].distribution_name() == "row-block"
        assert ir.loops[0].kind is LoopKind.SEQUENTIAL and ir.loops[0].extent == 64
        assert ir.loops[1].kind is LoopKind.FORALL
        analysis = analyze_program(ir)
        assert analysis.streamed == "a"
        assert analysis.coefficient == "b"
        assert analysis.result == "c"
        assert analysis.needs_global_sum

    def test_compile_source_end_to_end(self):
        compiled = compile_source(GAXPY_SOURCE, slab_ratio=0.25)
        assert compiled.plan.strategy is SlabbingStrategy.ROW
        assert compiled.nprocs == 4
        assert "row-slab" in compiled.node_program.pretty()

    def test_missing_align_rejected(self):
        bad = GAXPY_SOURCE.replace("!hpf$ align b(:, *) with d\n", "")
        with pytest.raises(HPFSemanticError):
            frontend_to_ir(parse_program(bad))

    def test_missing_processors_rejected(self):
        bad = GAXPY_SOURCE.replace("!hpf$ processors Pr(nprocs)\n", "")
        with pytest.raises(HPFSemanticError):
            frontend_to_ir(parse_program(bad))

    def test_undistributed_template_rejected(self):
        bad = GAXPY_SOURCE.replace("!hpf$ distribute d(block) onto Pr\n", "")
        with pytest.raises(HPFSemanticError):
            frontend_to_ir(parse_program(bad))

    def test_unknown_parameter_rejected(self):
        bad = GAXPY_SOURCE.replace("parameter (n = 64, nprocs = 4)", "parameter (n = 64)")
        with pytest.raises(HPFSemanticError):
            frontend_to_ir(parse_program(bad))

    def test_unaligned_statement_array_rejected(self):
        bad = GAXPY_SOURCE.replace("c(:, j) = sum(a(:, k) * b(k, j))",
                                   "z(:, j) = sum(a(:, k) * b(k, j))")
        with pytest.raises(HPFSemanticError):
            frontend_to_ir(parse_program(bad))

    def test_imperfect_nest_rejected(self):
        bad = GAXPY_SOURCE.replace(
            "      c(:, j) = sum(a(:, k) * b(k, j))\n",
            "      c(:, j) = sum(a(:, k) * b(k, j))\n      c(:, j) = sum(a(:, k) * b(k, j))\n",
        )
        with pytest.raises(HPFSemanticError):
            frontend_to_ir(parse_program(bad))


# ---------------------------------------------------------------------------
# executing a program that came in through the front end
# ---------------------------------------------------------------------------
def test_frontend_program_executes_and_verifies(tmp_path):
    from repro.config import RunConfig
    from repro.kernels import generate_gaxpy_inputs
    from repro.runtime import NodeProgramExecutor, VirtualMachine

    compiled = compile_source(GAXPY_SOURCE, slab_ratio=0.5)
    inputs = generate_gaxpy_inputs(64)
    with VirtualMachine(4, compiled.params, RunConfig(scratch_dir=tmp_path)) as vm:
        result = NodeProgramExecutor(compiled).execute(vm, inputs)
    assert result.verified is True
