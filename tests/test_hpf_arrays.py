"""Tests for processor grids, templates, alignments and array descriptors."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import AlignmentError, DistributionError
from repro.hpf import (
    Alignment,
    ArrayDescriptor,
    ProcessorGrid,
    Template,
)
from repro.hpf.align import AlignmentSpec
from repro.hpf.template import DimDistributionSpec


# ---------------------------------------------------------------------------
# ProcessorGrid
# ---------------------------------------------------------------------------
class TestProcessorGrid:
    def test_scalar_shape_promoted(self):
        grid = ProcessorGrid("Pr", 4)
        assert grid.shape == (4,)
        assert grid.size == 4

    def test_rank_coordinate_round_trip_2d(self):
        grid = ProcessorGrid("G", (3, 5))
        for rank in grid.ranks():
            assert grid.rank_of(grid.coordinates(rank)) == rank

    def test_invalid_extent(self):
        with pytest.raises(DistributionError):
            ProcessorGrid("bad", (0,))

    def test_out_of_range_rank(self):
        grid = ProcessorGrid("Pr", 4)
        with pytest.raises(DistributionError):
            grid.coordinates(4)

    def test_bad_coordinate_tuple(self):
        grid = ProcessorGrid("G", (2, 2))
        with pytest.raises(DistributionError):
            grid.rank_of((1,))
        with pytest.raises(DistributionError):
            grid.rank_of((2, 0))


# ---------------------------------------------------------------------------
# Template
# ---------------------------------------------------------------------------
class TestTemplate:
    def test_paper_template(self):
        grid = ProcessorGrid("Pr", 4)
        template = Template("d", 64, grid, ["block"])
        assert template.is_distributed(0)
        assert template.distribution(0).local_size(0) == 16
        assert template.grid_dim(0) == 0

    def test_mismatched_grid_rank(self):
        grid = ProcessorGrid("G", (2, 2))
        with pytest.raises(DistributionError):
            Template("d", 64, grid, ["block"])  # 1 distributed dim, 2-D grid

    def test_star_dimension_not_distributed(self):
        grid = ProcessorGrid("Pr", 4)
        template = Template("d", (8, 64), grid, ["*", "block"])
        assert not template.is_distributed(0)
        assert template.is_distributed(1)
        assert template.grid_dim(0) is None

    def test_dim_spec_objects(self):
        grid = ProcessorGrid("Pr", 3)
        template = Template("d", 30, grid, [DimDistributionSpec("cyclic", block=4)])
        assert template.distribution(0).local_size(0) in (8, 12)

    def test_describe(self):
        grid = ProcessorGrid("Pr", 4)
        template = Template("d", 64, grid, ["block"])
        assert "DISTRIBUTE" in template.describe()


# ---------------------------------------------------------------------------
# Alignment
# ---------------------------------------------------------------------------
class TestAlignment:
    def _template(self, n=64, p=4):
        return Template("d", n, ProcessorGrid("Pr", p), ["block"])

    def test_paper_column_alignment(self):
        align = Alignment(self._template(), ["*", ":"])
        assert align.specs[0].collapsed
        assert align.specs[1].target == 0

    def test_paper_row_alignment(self):
        align = Alignment(self._template(), [":", "*"])
        assert align.specs[0].target == 0
        assert align.specs[1].collapsed

    def test_too_many_colons(self):
        with pytest.raises(AlignmentError):
            Alignment(self._template(), [":", ":"])

    def test_duplicate_targets(self):
        with pytest.raises(AlignmentError):
            Alignment(self._template(), [0, 0])

    def test_target_out_of_range(self):
        with pytest.raises(AlignmentError):
            Alignment(self._template(), [5])

    def test_unknown_entry(self):
        with pytest.raises(AlignmentError):
            Alignment(self._template(), ["?"])

    def test_distributed_dims(self):
        align = Alignment(self._template(), ["*", ":"])
        assert align.distributed_dims() == (1,)
        assert align.collapsed_dims() == (0,)


# ---------------------------------------------------------------------------
# ArrayDescriptor — the paper's three arrays
# ---------------------------------------------------------------------------
def make_paper_arrays(n=64, p=4, dtype=np.float64):
    """Build descriptors for A, B, C exactly as the HPF program in Figure 3."""
    grid = ProcessorGrid("Pr", p)
    template = Template("d", n, grid, ["block"])
    column_align = Alignment(template, ["*", ":"])
    row_align = Alignment(template, [":", "*"])
    a = ArrayDescriptor("a", (n, n), column_align, dtype=dtype)
    b = ArrayDescriptor("b", (n, n), row_align, dtype=dtype)
    c = ArrayDescriptor("c", (n, n), column_align, dtype=dtype)
    return a, b, c


class TestArrayDescriptorPaperProgram:
    def test_distribution_names(self):
        a, b, c = make_paper_arrays()
        assert a.distribution_name() == "column-block"
        assert b.distribution_name() == "row-block"
        assert c.distribution_name() == "column-block"

    def test_local_shapes(self):
        a, b, _ = make_paper_arrays(n=64, p=4)
        assert a.local_shape(0) == (64, 16)   # all rows, 16 columns
        assert b.local_shape(0) == (16, 64)   # 16 rows, all columns

    def test_column_owner(self):
        a, _, _ = make_paper_arrays(n=64, p=4)
        # column 17 belongs to processor 1 (columns 16..31)
        assert a.owner_of((0, 17)) == 1
        assert a.owner_of_dim(1, 17) == 1

    def test_owner_of_dim_rejects_wrong_dim(self):
        a, _, _ = make_paper_arrays()
        with pytest.raises(DistributionError):
            a.owner_of_dim(0, 3)

    def test_global_local_round_trip(self):
        a, _, _ = make_paper_arrays(n=32, p=4)
        for g in [(0, 0), (5, 9), (31, 31), (13, 24)]:
            rank = a.owner_of(g)
            local = a.global_to_local(g)
            assert a.local_to_global(rank, local) == g

    def test_scatter_gather_identity(self):
        a, b, _ = make_paper_arrays(n=32, p=4)
        rng = np.random.default_rng(0)
        dense = rng.standard_normal((32, 32))
        for desc in (a, b):
            locals_ = desc.scatter(dense)
            assert len(locals_) == 4
            np.testing.assert_allclose(desc.gather(locals_), dense)

    def test_scatter_shape_mismatch(self):
        a, _, _ = make_paper_arrays(n=32, p=4)
        with pytest.raises(DistributionError):
            a.scatter(np.zeros((8, 8)))

    def test_gather_missing_rank(self):
        a, _, _ = make_paper_arrays(n=32, p=4)
        locals_ = a.scatter(np.zeros((32, 32)))
        del locals_[2]
        with pytest.raises(DistributionError):
            a.gather(locals_)

    def test_nbytes(self):
        a, _, _ = make_paper_arrays(n=64, p=4, dtype=np.float32)
        assert a.nbytes == 64 * 64 * 4
        assert a.local_nbytes(0) == 64 * 16 * 4

    def test_alignment_rank_mismatch(self):
        grid = ProcessorGrid("Pr", 4)
        template = Template("d", 64, grid, ["block"])
        align = Alignment(template, ["*", ":"])
        with pytest.raises(AlignmentError):
            ArrayDescriptor("x", (64,), align)

    def test_extent_mismatch_with_template(self):
        grid = ProcessorGrid("Pr", 4)
        template = Template("d", 64, grid, ["block"])
        align = Alignment(template, ["*", ":"])
        with pytest.raises(AlignmentError):
            ArrayDescriptor("x", (64, 32), align)

    def test_shifted_alignment_rejected_on_distributed_dim(self):
        grid = ProcessorGrid("Pr", 4)
        template = Template("d", 64, grid, ["block"])
        align = Alignment(template, [AlignmentSpec(target=None), AlignmentSpec(target=0, offset=1)])
        with pytest.raises(AlignmentError):
            ArrayDescriptor("x", (64, 64), align)

    def test_describe_mentions_out_of_core(self):
        a, _, _ = make_paper_arrays()
        assert "out-of-core" in a.describe()
        in_core = ArrayDescriptor("t", a.shape, a.alignment, out_of_core=False)
        assert "in-core" in in_core.describe()


# ---------------------------------------------------------------------------
# property tests: ownership consistency for random 2-D block layouts
# ---------------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(2, 40),
    p=st.integers(1, 8),
    column_distributed=st.booleans(),
)
def test_owner_matches_scatter(n, p, column_distributed):
    """The element (i, j) of the scattered local array on owner(i, j) equals the dense value."""
    grid = ProcessorGrid("Pr", p)
    template = Template("d", n, grid, ["block"])
    align = Alignment(template, ["*", ":"] if column_distributed else [":", "*"])
    desc = ArrayDescriptor("x", (n, n), align)
    dense = np.arange(n * n, dtype=np.float64).reshape(n, n)
    locals_ = desc.scatter(dense)
    rng = np.random.default_rng(n * 31 + p)
    for _ in range(10):
        i = int(rng.integers(0, n))
        j = int(rng.integers(0, n))
        rank = desc.owner_of((i, j))
        li, lj = desc.global_to_local((i, j))
        assert locals_[rank][li, lj] == dense[i, j]


@settings(max_examples=60, deadline=None)
@given(n=st.integers(2, 40), p=st.integers(1, 8))
def test_local_shapes_partition_global(n, p):
    """Sum of local element counts equals the global element count."""
    grid = ProcessorGrid("Pr", p)
    template = Template("d", n, grid, ["block"])
    desc = ArrayDescriptor("x", (n, n), Alignment(template, ["*", ":"]))
    assert sum(desc.local_size(r) for r in range(p)) == n * n
