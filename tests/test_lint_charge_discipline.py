"""Tests for the charge-discipline AST linter (``tools/lint_charge_discipline.py``).

Each rule gets a positive case (a minimal offending snippet is flagged) and a
negative case (the idiom the runtime actually uses passes) — then the whole
repository is linted for real, which is the invariant CI enforces.
"""

import ast
import importlib.util
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
_SPEC = importlib.util.spec_from_file_location(
    "lint_charge_discipline", REPO / "tools" / "lint_charge_discipline.py"
)
lint = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(lint)


def findings(rule, source, name="module.py"):
    tree = ast.parse(source)
    return list(rule(tree, Path(name)))


class TestIOConfinement:
    def test_open_outside_engine_is_flagged(self):
        out = findings(lint.check_io_confinement,
                       "handle = open('x.bin', 'wb')", "vm.py")
        assert [v.rule for v in out] == ["io-confinement"]

    def test_numpy_memmap_is_flagged(self):
        out = findings(lint.check_io_confinement,
                       "import numpy as np\nm = np.memmap('x', dtype='f4')",
                       "executor.py")
        assert [v.rule for v in out] == ["io-confinement"]

    def test_engine_files_are_exempt(self):
        assert findings(lint.check_io_confinement,
                        "handle = open('x.bin', 'wb')", "laf.py") == []
        assert findings(lint.check_io_confinement,
                        "handle = open('x.bin', 'wb')", "io_engine.py") == []

    def test_non_file_load_is_not_flagged(self):
        # SlabManifest.load / icla.load are in-memory, not host file I/O.
        assert findings(lint.check_io_confinement,
                        "manifest = SlabManifest.load(path)", "executor.py") == []
        assert findings(lint.check_io_confinement,
                        "self.icla.load(slab, data)", "ocla.py") == []


class TestWallClock:
    def test_perf_counter_is_flagged(self):
        out = findings(lint.check_wall_clock,
                       "import time\nstart = time.perf_counter()")
        assert [v.rule for v in out] == ["wall-clock"]

    def test_datetime_now_is_flagged(self):
        out = findings(lint.check_wall_clock,
                       "from datetime import datetime\nt = datetime.now()")
        assert [v.rule for v in out] == ["wall-clock"]

    def test_sleep_is_allowed(self):
        # The retry backoff delays the host without reading a clock.
        assert findings(lint.check_wall_clock,
                        "import time\ntime.sleep(0.01)") == []

    def test_unrelated_now_method_is_allowed(self):
        assert findings(lint.check_wall_clock, "x = scheduler.now()") == []


class TestRetryCharge:
    RETRYING_CHARGE = """
while True:
    try:
        machine.charge_read(rank, nbytes, 1)
        return op()
    except TransientIOError:
        failures += 1
"""
    CHARGE_AFTER_LOOP = """
while True:
    try:
        return op()
    except (TransientIOError, OSError):
        failures += 1
machine.charge_read(rank, nbytes, 1)
"""

    def test_charge_inside_retry_loop_is_flagged(self):
        out = findings(lint.check_retry_charges, self.RETRYING_CHARGE)
        assert [v.rule for v in out] == ["retry-charge"]

    def test_charge_after_the_loop_is_allowed(self):
        assert findings(lint.check_retry_charges, self.CHARGE_AFTER_LOOP) == []

    def test_loop_without_retry_handler_is_allowed(self):
        source = """
for slab in slabs:
    machine.charge_read(rank, slab.nbytes, 1)
"""
        assert findings(lint.check_retry_charges, source) == []


class TestFrozenMutation:
    def test_foreign_setattr_is_flagged(self):
        out = findings(lint.check_frozen_mutation,
                       "object.__setattr__(plan, 'cost', cheaper)")
        assert [v.rule for v in out] == ["frozen-mutation"]

    def test_own_init_is_allowed(self):
        source = """
class LoopOp:
    def __init__(self, index):
        object.__setattr__(self, "index", str(index))
"""
        assert findings(lint.check_frozen_mutation, source) == []

    def test_helper_method_mutation_is_flagged(self):
        source = """
class Tamper:
    def rewrite(self, plan):
        object.__setattr__(plan, "cost", None)
"""
        out = findings(lint.check_frozen_mutation, source)
        assert [v.rule for v in out] == ["frozen-mutation"]


def test_repository_is_clean():
    violations = lint.lint_tree(REPO)
    assert violations == [], "\n".join(v.render() for v in violations)


def test_main_exit_codes(tmp_path):
    assert lint.main([str(REPO)]) == 0
    bad = tmp_path / "src" / "repro" / "runtime"
    bad.mkdir(parents=True)
    (bad / "rogue.py").write_text("handle = open('x.bin', 'wb')\n")
    assert lint.main([str(tmp_path)]) == 1
