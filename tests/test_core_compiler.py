"""Tests for the compiler core: IR, analysis, strip-mining, cost model,
memory allocation, reorganization, code generation and the pipeline."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.io_cost import (
    column_slab_fetch_elements,
    column_slab_fetch_requests,
    row_slab_fetch_elements,
    row_slab_fetch_requests,
)
from repro.exceptions import CompilationError, CostModelError, MemoryAllocationError
from repro.core import (
    ArrayRole,
    CostModel,
    EqualAllocation,
    ProportionalAllocation,
    SearchAllocation,
    analyze_program,
    build_gaxpy_ir,
    compile_gaxpy,
    compile_program,
    generate_node_program,
)
from repro.core.ir import ArrayRef, Constant, FullRange, LoopIndex, LoopKind, ProgramIR, ReductionStatement
from repro.core.memory_alloc import _entries_from_split
from repro.core.reorganize import plan_from_slab_elements, reorganize
from repro.core.stripmine import (
    build_plan_entry,
    slab_elements_from_bytes,
    slab_elements_from_ratio,
    slab_ratio_from_elements,
)
from repro.machine.parameters import touchstone_delta
from repro.runtime.slab import SlabbingStrategy


# ---------------------------------------------------------------------------
# IR
# ---------------------------------------------------------------------------
class TestIR:
    def test_gaxpy_ir_structure(self):
        program = build_gaxpy_ir(64, 4)
        assert program.loop_indices() == ("j", "k")
        assert program.loops[0].kind is LoopKind.SEQUENTIAL
        assert program.loops[1].kind is LoopKind.FORALL
        assert set(program.out_of_core_arrays()) == {"a", "b", "c"}
        assert program.nprocs() == 4
        assert "sum" in program.statement.describe()

    def test_describe_includes_arrays_and_loops(self):
        text = build_gaxpy_ir(32, 2).describe()
        assert "column-block" in text and "row-block" in text
        assert "FORALL" in text and "DO" in text

    def test_undeclared_array_rejected(self):
        program = build_gaxpy_ir(32, 2)
        bad = ReductionStatement(
            result=ArrayRef("z", [FullRange(), LoopIndex("j")]),
            operands=[ArrayRef("a", [FullRange(), LoopIndex("k")])],
            reduce_index="k",
        )
        with pytest.raises(CompilationError):
            ProgramIR("bad", program.arrays, program.loops, bad)

    def test_unknown_loop_index_rejected(self):
        program = build_gaxpy_ir(32, 2)
        bad = ReductionStatement(
            result=ArrayRef("c", [FullRange(), LoopIndex("j")]),
            operands=[ArrayRef("a", [FullRange(), LoopIndex("q")])],
            reduce_index="k",
        )
        with pytest.raises(CompilationError):
            ProgramIR("bad", program.arrays, program.loops, bad)

    def test_wrong_subscript_count_rejected(self):
        program = build_gaxpy_ir(32, 2)
        bad = ReductionStatement(
            result=ArrayRef("c", [LoopIndex("j")]),
            operands=[ArrayRef("a", [FullRange(), LoopIndex("k")])],
            reduce_index="k",
        )
        with pytest.raises(CompilationError):
            ProgramIR("bad", program.arrays, program.loops, bad)

    def test_reduction_operator_validation(self):
        with pytest.raises(CompilationError):
            ReductionStatement(
                result=ArrayRef("c", [FullRange()]),
                operands=[ArrayRef("a", [FullRange()])],
                reduce_index="k",
                op="xor",
            )

    def test_subscript_helpers(self):
        ref = ArrayRef("a", [FullRange(), LoopIndex("k"), Constant(3)])
        assert ref.full_range_dims() == (0,)
        assert ref.dims_with_index("k") == (1,)
        assert ref.uses_index("k") and not ref.uses_index("j")
        assert ref.describe() == "a(:, k, 3)"


# ---------------------------------------------------------------------------
# analysis (in-core phase)
# ---------------------------------------------------------------------------
class TestAnalysis:
    def test_roles_and_communication(self):
        analysis = analyze_program(build_gaxpy_ir(64, 4))
        assert analysis.streamed == "a"
        assert analysis.coefficient == "b"
        assert analysis.result == "c"
        assert analysis.roles()["a"] is ArrayRole.STREAMED
        assert analysis.roles()["b"] is ArrayRole.COEFFICIENT
        assert analysis.roles()["c"] is ArrayRole.RESULT
        assert analysis.needs_global_sum
        assert analysis.needs_owner_store
        assert analysis.outer_loop.index == "j"
        assert analysis.reduce_loop.index == "k"

    def test_flops_estimate(self):
        n, p = 64, 4
        analysis = analyze_program(build_gaxpy_ir(n, p))
        assert analysis.flops_per_proc == pytest.approx(2 * n * (n * n // p))

    def test_single_processor_needs_no_communication(self):
        analysis = analyze_program(build_gaxpy_ir(32, 1))
        assert not analysis.needs_global_sum
        assert not analysis.needs_owner_store

    def test_describe(self):
        text = analyze_program(build_gaxpy_ir(32, 2)).describe()
        assert "streamed" in text and "global sum" in text


# ---------------------------------------------------------------------------
# strip-mining
# ---------------------------------------------------------------------------
class TestStripmine:
    def test_ratio_conversion_round_trip(self):
        program = build_gaxpy_ir(64, 4)
        desc = program.arrays["a"]
        for ratio in (0.125, 0.25, 0.5, 1.0):
            elements = slab_elements_from_ratio(desc, ratio)
            assert slab_ratio_from_elements(desc, elements) == pytest.approx(ratio, rel=0.01)

    def test_bytes_conversion(self):
        desc = build_gaxpy_ir(64, 4).arrays["a"]
        assert slab_elements_from_bytes(desc, 4096) == 1024  # float32
        assert slab_elements_from_bytes(desc, 10**9) == 64 * 16  # clamped to local size

    def test_invalid_inputs(self):
        desc = build_gaxpy_ir(64, 4).arrays["a"]
        with pytest.raises(CompilationError):
            slab_elements_from_ratio(desc, 0.0)
        with pytest.raises(CompilationError):
            slab_elements_from_ratio(desc, 1.5)
        with pytest.raises(CompilationError):
            slab_elements_from_bytes(desc, 0)

    def test_plan_entry_column(self):
        desc = build_gaxpy_ir(64, 4).arrays["a"]  # local 64 x 16
        entry = build_plan_entry(desc, SlabbingStrategy.COLUMN, 256)  # 4 columns
        assert entry.lines_per_slab == 4
        assert entry.num_slabs == 4
        assert entry.storage_order == "F"
        assert entry.slab_elements == 256

    def test_plan_entry_row(self):
        desc = build_gaxpy_ir(64, 4).arrays["a"]
        entry = build_plan_entry(desc, "row", 256)  # 16 per row -> 16 rows
        assert entry.lines_per_slab == 16
        assert entry.num_slabs == 4
        assert entry.storage_order == "C"

    def test_plan_entry_minimum_one_line(self):
        desc = build_gaxpy_ir(64, 4).arrays["a"]
        entry = build_plan_entry(desc, "column", 1)
        assert entry.lines_per_slab == 1
        assert entry.num_slabs == 16


# ---------------------------------------------------------------------------
# cost model
# ---------------------------------------------------------------------------
class TestCostModel:
    def _costs(self, n, p, ratio, strategy):
        program = build_gaxpy_ir(n, p)
        analysis = analyze_program(program)
        sizes = {
            name: slab_elements_from_ratio(program.arrays[name], ratio)
            for name in ("a", "b", "c")
        }
        entries = _entries_from_split(analysis, SlabbingStrategy.from_name(strategy), sizes)
        model = CostModel(touchstone_delta(), p)
        return model.estimate(analysis, strategy, entries)

    @pytest.mark.parametrize("n,p,ratio", [(256, 4, 0.25), (512, 8, 0.5), (1024, 16, 0.125)])
    def test_matches_paper_equations(self, n, p, ratio):
        m = int((n * n // p) * ratio)
        column = self._costs(n, p, ratio, "column").arrays["a"]
        row = self._costs(n, p, ratio, "row").arrays["a"]
        assert column.fetch_requests == pytest.approx(column_slab_fetch_requests(n, p, m), rel=0.01)
        assert column.fetch_elements == pytest.approx(column_slab_fetch_elements(n, p, m), rel=0.01)
        assert row.fetch_requests == pytest.approx(row_slab_fetch_requests(n, p, m), rel=0.01)
        assert row.fetch_elements == pytest.approx(row_slab_fetch_elements(n, p, m), rel=0.01)

    def test_row_cheaper_than_column(self):
        column = self._costs(512, 8, 0.25, "column")
        row = self._costs(512, 8, 0.25, "row")
        assert row.io_time < column.io_time / 5
        assert row.total_time < column.total_time

    def test_dominant_array_is_streamed_under_column(self):
        assert self._costs(512, 8, 0.25, "column").dominant_array() == "a"

    def test_incore_estimate_reads_each_array_once(self):
        program = build_gaxpy_ir(256, 4)
        analysis = analyze_program(program)
        cost = CostModel(touchstone_delta(), 4).estimate_incore(analysis)
        assert cost.arrays["a"].fetch_requests == 1
        assert cost.arrays["b"].fetch_requests == 1
        assert cost.arrays["c"].write_requests == 1

    def test_invalid_nprocs(self):
        with pytest.raises(CostModelError):
            CostModel(touchstone_delta(), 0)

    @settings(max_examples=40, deadline=None)
    @given(
        ratio_small=st.sampled_from([0.125, 0.25]),
        ratio_large=st.sampled_from([0.5, 1.0]),
        p=st.sampled_from([4, 8, 16]),
    )
    def test_larger_slabs_never_cost_more(self, ratio_small, ratio_large, p):
        for strategy in ("column", "row"):
            small = self._costs(256, p, ratio_small, strategy)
            large = self._costs(256, p, ratio_large, strategy)
            assert large.io_time <= small.io_time * 1.0001
            assert large.io_requests <= small.io_requests


# ---------------------------------------------------------------------------
# memory allocation
# ---------------------------------------------------------------------------
class TestMemoryAllocation:
    def _setup(self, n=512, p=8):
        program = build_gaxpy_ir(n, p)
        analysis = analyze_program(program)
        model = CostModel(touchstone_delta(), p)
        return analysis, model

    def test_equal_split(self):
        analysis, model = self._setup()
        local = 512 * 512 // 8
        split = EqualAllocation().split(analysis, SlabbingStrategy.ROW, local, model)
        assert split["a"] == split["b"]
        assert split["c"] >= 1

    def test_proportional_gives_streamed_array_more(self):
        analysis, model = self._setup()
        local = 512 * 512 // 8
        split = ProportionalAllocation().split(analysis, SlabbingStrategy.ROW, local, model)
        assert split["a"] > split["b"]

    def test_search_not_worse_than_equal(self):
        analysis, model = self._setup()
        budget = 512 * 512 // 8
        equal = EqualAllocation().split(analysis, SlabbingStrategy.ROW, budget, model)
        searched = SearchAllocation().split(analysis, SlabbingStrategy.ROW, budget, model)
        cost_equal = model.estimate(
            analysis, SlabbingStrategy.ROW, _entries_from_split(analysis, SlabbingStrategy.ROW, equal)
        )
        cost_search = model.estimate(
            analysis, SlabbingStrategy.ROW, _entries_from_split(analysis, SlabbingStrategy.ROW, searched)
        )
        assert cost_search.total_time <= cost_equal.total_time * 1.0001

    def test_budget_below_minimum_rejected(self):
        analysis, model = self._setup()
        with pytest.raises(MemoryAllocationError):
            EqualAllocation().split(analysis, SlabbingStrategy.ROW, 10, model)

    def test_splits_respect_budget(self):
        analysis, model = self._setup()
        budget = 512 * 512 // 8 // 2
        for policy in (EqualAllocation(), ProportionalAllocation(), SearchAllocation()):
            split = policy.split(analysis, SlabbingStrategy.ROW, budget, model)
            assert sum(split.values()) <= budget * 1.01


# ---------------------------------------------------------------------------
# reorganization and pipeline
# ---------------------------------------------------------------------------
class TestReorganization:
    def test_reorganize_prefers_row_slabs(self):
        program = build_gaxpy_ir(1024, 16)
        analysis = analyze_program(program)
        decision = reorganize(analysis, touchstone_delta(), 16, 2 * 1024 * 1024)
        assert decision.chosen.strategy is SlabbingStrategy.ROW
        assert decision.dominant_array == "a"
        assert decision.predicted_improvement > 10
        assert "row" in decision.describe()

    def test_candidate_lookup(self):
        program = build_gaxpy_ir(256, 4)
        analysis = analyze_program(program)
        decision = reorganize(analysis, touchstone_delta(), 4, 256 * 1024)
        assert decision.candidate("column").strategy is SlabbingStrategy.COLUMN
        with pytest.raises(CompilationError):
            decision.candidate("column")  # fine
            decision.candidates.clear()
            decision.candidate("row")

    def test_plan_from_explicit_sizes_requires_all_arrays(self):
        program = build_gaxpy_ir(256, 4)
        analysis = analyze_program(program)
        model = CostModel(touchstone_delta(), 4)
        with pytest.raises(CompilationError):
            plan_from_slab_elements(analysis, "row", {"a": 1024}, model)

    def test_invalid_budget(self):
        program = build_gaxpy_ir(256, 4)
        analysis = analyze_program(program)
        with pytest.raises(CompilationError):
            reorganize(analysis, touchstone_delta(), 4, 0)


class TestPipeline:
    def test_compile_with_budget_chooses_row(self):
        compiled = compile_gaxpy(1024, 16, memory_budget_bytes=2 * 1024 * 1024)
        assert compiled.strategy is SlabbingStrategy.ROW
        assert compiled.decision is not None
        assert compiled.predicted_cost.total_time > 0
        assert "row" in compiled.describe()

    def test_compile_with_ratio(self):
        compiled = compile_gaxpy(256, 4, slab_ratio=0.25)
        assert compiled.plan.entry("a").num_slabs == 4

    def test_compile_with_explicit_sizes(self):
        compiled = compile_gaxpy(256, 4, slab_elements={"a": 4096, "b": 4096})
        assert compiled.plan.entry("a").slab_elements <= 4096

    def test_force_strategy(self):
        compiled = compile_gaxpy(256, 4, slab_ratio=0.25, force_strategy="column")
        assert compiled.strategy is SlabbingStrategy.COLUMN

    def test_exactly_one_size_spec_required(self):
        program = build_gaxpy_ir(64, 4)
        with pytest.raises(CompilationError):
            compile_program(program)
        with pytest.raises(CompilationError):
            compile_program(program, slab_ratio=0.5, memory_budget_bytes=1024)

    def test_compile_is_fast(self):
        compiled = compile_gaxpy(2048, 64, slab_ratio=0.125)
        assert compiled.compile_seconds < 1.0


# ---------------------------------------------------------------------------
# code generation: static counts agree with the cost model
# ---------------------------------------------------------------------------
class TestCodegen:
    @pytest.mark.parametrize("strategy", ["column", "row"])
    @pytest.mark.parametrize("n,p,ratio", [(256, 4, 0.25), (512, 8, 0.5), (1024, 16, 1.0)])
    def test_operation_totals_match_cost_model(self, strategy, n, p, ratio):
        compiled = compile_gaxpy(n, p, slab_ratio=ratio, force_strategy=strategy)
        totals = compiled.node_program.operation_totals()
        cost = compiled.plan.cost
        for name, array_cost in cost.arrays.items():
            assert totals.get(f"read_requests:{name}", 0.0) == pytest.approx(
                array_cost.fetch_requests, rel=0.01
            )
            assert totals.get(f"read_elements:{name}", 0.0) == pytest.approx(
                array_cost.fetch_elements, rel=0.01
            )
            assert totals.get(f"write_requests:{name}", 0.0) == pytest.approx(
                array_cost.write_requests, rel=0.01
            )
        assert totals["flops"] == pytest.approx(cost.flops, rel=0.01)
        assert totals["global_sums"] == pytest.approx(cost.collective_count, rel=0.01)

    def test_pretty_print_mentions_io_and_global_sum(self):
        compiled = compile_gaxpy(256, 4, slab_ratio=0.25, force_strategy="row")
        text = compiled.node_program.pretty()
        assert "call I/O read" in text
        assert "global sum" in text
        assert "row-slab" in text

    def test_generate_requires_known_strategy(self):
        compiled = compile_gaxpy(64, 4, slab_ratio=0.5)
        program = generate_node_program(compiled.analysis, compiled.plan)
        assert program.strategy in ("row-slab", "column-slab")
