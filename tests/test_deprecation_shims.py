"""Deprecation contract of the legacy GAXPY sweep drivers.

``run_gaxpy_point`` and ``sweep_gaxpy`` must emit :class:`DeprecationWarning`
and keep returning the historical flat dictionaries, bit-identical to what
the Session API reports for the same points.
"""

import warnings

import numpy as np
import pytest

from repro.analysis.sweep import SweepPoint, run_gaxpy_point, sweep_gaxpy
from repro.api import Session, WorkloadPoint
from repro.config import ExecutionMode, RunConfig
from repro.exceptions import ExperimentError

LEGACY_FIELDS = (
    "n", "nprocs", "slab_ratio", "time", "io_time", "compute_time", "comm_time",
    "io_requests_per_proc", "io_bytes_per_proc", "verified",
)


def expected_legacy_record(record, point, mode):
    """The flat dictionary the historical driver reported for ``record``."""
    if point.version == "incore" and mode is ExecutionMode.ESTIMATE:
        slab_ratio = float(point.slab_ratio or 1.0)
    elif point.slab_ratio is not None:
        slab_ratio = float(point.slab_ratio)
    else:
        slab_ratio = float("nan")
    return {
        "n": float(point.n),
        "nprocs": float(point.nprocs),
        "slab_ratio": slab_ratio,
        "time": record.simulated_seconds,
        "io_time": record.io_time,
        "compute_time": record.compute_time,
        "comm_time": record.comm_time,
        "io_requests_per_proc": record.io_requests_per_proc,
        "io_bytes_per_proc": record.io_read_bytes_per_proc + record.io_write_bytes_per_proc,
        "verified": float("nan") if record.verified is None else float(bool(record.verified)),
    }


def assert_legacy_equal(actual, expected):
    assert set(actual) >= set(expected)
    for field, value in expected.items():
        if isinstance(value, float) and np.isnan(value):
            assert np.isnan(actual[field]), field
        else:
            assert actual[field] == value, field


class TestRunGaxpyPointShim:
    @pytest.mark.parametrize("mode", [ExecutionMode.ESTIMATE, ExecutionMode.EXECUTE])
    def test_warns_and_matches_session_bit_for_bit(self, tmp_path, mode):
        point = SweepPoint(n=32, nprocs=2, version="row", slab_ratio=0.5)
        with pytest.warns(DeprecationWarning, match="run_gaxpy_point is deprecated"):
            legacy = run_gaxpy_point(point, mode=mode,
                                     config=RunConfig(scratch_dir=tmp_path))
        record = Session(config=RunConfig(scratch_dir=tmp_path)).run(
            point.to_workload_point(), mode=mode
        )
        assert_legacy_equal(legacy, expected_legacy_record(record, point, mode))

    def test_incore_estimate_reports_ratio_one(self, tmp_path):
        point = SweepPoint(n=32, nprocs=2, version="incore")
        with pytest.warns(DeprecationWarning):
            legacy = run_gaxpy_point(point, config=RunConfig(scratch_dir=tmp_path))
        assert legacy["slab_ratio"] == 1.0

    def test_no_warning_leaks_from_session_path(self, tmp_path):
        """The replacement API itself is warning-free."""
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            Session(config=RunConfig(scratch_dir=tmp_path)).run(
                WorkloadPoint("gaxpy", n=32, nprocs=2, version="row", slab_ratio=0.5),
                mode=ExecutionMode.ESTIMATE,
            )


class TestSweepGaxpyShim:
    def test_warns_and_matches_session_records(self, tmp_path):
        points = [
            SweepPoint(n=32, nprocs=2, version="column", slab_ratio=0.5),
            SweepPoint(n=32, nprocs=2, version="row", slab_ratio=0.5),
            SweepPoint(n=32, nprocs=2, version="incore"),
        ]
        mode = ExecutionMode.EXECUTE
        with pytest.warns(DeprecationWarning, match="sweep_gaxpy is deprecated"):
            legacy = sweep_gaxpy(points, mode=mode, config=RunConfig(scratch_dir=tmp_path))
        session = Session(config=RunConfig(scratch_dir=tmp_path))
        records = session.sweep([p.to_workload_point() for p in points], mode=mode)
        assert len(legacy) == len(points)
        for flat, point, record in zip(legacy, points, records, strict=True):
            assert flat["version"] == point.version  # the legacy extra key
            assert_legacy_equal(flat, expected_legacy_record(record, point, mode))

    def test_point_validation_still_enforced(self):
        with pytest.raises(ExperimentError, match="unknown program version"):
            SweepPoint(n=8, nprocs=2, version="diagonal")
        with pytest.raises(ExperimentError, match="slab ratio"):
            SweepPoint(n=8, nprocs=2, version="row")
