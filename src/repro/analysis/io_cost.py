"""Closed-form I/O cost formulas — equations 3 to 6 of the paper.

With ``N`` the global extent of the square arrays, ``P`` the number of
processors and ``M`` the number of elements in one slab of the streamed
array ``A``:

* column-slab version (the straightforward extension of in-core compilation):

  .. math::  T_{fetch}(A) = N^3 / (M P)  \\qquad  T_{data}(A) = N^3 / P

* row-slab version (after data access reorganization):

  .. math::  T_{fetch}(A) = N^2 / (M P)  \\qquad  T_{data}(A) = N^2 / P

The compiler's cost model computes the same quantities from the program IR
and the slab plan; the test suite checks both agree, and the executed
kernels' I/O counters agree with both.
"""

from __future__ import annotations

from typing import Dict

from repro.exceptions import CostModelError

__all__ = [
    "column_slab_fetch_requests",
    "column_slab_fetch_elements",
    "row_slab_fetch_requests",
    "row_slab_fetch_elements",
    "paper_io_costs",
]


def _validate(n: int, p: int, m: int) -> None:
    if n <= 0 or p <= 0 or m <= 0:
        raise CostModelError(f"N, P and M must be positive (got N={n}, P={p}, M={m})")
    if m > n * n // p:
        raise CostModelError(
            f"slab size M={m} exceeds the out-of-core local array size N^2/P={n * n // p}"
        )


def column_slab_fetch_requests(n: int, p: int, m: int) -> float:
    """Equation 3: number of I/O requests per processor for array A, column slabs."""
    _validate(n, p, m)
    return n ** 3 / (m * p)


def column_slab_fetch_elements(n: int, p: int, m: int) -> float:
    """Equation 4: number of elements of A fetched per processor, column slabs."""
    _validate(n, p, m)
    return n ** 3 / p


def row_slab_fetch_requests(n: int, p: int, m: int) -> float:
    """Equation 5: number of I/O requests per processor for array A, row slabs."""
    _validate(n, p, m)
    return n ** 2 / (m * p)


def row_slab_fetch_elements(n: int, p: int, m: int) -> float:
    """Equation 6: number of elements of A fetched per processor, row slabs."""
    _validate(n, p, m)
    return n ** 2 / p


def paper_io_costs(n: int, p: int, m: int) -> Dict[str, Dict[str, float]]:
    """All four quantities at once, keyed by version then metric."""
    return {
        "column": {
            "T_fetch": column_slab_fetch_requests(n, p, m),
            "T_data": column_slab_fetch_elements(n, p, m),
        },
        "row": {
            "T_fetch": row_slab_fetch_requests(n, p, m),
            "T_data": row_slab_fetch_elements(n, p, m),
        },
    }
