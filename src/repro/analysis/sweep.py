"""Deprecated GAXPY-specific sweep drivers (thin shims over the Session API).

This module predates :mod:`repro.api`; it hardwired the GAXPY workload into
the public sweep surface.  The general replacements are

* :class:`repro.api.WorkloadPoint` for :class:`SweepPoint`,
* :meth:`repro.api.Session.run` for :func:`run_gaxpy_point`, and
* :meth:`repro.api.Session.sweep` for :func:`sweep_gaxpy`,

which serve every registered workload (gaxpy, transpose, elementwise, HPF
source programs) with one compile cache and one thread-pool driver.  The
shims below delegate to a Session and convert the typed
:class:`~repro.api.RunRecord` back into the historical flat dictionaries, so
existing callers (and the BENCH_fastpath.json baseline) see bit-identical
charged statistics.  They emit :class:`DeprecationWarning` and will be
removed once nothing imports them.
"""

from __future__ import annotations

import dataclasses
import warnings
from typing import Dict, Iterable, List, Optional

from repro.config import ExecutionMode, RunConfig
from repro.exceptions import ExperimentError

__all__ = ["SweepPoint", "run_gaxpy_point", "sweep_gaxpy"]


@dataclasses.dataclass(frozen=True)
class SweepPoint:
    """One configuration of the GAXPY experiment.

    Deprecated: use :class:`repro.api.WorkloadPoint` with
    ``workload="gaxpy"``, which this class converts into via
    :meth:`to_workload_point`.
    """

    n: int
    nprocs: int
    version: str                      # "column", "row" or "incore"
    slab_ratio: Optional[float] = None
    slab_elements: Optional[Dict[str, int]] = None
    dtype: str = "float32"

    def __post_init__(self) -> None:
        if self.version not in {"column", "row", "incore"}:
            raise ExperimentError(f"unknown program version {self.version!r}")
        if self.version != "incore" and self.slab_ratio is None and self.slab_elements is None:
            raise ExperimentError("out-of-core sweep points need a slab ratio or slab sizes")

    def label(self) -> str:
        slab = f"ratio={self.slab_ratio}" if self.slab_ratio is not None else "explicit slabs"
        return f"{self.version} N={self.n} P={self.nprocs} {slab}"

    def to_workload_point(self):
        """The equivalent :class:`repro.api.WorkloadPoint`."""
        from repro.api import WorkloadPoint

        return WorkloadPoint(
            workload="gaxpy",
            n=self.n,
            nprocs=self.nprocs,
            version=self.version,
            slab_ratio=self.slab_ratio,
            slab_elements=self.slab_elements,
            dtype=self.dtype,
        )


def _legacy_record(record, point: SweepPoint, mode: ExecutionMode) -> Dict[str, float]:
    """Flatten a RunRecord into the historical ``Dict[str, float]`` shape.

    Two quirks are preserved for bit-compatibility with the old driver: the
    in-core ESTIMATE path reported ``slab_ratio`` as ``1.0`` (not NaN) when
    none was given, and the ``verified`` flag is a float (NaN when no
    verification happened).
    """
    if point.version == "incore" and mode is ExecutionMode.ESTIMATE:
        slab_ratio = float(point.slab_ratio or 1.0)
    elif point.slab_ratio is not None:
        slab_ratio = float(point.slab_ratio)
    else:
        slab_ratio = float("nan")
    verified = float("nan") if record.verified is None else float(bool(record.verified))
    return {
        "n": float(point.n),
        "nprocs": float(point.nprocs),
        "slab_ratio": slab_ratio,
        "time": record.simulated_seconds,
        "io_time": record.io_time,
        "compute_time": record.compute_time,
        "comm_time": record.comm_time,
        "io_requests_per_proc": record.io_requests_per_proc,
        "io_bytes_per_proc": record.io_read_bytes_per_proc + record.io_write_bytes_per_proc,
        "verified": verified,
    }


def _deprecated(name: str, replacement: str) -> None:
    warnings.warn(
        f"repro.analysis.sweep.{name} is deprecated; use {replacement}",
        DeprecationWarning,
        stacklevel=3,
    )


def run_gaxpy_point(
    point: SweepPoint,
    params=None,
    mode: ExecutionMode | str = ExecutionMode.ESTIMATE,
    config: Optional[RunConfig] = None,
    verify: bool = True,
) -> Dict[str, float]:
    """Deprecated shim: evaluate one GAXPY point via :meth:`Session.run`."""
    from repro.api import Session

    _deprecated("run_gaxpy_point", "repro.api.Session.run")
    mode = ExecutionMode(mode) if isinstance(mode, str) else mode
    session = Session(params=params, config=config)
    record = session.run(point.to_workload_point(), mode=mode, verify=verify)
    return _legacy_record(record, point, mode)


def sweep_gaxpy(
    points: Iterable[SweepPoint],
    params=None,
    mode: ExecutionMode | str = ExecutionMode.ESTIMATE,
    config: Optional[RunConfig] = None,
    workers: int = 1,
    verify: bool = True,
) -> List[Dict[str, float]]:
    """Deprecated shim: evaluate many GAXPY points via :meth:`Session.sweep`.

    ``workers > 1`` evaluates points concurrently in a thread pool; records
    are per-field identical to a sequential sweep and returned in input
    order.  Unlike the historical driver, ``verify`` is forwarded to every
    point on both paths (the old code silently dropped it).
    """
    from repro.api import Session

    _deprecated("sweep_gaxpy", "repro.api.Session.sweep")
    mode = ExecutionMode(mode) if isinstance(mode, str) else mode
    points = list(points)
    session = Session(params=params, config=config)
    records = session.sweep(
        [point.to_workload_point() for point in points],
        mode=mode,
        workers=workers,
        verify=verify,
    )
    out: List[Dict[str, float]] = []
    for point, record in zip(points, records, strict=True):
        legacy = _legacy_record(record, point, mode)
        legacy["version"] = point.version  # type: ignore[assignment]
        out.append(legacy)
    return out
