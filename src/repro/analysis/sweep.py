"""Parameter sweep drivers for the GAXPY experiments.

A sweep point fixes the problem size, the number of processors, the slab
sizes and the program version (column-slab, row-slab or in-core).  Points can
be evaluated in two modes:

* ``estimate`` — compile and charge the machine model with the statically
  counted operations of the generated node program (fast; used for the
  paper-scale configurations), or
* ``execute`` — compile and really run the out-of-core kernels against Local
  Array Files, verifying the numerical result (used for tests and small
  problem sizes).
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
from typing import Dict, Iterable, List, Optional

from repro.config import ExecutionMode, RunConfig
from repro.exceptions import ExperimentError
from repro.core.pipeline import CompiledProgram, compile_gaxpy_cached
from repro.machine.parameters import MachineParameters, touchstone_delta
from repro.runtime.executor import NodeProgramExecutor
from repro.runtime.slab import SlabbingStrategy
from repro.runtime.vm import VirtualMachine

__all__ = ["SweepPoint", "run_gaxpy_point", "sweep_gaxpy"]


@dataclasses.dataclass(frozen=True)
class SweepPoint:
    """One configuration of the GAXPY experiment."""

    n: int
    nprocs: int
    version: str                      # "column", "row" or "incore"
    slab_ratio: Optional[float] = None
    slab_elements: Optional[Dict[str, int]] = None
    dtype: str = "float32"

    def __post_init__(self) -> None:
        if self.version not in {"column", "row", "incore"}:
            raise ExperimentError(f"unknown program version {self.version!r}")
        if self.version != "incore" and self.slab_ratio is None and self.slab_elements is None:
            raise ExperimentError("out-of-core sweep points need a slab ratio or slab sizes")

    def label(self) -> str:
        slab = f"ratio={self.slab_ratio}" if self.slab_ratio is not None else "explicit slabs"
        return f"{self.version} N={self.n} P={self.nprocs} {slab}"


def _compile_point(point: SweepPoint, params: MachineParameters) -> CompiledProgram:
    """Compile one sweep point (LRU-cached on the full point configuration).

    Sweeps frequently revisit a configuration — the same point in estimate
    and execute mode, or many seeds over one grid — so compilation goes
    through :func:`repro.core.pipeline.compile_gaxpy_cached`, which is keyed
    on ``(n, nprocs, version, slab configuration, dtype, machine params)``.
    """
    force = None
    if point.version == "column":
        force = SlabbingStrategy.COLUMN
    elif point.version == "row":
        force = SlabbingStrategy.ROW
    ratio = point.slab_ratio if point.version != "incore" else 1.0
    return compile_gaxpy_cached(
        point.n,
        point.nprocs,
        params,
        dtype=point.dtype,
        slab_ratio=ratio if point.slab_elements is None else None,
        slab_elements=point.slab_elements,
        force_strategy=force,
    )


def run_gaxpy_point(
    point: SweepPoint,
    params: Optional[MachineParameters] = None,
    mode: ExecutionMode | str = ExecutionMode.ESTIMATE,
    config: Optional[RunConfig] = None,
    verify: bool = True,
) -> Dict[str, float]:
    """Evaluate one sweep point and return a flat result record."""
    params = params or touchstone_delta()
    mode = ExecutionMode(mode) if isinstance(mode, str) else mode
    compiled = _compile_point(point, params)

    if point.version == "incore":
        return _run_incore_point(point, compiled, params, mode, config, verify)

    if mode is ExecutionMode.ESTIMATE:
        result = NodeProgramExecutor(compiled).estimate()
        record = _record_from_result(point, result.time_breakdown, result.io_statistics,
                                     result.simulated_seconds)
        record["verified"] = float("nan")
        return record

    from repro.kernels.gaxpy import generate_gaxpy_inputs, run_gaxpy_column_slab, run_gaxpy_row_slab

    config = config or RunConfig()
    inputs = generate_gaxpy_inputs(point.n, dtype=point.dtype, seed=config.seed)
    with VirtualMachine(point.nprocs, params, config) as vm:
        runner = run_gaxpy_column_slab if point.version == "column" else run_gaxpy_row_slab
        run = runner(vm, compiled, inputs, verify=verify)
        record = _record_from_result(point, run.time_breakdown, run.io_statistics,
                                     run.simulated_seconds)
        record["verified"] = float(bool(run.verified)) if run.verified is not None else float("nan")
        return record


def _run_incore_point(point, compiled, params, mode, config, verify) -> Dict[str, float]:
    from repro.core.cost_model import CostModel

    if mode is ExecutionMode.ESTIMATE:
        cost = CostModel(params, point.nprocs).estimate_incore(compiled.analysis)
        record = {
            "n": float(point.n),
            "nprocs": float(point.nprocs),
            "slab_ratio": float(point.slab_ratio or 1.0),
            "time": cost.total_time,
            "io_time": cost.io_time,
            "compute_time": cost.compute_time,
            "comm_time": cost.comm_time,
            "io_requests_per_proc": cost.io_requests,
            "io_bytes_per_proc": cost.io_bytes,
            "verified": float("nan"),
        }
        return record

    from repro.kernels.gaxpy import generate_gaxpy_inputs, run_gaxpy_incore

    config = config or RunConfig()
    inputs = generate_gaxpy_inputs(point.n, dtype=point.dtype, seed=config.seed)
    with VirtualMachine(point.nprocs, params, config) as vm:
        run = run_gaxpy_incore(vm, compiled, inputs, verify=verify)
        record = _record_from_result(point, run.time_breakdown, run.io_statistics,
                                     run.simulated_seconds)
        record["verified"] = float(bool(run.verified)) if run.verified is not None else float("nan")
        return record


def _record_from_result(point, breakdown, io_stats, total) -> Dict[str, float]:
    return {
        "n": float(point.n),
        "nprocs": float(point.nprocs),
        "slab_ratio": float(point.slab_ratio) if point.slab_ratio is not None else float("nan"),
        "time": total,
        "io_time": breakdown.get("io", 0.0),
        "compute_time": breakdown.get("compute", 0.0),
        "comm_time": breakdown.get("comm", 0.0),
        "io_requests_per_proc": io_stats.get("io_requests_per_proc", 0.0),
        "io_bytes_per_proc": io_stats.get("bytes_read_per_proc", 0.0)
        + io_stats.get("bytes_written_per_proc", 0.0),
    }


def sweep_gaxpy(
    points: Iterable[SweepPoint],
    params: Optional[MachineParameters] = None,
    mode: ExecutionMode | str = ExecutionMode.ESTIMATE,
    config: Optional[RunConfig] = None,
    workers: int = 1,
) -> List[Dict[str, float]]:
    """Evaluate many sweep points and return one record per point.

    ``workers > 1`` evaluates points concurrently in a thread pool.  Each
    point owns its virtual machine, scratch directory and cost counters, so
    the records are per-field identical to a sequential sweep and returned
    in input order.  Threads pay off in ``EXECUTE`` mode, where the heavy
    work — BLAS kernels and file I/O — releases the GIL; ``ESTIMATE``-mode
    points are pure-Python accounting, so leave ``workers=1`` there.
    """
    points = list(points)
    if workers > 1 and len(points) > 1:
        with concurrent.futures.ThreadPoolExecutor(max_workers=workers) as pool:
            records = list(
                pool.map(
                    lambda point: run_gaxpy_point(point, params=params, mode=mode, config=config),
                    points,
                )
            )
    else:
        records = [
            run_gaxpy_point(point, params=params, mode=mode, config=config) for point in points
        ]
    for point, record in zip(points, records):
        record["version"] = point.version  # type: ignore[assignment]
    return records
