"""Plain-text report formatting.

The experiment harness prints tables in the same row/column layout the paper
uses so a reader can hold the two side by side.  Only the standard library is
needed — no plotting dependencies.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["format_table", "format_time", "format_markdown_table"]


def format_time(seconds: float) -> str:
    """Format a simulated time the way the paper's tables do (two decimals)."""
    return f"{seconds:.2f}"


def _column_widths(header: Sequence[str], rows: Iterable[Sequence[str]]) -> List[int]:
    widths = [len(str(h)) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))
    return widths


def format_table(header: Sequence[str], rows: Sequence[Sequence[object]], title: str = "") -> str:
    """Format a fixed-width text table."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = _column_widths(header, str_rows)
    lines: List[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(str(h).ljust(w) for h, w in zip(header, widths, strict=True)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths, strict=True)))
    return "\n".join(lines)


def format_markdown_table(header: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Format a GitHub-flavoured markdown table (used to update EXPERIMENTS.md)."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    lines = ["| " + " | ".join(str(h) for h in header) + " |"]
    lines.append("|" + "|".join("---" for _ in header) + "|")
    for row in str_rows:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)
