"""Analytic formulas, sweep drivers and report formatting.

* :mod:`repro.analysis.io_cost` — the closed-form I/O cost formulas of the
  paper (equations 3–6) for cross-checking the compiler's cost model.
* :mod:`repro.analysis.sweep` — deprecated GAXPY-only sweep shims; use
  :class:`repro.api.Session` and :class:`repro.api.WorkloadPoint`, which
  sweep every registered workload through one surface.
* :mod:`repro.analysis.report` — plain-text table formatting used by the
  experiment harness and the examples.
"""

from repro.analysis.io_cost import (
    column_slab_fetch_requests,
    column_slab_fetch_elements,
    row_slab_fetch_requests,
    row_slab_fetch_elements,
    paper_io_costs,
)
from repro.analysis.report import format_table, format_time
from repro.analysis.sweep import SweepPoint, run_gaxpy_point, sweep_gaxpy

__all__ = [
    "column_slab_fetch_requests",
    "column_slab_fetch_elements",
    "row_slab_fetch_requests",
    "row_slab_fetch_elements",
    "paper_io_costs",
    "format_table",
    "format_time",
    "SweepPoint",
    "run_gaxpy_point",
    "sweep_gaxpy",
]
