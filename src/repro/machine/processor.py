"""Compute-node cost model.

Converts floating point operations and local memory traffic into simulated
seconds, and enforces the node memory budget that drives strip-mining: the
In-core Local Arrays (slabs) of all out-of-core arrays must together fit in
``memory_bytes``.
"""

from __future__ import annotations

import dataclasses

from repro.exceptions import MachineConfigurationError
from repro.machine.parameters import ProcessorParameters

__all__ = ["ProcessorModel"]


@dataclasses.dataclass
class ProcessorModel:
    """Cost model and counters for one compute node."""

    params: ProcessorParameters
    rank: int = 0
    flops: float = 0.0
    bytes_copied: int = 0
    busy_time: float = 0.0

    def compute(self, flops: float) -> float:
        """Account for ``flops`` floating point operations; return seconds."""
        if flops < 0:
            raise MachineConfigurationError(f"negative flop count {flops}")
        seconds = self.params.compute_time(flops)
        self.flops += flops
        self.busy_time += seconds
        return seconds

    def copy(self, nbytes: int) -> float:
        """Account for a local memory copy of ``nbytes``; return seconds."""
        if nbytes < 0:
            raise MachineConfigurationError(f"negative copy size {nbytes}")
        seconds = self.params.copy_time(nbytes)
        self.bytes_copied += nbytes
        self.busy_time += seconds
        return seconds

    # -- memory budget ----------------------------------------------------------
    @property
    def memory_bytes(self) -> int:
        return self.params.memory_bytes

    def fits_in_memory(self, nbytes: int) -> bool:
        """True when a working set of ``nbytes`` fits in node memory."""
        return 0 <= nbytes <= self.params.memory_bytes

    # -- reporting ----------------------------------------------------------------
    def reset(self) -> None:
        self.flops = 0.0
        self.bytes_copied = 0
        self.busy_time = 0.0

    def snapshot(self) -> dict:
        return {
            "rank": self.rank,
            "flops": self.flops,
            "bytes_copied": self.bytes_copied,
            "busy_time": self.busy_time,
        }
