"""Machine parameter sets.

The conversion from counted operations (I/O requests, bytes, flops, messages)
into simulated seconds is controlled by three parameter groups — disk,
network and processor — bundled into a :class:`MachineParameters` object.

The :func:`touchstone_delta` preset is calibrated so that the reproduction of
the paper's experiments lands in the same regime as the published numbers:
an effective per-processor disk bandwidth around 1 MB/s with a large
per-request overhead (the Delta's Concurrent File System was shared by all
nodes and each request paid seek + software overhead), an effective compute
rate of a few MFLOP/s (the i860's achieved rate on Fortran column operations,
far below its peak), and an NX-style network with tens of microseconds of
latency.  Absolute seconds are *not* expected to match the 1994 measurements;
the relative behaviour (column-slab vs row-slab, slab-ratio trends, processor
scaling) is.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict

from repro.exceptions import MachineConfigurationError

__all__ = [
    "DiskParameters",
    "NetworkParameters",
    "ProcessorParameters",
    "MachineParameters",
    "touchstone_delta",
    "intel_paragon",
    "ibm_sp1",
    "modern_cluster",
    "PRESETS",
    "get_preset",
]


def _require_positive(name: str, value: float) -> float:
    if value <= 0:
        raise MachineConfigurationError(f"{name} must be positive, got {value}")
    return float(value)


def _require_non_negative(name: str, value: float) -> float:
    if value < 0:
        raise MachineConfigurationError(f"{name} must be non-negative, got {value}")
    return float(value)


@dataclasses.dataclass(frozen=True)
class DiskParameters:
    """I/O subsystem cost parameters.

    ``request_latency`` is charged once per I/O request (seek, rotational
    delay and file-system software overhead); ``read_bandwidth`` and
    ``write_bandwidth`` convert bytes into transfer seconds.

    ``shared`` selects between the two I/O architectures of the paper's
    architectural model:

    * ``shared=True`` — a common set of disks behind dedicated I/O nodes
      (Intel Touchstone Delta / Paragon).  ``read_bandwidth`` is then the
      *aggregate* bandwidth of the I/O subsystem; when ``P`` processors
      access their Local Array Files concurrently each sees roughly
      ``bandwidth / P`` (the ``contention`` argument of
      :meth:`read_time` / :meth:`write_time`).
    * ``shared=False`` — one private disk per node (IBM SP-1).
      ``read_bandwidth`` is per disk and contention has no effect.

    Request latency is not scaled by contention: the I/O nodes service
    requests from different processors concurrently.
    """

    request_latency: float = 0.02          # seconds per I/O request
    read_bandwidth: float = 1.2e6          # bytes / second (aggregate when shared)
    write_bandwidth: float = 1.0e6         # bytes / second (aggregate when shared)
    shared: bool = False

    def __post_init__(self) -> None:
        _require_non_negative("request_latency", self.request_latency)
        _require_positive("read_bandwidth", self.read_bandwidth)
        _require_positive("write_bandwidth", self.write_bandwidth)

    def _contention_factor(self, contention: int) -> float:
        if contention < 1:
            raise MachineConfigurationError(f"contention must be at least 1, got {contention}")
        return float(contention) if self.shared else 1.0

    def read_time(self, nbytes: int, nrequests: int = 1, contention: int = 1) -> float:
        """Seconds to read ``nbytes`` in ``nrequests`` requests.

        ``contention`` is the number of processors concurrently using the I/O
        subsystem (only relevant for shared disks).
        """
        factor = self._contention_factor(contention)
        return nrequests * self.request_latency + nbytes * factor / self.read_bandwidth

    def write_time(self, nbytes: int, nrequests: int = 1, contention: int = 1) -> float:
        """Seconds to write ``nbytes`` in ``nrequests`` requests."""
        factor = self._contention_factor(contention)
        return nrequests * self.request_latency + nbytes * factor / self.write_bandwidth


@dataclasses.dataclass(frozen=True)
class NetworkParameters:
    """Interconnect cost parameters.

    Point-to-point messages cost ``latency + nbytes / bandwidth``.  Collective
    operations are modelled as ``ceil(log2 P)`` rounds of point-to-point
    messages plus (for reductions) the combining arithmetic, which matches the
    tree algorithms used by NX / MPI implementations of the era.
    """

    latency: float = 80e-6                 # seconds per message
    bandwidth: float = 30e6                # bytes / second
    reduction_flop_time: float = 0.0       # extra seconds per element combined (0: folded into compute)

    def __post_init__(self) -> None:
        _require_non_negative("latency", self.latency)
        _require_positive("bandwidth", self.bandwidth)
        _require_non_negative("reduction_flop_time", self.reduction_flop_time)

    def point_to_point_time(self, nbytes: int) -> float:
        return self.latency + nbytes / self.bandwidth

    def collective_rounds(self, nprocs: int) -> int:
        """Number of communication rounds of a binomial-tree collective."""
        if nprocs < 1:
            raise MachineConfigurationError(f"nprocs must be positive, got {nprocs}")
        rounds = 0
        span = 1
        while span < nprocs:
            span *= 2
            rounds += 1
        return rounds

    def reduce_time(self, nbytes: int, nprocs: int, nelements: int | None = None) -> float:
        """Seconds for a tree reduction of ``nbytes`` across ``nprocs`` processors."""
        rounds = self.collective_rounds(nprocs)
        time = rounds * self.point_to_point_time(nbytes)
        if nelements is not None:
            time += rounds * nelements * self.reduction_flop_time
        return time

    def broadcast_time(self, nbytes: int, nprocs: int) -> float:
        """Seconds for a tree broadcast of ``nbytes`` to ``nprocs`` processors."""
        return self.collective_rounds(nprocs) * self.point_to_point_time(nbytes)


@dataclasses.dataclass(frozen=True)
class ProcessorParameters:
    """Compute-node cost parameters."""

    flop_time: float = 2.8e-7              # seconds per floating point operation (~3.6 MFLOP/s)
    memory_bytes: int = 16 * 1024 * 1024   # node memory available for ICLAs
    memory_copy_bandwidth: float = 80e6    # bytes / second for local copies / packing

    def __post_init__(self) -> None:
        _require_non_negative("flop_time", self.flop_time)
        if self.memory_bytes <= 0:
            raise MachineConfigurationError(f"memory_bytes must be positive, got {self.memory_bytes}")
        _require_positive("memory_copy_bandwidth", self.memory_copy_bandwidth)

    def compute_time(self, flops: float) -> float:
        return flops * self.flop_time

    def copy_time(self, nbytes: int) -> float:
        return nbytes / self.memory_copy_bandwidth


@dataclasses.dataclass(frozen=True)
class MachineParameters:
    """Complete parameter set for a simulated machine."""

    name: str = "touchstone-delta"
    disk: DiskParameters = dataclasses.field(default_factory=DiskParameters)
    network: NetworkParameters = dataclasses.field(default_factory=NetworkParameters)
    processor: ProcessorParameters = dataclasses.field(default_factory=ProcessorParameters)

    def describe(self) -> str:
        return (
            f"{self.name}: disk {self.disk.read_bandwidth / 1e6:.2f} MB/s read "
            f"(+{self.disk.request_latency * 1e3:.1f} ms/request), "
            f"network {self.network.bandwidth / 1e6:.1f} MB/s "
            f"(+{self.network.latency * 1e6:.0f} us/msg), "
            f"cpu {1.0 / self.processor.flop_time / 1e6:.1f} MFLOP/s, "
            f"{self.processor.memory_bytes // (1024 * 1024)} MB/node"
        )


# ---------------------------------------------------------------------------
# presets
# ---------------------------------------------------------------------------

def touchstone_delta() -> MachineParameters:
    """Intel Touchstone Delta-like parameters (the paper's testbed).

    The Concurrent File System is modelled as a shared I/O subsystem with an
    aggregate bandwidth of a few MB/s — the effective rate the paper's
    numbers imply once all processors stream their Local Array Files
    concurrently.
    """
    return MachineParameters(
        name="touchstone-delta",
        disk=DiskParameters(
            request_latency=0.02, read_bandwidth=6.0e6, write_bandwidth=5.0e6, shared=True
        ),
        network=NetworkParameters(latency=80e-6, bandwidth=30e6),
        processor=ProcessorParameters(flop_time=2.8e-7, memory_bytes=16 * 1024 * 1024),
    )


def intel_paragon() -> MachineParameters:
    """Intel Paragon-like parameters (shared PFS disks, faster nodes)."""
    return MachineParameters(
        name="intel-paragon",
        disk=DiskParameters(
            request_latency=0.015, read_bandwidth=12.0e6, write_bandwidth=10.0e6, shared=True
        ),
        network=NetworkParameters(latency=40e-6, bandwidth=80e6),
        processor=ProcessorParameters(flop_time=1.5e-7, memory_bytes=32 * 1024 * 1024),
    )


def ibm_sp1() -> MachineParameters:
    """IBM SP-1-like parameters (one local disk per node)."""
    return MachineParameters(
        name="ibm-sp1",
        disk=DiskParameters(request_latency=0.012, read_bandwidth=3.0e6, write_bandwidth=2.5e6),
        network=NetworkParameters(latency=60e-6, bandwidth=35e6),
        processor=ProcessorParameters(flop_time=1.0e-7, memory_bytes=64 * 1024 * 1024),
    )


def modern_cluster() -> MachineParameters:
    """A contemporary cluster (NVMe + fast interconnect) for what-if studies."""
    return MachineParameters(
        name="modern-cluster",
        disk=DiskParameters(request_latency=100e-6, read_bandwidth=2.0e9, write_bandwidth=1.5e9),
        network=NetworkParameters(latency=2e-6, bandwidth=12e9),
        processor=ProcessorParameters(flop_time=1.0e-10, memory_bytes=64 * 1024 * 1024 * 1024),
    )


PRESETS: Dict[str, Callable[[], MachineParameters]] = {
    "touchstone-delta": touchstone_delta,
    "delta": touchstone_delta,
    "intel-paragon": intel_paragon,
    "paragon": intel_paragon,
    "ibm-sp1": ibm_sp1,
    "sp1": ibm_sp1,
    "modern-cluster": modern_cluster,
    "modern": modern_cluster,
}


def get_preset(name: str) -> MachineParameters:
    """Return the named preset, raising a helpful error for unknown names."""
    key = name.strip().lower()
    if key not in PRESETS:
        raise MachineConfigurationError(
            f"unknown machine preset {name!r}; available: {sorted(set(PRESETS))}"
        )
    return PRESETS[key]()
