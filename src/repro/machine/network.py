"""Interconnect cost model.

Models point-to-point messages and the collective operations used by the
compiled node programs (global sum reductions, broadcasts, personalized
all-to-all for redistribution).  Collectives follow binomial-tree cost
formulas, which is what the NX library on the Touchstone Delta and early MPI
implementations used.
"""

from __future__ import annotations

import dataclasses

from repro.exceptions import CollectiveError
from repro.machine.parameters import NetworkParameters

__all__ = ["NetworkModel"]


@dataclasses.dataclass
class NetworkModel:
    """Cost model and counters for the machine interconnect."""

    params: NetworkParameters
    messages: int = 0
    bytes_moved: int = 0
    collectives: int = 0
    busy_time: float = 0.0

    # -- point to point --------------------------------------------------------
    def send(self, nbytes: int) -> float:
        """Account for one point-to-point message of ``nbytes``; return seconds."""
        if nbytes < 0:
            raise CollectiveError(f"negative message size {nbytes}")
        seconds = self.params.point_to_point_time(nbytes)
        self.messages += 1
        self.bytes_moved += nbytes
        self.busy_time += seconds
        return seconds

    # -- collectives -----------------------------------------------------------
    def global_sum(self, nbytes: int, nprocs: int, nelements: int | None = None) -> float:
        """Account for an all-reduce (global sum) of ``nbytes`` over ``nprocs`` processors.

        The paper's GAXPY kernel uses a global sum followed by a store on the
        owner, which is a reduce-to-owner; the binomial-tree reduce cost is
        charged to every participating processor (they proceed in lockstep).
        """
        self._check_collective(nbytes, nprocs)
        seconds = self.params.reduce_time(nbytes, nprocs, nelements)
        rounds = self.params.collective_rounds(nprocs)
        self.messages += rounds
        self.bytes_moved += rounds * nbytes
        self.collectives += 1
        self.busy_time += seconds
        return seconds

    def broadcast(self, nbytes: int, nprocs: int) -> float:
        """Account for a broadcast of ``nbytes`` to ``nprocs`` processors."""
        self._check_collective(nbytes, nprocs)
        seconds = self.params.broadcast_time(nbytes, nprocs)
        rounds = self.params.collective_rounds(nprocs)
        self.messages += rounds
        self.bytes_moved += rounds * nbytes
        self.collectives += 1
        self.busy_time += seconds
        return seconds

    def all_to_all(self, nbytes_per_pair: int, nprocs: int) -> float:
        """Account for a personalized all-to-all (used by disk redistribution).

        Modelled as ``nprocs - 1`` point-to-point exchanges per processor.
        """
        self._check_collective(nbytes_per_pair, nprocs)
        exchanges = max(nprocs - 1, 0)
        seconds = exchanges * self.params.point_to_point_time(nbytes_per_pair)
        self.messages += exchanges
        self.bytes_moved += exchanges * nbytes_per_pair
        self.collectives += 1
        self.busy_time += seconds
        return seconds

    @staticmethod
    def _check_collective(nbytes: int, nprocs: int) -> None:
        if nbytes < 0:
            raise CollectiveError(f"negative collective payload {nbytes}")
        if nprocs < 1:
            raise CollectiveError(f"collective over non-positive processor count {nprocs}")

    # -- reporting --------------------------------------------------------------
    def reset(self) -> None:
        self.messages = 0
        self.bytes_moved = 0
        self.collectives = 0
        self.busy_time = 0.0

    def snapshot(self) -> dict:
        return {
            "messages": self.messages,
            "bytes_moved": self.bytes_moved,
            "collectives": self.collectives,
            "busy_time": self.busy_time,
        }
