"""Per-processor operation counters and aggregated metrics.

The paper measures I/O cost with two hardware-independent metrics:

* the **number of I/O requests per processor**, and
* the **total amount of data fetched from disk per processor**.

:class:`OperationCounters` records exactly those, plus the compute and
communication counters needed to reconstruct the full simulated time.
:class:`MetricsSet` holds one counter object per processor and provides the
aggregations used in reports (per-processor maximum, totals, means).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List

__all__ = ["OperationCounters", "MetricsSet"]


@dataclasses.dataclass
class OperationCounters:
    """Raw operation counts for one simulated processor."""

    rank: int = 0
    io_read_requests: int = 0
    io_write_requests: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    flops: float = 0.0
    messages: int = 0
    bytes_communicated: int = 0
    collectives: int = 0

    # -- recording helpers ----------------------------------------------------
    def record_read(self, nbytes: int, nrequests: int = 1) -> None:
        self.io_read_requests += nrequests
        self.bytes_read += nbytes

    def record_write(self, nbytes: int, nrequests: int = 1) -> None:
        self.io_write_requests += nrequests
        self.bytes_written += nbytes

    def record_compute(self, flops: float) -> None:
        self.flops += flops

    def record_messages(self, nmessages: int, nbytes: int) -> None:
        self.messages += nmessages
        self.bytes_communicated += nbytes

    def record_collective(self, nmessages: int, nbytes: int) -> None:
        self.collectives += 1
        self.record_messages(nmessages, nbytes)

    # -- derived --------------------------------------------------------------
    @property
    def io_requests(self) -> int:
        """Total I/O requests (the paper's first metric)."""
        return self.io_read_requests + self.io_write_requests

    @property
    def io_bytes(self) -> int:
        """Total bytes moved to/from disk (the paper's second metric)."""
        return self.bytes_read + self.bytes_written

    def merge(self, other: "OperationCounters") -> "OperationCounters":
        """Return a new counter object with the sums of both operands."""
        return OperationCounters(
            rank=self.rank,
            io_read_requests=self.io_read_requests + other.io_read_requests,
            io_write_requests=self.io_write_requests + other.io_write_requests,
            bytes_read=self.bytes_read + other.bytes_read,
            bytes_written=self.bytes_written + other.bytes_written,
            flops=self.flops + other.flops,
            messages=self.messages + other.messages,
            bytes_communicated=self.bytes_communicated + other.bytes_communicated,
            collectives=self.collectives + other.collectives,
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "io_read_requests": self.io_read_requests,
            "io_write_requests": self.io_write_requests,
            "io_requests": self.io_requests,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "io_bytes": self.io_bytes,
            "flops": self.flops,
            "messages": self.messages,
            "bytes_communicated": self.bytes_communicated,
            "collectives": self.collectives,
        }


class MetricsSet:
    """Counters for all processors of a machine, with report aggregations."""

    def __init__(self, nprocs: int):
        self.counters: List[OperationCounters] = [OperationCounters(rank=r) for r in range(nprocs)]

    def __getitem__(self, rank: int) -> OperationCounters:
        return self.counters[rank]

    def __iter__(self) -> Iterable[OperationCounters]:
        return iter(self.counters)

    def __len__(self) -> int:
        return len(self.counters)

    @property
    def nprocs(self) -> int:
        return len(self.counters)

    # -- aggregations -----------------------------------------------------------
    def max_per_processor(self) -> Dict[str, float]:
        """Per-field maximum over processors (critical-path view)."""
        keys = self.counters[0].as_dict().keys()
        return {k: max(c.as_dict()[k] for c in self.counters) for k in keys}

    def total(self) -> Dict[str, float]:
        """Per-field sum over processors."""
        keys = self.counters[0].as_dict().keys()
        return {k: sum(c.as_dict()[k] for c in self.counters) for k in keys}

    def mean(self) -> Dict[str, float]:
        """Per-field mean over processors."""
        totals = self.total()
        return {k: v / self.nprocs for k, v in totals.items()}

    def reset(self) -> None:
        for counters in self.counters:
            rank = counters.rank
            counters.__init__(rank=rank)  # type: ignore[misc]
