"""The :class:`Machine`: a complete simulated distributed-memory computer.

A machine bundles, for ``P`` processors:

* one :class:`~repro.machine.processor.ProcessorModel` per compute node,
* one :class:`~repro.machine.disk.DiskModel` per logical disk (the paper's
  data storage model pairs each processor with a logical disk holding its
  Local Array File),
* a shared :class:`~repro.machine.network.NetworkModel`,
* a :class:`~repro.machine.clock.ClockSet` of per-processor clocks, and
* a :class:`~repro.machine.metrics.MetricsSet` of per-processor counters.

The machine exposes *charge* methods used by the runtime: they update the
appropriate cost model, counters and clock together so the three views can
never drift apart.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.exceptions import MachineConfigurationError
from repro.machine.clock import ClockSet
from repro.machine.disk import DiskModel
from repro.machine.metrics import MetricsSet
from repro.machine.network import NetworkModel
from repro.machine.parameters import MachineParameters, get_preset, touchstone_delta
from repro.machine.processor import ProcessorModel

__all__ = ["Machine"]


class Machine:
    """A simulated distributed-memory machine with ``nprocs`` compute nodes."""

    def __init__(self, nprocs: int, params: MachineParameters | str | None = None):
        if nprocs < 1:
            raise MachineConfigurationError(f"a machine needs at least one processor, got {nprocs}")
        if params is None:
            params = touchstone_delta()
        elif isinstance(params, str):
            params = get_preset(params)
        self.nprocs = int(nprocs)
        self.params = params
        self.processors: List[ProcessorModel] = [
            ProcessorModel(params=params.processor, rank=r) for r in range(nprocs)
        ]
        self.disks: List[DiskModel] = [DiskModel(params=params.disk) for _ in range(nprocs)]
        self.network = NetworkModel(params=params.network)
        self.clocks = ClockSet(nprocs)
        self.metrics = MetricsSet(nprocs)

    # ------------------------------------------------------------------
    # charge methods (cost + counters + clock updated together)
    # ------------------------------------------------------------------
    def charge_read(self, rank: int, nbytes: int, nrequests: int = 1) -> float:
        """Charge processor ``rank`` for reading ``nbytes`` from its logical disk.

        For shared-disk machines (Delta/Paragon style) the whole machine is
        assumed to be doing I/O concurrently, so the contention factor is the
        number of processors.
        """
        seconds = self.disks[rank].read(nbytes, nrequests, contention=self.nprocs)
        self.metrics[rank].record_read(nbytes, nrequests)
        self.clocks[rank].advance(seconds, "io")
        return seconds

    def charge_write(self, rank: int, nbytes: int, nrequests: int = 1) -> float:
        """Charge processor ``rank`` for writing ``nbytes`` to its logical disk."""
        seconds = self.disks[rank].write(nbytes, nrequests, contention=self.nprocs)
        self.metrics[rank].record_write(nbytes, nrequests)
        self.clocks[rank].advance(seconds, "io")
        return seconds

    def charge_compute(self, rank: int, flops: float) -> float:
        """Charge processor ``rank`` for ``flops`` floating point operations."""
        seconds = self.processors[rank].compute(flops)
        self.metrics[rank].record_compute(flops)
        self.clocks[rank].advance(seconds, "compute")
        return seconds

    def charge_copy(self, rank: int, nbytes: int) -> float:
        """Charge processor ``rank`` for a local memory copy (packing/unpacking)."""
        seconds = self.processors[rank].copy(nbytes)
        self.clocks[rank].advance(seconds, "compute")
        return seconds

    def charge_send(self, src: int, dst: int, nbytes: int) -> float:
        """Charge a point-to-point message from ``src`` to ``dst``.

        Both endpoints advance by the message time (blocking send/recv pair).
        """
        self._check_rank(src)
        self._check_rank(dst)
        seconds = self.network.send(nbytes)
        for rank in {src, dst}:
            self.metrics[rank].record_messages(1, nbytes)
            self.clocks[rank].advance(seconds, "comm")
        return seconds

    def charge_global_sum(self, nbytes: int, nelements: Optional[int] = None) -> float:
        """Charge every processor for a global sum (all-reduce) of ``nbytes``.

        All clocks are synchronized first (a blocking collective makes the
        slowest processor set the pace) and then advanced by the collective
        time.
        """
        self.clocks.synchronize()
        seconds = self.network.global_sum(nbytes, self.nprocs, nelements)
        rounds = self.network.params.collective_rounds(self.nprocs)
        for rank in range(self.nprocs):
            self.metrics[rank].record_collective(rounds, rounds * nbytes)
            self.clocks[rank].advance(seconds, "comm")
        return seconds

    def charge_broadcast(self, nbytes: int) -> float:
        """Charge every processor for a broadcast of ``nbytes``."""
        self.clocks.synchronize()
        seconds = self.network.broadcast(nbytes, self.nprocs)
        rounds = self.network.params.collective_rounds(self.nprocs)
        for rank in range(self.nprocs):
            self.metrics[rank].record_collective(rounds, rounds * nbytes)
            self.clocks[rank].advance(seconds, "comm")
        return seconds

    def charge_all_to_all(self, nbytes_per_pair: int) -> float:
        """Charge every processor for a personalized all-to-all exchange."""
        self.clocks.synchronize()
        seconds = self.network.all_to_all(nbytes_per_pair, self.nprocs)
        exchanges = max(self.nprocs - 1, 0)
        for rank in range(self.nprocs):
            self.metrics[rank].record_collective(exchanges, exchanges * nbytes_per_pair)
            self.clocks[rank].advance(seconds, "comm")
        return seconds

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def _check_rank(self, rank: int) -> int:
        if not 0 <= rank < self.nprocs:
            raise MachineConfigurationError(f"rank {rank} outside machine of {self.nprocs} processors")
        return rank

    @property
    def memory_per_node(self) -> int:
        """Node memory budget available for In-core Local Arrays (bytes)."""
        return self.params.processor.memory_bytes

    def elapsed(self) -> float:
        """Simulated wall-clock time of the run so far."""
        return self.clocks.elapsed()

    def time_breakdown(self) -> Dict[str, float]:
        """Critical-path time breakdown (max over processors per category)."""
        return self.clocks.breakdown()

    def io_statistics(self) -> Dict[str, float]:
        """The paper's I/O metrics, reported per processor (maximum)."""
        agg = self.metrics.max_per_processor()
        return {
            "io_requests_per_proc": agg["io_requests"],
            "io_read_requests_per_proc": agg["io_read_requests"],
            "io_write_requests_per_proc": agg["io_write_requests"],
            "bytes_read_per_proc": agg["bytes_read"],
            "bytes_written_per_proc": agg["bytes_written"],
        }

    def reset(self) -> None:
        """Clear all clocks, counters and cost-model statistics."""
        for disk in self.disks:
            disk.reset()
        for proc in self.processors:
            proc.reset()
        self.network.reset()
        self.clocks.reset()
        self.metrics.reset()

    def describe(self) -> str:
        return f"Machine(nprocs={self.nprocs}, {self.params.describe()})"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()
