"""Disk / I/O subsystem cost model.

A :class:`DiskModel` is attached to each simulated processor's *logical disk*
(the paper's data storage model gives every processor its own logical disk
holding its Local Array File; the mapping onto physical disks is the file
system's business and outside the model).  It converts I/O requests into
simulated seconds and keeps per-disk counters.
"""

from __future__ import annotations

import dataclasses

from repro.exceptions import IOEngineError
from repro.machine.parameters import DiskParameters

__all__ = ["DiskModel"]


@dataclasses.dataclass
class DiskModel:
    """Cost model and counters for one logical disk."""

    params: DiskParameters
    read_requests: int = 0
    write_requests: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    busy_time: float = 0.0

    def read(self, nbytes: int, nrequests: int = 1, contention: int = 1) -> float:
        """Account for reading ``nbytes`` in ``nrequests`` requests; return seconds.

        ``contention`` is the number of processors concurrently sharing the
        I/O subsystem (only affects shared-disk parameter sets).
        """
        self._check(nbytes, nrequests)
        seconds = self.params.read_time(nbytes, nrequests, contention)
        self.read_requests += nrequests
        self.bytes_read += nbytes
        self.busy_time += seconds
        return seconds

    def write(self, nbytes: int, nrequests: int = 1, contention: int = 1) -> float:
        """Account for writing ``nbytes`` in ``nrequests`` requests; return seconds."""
        self._check(nbytes, nrequests)
        seconds = self.params.write_time(nbytes, nrequests, contention)
        self.write_requests += nrequests
        self.bytes_written += nbytes
        self.busy_time += seconds
        return seconds

    @staticmethod
    def _check(nbytes: int, nrequests: int) -> None:
        if nbytes < 0:
            raise IOEngineError(f"negative byte count {nbytes}")
        if nrequests < 0:
            raise IOEngineError(f"negative request count {nrequests}")

    # -- reporting -----------------------------------------------------------
    @property
    def total_requests(self) -> int:
        return self.read_requests + self.write_requests

    @property
    def total_bytes(self) -> int:
        return self.bytes_read + self.bytes_written

    def reset(self) -> None:
        """Clear all counters (the cost parameters are kept)."""
        self.read_requests = 0
        self.write_requests = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.busy_time = 0.0

    def snapshot(self) -> dict:
        """Return counters as a plain dictionary (for reports and tests)."""
        return {
            "read_requests": self.read_requests,
            "write_requests": self.write_requests,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "busy_time": self.busy_time,
        }
