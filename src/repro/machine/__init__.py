"""Simulated distributed-memory machine.

The paper evaluates on the Intel Touchstone Delta: compute processors joined
by a mesh network, with dedicated I/O nodes in front of a shared set of disks
(its Concurrent File System).  That hardware no longer exists, so this
subpackage provides a parameterised stand-in:

* :mod:`repro.machine.parameters` — named parameter sets (a Delta-like preset,
  a Paragon-like preset, an SP-1-like preset and a modern-cluster preset),
* :mod:`repro.machine.disk` — the disk / I/O subsystem cost model,
* :mod:`repro.machine.network` — the interconnect cost model including
  tree-based collective operations,
* :mod:`repro.machine.processor` — the compute-node cost model,
* :mod:`repro.machine.clock` — per-processor simulated clocks,
* :mod:`repro.machine.metrics` — per-processor operation counters,
* :mod:`repro.machine.cluster` — the :class:`~repro.machine.cluster.Machine`
  object that bundles all of the above for ``P`` processors.

The simulation is a *cost accumulation* model, not a discrete-event
simulation: the paper's analysis depends only on the number of I/O requests,
the bytes moved, the arithmetic performed and the messages exchanged, all of
which are converted to seconds with affine cost functions.
"""

from repro.machine.parameters import (
    DiskParameters,
    NetworkParameters,
    ProcessorParameters,
    MachineParameters,
    touchstone_delta,
    intel_paragon,
    ibm_sp1,
    modern_cluster,
    PRESETS,
    get_preset,
)
from repro.machine.disk import DiskModel
from repro.machine.network import NetworkModel
from repro.machine.processor import ProcessorModel
from repro.machine.clock import ProcessorClock, ClockSet
from repro.machine.metrics import OperationCounters, MetricsSet
from repro.machine.cluster import Machine

__all__ = [
    "DiskParameters",
    "NetworkParameters",
    "ProcessorParameters",
    "MachineParameters",
    "touchstone_delta",
    "intel_paragon",
    "ibm_sp1",
    "modern_cluster",
    "PRESETS",
    "get_preset",
    "DiskModel",
    "NetworkModel",
    "ProcessorModel",
    "ProcessorClock",
    "ClockSet",
    "OperationCounters",
    "MetricsSet",
    "Machine",
]
