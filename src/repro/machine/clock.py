"""Per-processor simulated clocks.

The executor advances one clock per simulated processor.  Because the
compiled programs are loosely synchronous (all processors execute the same
schedule and meet at collectives), synchronization is modelled by aligning
all clocks to the maximum at every collective operation — exactly the
behaviour of a blocking global sum.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List

from repro.exceptions import MachineConfigurationError

__all__ = ["ProcessorClock", "ClockSet"]


@dataclasses.dataclass
class ProcessorClock:
    """Simulated wall clock of one processor, with a time breakdown."""

    rank: int
    now: float = 0.0
    io_time: float = 0.0
    compute_time: float = 0.0
    comm_time: float = 0.0
    idle_time: float = 0.0

    def advance(self, seconds: float, category: str = "compute") -> float:
        """Advance the clock by ``seconds`` attributed to ``category``.

        ``category`` is one of ``"io"``, ``"compute"``, ``"comm"``, ``"idle"``.
        Returns the new time.
        """
        if seconds < 0:
            raise MachineConfigurationError(f"cannot advance clock by negative time {seconds}")
        self.now += seconds
        if category == "io":
            self.io_time += seconds
        elif category == "compute":
            self.compute_time += seconds
        elif category == "comm":
            self.comm_time += seconds
        elif category == "idle":
            self.idle_time += seconds
        else:
            raise MachineConfigurationError(f"unknown time category {category!r}")
        return self.now

    def breakdown(self) -> Dict[str, float]:
        return {
            "io": self.io_time,
            "compute": self.compute_time,
            "comm": self.comm_time,
            "idle": self.idle_time,
            "total": self.now,
        }


class ClockSet:
    """The clocks of all processors of a simulated machine."""

    def __init__(self, nprocs: int):
        if nprocs < 1:
            raise MachineConfigurationError(f"nprocs must be positive, got {nprocs}")
        self.clocks: List[ProcessorClock] = [ProcessorClock(rank=r) for r in range(nprocs)]

    def __len__(self) -> int:
        return len(self.clocks)

    def __getitem__(self, rank: int) -> ProcessorClock:
        return self.clocks[rank]

    def __iter__(self) -> Iterable[ProcessorClock]:
        return iter(self.clocks)

    @property
    def nprocs(self) -> int:
        return len(self.clocks)

    def elapsed(self) -> float:
        """Simulated wall-clock time: the maximum over all processors."""
        return max(c.now for c in self.clocks)

    def synchronize(self) -> float:
        """Align every clock to the current maximum, charging the gap as idle time.

        Models a barrier / blocking collective: the slowest processor sets the
        pace and the others wait.  Returns the synchronized time.
        """
        target = self.elapsed()
        for clock in self.clocks:
            gap = target - clock.now
            if gap > 0:
                clock.advance(gap, "idle")
        return target

    def breakdown(self) -> Dict[str, float]:
        """Aggregate breakdown using the *maximum* over processors per category.

        This is the convention the paper uses when it reports a single time per
        run: the critical-path processor determines the reported time.
        """
        return {
            "io": max(c.io_time for c in self.clocks),
            "compute": max(c.compute_time for c in self.clocks),
            "comm": max(c.comm_time for c in self.clocks),
            "idle": max(c.idle_time for c in self.clocks),
            "total": self.elapsed(),
        }

    def reset(self) -> None:
        for clock in self.clocks:
            clock.now = 0.0
            clock.io_time = 0.0
            clock.compute_time = 0.0
            clock.comm_time = 0.0
            clock.idle_time = 0.0
