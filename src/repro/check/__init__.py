"""Static plan verification: prove invariants over compiled plans.

:func:`check_compiled` abstractly interprets a compiled plan's node
programs — without executing — and proves budget, dataflow, collective and
charge-ledger invariants, returning a frozen :class:`CheckReport`.  See
``src/repro/check/README.md`` for the defect taxonomy and the walker design.
"""

from repro.check.ledger import ArrayTraffic, ChargeLedger
from repro.check.report import CheckFinding, CheckReport, Severity
from repro.check.verifier import (
    check_collective_alignment,
    check_compiled,
    check_node_program,
)

__all__ = [
    "ArrayTraffic",
    "ChargeLedger",
    "CheckFinding",
    "CheckReport",
    "Severity",
    "check_collective_alignment",
    "check_compiled",
    "check_node_program",
]
