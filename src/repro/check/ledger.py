"""The symbolic charge ledger.

The verifier's walk over a :class:`~repro.core.node_program.NodeProgram`
derives, without executing anything, the exact per-processor charges the
executor would make: I/O requests and elements per array, flops, and
collective traffic.  The ledger must agree *exactly* with the cost model's
:class:`~repro.core.cost_model.PlanCost` — making it a third independent
oracle alongside the ESTIMATE and EXECUTE counters, and turning any future
cost-model/codegen divergence into a compile-time finding.

Conventions (matching :class:`PlanCost` and the machine counters):

* All I/O quantities are **per processor**, planned against the largest
  local array (ranks with smaller parts charge less; the machine reports
  the per-processor maximum).
* ``global_sum_count`` is both the per-rank and the machine-level count —
  every rank participates in every global sum.
* ``all_to_all_count`` is the **per-rank** exchange count; the machine
  performs ``nprocs x`` that many collectives (each rank's slab loop
  triggers its own exchange), which is the convention
  ``PlanCost.collective_count`` uses for transposes.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List

from repro.core.cost_model import PlanCost

__all__ = ["ArrayTraffic", "ChargeLedger"]


def _eq(a: float, b: float) -> bool:
    """Exact-up-to-floating-point equality for integer-valued charge counts."""
    return math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-6)


@dataclasses.dataclass
class ArrayTraffic:
    """Per-processor I/O traffic of one array (requests and elements)."""

    read_requests: float = 0.0
    read_elements: float = 0.0
    write_requests: float = 0.0
    write_elements: float = 0.0

    def add(self, other: "ArrayTraffic") -> None:
        self.read_requests += other.read_requests
        self.read_elements += other.read_elements
        self.write_requests += other.write_requests
        self.write_elements += other.write_elements


@dataclasses.dataclass
class ChargeLedger:
    """Exact symbolic charges of one node program (or a summed schedule)."""

    itemsize: int
    nprocs: int
    arrays: Dict[str, ArrayTraffic] = dataclasses.field(default_factory=dict)
    flops: float = 0.0
    global_sum_count: float = 0.0
    #: total elements reduced over all global sums (count x length summed)
    global_sum_elements: float = 0.0
    #: per-rank all-to-all exchange count
    all_to_all_count: float = 0.0
    #: per-rank total per-pair elements over all exchanges
    all_to_all_elements: float = 0.0

    # ------------------------------------------------------------------
    def traffic(self, array: str) -> ArrayTraffic:
        return self.arrays.setdefault(array, ArrayTraffic())

    def add(self, other: "ChargeLedger") -> None:
        """Accumulate another statement's ledger (same machine shape)."""
        if other.itemsize != self.itemsize or other.nprocs != self.nprocs:
            raise ValueError(
                "cannot merge ledgers across itemsize/nprocs: "
                f"({self.itemsize}, {self.nprocs}) vs ({other.itemsize}, {other.nprocs})"
            )
        for name, traffic in other.arrays.items():
            self.traffic(name).add(traffic)
        self.flops += other.flops
        self.global_sum_count += other.global_sum_count
        self.global_sum_elements += other.global_sum_elements
        self.all_to_all_count += other.all_to_all_count
        self.all_to_all_elements += other.all_to_all_elements

    # ------------------------------------------------------------------
    @property
    def read_requests(self) -> float:
        return sum(t.read_requests for t in self.arrays.values())

    @property
    def write_requests(self) -> float:
        return sum(t.write_requests for t in self.arrays.values())

    @property
    def io_requests(self) -> float:
        return self.read_requests + self.write_requests

    @property
    def read_elements(self) -> float:
        return sum(t.read_elements for t in self.arrays.values())

    @property
    def write_elements(self) -> float:
        return sum(t.write_elements for t in self.arrays.values())

    @property
    def read_bytes(self) -> float:
        return self.read_elements * self.itemsize

    @property
    def write_bytes(self) -> float:
        return self.write_elements * self.itemsize

    @property
    def io_bytes(self) -> float:
        return self.read_bytes + self.write_bytes

    @property
    def collective_count(self) -> float:
        """Machine-level collective count in the :class:`PlanCost` convention."""
        return self.global_sum_count + self.nprocs * self.all_to_all_count

    @property
    def collective_elements_total(self) -> float:
        """Machine-level total collective payload elements (count x each)."""
        return self.global_sum_elements + self.nprocs * self.all_to_all_elements

    # ------------------------------------------------------------------
    def compare_plan_cost(self, cost: PlanCost) -> List[str]:
        """Exact comparison against a :class:`PlanCost`; returns mismatches."""
        problems: List[str] = []
        if int(cost.itemsize) != int(self.itemsize):
            problems.append(f"itemsize: ledger {self.itemsize} != cost {cost.itemsize}")
        if int(cost.nprocs) != int(self.nprocs):
            problems.append(f"nprocs: ledger {self.nprocs} != cost {cost.nprocs}")
        names = sorted(set(self.arrays) | set(cost.arrays))
        for name in names:
            mine = self.arrays.get(name, ArrayTraffic())
            theirs = cost.arrays.get(name)
            fields = (
                ("fetch_requests", mine.read_requests),
                ("fetch_elements", mine.read_elements),
                ("write_requests", mine.write_requests),
                ("write_elements", mine.write_elements),
            )
            for field, value in fields:
                expected = getattr(theirs, field) if theirs is not None else 0.0
                if not _eq(value, expected):
                    problems.append(
                        f"{name}.{field}: ledger {value:.6g} != cost {expected:.6g}"
                    )
        if not _eq(self.flops, cost.flops):
            problems.append(f"flops: ledger {self.flops:.6g} != cost {cost.flops:.6g}")
        if not _eq(self.collective_count, cost.collective_count):
            problems.append(
                f"collective_count: ledger {self.collective_count:.6g} "
                f"!= cost {cost.collective_count:.6g}"
            )
        cost_elements = cost.collective_count * cost.collective_elements_each
        if not _eq(self.collective_elements_total, cost_elements):
            problems.append(
                f"collective_elements: ledger {self.collective_elements_total:.6g} "
                f"!= cost {cost_elements:.6g}"
            )
        return problems

    def summary(self) -> Dict[str, float]:
        return {
            "io_requests": self.io_requests,
            "read_bytes": self.read_bytes,
            "write_bytes": self.write_bytes,
            "flops": self.flops,
            "collective_count": self.collective_count,
            "collective_elements": self.collective_elements_total,
        }
