"""The static plan verifier: an abstract interpreter over compiled plans.

Without executing anything, :func:`check_compiled` walks each statement's
:class:`~repro.core.node_program.NodeProgram` and the whole-program
:class:`~repro.core.codegen.ProgramSchedule`, proving the invariants the
runtime otherwise only validates dynamically:

* **budget** — the plan's resident slab bytes fit the statement's memory
  budget (beyond the one-line-per-array floor the strip-miner guarantees);
* **dataflow** — no read-before-write (within a statement and across
  statements via the PR-4 LAF-reuse edges), no double-written slab extent,
  no intermediate that is never read;
* **collective matching** — every rank's program issues the same collective
  sequence (SPMD programs match by construction;
  :func:`check_collective_alignment` verifies explicit per-rank programs);
* **charge agreement** — the exact symbolic
  :class:`~repro.check.ledger.ChargeLedger` derived from the walk equals the
  cost model's :class:`~repro.core.cost_model.PlanCost`.

Exactness
---------
``NodeProgram.operation_totals()`` multiplies nominal per-op quantities by
loop trip counts, which *overcounts* whenever slabs do not divide the local
array evenly (the last slab is partial).  The executor charges actual slab
extents, and the cost model's formulas telescope to exact local sizes — so
the verifier must too.  Codegen annotates every loop with what it enumerates
(``slabs_of`` / ``lines_of`` a plan array) and every extent-dependent op with
the array whose current slab it scales with; the walker collapses each
(slab-loop, line-loop) pair over an array into that array's exact total line
count, and each aligned I/O or compute op over a slab loop into the array's
exact local size.  The result is an O(tree) arithmetic walk that reproduces
the executor's charges without unrolling a single loop iteration.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.check.ledger import ArrayTraffic, ChargeLedger
from repro.check.report import CheckFinding, CheckReport, Severity
from repro.core.node_program import (
    AllToAllOp,
    ComputeOp,
    GlobalSumOp,
    IOReadOp,
    IOWriteOp,
    LoopOp,
    NodeOp,
    NodeProgram,
)
from repro.core.reorganize import AccessPlan
from repro.core.stripmine import SlabPlanEntry
from repro.runtime.slab import SlabbingStrategy

__all__ = [
    "check_node_program",
    "check_compiled",
    "check_collective_alignment",
]


# ----------------------------------------------------------------------
# plan-entry geometry
# ----------------------------------------------------------------------
def _per_line(entry: SlabPlanEntry) -> int:
    """Elements per line (column of a column slab, row of a row slab)."""
    rows, cols = entry.local_shape
    return max(rows, 1) if entry.strategy is SlabbingStrategy.COLUMN else max(cols, 1)


def _lines_total(entry: SlabPlanEntry) -> int:
    """Total lines of the local array in the entry's slabbing dimension."""
    rows, cols = entry.local_shape
    return max(cols, 1) if entry.strategy is SlabbingStrategy.COLUMN else max(rows, 1)


def _local_elements(entry: SlabPlanEntry) -> int:
    return _per_line(entry) * _lines_total(entry)


def _entry_consistent(entry: SlabPlanEntry) -> bool:
    """The entry's redundant fields agree (slab size, line count, slab count)."""
    per_line = _per_line(entry)
    lines = entry.lines_per_slab
    if lines < 1 or lines > _lines_total(entry):
        return False
    if entry.slab_elements != lines * per_line:
        return False
    return entry.num_slabs == math.ceil(_lines_total(entry) / lines)


# ----------------------------------------------------------------------
# the walk
# ----------------------------------------------------------------------
@dataclasses.dataclass
class _Frame:
    """One loop on the walk stack."""

    loop: LoopOp
    kind: str  # "slabs" | "lines" | "plain"
    array: str
    #: stack index of the slabs-frame a lines-frame collapses with
    partner: Optional[int] = None


class _Walker:
    """Single-pass exact walk of one node program against its access plan."""

    def __init__(
        self,
        plan: AccessPlan,
        *,
        itemsize: int,
        nprocs: int,
        initialized: Set[str],
        statement: str,
    ):
        self.plan = plan
        self.ledger = ChargeLedger(itemsize=int(itemsize), nprocs=int(nprocs))
        self.findings: List[CheckFinding] = []
        self.initialized = set(initialized)
        self.written: Set[str] = set()
        #: per-array: how many times the walk proved every slab extent written
        self.write_coverage: Dict[str, float] = {}
        self.statement = statement
        self._bad_entries: Set[str] = set()
        for name, entry in plan.entries.items():
            if not _entry_consistent(entry):
                self._bad_entries.add(name)
                self._find(
                    "malformed-plan",
                    Severity.ERROR,
                    f"slab plan entry for {name!r} is inconsistent: "
                    f"{entry.slab_elements} elements != {entry.lines_per_slab} lines "
                    f"x {_per_line(entry)} per line, or {entry.num_slabs} slabs != "
                    f"ceil({_lines_total(entry)} / {entry.lines_per_slab})",
                    array=name,
                )

    # ------------------------------------------------------------------
    def _find(
        self, code: str, severity: Severity, message: str, array: str = ""
    ) -> None:
        self.findings.append(
            CheckFinding(
                code=code,
                severity=severity,
                message=message,
                statement=self.statement,
                array=array,
            )
        )

    def _entry(self, name: str) -> Optional[SlabPlanEntry]:
        return self.plan.entries.get(name)

    # ------------------------------------------------------------------
    def run(self, program: NodeProgram) -> None:
        self._walk(program.ops, [])

    def _walk(self, ops: Iterable[NodeOp], frames: List[_Frame]) -> None:
        for op in ops:
            if isinstance(op, LoopOp):
                frame = self._make_frame(op, frames)
                frames.append(frame)
                self._walk(op.body, frames)
                frames.pop()
            elif isinstance(op, IOReadOp):
                self._visit_io(op.array, op.elements, frames, is_write=False)
            elif isinstance(op, IOWriteOp):
                self._visit_io(op.array, op.elements, frames, is_write=True)
            elif isinstance(op, ComputeOp):
                self._visit_compute(op, frames)
            elif isinstance(op, GlobalSumOp):
                self._visit_global_sum(op, frames)
            elif isinstance(op, AllToAllOp):
                self._visit_all_to_all(op, frames)
            # OwnerStoreOp: a local memory operation, no charge and no extent.

    # ------------------------------------------------------------------
    def _make_frame(self, loop: LoopOp, frames: List[_Frame]) -> _Frame:
        if loop.slabs_of and loop.lines_of:
            self._find(
                "malformed-loop",
                Severity.ERROR,
                f"loop {loop.index!r} is annotated both slabs_of={loop.slabs_of!r} "
                f"and lines_of={loop.lines_of!r}",
            )
            return _Frame(loop=loop, kind="plain", array="")
        if loop.slabs_of:
            entry = self._entry(loop.slabs_of)
            if entry is None:
                self._find(
                    "unknown-array",
                    Severity.ERROR,
                    f"loop {loop.index!r} enumerates slabs of {loop.slabs_of!r}, "
                    "which has no plan entry",
                    array=loop.slabs_of,
                )
                return _Frame(loop=loop, kind="plain", array="")
            if loop.trip_count != entry.num_slabs:
                self._find(
                    "malformed-loop",
                    Severity.ERROR,
                    f"loop {loop.index!r} runs {loop.trip_count} trips but "
                    f"{loop.slabs_of!r} has {entry.num_slabs} slabs",
                    array=loop.slabs_of,
                )
                return _Frame(loop=loop, kind="plain", array="")
            return _Frame(loop=loop, kind="slabs", array=loop.slabs_of)
        if loop.lines_of:
            entry = self._entry(loop.lines_of)
            if entry is None:
                self._find(
                    "unknown-array",
                    Severity.ERROR,
                    f"loop {loop.index!r} enumerates lines of {loop.lines_of!r}, "
                    "which has no plan entry",
                    array=loop.lines_of,
                )
                return _Frame(loop=loop, kind="plain", array="")
            partner = self._find_partner(loop.lines_of, frames)
            if partner is None:
                self._find(
                    "malformed-loop",
                    Severity.ERROR,
                    f"loop {loop.index!r} enumerates lines of the current "
                    f"{loop.lines_of!r} slab but is not nested inside a slab loop "
                    f"over {loop.lines_of!r}",
                    array=loop.lines_of,
                )
                return _Frame(loop=loop, kind="plain", array="")
            if loop.trip_count != entry.lines_per_slab:
                self._find(
                    "malformed-loop",
                    Severity.ERROR,
                    f"loop {loop.index!r} runs {loop.trip_count} trips but a "
                    f"{loop.lines_of!r} slab holds {entry.lines_per_slab} lines",
                    array=loop.lines_of,
                )
                return _Frame(loop=loop, kind="plain", array="")
            return _Frame(loop=loop, kind="lines", array=loop.lines_of, partner=partner)
        return _Frame(loop=loop, kind="plain", array="")

    def _find_partner(self, array: str, frames: List[_Frame]) -> Optional[int]:
        """Nearest enclosing slabs-frame over ``array`` not already collapsed."""
        taken = {f.partner for f in frames if f.kind == "lines"}
        for index in range(len(frames) - 1, -1, -1):
            frame = frames[index]
            if frame.kind == "slabs" and frame.array == array and index not in taken:
                return index
        return None

    # ------------------------------------------------------------------
    def _alignment(self, array: str, frames: List[_Frame]) -> Optional[int]:
        """Stack index of the slab loop an extent-dependent op scales with.

        The nearest enclosing ``slabs_of=array`` frame that is *not* collapsed
        with a ``lines_of=array`` frame also enclosing the op (a collapsed pair
        jointly enumerates lines, so the op does not see its slab boundary).

        When no frame names ``array`` itself, a slab loop over another array
        with the *same slab count* still enumerates ``array``'s slabs in
        lockstep (the fused elementwise loop steps all of its arrays
        together), so the op's extents telescope to ``array``'s exact local
        size all the same — each of its slabs is visited exactly once.
        """
        collapsed = {
            frame.partner for frame in frames if frame.kind == "lines"
        }
        congruent: Optional[int] = None
        entry = self._entry(array)
        for index in range(len(frames) - 1, -1, -1):
            frame = frames[index]
            if frame.kind != "slabs" or index in collapsed:
                continue
            if frame.array == array:
                return index
            if congruent is None and entry is not None:
                other = self._entry(frame.array)
                if other is not None and other.num_slabs == entry.num_slabs:
                    congruent = index
        return congruent

    def _multiplicity(
        self, frames: List[_Frame], exclude: Optional[int] = None
    ) -> float:
        """Exact combined iteration count of the enclosing loops.

        A (slabs, lines) pair over one array contributes the array's exact
        total line count; an unpaired slab loop contributes its slab count; a
        plain loop contributes its trip count.  ``exclude`` drops one frame
        (the alignment frame, whose contribution the caller replaces with an
        exact extent sum).
        """
        total = 1.0
        skip: Set[int] = set()
        for frame in frames:
            if frame.kind == "lines" and frame.partner is not None:
                skip.add(frame.partner)
        for index, frame in enumerate(frames):
            if index == exclude or index in skip:
                continue
            if frame.kind == "lines":
                entry = self._entry(frame.array)
                if entry is not None and frame.partner is not None and frame.partner != exclude:
                    total *= float(_lines_total(entry))
                else:
                    # Partner excluded by the caller: the pair no longer
                    # collapses, keep the nominal line count.
                    total *= float(frame.loop.trip_count)
            elif frame.kind == "slabs":
                entry = self._entry(frame.array)
                total *= float(entry.num_slabs if entry else frame.loop.trip_count)
            else:
                total *= float(frame.loop.trip_count)
        return total

    # ------------------------------------------------------------------
    def _visit_io(
        self, array: str, elements: float, frames: List[_Frame], *, is_write: bool
    ) -> None:
        entry = self._entry(array)
        if entry is None:
            self._find(
                "unknown-array",
                Severity.ERROR,
                f"I/O {'write' if is_write else 'read'} of {array!r}, "
                "which has no plan entry",
                array=array,
            )
            return
        # Dataflow: reads must hit staged inputs or previously written arrays.
        if not is_write and array not in self.initialized and array not in self.written:
            self._find(
                "read-before-write",
                Severity.ERROR,
                f"read of {array!r}, which is neither a staged input nor "
                "written earlier in the program",
                array=array,
            )
        align = self._alignment(array, frames)
        traffic = self.ledger.traffic(array)
        if align is not None and array not in self._bad_entries:
            others = self._multiplicity(frames, exclude=align)
            requests = others * entry.num_slabs
            moved = others * _local_elements(entry)
            if not math.isclose(
                elements, entry.slab_elements, rel_tol=1e-9, abs_tol=1e-6
            ):
                self._find(
                    "ledger-drift",
                    Severity.ERROR,
                    f"{'write' if is_write else 'read'} of {array!r} moves "
                    f"{elements:.6g} elements per call but the plan's slab holds "
                    f"{entry.slab_elements}",
                    array=array,
                )
            if is_write:
                coverage = self.write_coverage.get(array, 0.0) + others
                self.write_coverage[array] = coverage
                if coverage > 1.0 + 1e-9:
                    self._find(
                        "double-write",
                        Severity.ERROR,
                        f"every slab extent of {array!r} is written "
                        f"{coverage:.6g} times (expected once)",
                        array=array,
                    )
        else:
            # No aligning slab loop: charge nominally (the executor would
            # too); extent coverage cannot be proven.
            requests = self._multiplicity(frames)
            moved = requests * elements
            if is_write:
                self.write_coverage[array] = (
                    self.write_coverage.get(array, 0.0)
                    + requests / max(entry.num_slabs, 1)
                )
        if is_write:
            self.written.add(array)
            traffic.write_requests += requests
            traffic.write_elements += moved
        else:
            traffic.read_requests += requests
            traffic.read_elements += moved

    def _visit_compute(self, op: ComputeOp, frames: List[_Frame]) -> None:
        if op.per_slab_of:
            entry = self._entry(op.per_slab_of)
            align = self._alignment(op.per_slab_of, frames)
            if entry is None or align is None or entry.slab_elements <= 0:
                self.ledger.flops += self._multiplicity(frames) * op.flops
                return
            others = self._multiplicity(frames, exclude=align)
            self.ledger.flops += (
                others * op.flops * _local_elements(entry) / entry.slab_elements
            )
            return
        self.ledger.flops += self._multiplicity(frames) * op.flops

    def _visit_global_sum(self, op: GlobalSumOp, frames: List[_Frame]) -> None:
        if self.ledger.nprocs <= 1:
            # A single processor never communicates: the executor skips the
            # collective and the cost model charges none.
            return
        if op.per_line_of:
            entry = self._entry(op.per_line_of)
            align = self._alignment(op.per_line_of, frames)
            if entry is None or align is None or entry.lines_per_slab <= 0:
                count = self._multiplicity(frames)
                self.ledger.global_sum_count += count
                self.ledger.global_sum_elements += count * op.elements
                return
            others = self._multiplicity(frames, exclude=align)
            self.ledger.global_sum_count += others * entry.num_slabs
            self.ledger.global_sum_elements += (
                others * op.elements * _lines_total(entry) / entry.lines_per_slab
            )
            return
        count = self._multiplicity(frames)
        self.ledger.global_sum_count += count
        self.ledger.global_sum_elements += count * op.elements

    def _visit_all_to_all(self, op: AllToAllOp, frames: List[_Frame]) -> None:
        if self.ledger.nprocs <= 1:
            return
        if op.per_slab_of:
            entry = self._entry(op.per_slab_of)
            align = self._alignment(op.per_slab_of, frames)
            if entry is None or align is None or entry.slab_elements <= 0:
                count = self._multiplicity(frames)
                self.ledger.all_to_all_count += count
                self.ledger.all_to_all_elements += count * op.elements_per_pair
                return
            others = self._multiplicity(frames, exclude=align)
            self.ledger.all_to_all_count += others * entry.num_slabs
            self.ledger.all_to_all_elements += (
                others * op.elements_per_pair * _local_elements(entry) / entry.slab_elements
            )
            return
        count = self._multiplicity(frames)
        self.ledger.all_to_all_count += count
        self.ledger.all_to_all_elements += count * op.elements_per_pair


# ----------------------------------------------------------------------
# public entry points
# ----------------------------------------------------------------------
def check_node_program(
    program: NodeProgram,
    plan: AccessPlan,
    *,
    itemsize: int,
    nprocs: int,
    initialized: Iterable[str] = (),
    budget_bytes: Optional[int] = None,
    statement: str = "",
) -> Tuple[ChargeLedger, List[CheckFinding]]:
    """Walk one statement's node program against its access plan.

    Returns the exact symbolic :class:`ChargeLedger` plus any findings:
    structural defects, dataflow violations (``initialized`` names the arrays
    staged before the statement runs) and — when ``budget_bytes`` is given —
    budget overflows.  The caller compares the ledger against a
    :class:`~repro.core.cost_model.PlanCost` (see :func:`check_compiled`).
    """
    walker = _Walker(
        plan,
        itemsize=itemsize,
        nprocs=nprocs,
        initialized=set(initialized),
        statement=statement,
    )
    walker.run(program)
    if budget_bytes is not None:
        resident = sum(
            entry.slab_elements * itemsize for entry in plan.entries.values()
        )
        # The strip-miner never slices below one line per array, so a budget
        # smaller than the one-line floor legitimately overshoots; anything
        # beyond that floor is a planner bug.
        floor = sum(_per_line(entry) * itemsize for entry in plan.entries.values())
        if resident > max(int(budget_bytes), floor):
            walker._find(
                "budget-overflow",
                Severity.ERROR,
                f"plan holds {resident} resident slab bytes against a budget of "
                f"{int(budget_bytes)} bytes (one-line floor {floor})",
            )
    return walker.ledger, walker.findings


def _collective_signature(ops: Iterable[NodeOp]) -> Tuple[object, ...]:
    """Canonical per-rank collective trace (loops kept, empty subtrees dropped)."""
    trace: List[object] = []
    for op in ops:
        if isinstance(op, LoopOp):
            inner = _collective_signature(op.body)
            if inner:
                trace.append(("loop", op.trip_count, inner))
        elif isinstance(op, GlobalSumOp):
            trace.append(("global_sum", float(op.elements)))
        elif isinstance(op, AllToAllOp):
            trace.append(("all_to_all", float(op.elements_per_pair)))
    return tuple(trace)


def check_collective_alignment(
    rank_programs: Sequence[NodeProgram],
) -> List[CheckFinding]:
    """Prove every rank issues the same collective sequence.

    A collective issued by one rank's program but not all is a statically
    detected deadlock.  SPMD plans replicate one program per rank and match
    trivially; explicit per-rank program lists (mutation tests, future
    rank-specialized codegen) are compared structurally — identical loop
    nests over identical collective calls.
    """
    findings: List[CheckFinding] = []
    if len(rank_programs) <= 1:
        return findings
    reference = _collective_signature(rank_programs[0].ops)
    for rank, program in enumerate(rank_programs[1:], start=1):
        signature = _collective_signature(program.ops)
        if signature != reference:
            findings.append(
                CheckFinding(
                    code="collective-mismatch",
                    severity=Severity.ERROR,
                    message=(
                        f"rank {rank} issues a different collective sequence than "
                        f"rank 0 ({len(signature)} vs {len(reference)} top-level "
                        "collective groups) — a statically detected deadlock"
                    ),
                    statement=program.name,
                )
            )
    return findings


def _statement_inputs(program_ir: object) -> Set[str]:
    """External operand arrays of a unit's program (staged before it runs).

    A fused unit's program holds two statements; an operand produced by an
    earlier statement *inside the unit* (the fused intermediate) lives in the
    producer's compute buffer, never in a staged file, so it is excluded.
    """
    statements = program_ir.statements  # type: ignore[attr-defined]
    internal = {statement.result.array for statement in statements[:-1]}
    return {
        ref.array
        for statement in statements
        for ref in statement.operands
        if ref.array not in internal
    }


def check_compiled(
    compiled: object, *, collect_ledger: bool = True
) -> CheckReport:
    """Verify a ``CompiledProgram`` or ``CompiledWholeProgram`` statically.

    Walks every statement's node program (exact charge ledger + structural,
    dataflow and budget checks), proves the schedule-level dataflow over the
    LAF-reuse edges, verifies SPMD collective alignment, and compares the
    summed ledger against the compiled plan's :class:`PlanCost` — any
    disagreement is a ``ledger-drift`` finding.
    """
    findings: List[CheckFinding] = []
    statements: Sequence[object]
    is_whole = hasattr(compiled, "statements")
    if is_whole:
        statements = compiled.statements
        program_ir = compiled.program
        program_inputs = set(program_ir.input_arrays())
    else:
        statements = (compiled,)
        program_ir = compiled.program
        program_inputs = _statement_inputs(program_ir)

    nprocs = int(compiled.nprocs)
    itemsize = int(compiled.cost.itemsize) if is_whole else int(
        compiled.plan.cost.itemsize
    )
    total = ChargeLedger(itemsize=itemsize, nprocs=nprocs)
    produced: Set[str] = set()
    laf_read: Set[str] = set()

    schedule = compiled.schedule if is_whole else None
    for index, unit in enumerate(statements):
        unit_ir = unit.program
        statement_label = unit_ir.name if not is_whole else (
            schedule.steps[index].statement_name
        )
        operands = _statement_inputs(unit_ir)
        result = unit_ir.statements[-1].result.array

        if is_whole:
            step = schedule.steps[index]
            for name in step.laf_inputs:
                laf_read.add(name)
                if name not in produced:
                    findings.append(
                        CheckFinding(
                            code="read-before-write",
                            severity=Severity.ERROR,
                            message=(
                                f"step {index + 1} reuses the LAF of {name!r}, "
                                "which no earlier step produced"
                            ),
                            statement=statement_label,
                            array=name,
                        )
                    )
            for name in step.fresh_inputs:
                if name not in program_inputs:
                    findings.append(
                        CheckFinding(
                            code="read-before-write",
                            severity=Severity.ERROR,
                            message=(
                                f"step {index + 1} stages {name!r} as a fresh "
                                "input, but it is not a program input"
                            ),
                            statement=statement_label,
                            array=name,
                        )
                    )
            if step.writes in produced:
                findings.append(
                    CheckFinding(
                        code="double-write",
                        severity=Severity.ERROR,
                        message=(
                            f"step {index + 1} writes {step.writes!r}, already "
                            "produced by an earlier step"
                        ),
                        statement=statement_label,
                        array=step.writes,
                    )
                )

        initialized = (operands & (program_inputs | produced)) | (
            operands & program_inputs
        )
        # Operands that are neither program inputs nor prior results are a
        # dataflow hole; leave them out of ``initialized`` so the walk flags
        # the read.
        budget = getattr(unit, "memory_budget_bytes", None)
        ledger, unit_findings = check_node_program(
            unit.node_program,
            unit.plan,
            itemsize=itemsize,
            nprocs=nprocs,
            initialized=initialized,
            budget_bytes=budget,
            statement=statement_label,
        )
        findings.extend(unit_findings)

        drift = ledger.compare_plan_cost(unit.plan.cost)
        for problem in drift:
            findings.append(
                CheckFinding(
                    code="ledger-drift",
                    severity=Severity.ERROR,
                    message=f"symbolic ledger != cost model: {problem}",
                    statement=statement_label,
                )
            )
        findings.extend(
            check_collective_alignment([unit.node_program] * nprocs)
        )
        total.add(ledger)
        produced.add(result)

    if is_whole:
        fused_away = {
            name for step in compiled.schedule.steps for name in step.fused
        }
        for name in compiled.schedule.intermediates:
            # A fused-away intermediate is consumed in its producer's compute
            # buffer — never written, so it cannot be a dead store.
            consumed = name in fused_away or any(
                name in step.laf_inputs for step in compiled.schedule.steps
            )
            if not consumed:
                findings.append(
                    CheckFinding(
                        code="never-read",
                        severity=Severity.ERROR,
                        message=(
                            f"intermediate {name!r} is written but no later "
                            "statement reads it — a provably dead store"
                        ),
                        array=name,
                    )
                )
        # The combined program cost must equal the summed statement ledgers
        # too (guards combine_plan_costs against drift).
        for problem in total.compare_plan_cost(compiled.cost):
            findings.append(
                CheckFinding(
                    code="ledger-drift",
                    severity=Severity.ERROR,
                    message=f"summed ledger != combined program cost: {problem}",
                )
            )

    return CheckReport(
        findings=tuple(findings),
        checked_statements=len(statements),
        ledger=total if collect_ledger else None,
    )
