"""The static verifier's result schema.

A verification pass produces one frozen :class:`CheckReport`: a tuple of
:class:`CheckFinding` defects (empty when the plan proves clean) plus the
symbolic :class:`~repro.check.ledger.ChargeLedger` derived from the walk.
The report is attached to compiled artifacts (``CompiledProgram``,
``CompiledWholeProgram``, ``CompiledWorkload``) and summarized into
``RunRecord.plan``, so a plan's static verdict travels with every run that
used it.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, Optional, Tuple

from repro.check.ledger import ChargeLedger

__all__ = ["Severity", "CheckFinding", "CheckReport"]


class Severity(enum.Enum):
    """How bad a finding is: errors fail ``check="error"`` compilation."""

    ERROR = "error"
    WARNING = "warning"


@dataclasses.dataclass(frozen=True)
class CheckFinding:
    """One defect the static verifier proved about a compiled plan.

    ``code`` is the defect class (stable, test-asserted identifiers):

    ``budget-overflow``
        The plan's resident slab bytes exceed the statement's memory budget
        (beyond the one-line-per-array floor the strip-miner guarantees).
    ``read-before-write``
        An I/O read of an array no prior statement produced and the program
        does not stage as an input.
    ``double-write``
        A slab extent written more than once (within a statement, or an
        array produced by two statements).
    ``never-read``
        An intermediate written by a producer statement but consumed by no
        later statement — a provably dead store.
    ``collective-mismatch``
        A collective (global sum / all-to-all) issued by one rank's program
        but not all — a statically detected deadlock.
    ``ledger-drift``
        The symbolic charge ledger derived from the node program disagrees
        with the cost model's :class:`~repro.core.cost_model.PlanCost`.
    ``malformed-loop`` / ``malformed-plan`` / ``unknown-array``
        Structural defects: a loop whose trip count contradicts the plan
        entry it enumerates, an inconsistent slab plan entry, or an op
        referencing an array the plan does not know.
    """

    code: str
    severity: Severity
    message: str
    statement: str = ""
    array: str = ""

    def describe(self) -> str:
        where = f" [{self.statement}]" if self.statement else ""
        return f"{self.severity.value}: {self.code}{where}: {self.message}"


@dataclasses.dataclass(frozen=True)
class CheckReport:
    """The frozen verdict of one static verification pass."""

    findings: Tuple[CheckFinding, ...]
    checked_statements: int
    ledger: Optional[ChargeLedger] = None

    @property
    def ok(self) -> bool:
        """True when no ERROR-severity finding survived the walk."""
        return not any(f.severity is Severity.ERROR for f in self.findings)

    def errors(self) -> Tuple[CheckFinding, ...]:
        return tuple(f for f in self.findings if f.severity is Severity.ERROR)

    def warnings(self) -> Tuple[CheckFinding, ...]:
        return tuple(f for f in self.findings if f.severity is Severity.WARNING)

    def codes(self) -> Tuple[str, ...]:
        return tuple(f.code for f in self.findings)

    def summary(self) -> Dict[str, object]:
        """Small mapping suitable for embedding in ``RunRecord.plan``."""
        return {
            "ok": self.ok,
            "errors": len(self.errors()),
            "warnings": len(self.warnings()),
            "codes": sorted(set(self.codes())),
            "statements": self.checked_statements,
        }

    def describe(self) -> str:
        verdict = "verified clean" if self.ok else "FAILED verification"
        lines = [
            f"static plan check: {verdict} "
            f"({self.checked_statements} statement(s), "
            f"{len(self.errors())} error(s), {len(self.warnings())} warning(s))"
        ]
        for finding in self.findings:
            lines.append("  " + finding.describe())
        return "\n".join(lines)
