"""The generated node + message-passing + I/O program.

The out-of-core compiler's output in the paper is a node program with
explicit I/O and communication calls (Figures 9 and 12 show the column-slab
and row-slab versions for GAXPY as pseudo-code).  Here the node program is a
small tree of symbolic operations: loops whose bodies contain I/O reads and
writes, local computation, global sums and owner stores.

The representation serves three purposes:

* it can be **pretty-printed**, giving output directly comparable to the
  paper's figures;
* it can be **statically counted** — :meth:`NodeProgram.operation_totals`
  multiplies each operation by the trip counts of its enclosing loops, which
  the tests cross-check against the analytic cost model; and
* it **drives execution** — the executor walks the same structure when
  running the program on the virtual machine (delegating the innermost
  arithmetic to the kernels module).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, Tuple

__all__ = [
    "NodeOp",
    "LoopOp",
    "IOReadOp",
    "IOWriteOp",
    "ComputeOp",
    "GlobalSumOp",
    "AllToAllOp",
    "OwnerStoreOp",
    "NodeProgram",
]


@dataclasses.dataclass(frozen=True)
class NodeOp:
    """Base class of node program operations."""

    def pretty(self, indent: int = 0) -> str:  # pragma: no cover - overridden
        raise NotImplementedError


@dataclasses.dataclass(frozen=True)
class IOReadOp(NodeOp):
    """``Call I/O routine to read the ICLA (one slab) of an array``."""

    array: str
    what: str = "slab"
    elements: float = 0.0

    def pretty(self, indent: int = 0) -> str:
        return " " * indent + f"call I/O read  ({self.what} of {self.array}, {self.elements:.0f} elements)"


@dataclasses.dataclass(frozen=True)
class IOWriteOp(NodeOp):
    """``Call I/O routine to write the ICLA (one slab) of an array``."""

    array: str
    what: str = "slab"
    elements: float = 0.0

    def pretty(self, indent: int = 0) -> str:
        return " " * indent + f"call I/O write ({self.what} of {self.array}, {self.elements:.0f} elements)"


@dataclasses.dataclass(frozen=True)
class ComputeOp(NodeOp):
    """A block of local arithmetic, measured in floating point operations.

    ``per_slab_of`` names the plan array whose *current slab* the flop count
    was sized for: ``flops`` is stated for a nominal full slab, and on an
    iteration holding a partial (last) slab the executed flops scale with the
    actual slab extent.  Empty string means the count is iteration-invariant.
    """

    description: str
    flops: float
    per_slab_of: str = ""

    def pretty(self, indent: int = 0) -> str:
        return " " * indent + f"compute {self.description} ({self.flops:.0f} flops)"


@dataclasses.dataclass(frozen=True)
class GlobalSumOp(NodeOp):
    """A global sum (reduction) of ``elements`` values across all processors.

    ``per_line_of`` names the plan array whose current-slab *line count* the
    ``elements`` field was sized for (the row-slab version reduces one
    subcolumn of ``lines_per_slab`` values per call, shorter on the last
    slab).  Empty string means ``elements`` is exact on every call.
    """

    elements: float
    target: str
    per_line_of: str = ""

    def pretty(self, indent: int = 0) -> str:
        return " " * indent + f"global sum of {self.elements:.0f} elements -> {self.target}"


@dataclasses.dataclass(frozen=True)
class AllToAllOp(NodeOp):
    """A personalized all-to-all exchange of ``elements_per_pair`` elements.

    ``per_slab_of`` names the plan array whose current slab is being
    exchanged: ``elements_per_pair`` is stated for a nominal full slab and
    scales with the actual extent on a partial last slab.
    """

    elements_per_pair: float
    target: str = ""
    per_slab_of: str = ""

    def pretty(self, indent: int = 0) -> str:
        suffix = f" -> {self.target}" if self.target else ""
        return " " * indent + (
            f"all-to-all exchange of {self.elements_per_pair:.0f} elements/pair{suffix}"
        )


@dataclasses.dataclass(frozen=True)
class OwnerStoreOp(NodeOp):
    """The owner of the result column stores it into its In-core Local Array."""

    array: str
    what: str = "column"

    def pretty(self, indent: int = 0) -> str:
        return " " * indent + f"if owner: store {self.what} into ICLA of {self.array}"


@dataclasses.dataclass(frozen=True)
class LoopOp(NodeOp):
    """A counted loop around a body of operations.

    The static verifier needs to know *what* a loop enumerates, not just how
    often it runs, so codegen annotates each loop with one of two markers:

    ``slabs_of``
        The loop visits every slab of the named plan array once;
        ``trip_count`` equals the plan entry's ``num_slabs`` and the last
        iteration may hold a partial slab.

    ``lines_of``
        The loop visits the lines (columns of a column slab, rows of a row
        slab) of the *current* slab of the named array; ``trip_count`` is
        the nominal ``lines_per_slab`` and the actual count is shorter on a
        partial last slab.  Such a loop is only meaningful nested inside the
        matching ``slabs_of`` loop.

    Both default to the empty string: a plain counted loop.
    """

    index: str
    trip_count: int
    body: Tuple[NodeOp, ...]
    comment: str = ""
    slabs_of: str = ""
    lines_of: str = ""

    def __init__(
        self,
        index: str,
        trip_count: int,
        body: Iterable[NodeOp],
        comment: str = "",
        slabs_of: str = "",
        lines_of: str = "",
    ) -> None:
        object.__setattr__(self, "index", str(index))
        object.__setattr__(self, "trip_count", int(trip_count))
        object.__setattr__(self, "body", tuple(body))
        object.__setattr__(self, "comment", str(comment))
        object.__setattr__(self, "slabs_of", str(slabs_of))
        object.__setattr__(self, "lines_of", str(lines_of))

    def pretty(self, indent: int = 0) -> str:
        pad = " " * indent
        header = f"{pad}do {self.index} = 1, {self.trip_count}"
        if self.comment:
            header += f"    ! {self.comment}"
        lines = [header]
        for op in self.body:
            lines.append(op.pretty(indent + 4))
        lines.append(f"{pad}end do")
        return "\n".join(lines)


@dataclasses.dataclass
class NodeProgram:
    """The complete generated program for one processor (SPMD: all run it)."""

    name: str
    strategy: str
    ops: Tuple[NodeOp, ...]

    def __init__(self, name: str, strategy: str, ops: Iterable[NodeOp]) -> None:
        self.name = str(name)
        self.strategy = str(strategy)
        self.ops = tuple(ops)

    # ------------------------------------------------------------------
    def pretty(self) -> str:
        lines = [f"! node + MP + I/O program for {self.name} ({self.strategy} version)"]
        for op in self.ops:
            lines.append(op.pretty())
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def operation_totals(self) -> Dict[str, float]:
        """Statically executed operation counts (loop trip counts multiplied out).

        Returns a dictionary with, per array, ``read_requests:<array>``,
        ``read_elements:<array>``, ``write_requests:<array>`` and
        ``write_elements:<array>``, plus ``flops``, ``global_sums`` and
        ``global_sum_elements``.
        """
        totals: Dict[str, float] = {"flops": 0.0, "global_sums": 0.0, "global_sum_elements": 0.0}

        def visit(op: NodeOp, multiplier: float) -> None:
            if isinstance(op, LoopOp):
                for child in op.body:
                    visit(child, multiplier * op.trip_count)
            elif isinstance(op, IOReadOp):
                totals[f"read_requests:{op.array}"] = totals.get(f"read_requests:{op.array}", 0.0) + multiplier
                totals[f"read_elements:{op.array}"] = (
                    totals.get(f"read_elements:{op.array}", 0.0) + multiplier * op.elements
                )
            elif isinstance(op, IOWriteOp):
                totals[f"write_requests:{op.array}"] = totals.get(f"write_requests:{op.array}", 0.0) + multiplier
                totals[f"write_elements:{op.array}"] = (
                    totals.get(f"write_elements:{op.array}", 0.0) + multiplier * op.elements
                )
            elif isinstance(op, ComputeOp):
                totals["flops"] += multiplier * op.flops
            elif isinstance(op, GlobalSumOp):
                totals["global_sums"] += multiplier
                totals["global_sum_elements"] += multiplier * op.elements
            elif isinstance(op, AllToAllOp):
                totals["all_to_alls"] = totals.get("all_to_alls", 0.0) + multiplier
                totals["all_to_all_elements_per_pair"] = (
                    totals.get("all_to_all_elements_per_pair", 0.0)
                    + multiplier * op.elements_per_pair
                )
            # OwnerStoreOp is a local memory operation; it has no cost entry.

        for op in self.ops:
            visit(op, 1.0)
        return totals

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.pretty()
