"""Strip-mining: turning a memory budget into slab sizes.

The out-of-core phase sections ("strip-mines") the local iteration space so
each stage operates on a slab that fits in the In-core Local Array.  This
module provides the conversions between the three ways a slab size is
specified in the paper and the experiments:

* a **slab ratio** — slab size as a fraction of the out-of-core local array
  (Figure 10 / Table 1 sweep the ratio from 1/8 to 1),
* a **memory budget in bytes** — what the machine model exposes, and
* an **element count** ``M`` — what the cost formulas use.

It also defines :class:`SlabPlanEntry`, the per-array slabbing decision the
reorganization step produces (strategy, slab size, number of slabs, on-disk
storage order).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Tuple

from repro.exceptions import CompilationError
from repro.hpf.array_desc import ArrayDescriptor
from repro.runtime.slab import SlabbingStrategy

__all__ = [
    "slab_elements_from_ratio",
    "slab_elements_from_bytes",
    "slab_ratio_from_elements",
    "SlabPlanEntry",
    "build_plan_entry",
]


def _max_local_elements(descriptor: ArrayDescriptor) -> int:
    return max(descriptor.local_size(rank) for rank in range(descriptor.nprocs))


def slab_elements_from_ratio(descriptor: ArrayDescriptor, ratio: float) -> int:
    """Convert a slab ratio (slab size / OCLA size) into an element count.

    The result is clamped to at least one column/row worth of elements so a
    slab is never empty, and at most the full local array.
    """
    if not 0 < ratio <= 1:
        raise CompilationError(f"slab ratio must be in (0, 1], got {ratio}")
    local = _max_local_elements(descriptor)
    return max(1, min(local, int(round(local * ratio))))


def slab_elements_from_bytes(descriptor: ArrayDescriptor, nbytes: int) -> int:
    """Convert a per-array memory budget in bytes into an element count."""
    if nbytes <= 0:
        raise CompilationError(f"memory budget must be positive, got {nbytes}")
    elements = nbytes // descriptor.itemsize
    if elements < 1:
        raise CompilationError(
            f"memory budget of {nbytes} bytes cannot hold one element of {descriptor.name!r}"
        )
    return int(min(elements, _max_local_elements(descriptor)))


def slab_ratio_from_elements(descriptor: ArrayDescriptor, elements: int) -> float:
    """Inverse of :func:`slab_elements_from_ratio` (for reporting)."""
    local = _max_local_elements(descriptor)
    if local == 0:
        return 1.0
    return min(1.0, elements / local)


@dataclasses.dataclass(frozen=True)
class SlabPlanEntry:
    """The slabbing decision for one out-of-core array."""

    array: str
    strategy: SlabbingStrategy
    #: slab capacity in elements (the paper's ``M``)
    slab_elements: int
    #: local array shape the slabbing applies to (max over processors)
    local_shape: Tuple[int, int]
    #: number of slabs the local array is divided into
    num_slabs: int
    #: whole rows / columns per slab
    lines_per_slab: int
    #: on-disk storage order chosen so each slab is contiguous ('F' or 'C')
    storage_order: str

    @property
    def slab_bytes_factor(self) -> int:
        return self.slab_elements

    def describe(self) -> str:
        return (
            f"{self.array}: {self.strategy.value}-slabs of {self.lines_per_slab} "
            f"{'columns' if self.strategy is SlabbingStrategy.COLUMN else 'rows'} "
            f"({self.slab_elements} elements, {self.num_slabs} slabs, "
            f"storage order {self.storage_order})"
        )


def build_plan_entry(
    descriptor: ArrayDescriptor,
    strategy: SlabbingStrategy | str,
    slab_elements: int,
) -> SlabPlanEntry:
    """Derive the concrete slabbing of one array from a strategy and a size.

    The slab size is rounded to whole columns (column slabbing) or whole rows
    (row slabbing), never less than one line.  The storage order is picked so
    that every slab is one contiguous extent of the Local Array File: 'F'
    (column-major) for column slabs, 'C' (row-major) for row slabs — this is
    the on-disk data reorganization of the paper.
    """
    strategy = SlabbingStrategy.from_name(strategy)
    if slab_elements < 1:
        raise CompilationError(f"slab_elements must be positive, got {slab_elements}")
    nprocs = descriptor.nprocs
    local_shapes = [descriptor.local_shape(rank) for rank in range(nprocs)]
    # Plan against the largest local array (ranks with smaller parts simply
    # have fewer slabs at run time).
    rows, cols = max(local_shapes, key=lambda shape: shape[0] * shape[1])
    if strategy is SlabbingStrategy.COLUMN:
        per_line = max(rows, 1)
        lines = max(1, min(max(cols, 1), slab_elements // per_line or 1))
        num_slabs = math.ceil(cols / lines) if cols else 1
        effective = lines * per_line
        order = "F"
    else:
        per_line = max(cols, 1)
        lines = max(1, min(max(rows, 1), slab_elements // per_line or 1))
        num_slabs = math.ceil(rows / lines) if rows else 1
        effective = lines * per_line
        order = "C"
    return SlabPlanEntry(
        array=descriptor.name,
        strategy=strategy,
        slab_elements=effective,
        local_shape=(rows, cols),
        num_slabs=num_slabs,
        lines_per_slab=lines,
        storage_order=order,
    )
