"""Data access reorganization (Section 4, Figure 14 of the paper).

Given the in-core-phase analysis, a memory budget and an allocation policy,
the reorganizer

1. enumerates the candidate slabbings of the streamed array (column slabs and
   row slabs — i.e. strip-mining along each dimension of the out-of-core
   array, as the Figure 14 algorithm prescribes),
2. divides the memory between the arrays for each candidate,
3. asks the cost model for the per-array I/O costs,
4. determines which array requires the largest amount of I/O, and
5. selects the strip-mining strategy with the lowest I/O cost for that array.

The decision records every candidate so experiments and tests can inspect
the alternatives (and so the ablation benchmarks can force the naive
choice).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.exceptions import CompilationError
from repro.core.analysis import InCorePhaseResult
from repro.core.cost_model import CostModel, PlanCost
from repro.core.memory_alloc import AllocationPolicy, ProportionalAllocation, _entries_from_split
from repro.core.stripmine import SlabPlanEntry
from repro.machine.parameters import MachineParameters
from repro.runtime.slab import SlabbingStrategy

__all__ = ["AccessPlan", "ReorganizationDecision", "reorganize", "plan_from_slab_elements"]


@dataclasses.dataclass(frozen=True)
class AccessPlan:
    """One complete candidate: slabbing of every array plus its predicted cost."""

    strategy: SlabbingStrategy
    entries: Dict[str, SlabPlanEntry]
    allocation: Dict[str, int]
    cost: PlanCost

    def entry(self, array: str) -> SlabPlanEntry:
        try:
            return self.entries[array]
        except KeyError as exc:
            raise CompilationError(f"plan has no entry for array {array!r}") from exc

    def describe(self) -> str:
        lines = [f"access plan [{self.strategy.value} slabs of the streamed array]"]
        for entry in self.entries.values():
            lines.append(f"  {entry.describe()}")
        lines.append("  " + self.cost.describe().replace("\n", "\n  "))
        return "\n".join(lines)


@dataclasses.dataclass
class ReorganizationDecision:
    """All candidates considered and the one chosen."""

    candidates: List[AccessPlan]
    chosen: AccessPlan
    incore_cost: PlanCost
    dominant_array: str

    def candidate(self, strategy: SlabbingStrategy | str) -> AccessPlan:
        strategy = SlabbingStrategy.from_name(strategy)
        for plan in self.candidates:
            if plan.strategy is strategy:
                return plan
        raise CompilationError(f"no candidate with strategy {strategy}")

    @property
    def predicted_improvement(self) -> float:
        """Ratio of the worst candidate's I/O time to the chosen one's."""
        worst = max(plan.cost.io_time for plan in self.candidates)
        chosen = self.chosen.cost.io_time
        return worst / chosen if chosen > 0 else float("inf")

    def describe(self) -> str:
        lines = ["data access reorganization:"]
        for plan in self.candidates:
            marker = "  * " if plan is self.chosen else "    "
            lines.append(
                f"{marker}{plan.strategy.value:6s}: io={plan.cost.io_time:9.2f}s "
                f"total={plan.cost.total_time:9.2f}s "
                f"requests={plan.cost.io_requests:.0f} elements={plan.cost.io_elements:.3e}"
            )
        lines.append(f"  dominant array: {self.dominant_array}")
        lines.append(f"  predicted I/O improvement: {self.predicted_improvement:.1f}x")
        return "\n".join(lines)


def plan_from_slab_elements(
    analysis: InCorePhaseResult,
    strategy: SlabbingStrategy | str,
    slab_elements: Dict[str, int],
    cost_model: CostModel,
) -> AccessPlan:
    """Build a plan from explicit per-array slab sizes (used by the experiments).

    The experiments of the paper fix slab ratios / sizes directly instead of
    deriving them from a byte budget, so this bypass of the allocation policy
    is part of the public surface.
    """
    strategy = SlabbingStrategy.from_name(strategy)
    for name in (analysis.streamed, analysis.coefficient, analysis.result):
        if name not in slab_elements:
            raise CompilationError(f"slab_elements is missing array {name!r}")
    entries = _entries_from_split(analysis, strategy, slab_elements)
    cost = cost_model.estimate(analysis, strategy, entries)
    return AccessPlan(strategy=strategy, entries=entries, allocation=dict(slab_elements), cost=cost)


def reorganize(
    analysis: InCorePhaseResult,
    params: MachineParameters,
    nprocs: int,
    memory_budget_bytes: int,
    policy: Optional[AllocationPolicy] = None,
    strategies: Sequence[SlabbingStrategy | str] = (SlabbingStrategy.COLUMN, SlabbingStrategy.ROW),
) -> ReorganizationDecision:
    """Run the Figure 14 algorithm and return the decision."""
    if memory_budget_bytes <= 0:
        raise CompilationError(f"memory budget must be positive, got {memory_budget_bytes}")
    policy = policy or ProportionalAllocation()
    cost_model = CostModel(params, nprocs)
    itemsize = analysis.program.arrays[analysis.streamed].itemsize
    budget_elements = memory_budget_bytes // itemsize
    if budget_elements < 1:
        raise CompilationError(
            f"memory budget of {memory_budget_bytes} bytes holds no element of size {itemsize}"
        )

    candidates: List[AccessPlan] = []
    for strategy in strategies:
        strategy = SlabbingStrategy.from_name(strategy)
        allocation = policy.split(analysis, strategy, budget_elements, cost_model)
        entries = _entries_from_split(analysis, strategy, allocation)
        cost = cost_model.estimate(analysis, strategy, entries)
        candidates.append(
            AccessPlan(strategy=strategy, entries=entries, allocation=allocation, cost=cost)
        )
    if not candidates:
        raise CompilationError("no candidate strategies were provided")

    # Figure 14: find the array with the largest I/O requirement, then pick the
    # strategy that minimises its cost (ties and practical sanity are resolved
    # with the full predicted I/O time).
    reference = max(candidates, key=lambda plan: plan.cost.io_time)
    dominant_array = reference.cost.dominant_array()
    chosen = min(
        candidates,
        key=lambda plan: (plan.cost.arrays[dominant_array].total_elements, plan.cost.io_time),
    )
    incore_cost = cost_model.estimate_incore(analysis)
    return ReorganizationDecision(
        candidates=candidates,
        chosen=chosen,
        incore_cost=incore_cost,
        dominant_array=dominant_array,
    )
