"""Intermediate representation of data-parallel programs.

The IR covers the classes of statements the out-of-core compiler lowers:

* a *reduction statement* inside a (perfect) loop nest — an array assignment
  whose right-hand side is a sum over one loop index of products of array
  references (the paper's optimization target),
* an *elementwise statement* ``c = op(a, b)`` over conforming arrays (the
  no-communication class), and
* a *transpose statement* ``b = a^T`` (the communication-bound class).

The paper's GAXPY matrix multiplication

.. code-block:: fortran

    do j = 1, n
        forall (k = 1:n)
            temp(1:n, k) = b(k, j) * a(1:n, k)
        end forall
        c(1:n, j) = SUM(temp, 2)
    end do

is represented as two loops (sequential ``j``, forall ``k``) and the
reduction statement ``c(:, j) = sum_k  a(:, k) * b(k, j)``.

Subscripts are symbolic: :class:`FullRange` (``:``), :class:`LoopIndex` (a
loop variable) or :class:`Constant`.  The analysis phase classifies array
access patterns purely from these subscripts, which is all the paper's
Figure 14 algorithm needs ("use index variables to analyze access
patterns").

Every statement kind flows through the same Figure-7 lowering pipeline —
analysis, strip-mining, cost estimation, access planning, code generation —
so one executor can run any of them (see :mod:`repro.core.pipeline`).
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, List, Sequence, Tuple

from repro.exceptions import CompilationError
from repro.hpf.array_desc import ArrayDescriptor

__all__ = [
    "Subscript",
    "FullRange",
    "LoopIndex",
    "Constant",
    "ArrayRef",
    "LoopKind",
    "Loop",
    "Statement",
    "ReductionStatement",
    "ElementwiseStatement",
    "TransposeStatement",
    "ProgramIR",
    "build_gaxpy_ir",
    "build_elementwise_ir",
    "build_transpose_ir",
]


# ---------------------------------------------------------------------------
# subscripts and array references
# ---------------------------------------------------------------------------
class Subscript:
    """Base class of symbolic subscripts."""

    def describe(self) -> str:  # pragma: no cover - overridden
        raise NotImplementedError


@dataclasses.dataclass(frozen=True)
class FullRange(Subscript):
    """The ``:`` subscript: the statement touches the whole extent."""

    def describe(self) -> str:
        return ":"


@dataclasses.dataclass(frozen=True)
class LoopIndex(Subscript):
    """A loop-variable subscript, e.g. ``a(:, k)`` has ``LoopIndex('k')`` in dim 1."""

    name: str

    def describe(self) -> str:
        return self.name


@dataclasses.dataclass(frozen=True)
class Constant(Subscript):
    """A constant subscript (zero-based)."""

    value: int

    def describe(self) -> str:
        return str(self.value)


@dataclasses.dataclass(frozen=True)
class ArrayRef:
    """A reference to an array with one symbolic subscript per dimension."""

    array: str
    subscripts: Tuple[Subscript, ...]

    def __init__(self, array: str, subscripts: Sequence[Subscript]):
        object.__setattr__(self, "array", str(array))
        object.__setattr__(self, "subscripts", tuple(subscripts))

    @property
    def ndim(self) -> int:
        return len(self.subscripts)

    def dims_with_index(self, index: str) -> Tuple[int, ...]:
        """Dimensions subscripted by loop variable ``index``."""
        return tuple(
            d for d, s in enumerate(self.subscripts) if isinstance(s, LoopIndex) and s.name == index
        )

    def full_range_dims(self) -> Tuple[int, ...]:
        """Dimensions subscripted with ``:``."""
        return tuple(d for d, s in enumerate(self.subscripts) if isinstance(s, FullRange))

    def uses_index(self, index: str) -> bool:
        return bool(self.dims_with_index(index))

    def describe(self) -> str:
        inner = ", ".join(s.describe() for s in self.subscripts)
        return f"{self.array}({inner})"


# ---------------------------------------------------------------------------
# loops and statements
# ---------------------------------------------------------------------------
class LoopKind(enum.Enum):
    """Whether a loop is a sequential DO loop or a parallel FORALL."""

    SEQUENTIAL = "do"
    FORALL = "forall"


@dataclasses.dataclass(frozen=True)
class Loop:
    """One loop of the (perfect) nest, outermost first in :class:`ProgramIR`."""

    index: str
    extent: int
    kind: LoopKind = LoopKind.SEQUENTIAL

    def __post_init__(self) -> None:
        if self.extent < 0:
            raise CompilationError(f"loop {self.index!r} has negative extent {self.extent}")

    def describe(self) -> str:
        keyword = "FORALL" if self.kind is LoopKind.FORALL else "DO"
        return f"{keyword} {self.index} = 1, {self.extent}"


class Statement:
    """Base class of IR statements.

    Every statement exposes its left-hand side (``result``), the sequence of
    right-hand-side references (``operands``) and :meth:`references`, which
    is what the generic validation, input generation and lowering machinery
    consume; everything else is statement-kind specific.
    """

    result: ArrayRef
    operands: Tuple[ArrayRef, ...]

    def references(self) -> Tuple[ArrayRef, ...]:
        """All references of the statement, result first."""
        return (self.result, *self.operands)

    def referenced_arrays(self) -> Tuple[str, ...]:
        """Unique referenced array names in statement order, result first."""
        seen: List[str] = []
        for ref in self.references():
            if ref.array not in seen:
                seen.append(ref.array)
        return tuple(seen)

    def describe(self) -> str:  # pragma: no cover - overridden
        raise NotImplementedError


@dataclasses.dataclass(frozen=True)
class ReductionStatement(Statement):
    """``result = reduce(op, over=index) of prod(operands)``.

    ``result`` is the left-hand side reference, ``operands`` the right-hand
    side references whose product is accumulated, ``reduce_index`` the loop
    variable summed over, and ``op`` the (commutative, associative) reduction
    operator — only ``"sum"`` is needed by the paper but the field keeps the
    IR honest about the legality requirement for loop reordering.
    """

    result: ArrayRef
    operands: Tuple[ArrayRef, ...]
    reduce_index: str
    op: str = "sum"

    def __init__(
        self,
        result: ArrayRef,
        operands: Sequence[ArrayRef],
        reduce_index: str,
        op: str = "sum",
    ):
        object.__setattr__(self, "result", result)
        object.__setattr__(self, "operands", tuple(operands))
        object.__setattr__(self, "reduce_index", str(reduce_index))
        object.__setattr__(self, "op", str(op))
        if not self.operands:
            raise CompilationError("a reduction statement needs at least one operand")
        if self.op not in {"sum", "max", "min", "prod"}:
            raise CompilationError(f"unsupported reduction operator {self.op!r}")

    def describe(self) -> str:
        rhs = " * ".join(ref.describe() for ref in self.operands)
        return f"{self.result.describe()} = {self.op}_{{{self.reduce_index}}} {rhs}"


@dataclasses.dataclass(frozen=True)
class ElementwiseStatement(Statement):
    """``result = op(lhs_operand, rhs_operand)`` applied element by element.

    All references use full-range subscripts; the arrays must conform in
    shape and (for the out-of-core lowering to need no communication) share
    one distribution.  ``op`` names the scalar operation.
    """

    result: ArrayRef
    operands: Tuple[ArrayRef, ...]
    op: str = "add"

    def __init__(self, result: ArrayRef, operands: Sequence[ArrayRef], op: str = "add"):
        object.__setattr__(self, "result", result)
        object.__setattr__(self, "operands", tuple(operands))
        object.__setattr__(self, "op", str(op))
        if len(self.operands) != 2:
            raise CompilationError(
                f"an elementwise statement takes two operands, got {len(self.operands)}"
            )
        if self.op not in {"add", "multiply", "subtract"}:
            raise CompilationError(f"unsupported elementwise operator {self.op!r}")

    def describe(self) -> str:
        lhs, rhs = self.operands
        return f"{self.result.describe()} = {self.op}({lhs.describe()}, {rhs.describe()})"


@dataclasses.dataclass(frozen=True)
class TransposeStatement(Statement):
    """``result = transpose(operand)`` for two-dimensional arrays."""

    result: ArrayRef
    operands: Tuple[ArrayRef, ...]

    def __init__(self, result: ArrayRef, operand: ArrayRef):
        object.__setattr__(self, "result", result)
        object.__setattr__(self, "operands", (operand,))
        for ref in (result, operand):
            if ref.ndim != 2:
                raise CompilationError(
                    f"transpose handles two-dimensional references, got {ref.describe()}"
                )
        if result.array == operand.array:
            raise CompilationError("transpose needs distinct source and target arrays")

    @property
    def operand(self) -> ArrayRef:
        return self.operands[0]

    def describe(self) -> str:
        return f"{self.result.describe()} = transpose({self.operand.describe()})"


# ---------------------------------------------------------------------------
# the program
# ---------------------------------------------------------------------------
@dataclasses.dataclass
class ProgramIR:
    """A data-parallel program in the restricted form the compiler handles."""

    name: str
    arrays: Dict[str, ArrayDescriptor]
    loops: Tuple[Loop, ...]
    statement: Statement

    def __post_init__(self) -> None:
        self.loops = tuple(self.loops)
        loop_names = [loop.index for loop in self.loops]
        if len(set(loop_names)) != len(loop_names):
            raise CompilationError(f"duplicate loop indices in {loop_names}")
        if isinstance(self.statement, ReductionStatement):
            if self.statement.reduce_index not in loop_names:
                raise CompilationError(
                    f"reduction index {self.statement.reduce_index!r} is not a loop of the nest"
                )
        for ref in self.statement.references():
            if ref.array not in self.arrays:
                raise CompilationError(f"statement references undeclared array {ref.array!r}")
            descriptor = self.arrays[ref.array]
            if ref.ndim != descriptor.ndim:
                raise CompilationError(
                    f"reference {ref.describe()} has {ref.ndim} subscripts but array "
                    f"{ref.array!r} has {descriptor.ndim} dimensions"
                )
            for subscript in ref.subscripts:
                if isinstance(subscript, LoopIndex) and subscript.name not in loop_names:
                    raise CompilationError(
                        f"reference {ref.describe()} uses unknown loop index {subscript.name!r}"
                    )

    # -- queries -------------------------------------------------------------
    def loop(self, index: str) -> Loop:
        for loop in self.loops:
            if loop.index == index:
                return loop
        raise CompilationError(f"no loop with index {index!r}")

    def loop_indices(self) -> Tuple[str, ...]:
        return tuple(loop.index for loop in self.loops)

    def sequential_loops(self) -> Tuple[Loop, ...]:
        return tuple(l for l in self.loops if l.kind is LoopKind.SEQUENTIAL)

    def forall_loops(self) -> Tuple[Loop, ...]:
        return tuple(l for l in self.loops if l.kind is LoopKind.FORALL)

    def out_of_core_arrays(self) -> Tuple[str, ...]:
        return tuple(name for name, desc in self.arrays.items() if desc.out_of_core)

    def nprocs(self) -> int:
        return next(iter(self.arrays.values())).nprocs if self.arrays else 1

    def describe(self) -> str:
        lines = [f"program {self.name}"]
        for name, desc in self.arrays.items():
            lines.append(f"  array {desc.describe()}")
        indent = "  "
        for loop in self.loops:
            lines.append(f"{indent}{loop.describe()}")
            indent += "  "
        lines.append(f"{indent}{self.statement.describe()}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# convenience constructors
# ---------------------------------------------------------------------------
def _column_block_arrays(names, n, nprocs, dtype, out_of_core=True):
    """Square ``n x n`` arrays, column-block distributed over ``nprocs``."""
    from repro.hpf.align import Alignment
    from repro.hpf.processors import ProcessorGrid
    from repro.hpf.template import Template

    grid = ProcessorGrid("Pr", nprocs)
    template = Template("d", n, grid, ["block"])
    align = Alignment(template, ["*", ":"])
    return {
        name: ArrayDescriptor(name, (n, n), align, dtype=dtype, out_of_core=out_of_core)
        for name in names
    }


def build_elementwise_ir(
    n: int,
    nprocs: int,
    op: str = "add",
    dtype="float32",
    out_of_core: bool = True,
    name: str = "elementwise",
) -> ProgramIR:
    """Build the IR of ``c = op(a, b)`` with all arrays column-block distributed."""
    arrays = _column_block_arrays(("a", "b", "c"), n, nprocs, dtype, out_of_core)
    statement = ElementwiseStatement(
        result=ArrayRef("c", [FullRange(), FullRange()]),
        operands=(
            ArrayRef("a", [FullRange(), FullRange()]),
            ArrayRef("b", [FullRange(), FullRange()]),
        ),
        op=op,
    )
    return ProgramIR(name=name, arrays=arrays, loops=(), statement=statement)


def build_transpose_ir(
    n: int,
    nprocs: int,
    dtype="float32",
    out_of_core: bool = True,
    name: str = "transpose",
    source: str = "src",
    target: str = "dst",
) -> ProgramIR:
    """Build the IR of ``dst = src^T`` with both arrays column-block distributed."""
    arrays = _column_block_arrays((source, target), n, nprocs, dtype, out_of_core)
    statement = TransposeStatement(
        result=ArrayRef(target, [FullRange(), FullRange()]),
        operand=ArrayRef(source, [FullRange(), FullRange()]),
    )
    return ProgramIR(name=name, arrays=arrays, loops=(), statement=statement)


def build_gaxpy_ir(
    n: int,
    nprocs: int,
    dtype="float32",
    out_of_core: bool = True,
    name: str = "gaxpy_matmul",
) -> ProgramIR:
    """Build the IR of the paper's GAXPY matrix multiplication (Figure 3).

    Arrays ``a`` and ``c`` are column-block distributed, ``b`` is row-block
    distributed, all over a one-dimensional arrangement of ``nprocs``
    processors.
    """
    from repro.hpf.align import Alignment
    from repro.hpf.processors import ProcessorGrid
    from repro.hpf.template import Template

    grid = ProcessorGrid("Pr", nprocs)
    template = Template("d", n, grid, ["block"])
    column_align = Alignment(template, ["*", ":"])
    row_align = Alignment(template, [":", "*"])
    arrays = {
        "a": ArrayDescriptor("a", (n, n), column_align, dtype=dtype, out_of_core=out_of_core),
        "b": ArrayDescriptor("b", (n, n), row_align, dtype=dtype, out_of_core=out_of_core),
        "c": ArrayDescriptor("c", (n, n), column_align, dtype=dtype, out_of_core=out_of_core),
    }
    loops = (
        Loop("j", n, LoopKind.SEQUENTIAL),
        Loop("k", n, LoopKind.FORALL),
    )
    statement = ReductionStatement(
        result=ArrayRef("c", [FullRange(), LoopIndex("j")]),
        operands=(
            ArrayRef("a", [FullRange(), LoopIndex("k")]),
            ArrayRef("b", [LoopIndex("k"), LoopIndex("j")]),
        ),
        reduce_index="k",
    )
    return ProgramIR(name=name, arrays=arrays, loops=loops, statement=statement)
