"""Intermediate representation of data-parallel programs.

The IR covers the classes of statements the out-of-core compiler lowers:

* a *reduction statement* inside a (perfect) loop nest — an array assignment
  whose right-hand side is a sum over one loop index of products of array
  references (the paper's optimization target),
* an *elementwise statement* ``c = op(a, b)`` over conforming arrays (the
  no-communication class), and
* a *transpose statement* ``b = a^T`` (the communication-bound class).

The paper's GAXPY matrix multiplication

.. code-block:: fortran

    do j = 1, n
        forall (k = 1:n)
            temp(1:n, k) = b(k, j) * a(1:n, k)
        end forall
        c(1:n, j) = SUM(temp, 2)
    end do

is represented as two loops (sequential ``j``, forall ``k``) and the
reduction statement ``c(:, j) = sum_k  a(:, k) * b(k, j)``.

Subscripts are symbolic: :class:`FullRange` (``:``), :class:`LoopIndex` (a
loop variable) or :class:`Constant`.  The analysis phase classifies array
access patterns purely from these subscripts, which is all the paper's
Figure 14 algorithm needs ("use index variables to analyze access
patterns").

Every statement kind flows through the same Figure-7 lowering pipeline —
analysis, strip-mining, cost estimation, access planning, code generation —
so one executor can run any of them (see :mod:`repro.core.pipeline`).

A :class:`ProgramIR` holds an ordered *sequence* of such statements, each
with its own loop nest; multi-statement programs are validated for
sequential dataflow and compiled whole
(:func:`repro.core.pipeline.compile_whole_program`), with intermediates
passed between statements through their Local Array Files.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, List, Sequence, Tuple

from repro.exceptions import CompilationError
from repro.hpf.array_desc import ArrayDescriptor

__all__ = [
    "Subscript",
    "FullRange",
    "LoopIndex",
    "Constant",
    "ArrayRef",
    "LoopKind",
    "Loop",
    "Statement",
    "ReductionStatement",
    "ElementwiseStatement",
    "TransposeStatement",
    "ProgramIR",
    "build_gaxpy_ir",
    "build_elementwise_ir",
    "build_transpose_ir",
    "build_pipeline_ir",
]


# ---------------------------------------------------------------------------
# subscripts and array references
# ---------------------------------------------------------------------------
class Subscript:
    """Base class of symbolic subscripts."""

    def describe(self) -> str:  # pragma: no cover - overridden
        raise NotImplementedError


@dataclasses.dataclass(frozen=True)
class FullRange(Subscript):
    """The ``:`` subscript: the statement touches the whole extent."""

    def describe(self) -> str:
        return ":"


@dataclasses.dataclass(frozen=True)
class LoopIndex(Subscript):
    """A loop-variable subscript, e.g. ``a(:, k)`` has ``LoopIndex('k')`` in dim 1."""

    name: str

    def describe(self) -> str:
        return self.name


@dataclasses.dataclass(frozen=True)
class Constant(Subscript):
    """A constant subscript (zero-based)."""

    value: int

    def describe(self) -> str:
        return str(self.value)


@dataclasses.dataclass(frozen=True)
class ArrayRef:
    """A reference to an array with one symbolic subscript per dimension."""

    array: str
    subscripts: Tuple[Subscript, ...]

    def __init__(self, array: str, subscripts: Sequence[Subscript]) -> None:
        object.__setattr__(self, "array", str(array))
        object.__setattr__(self, "subscripts", tuple(subscripts))

    @property
    def ndim(self) -> int:
        return len(self.subscripts)

    def dims_with_index(self, index: str) -> Tuple[int, ...]:
        """Dimensions subscripted by loop variable ``index``."""
        return tuple(
            d for d, s in enumerate(self.subscripts) if isinstance(s, LoopIndex) and s.name == index
        )

    def full_range_dims(self) -> Tuple[int, ...]:
        """Dimensions subscripted with ``:``."""
        return tuple(d for d, s in enumerate(self.subscripts) if isinstance(s, FullRange))

    def uses_index(self, index: str) -> bool:
        return bool(self.dims_with_index(index))

    def describe(self) -> str:
        inner = ", ".join(s.describe() for s in self.subscripts)
        return f"{self.array}({inner})"


# ---------------------------------------------------------------------------
# loops and statements
# ---------------------------------------------------------------------------
class LoopKind(enum.Enum):
    """Whether a loop is a sequential DO loop or a parallel FORALL."""

    SEQUENTIAL = "do"
    FORALL = "forall"


@dataclasses.dataclass(frozen=True)
class Loop:
    """One loop of the (perfect) nest, outermost first in :class:`ProgramIR`."""

    index: str
    extent: int
    kind: LoopKind = LoopKind.SEQUENTIAL

    def __post_init__(self) -> None:
        if self.extent < 0:
            raise CompilationError(f"loop {self.index!r} has negative extent {self.extent}")

    def describe(self) -> str:
        keyword = "FORALL" if self.kind is LoopKind.FORALL else "DO"
        return f"{keyword} {self.index} = 1, {self.extent}"


class Statement:
    """Base class of IR statements.

    Every statement exposes its left-hand side (``result``), the sequence of
    right-hand-side references (``operands``) and :meth:`references`, which
    is what the generic validation, input generation and lowering machinery
    consume; everything else is statement-kind specific.
    """

    result: ArrayRef
    operands: Tuple[ArrayRef, ...]

    def references(self) -> Tuple[ArrayRef, ...]:
        """All references of the statement, result first."""
        return (self.result, *self.operands)

    def referenced_arrays(self) -> Tuple[str, ...]:
        """Unique referenced array names in statement order, result first."""
        seen: List[str] = []
        for ref in self.references():
            if ref.array not in seen:
                seen.append(ref.array)
        return tuple(seen)

    def describe(self) -> str:  # pragma: no cover - overridden
        raise NotImplementedError


@dataclasses.dataclass(frozen=True)
class ReductionStatement(Statement):
    """``result = reduce(op, over=index) of prod(operands)``.

    ``result`` is the left-hand side reference, ``operands`` the right-hand
    side references whose product is accumulated, ``reduce_index`` the loop
    variable summed over, and ``op`` the (commutative, associative) reduction
    operator — only ``"sum"`` is needed by the paper but the field keeps the
    IR honest about the legality requirement for loop reordering.
    """

    result: ArrayRef
    operands: Tuple[ArrayRef, ...]
    reduce_index: str
    op: str = "sum"

    def __init__(
        self,
        result: ArrayRef,
        operands: Sequence[ArrayRef],
        reduce_index: str,
        op: str = "sum",
    ) -> None:
        object.__setattr__(self, "result", result)
        object.__setattr__(self, "operands", tuple(operands))
        object.__setattr__(self, "reduce_index", str(reduce_index))
        object.__setattr__(self, "op", str(op))
        if not self.operands:
            raise CompilationError("a reduction statement needs at least one operand")
        if self.op not in {"sum", "max", "min", "prod"}:
            raise CompilationError(f"unsupported reduction operator {self.op!r}")

    def describe(self) -> str:
        rhs = " * ".join(ref.describe() for ref in self.operands)
        return f"{self.result.describe()} = {self.op}_{{{self.reduce_index}}} {rhs}"


@dataclasses.dataclass(frozen=True)
class ElementwiseStatement(Statement):
    """``result = op(lhs_operand, rhs_operand)`` applied element by element.

    All references use full-range subscripts; the arrays must conform in
    shape and (for the out-of-core lowering to need no communication) share
    one distribution.  ``op`` names the scalar operation.
    """

    result: ArrayRef
    operands: Tuple[ArrayRef, ...]
    op: str = "add"

    def __init__(self, result: ArrayRef, operands: Sequence[ArrayRef], op: str = "add") -> None:
        object.__setattr__(self, "result", result)
        object.__setattr__(self, "operands", tuple(operands))
        object.__setattr__(self, "op", str(op))
        if len(self.operands) != 2:
            raise CompilationError(
                f"an elementwise statement takes two operands, got {len(self.operands)}"
            )
        if self.op not in {"add", "multiply", "subtract"}:
            raise CompilationError(f"unsupported elementwise operator {self.op!r}")

    def describe(self) -> str:
        lhs, rhs = self.operands
        return f"{self.result.describe()} = {self.op}({lhs.describe()}, {rhs.describe()})"


@dataclasses.dataclass(frozen=True)
class TransposeStatement(Statement):
    """``result = transpose(operand)`` for two-dimensional arrays."""

    result: ArrayRef
    operands: Tuple[ArrayRef, ...]

    def __init__(self, result: ArrayRef, operand: ArrayRef) -> None:
        object.__setattr__(self, "result", result)
        object.__setattr__(self, "operands", (operand,))
        for ref in (result, operand):
            if ref.ndim != 2:
                raise CompilationError(
                    f"transpose handles two-dimensional references, got {ref.describe()}"
                )
        if result.array == operand.array:
            raise CompilationError("transpose needs distinct source and target arrays")

    @property
    def operand(self) -> ArrayRef:
        return self.operands[0]

    def describe(self) -> str:
        return f"{self.result.describe()} = transpose({self.operand.describe()})"


# ---------------------------------------------------------------------------
# the program
# ---------------------------------------------------------------------------
class ProgramIR:
    """A data-parallel program in the restricted form the compiler handles.

    A program is an ordered sequence of statements, each with its own
    (possibly empty) perfect loop nest.  The historical single-statement
    constructor ``ProgramIR(name, arrays, loops, statement)`` still works and
    the :attr:`statement` / :attr:`loops` accessors keep serving
    single-statement programs, which is the unit the per-statement lowering
    pipeline consumes; whole-program compilation splits a multi-statement
    program into those units with :meth:`statement_program`.

    Multi-statement programs are validated for sequential dataflow: every
    operand of statement *k* must be either a program input (an array no
    statement assigns) or the result of a statement *before* ``k``.  Forward
    and cyclic uses, and assigning one array twice, are compilation errors.
    """

    def __init__(
        self,
        name: str,
        arrays: Dict[str, ArrayDescriptor],
        loops: Sequence[Loop] = (),
        statement: "Statement | None" = None,
        *,
        statements: "Sequence[Statement] | None" = None,
        loop_nests: "Sequence[Sequence[Loop]] | None" = None,
    ) -> None:
        self.name = str(name)
        self.arrays = dict(arrays)
        if (statement is None) == (statements is None):
            raise CompilationError("give a ProgramIR either statement= or statements=")
        if statement is not None:
            if loop_nests is not None:
                raise CompilationError("loop_nests applies to statements=, not statement=")
            self.statements: Tuple[Statement, ...] = (statement,)
            self.loop_nests: Tuple[Tuple[Loop, ...], ...] = (tuple(loops),)
        else:
            self.statements = tuple(statements)
            if not self.statements:
                raise CompilationError("a program needs at least one statement")
            if loop_nests is None:
                if loops:
                    raise CompilationError(
                        "multi-statement programs take per-statement loop_nests"
                    )
                loop_nests = [()] * len(self.statements)
            self.loop_nests = tuple(tuple(nest) for nest in loop_nests)
            if len(self.loop_nests) != len(self.statements):
                raise CompilationError(
                    f"{len(self.statements)} statements but {len(self.loop_nests)} loop nests"
                )
        self._validate()

    # -- construction-time validation ---------------------------------------
    def _validate(self) -> None:
        for nest, statement in zip(self.loop_nests, self.statements, strict=True):
            loop_names = [loop.index for loop in nest]
            if len(set(loop_names)) != len(loop_names):
                raise CompilationError(f"duplicate loop indices in {loop_names}")
            if isinstance(statement, ReductionStatement):
                if statement.reduce_index not in loop_names:
                    raise CompilationError(
                        f"reduction index {statement.reduce_index!r} is not a loop of the nest"
                    )
            for ref in statement.references():
                if ref.array not in self.arrays:
                    raise CompilationError(
                        f"statement references undeclared array {ref.array!r}"
                    )
                descriptor = self.arrays[ref.array]
                if ref.ndim != descriptor.ndim:
                    raise CompilationError(
                        f"reference {ref.describe()} has {ref.ndim} subscripts but array "
                        f"{ref.array!r} has {descriptor.ndim} dimensions"
                    )
                for subscript in ref.subscripts:
                    if isinstance(subscript, LoopIndex) and subscript.name not in loop_names:
                        raise CompilationError(
                            f"reference {ref.describe()} uses unknown loop index "
                            f"{subscript.name!r}"
                        )
        self._validate_dataflow()

    def _validate_dataflow(self) -> None:
        """Sequential dataflow over the statement list (multi-statement only).

        Single-statement programs keep their historical latitude (e.g. the
        degenerate ``c = a @ a``); once statements are sequenced, every
        operand must be an input or an earlier result.
        """
        if len(self.statements) == 1:
            return
        results = [stmt.result.array for stmt in self.statements]
        produced: set = set()
        for position, stmt in enumerate(self.statements, start=1):
            target = stmt.result.array
            if target in produced:
                raise CompilationError(
                    f"array {target!r} is assigned by more than one statement; "
                    "the whole-program compiler handles single-assignment sequences"
                )
            for ref in stmt.operands:
                if ref.array in produced:
                    continue  # a prior statement's result, read from its LAF
                if ref.array == target:
                    raise CompilationError(
                        f"cyclic dataflow: statement {position} "
                        f"({stmt.describe()}) consumes its own result {ref.array!r}"
                    )
                if ref.array in results:
                    defined_at = results.index(ref.array) + 1
                    raise CompilationError(
                        f"forward dataflow: statement {position} consumes "
                        f"{ref.array!r} before statement {defined_at} defines it"
                    )
            produced.add(target)

    # -- single-statement accessors (the pipeline's unit of work) ------------
    @property
    def statement(self) -> Statement:
        if len(self.statements) != 1:
            raise CompilationError(
                f"program {self.name!r} has {len(self.statements)} statements; "
                "use .statements (or statement_program(k)) for whole programs"
            )
        return self.statements[0]

    @property
    def loops(self) -> Tuple[Loop, ...]:
        if len(self.statements) != 1:
            raise CompilationError(
                f"program {self.name!r} has {len(self.statements)} statements; "
                "use .loop_nests for whole programs"
            )
        return self.loop_nests[0]

    # -- whole-program queries ------------------------------------------------
    def is_multi_statement(self) -> bool:
        return len(self.statements) > 1

    def result_arrays(self) -> Tuple[str, ...]:
        """Arrays assigned by the statements, in statement order."""
        return tuple(stmt.result.array for stmt in self.statements)

    def input_arrays(self) -> Tuple[str, ...]:
        """Arrays read by some statement but assigned by none, in first-use order."""
        results = set(self.result_arrays())
        seen: List[str] = []
        for stmt in self.statements:
            for ref in stmt.operands:
                if ref.array not in results and ref.array not in seen:
                    seen.append(ref.array)
        return tuple(seen)

    def intermediate_arrays(self) -> Tuple[str, ...]:
        """Arrays produced by one statement and consumed by a later one."""
        consumed = set()
        for stmt in self.statements:
            consumed.update(ref.array for ref in stmt.operands)
        return tuple(name for name in self.result_arrays() if name in consumed)

    def output_arrays(self) -> Tuple[str, ...]:
        """Results no later statement consumes (the program's visible outputs)."""
        intermediates = set(self.intermediate_arrays())
        return tuple(n for n in self.result_arrays() if n not in intermediates)

    def statement_program(self, index: int) -> "ProgramIR":
        """The single-statement sub-program of statement ``index``.

        Array descriptors are shared with the whole program (same objects), so
        the per-statement compilations agree on shapes, distributions and Local
        Array File layouts — the basis of inter-statement LAF reuse.
        """
        stmt = self.statements[index]
        arrays = {
            name: self.arrays[name] for name in stmt.referenced_arrays()
        }
        suffix = f"[{index}]" if self.is_multi_statement() else ""
        return ProgramIR(
            name=f"{self.name}{suffix}",
            arrays=arrays,
            loops=self.loop_nests[index],
            statement=stmt,
        )

    # -- queries -------------------------------------------------------------
    def loop(self, index: str) -> Loop:
        for loop in self.loops:
            if loop.index == index:
                return loop
        raise CompilationError(f"no loop with index {index!r}")

    def loop_indices(self) -> Tuple[str, ...]:
        return tuple(loop.index for loop in self.loops)

    def sequential_loops(self) -> Tuple[Loop, ...]:
        return tuple(l for l in self.loops if l.kind is LoopKind.SEQUENTIAL)

    def forall_loops(self) -> Tuple[Loop, ...]:
        return tuple(l for l in self.loops if l.kind is LoopKind.FORALL)

    def out_of_core_arrays(self) -> Tuple[str, ...]:
        return tuple(name for name, desc in self.arrays.items() if desc.out_of_core)

    def nprocs(self) -> int:
        return next(iter(self.arrays.values())).nprocs if self.arrays else 1

    def describe(self) -> str:
        lines = [f"program {self.name}"]
        for desc in self.arrays.values():
            lines.append(f"  array {desc.describe()}")
        for nest, statement in zip(self.loop_nests, self.statements, strict=True):
            indent = "  "
            for loop in nest:
                lines.append(f"{indent}{loop.describe()}")
                indent += "  "
            lines.append(f"{indent}{statement.describe()}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ProgramIR({self.name!r}, {len(self.arrays)} arrays, "
            f"{len(self.statements)} statement(s))"
        )


# ---------------------------------------------------------------------------
# convenience constructors
# ---------------------------------------------------------------------------
def _column_block_arrays(
    names: Sequence[str], n: int, nprocs: int, dtype: str, out_of_core: bool = True
) -> Dict[str, ArrayDescriptor]:
    """Square ``n x n`` arrays, column-block distributed over ``nprocs``."""
    from repro.hpf.align import Alignment
    from repro.hpf.processors import ProcessorGrid
    from repro.hpf.template import Template

    grid = ProcessorGrid("Pr", nprocs)
    template = Template("d", n, grid, ["block"])
    align = Alignment(template, ["*", ":"])
    return {
        name: ArrayDescriptor(name, (n, n), align, dtype=dtype, out_of_core=out_of_core)
        for name in names
    }


def build_elementwise_ir(
    n: int,
    nprocs: int,
    op: str = "add",
    dtype: str = "float32",
    out_of_core: bool = True,
    name: str = "elementwise",
) -> ProgramIR:
    """Build the IR of ``c = op(a, b)`` with all arrays column-block distributed."""
    arrays = _column_block_arrays(("a", "b", "c"), n, nprocs, dtype, out_of_core)
    statement = ElementwiseStatement(
        result=ArrayRef("c", [FullRange(), FullRange()]),
        operands=(
            ArrayRef("a", [FullRange(), FullRange()]),
            ArrayRef("b", [FullRange(), FullRange()]),
        ),
        op=op,
    )
    return ProgramIR(name=name, arrays=arrays, loops=(), statement=statement)


def build_transpose_ir(
    n: int,
    nprocs: int,
    dtype: str = "float32",
    out_of_core: bool = True,
    name: str = "transpose",
    source: str = "src",
    target: str = "dst",
) -> ProgramIR:
    """Build the IR of ``dst = src^T`` with both arrays column-block distributed."""
    arrays = _column_block_arrays((source, target), n, nprocs, dtype, out_of_core)
    statement = TransposeStatement(
        result=ArrayRef(target, [FullRange(), FullRange()]),
        operand=ArrayRef(source, [FullRange(), FullRange()]),
    )
    return ProgramIR(name=name, arrays=arrays, loops=(), statement=statement)


def build_gaxpy_ir(
    n: int,
    nprocs: int,
    dtype: str = "float32",
    out_of_core: bool = True,
    name: str = "gaxpy_matmul",
) -> ProgramIR:
    """Build the IR of the paper's GAXPY matrix multiplication (Figure 3).

    Arrays ``a`` and ``c`` are column-block distributed, ``b`` is row-block
    distributed, all over a one-dimensional arrangement of ``nprocs``
    processors.
    """
    from repro.hpf.align import Alignment
    from repro.hpf.processors import ProcessorGrid
    from repro.hpf.template import Template

    grid = ProcessorGrid("Pr", nprocs)
    template = Template("d", n, grid, ["block"])
    column_align = Alignment(template, ["*", ":"])
    row_align = Alignment(template, [":", "*"])
    arrays = {
        "a": ArrayDescriptor("a", (n, n), column_align, dtype=dtype, out_of_core=out_of_core),
        "b": ArrayDescriptor("b", (n, n), row_align, dtype=dtype, out_of_core=out_of_core),
        "c": ArrayDescriptor("c", (n, n), column_align, dtype=dtype, out_of_core=out_of_core),
    }
    loops = (
        Loop("j", n, LoopKind.SEQUENTIAL),
        Loop("k", n, LoopKind.FORALL),
    )
    statement = ReductionStatement(
        result=ArrayRef("c", [FullRange(), LoopIndex("j")]),
        operands=(
            ArrayRef("a", [FullRange(), LoopIndex("k")]),
            ArrayRef("b", [LoopIndex("k"), LoopIndex("j")]),
        ),
        reduce_index="k",
    )
    return ProgramIR(name=name, arrays=arrays, loops=loops, statement=statement)


def build_pipeline_ir(
    n: int,
    nprocs: int,
    dtype: str = "float32",
    out_of_core: bool = True,
    op: str = "add",
    name: str = "matmul_then_add",
) -> ProgramIR:
    """Build the canonical two-statement pipeline ``t = a @ b; c = op(t, d)``.

    Statement one is the paper's GAXPY reduction into the intermediate ``t``;
    statement two consumes ``t`` elementwise against ``d``.  The whole-program
    compiler schedules ``t`` to be written once by statement one and read once
    by statement two straight from its Local Array File.
    """
    from repro.hpf.align import Alignment
    from repro.hpf.processors import ProcessorGrid
    from repro.hpf.template import Template

    grid = ProcessorGrid("Pr", nprocs)
    template = Template("d", n, grid, ["block"])
    column_align = Alignment(template, ["*", ":"])
    row_align = Alignment(template, [":", "*"])
    arrays = {
        "a": ArrayDescriptor("a", (n, n), column_align, dtype=dtype, out_of_core=out_of_core),
        "b": ArrayDescriptor("b", (n, n), row_align, dtype=dtype, out_of_core=out_of_core),
        "t": ArrayDescriptor("t", (n, n), column_align, dtype=dtype, out_of_core=out_of_core),
        "d": ArrayDescriptor("d", (n, n), column_align, dtype=dtype, out_of_core=out_of_core),
        "c": ArrayDescriptor("c", (n, n), column_align, dtype=dtype, out_of_core=out_of_core),
    }
    matmul = ReductionStatement(
        result=ArrayRef("t", [FullRange(), LoopIndex("j")]),
        operands=(
            ArrayRef("a", [FullRange(), LoopIndex("k")]),
            ArrayRef("b", [LoopIndex("k"), LoopIndex("j")]),
        ),
        reduce_index="k",
    )
    combine = ElementwiseStatement(
        result=ArrayRef("c", [FullRange(), FullRange()]),
        operands=(
            ArrayRef("t", [FullRange(), FullRange()]),
            ArrayRef("d", [FullRange(), FullRange()]),
        ),
        op=op,
    )
    return ProgramIR(
        name=name,
        arrays=arrays,
        statements=(matmul, combine),
        loop_nests=(
            (Loop("j", n, LoopKind.SEQUENTIAL), Loop("k", n, LoopKind.FORALL)),
            (),
        ),
    )
