"""Memory allocation for competing out-of-core arrays (Section 4.2.1).

When several out-of-core arrays are staged simultaneously, the node memory
budget must be divided between their In-core Local Arrays.  The paper
compares dividing the memory equally against giving the most frequently
accessed array a larger slab, and concludes the compiler should do the
latter ("the compiler can determine which array requires more I/O accesses
and accordingly allocate the available memory").

Three policies are provided:

* :class:`EqualAllocation` — the naive equal split,
* :class:`ProportionalAllocation` — split proportionally to each array's
  predicted data traffic under an equal-split probe (the paper's heuristic),
* :class:`SearchAllocation` — a coarse search over split fractions that
  minimises the cost model's predicted time (what a compiler with a little
  more budget for compile-time analysis would do).

All policies reserve one line (one column / row of the local array) for the
result array, which is only written, and divide the remainder between the
streamed and coefficient arrays.

The concrete policies are frozen (hashable, value-compared) dataclasses, so
they can take part in compile-cache keys such as
:func:`repro.core.pipeline.compile_gaxpy_cached`.
"""

from __future__ import annotations

import abc
import dataclasses
from typing import Dict, TYPE_CHECKING, Tuple

from repro.exceptions import MemoryAllocationError
from repro.core.analysis import InCorePhaseResult
from repro.core.stripmine import SlabPlanEntry, build_plan_entry
from repro.runtime.slab import SlabbingStrategy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.core.cost_model import CostModel

__all__ = [
    "AllocationPolicy",
    "EqualAllocation",
    "ProportionalAllocation",
    "SearchAllocation",
]


def _local_geometry(analysis: InCorePhaseResult, name: str) -> Tuple[int, int]:
    descriptor = analysis.program.arrays[name]
    shapes = [descriptor.local_shape(r) for r in range(descriptor.nprocs)]
    return max(shapes, key=lambda s: s[0] * s[1])


def _result_reserve(analysis: InCorePhaseResult) -> int:
    """Elements reserved for the result array's staging buffer: one local column."""
    rows, _cols = _local_geometry(analysis, analysis.result)
    return max(rows, 1)


def _line_elements(analysis: InCorePhaseResult, name: str, strategy: SlabbingStrategy) -> int:
    rows, cols = _local_geometry(analysis, name)
    if strategy is SlabbingStrategy.COLUMN:
        return max(rows, 1)
    return max(cols, 1)


class AllocationPolicy(abc.ABC):
    """Split a memory budget (in elements) between the statement's arrays."""

    name = "abstract"

    @abc.abstractmethod
    def split(
        self,
        analysis: InCorePhaseResult,
        strategy: SlabbingStrategy,
        budget_elements: int,
        cost_model: "CostModel",
    ) -> Dict[str, int]:
        """Return slab sizes in elements for the streamed, coefficient and result arrays."""

    # -- shared helpers -------------------------------------------------------
    def _validate_budget(self, analysis: InCorePhaseResult, strategy: SlabbingStrategy,
                         budget_elements: int) -> int:
        minimum = (
            _result_reserve(analysis)
            + _line_elements(analysis, analysis.streamed, strategy)
            + _line_elements(analysis, analysis.coefficient, SlabbingStrategy.COLUMN)
        )
        if budget_elements < minimum:
            raise MemoryAllocationError(
                f"memory budget of {budget_elements} elements is below the minimum of "
                f"{minimum} (one slab line per array)"
            )
        return budget_elements

    def _clamp(self, analysis: InCorePhaseResult, name: str, elements: int) -> int:
        rows, cols = _local_geometry(analysis, name)
        return max(1, min(elements, rows * cols))

    def _package(
        self,
        analysis: InCorePhaseResult,
        strategy: SlabbingStrategy,
        streamed_elements: int,
        coefficient_elements: int,
    ) -> Dict[str, int]:
        return {
            analysis.streamed: self._clamp(analysis, analysis.streamed, streamed_elements),
            analysis.coefficient: self._clamp(analysis, analysis.coefficient, coefficient_elements),
            analysis.result: self._clamp(analysis, analysis.result, _result_reserve(analysis)),
        }


@dataclasses.dataclass(frozen=True)
class EqualAllocation(AllocationPolicy):
    """Divide the budget equally between the streamed and coefficient arrays."""

    name = "equal"

    def split(
        self,
        analysis: InCorePhaseResult,
        strategy: "SlabbingStrategy | str",
        budget_elements: int,
        cost_model: "CostModel",
    ) -> Dict[str, int]:
        strategy = SlabbingStrategy.from_name(strategy)
        budget_elements = self._validate_budget(analysis, strategy, budget_elements)
        available = budget_elements - _result_reserve(analysis)
        half = available // 2
        return self._package(analysis, strategy, half, available - half)


@dataclasses.dataclass(frozen=True)
class ProportionalAllocation(AllocationPolicy):
    """Split proportionally to how much I/O each array's slab size controls.

    Starting from an equal split, the policy probes the cost model twice —
    once with the streamed array's slab doubled, once with the coefficient
    array's slab doubled — and divides the budget in proportion to the I/O
    time each enlargement saves.  This realises the paper's guidance ("the
    compiler can determine which array requires more I/O accesses and
    accordingly allocate the available memory"): for the row-slab GAXPY plan
    the streamed array wins because enlarging its slab also cuts the number
    of times the coefficient array is re-read.
    """

    name = "proportional"

    def split(
        self,
        analysis: InCorePhaseResult,
        strategy: "SlabbingStrategy | str",
        budget_elements: int,
        cost_model: "CostModel",
    ) -> Dict[str, int]:
        strategy = SlabbingStrategy.from_name(strategy)
        budget_elements = self._validate_budget(analysis, strategy, budget_elements)
        available = budget_elements - _result_reserve(analysis)
        baseline = EqualAllocation().split(analysis, strategy, budget_elements, cost_model)
        baseline_cost = cost_model.estimate(
            analysis, strategy, _entries_from_split(analysis, strategy, baseline)
        )

        def savings(array: str) -> float:
            probe = dict(baseline)
            probe[array] = self._clamp(analysis, array, probe[array] * 2)
            probe_cost = cost_model.estimate(
                analysis, strategy, _entries_from_split(analysis, strategy, probe)
            )
            return max(baseline_cost.io_time - probe_cost.io_time, 0.0)

        streamed_gain = savings(analysis.streamed)
        coefficient_gain = savings(analysis.coefficient)
        total = streamed_gain + coefficient_gain
        share = 0.5 if total <= 0 else streamed_gain / total
        streamed_elements = max(
            _line_elements(analysis, analysis.streamed, strategy), int(available * share)
        )
        coefficient_elements = max(
            _line_elements(analysis, analysis.coefficient, SlabbingStrategy.COLUMN),
            available - streamed_elements,
        )
        return self._package(analysis, strategy, streamed_elements, coefficient_elements)


@dataclasses.dataclass(frozen=True)
class SearchAllocation(AllocationPolicy):
    """Coarse search over split fractions, minimising the modelled total time."""

    name = "search"
    fractions: int = 9

    def split(
        self,
        analysis: InCorePhaseResult,
        strategy: "SlabbingStrategy | str",
        budget_elements: int,
        cost_model: "CostModel",
    ) -> Dict[str, int]:
        strategy = SlabbingStrategy.from_name(strategy)
        budget_elements = self._validate_budget(analysis, strategy, budget_elements)
        available = budget_elements - _result_reserve(analysis)
        best: Dict[str, int] | None = None
        best_time = float("inf")
        for step in range(1, self.fractions + 1):
            fraction = step / (self.fractions + 1)
            streamed_elements = max(
                _line_elements(analysis, analysis.streamed, strategy), int(available * fraction)
            )
            coefficient_elements = max(
                _line_elements(analysis, analysis.coefficient, SlabbingStrategy.COLUMN),
                available - streamed_elements,
            )
            split = self._package(analysis, strategy, streamed_elements, coefficient_elements)
            entries = _entries_from_split(analysis, strategy, split)
            cost = cost_model.estimate(analysis, strategy, entries)
            if cost.total_time < best_time:
                best_time = cost.total_time
                best = split
        if best is None:  # pragma: no cover - fractions >= 1 always yields a candidate
            raise MemoryAllocationError("search allocation produced no candidate")
        return best


def _entries_from_split(
    analysis: InCorePhaseResult,
    strategy: SlabbingStrategy,
    split: Dict[str, int],
) -> Dict[str, SlabPlanEntry]:
    """Build slab plan entries for a {array: slab_elements} split.

    The streamed array uses the candidate strategy; the coefficient and result
    arrays are always staged by whole local columns (their access order in
    both of the paper's program versions).
    """
    entries = {}
    for name, elements in split.items():
        descriptor = analysis.program.arrays[name]
        entry_strategy = strategy if name == analysis.streamed else SlabbingStrategy.COLUMN
        entries[name] = build_plan_entry(descriptor, entry_strategy, elements)
    return entries
