"""The compilation pipeline driver.

``compile_program`` runs the full sequence of Figure 7 — in-core phase,
strip-mining, cost estimation, data access reorganization, memory allocation
and code generation — and returns a :class:`CompiledProgram` bundling every
intermediate result so callers (executor, experiments, tests) can inspect the
compiler's reasoning.

``compile_gaxpy`` is a convenience wrapper that builds the paper's GAXPY
program first.
"""

from __future__ import annotations

import dataclasses
import functools
import time
import warnings
from typing import Dict, Optional, Sequence, Tuple, TYPE_CHECKING, Union

import numpy as np

from repro.exceptions import CompilationError, PlanVerificationError
from repro.core.analysis import (
    ElementwisePhaseResult,
    FusedElementwisePhase,
    InCorePhaseResult,
    analyze_program,
)
from repro.core.codegen import ProgramSchedule, generate_node_program, generate_program_schedule
from repro.core.cost_model import CostModel, PlanCost, combine_plan_costs
from repro.core.ir import ProgramIR, build_gaxpy_ir
from repro.core.memory_alloc import AllocationPolicy, ProportionalAllocation
from repro.core.node_program import NodeProgram
from repro.core.reorganize import (
    AccessPlan,
    ReorganizationDecision,
    plan_from_slab_elements,
    reorganize,
)
from repro.core.stripmine import (
    build_plan_entry,
    slab_elements_from_bytes,
    slab_elements_from_ratio,
)
from repro.machine.parameters import MachineParameters, touchstone_delta
from repro.runtime.slab import SlabbingStrategy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (planner imports us)
    from repro.check.report import CheckReport
    from repro.planner.plan_cache import PlanCache
    from repro.planner.search import PlanDecision

__all__ = [
    "CompiledProgram",
    "CompiledWholeProgram",
    "compile_program",
    "compile_whole_program",
    "compile_gaxpy",
    "compile_gaxpy_cached",
    "fuse_statement_pair",
    "normalize_fusion",
]


@dataclasses.dataclass(frozen=True)
class CompiledProgram:
    """Everything the compiler produced for one program.

    Frozen on purpose: :func:`compile_gaxpy_cached` and the Session API's
    compile cache hand the *same* instance to many runs (and threads), so
    executors must never mutate it.
    """

    program: ProgramIR
    #: phase-one result; an :class:`InCorePhaseResult` for reduction
    #: statements, the elementwise/transpose phase results otherwise
    analysis: object
    decision: Optional[ReorganizationDecision]
    plan: AccessPlan
    node_program: NodeProgram
    params: MachineParameters
    nprocs: int
    compile_seconds: float
    #: the plan optimizer's decision when the compilation went through the
    #: planner (``optimizer=`` with a memory budget); ``None`` otherwise
    planner: Optional["PlanDecision"] = None
    #: the memory budget this statement was compiled against, when one was
    #: given; the static verifier proves the plan's resident bytes fit it
    memory_budget_bytes: Optional[int] = None
    #: the static verifier's frozen report, attached when compiled with
    #: ``check="warn"`` or ``check="error"``
    check: Optional["CheckReport"] = None

    @property
    def strategy(self) -> SlabbingStrategy:
        return self.plan.strategy

    @property
    def predicted_cost(self) -> PlanCost:
        return self.plan.cost

    def describe(self) -> str:
        lines = [
            f"compiled {self.program.name} for {self.nprocs} processors on {self.params.name}",
            f"  chosen strategy: {self.plan.strategy.value} slabs of {self.analysis.streamed}",
            f"  predicted time: {self.plan.cost.total_time:.2f}s "
            f"(io {self.plan.cost.io_time:.2f}s, compute {self.plan.cost.compute_time:.2f}s, "
            f"comm {self.plan.cost.comm_time:.2f}s)",
            f"  compile time: {self.compile_seconds * 1e3:.2f} ms",
        ]
        if self.decision is not None:
            lines.append("  " + self.decision.describe().replace("\n", "\n  "))
        return "\n".join(lines)


@dataclasses.dataclass(frozen=True)
class CompiledWholeProgram:
    """A compiled multi-statement program.

    ``statements`` holds one :class:`CompiledProgram` per statement (compiled
    through the unchanged single-statement pipeline on a shared set of array
    descriptors), ``schedule`` the assembled
    :class:`~repro.core.codegen.ProgramSchedule`, and ``cost`` the summed
    program-level :class:`~repro.core.cost_model.PlanCost` in which each
    intermediate is charged one write pass (producer) plus one read pass
    (consumer) — never a regeneration.  Frozen for the same cache-sharing
    reasons as :class:`CompiledProgram`.
    """

    program: ProgramIR
    statements: Tuple[CompiledProgram, ...]
    schedule: ProgramSchedule
    cost: PlanCost
    params: MachineParameters
    nprocs: int
    compile_seconds: float
    #: the plan optimizer's decision when a memory budget was searched
    #: (per-statement budgets, policies, predicted-vs-even cost); ``None``
    #: for ``slab_ratio`` / ``slab_elements`` compilations
    planner: Optional["PlanDecision"] = None
    #: the shared node budget the program was compiled against, if any
    memory_budget_bytes: Optional[int] = None
    #: the static verifier's frozen report, attached when compiled with
    #: ``check="warn"`` or ``check="error"``
    check: Optional["CheckReport"] = None

    @property
    def predicted_cost(self) -> PlanCost:
        return self.cost

    @property
    def intermediates(self) -> Tuple[str, ...]:
        return self.schedule.intermediates

    def statement_costs(self) -> Tuple[PlanCost, ...]:
        return tuple(compiled.plan.cost for compiled in self.statements)

    def describe(self) -> str:
        lines = [
            f"compiled whole program {self.program.name} "
            f"({len(self.statements)} statements) for {self.nprocs} processors "
            f"on {self.params.name}",
            f"  predicted time: {self.cost.total_time:.2f}s "
            f"(io {self.cost.io_time:.2f}s, compute {self.cost.compute_time:.2f}s, "
            f"comm {self.cost.comm_time:.2f}s)",
            f"  intermediates reused from LAF: "
            f"{', '.join(self.intermediates) or '<none>'}",
            f"  compile time: {self.compile_seconds * 1e3:.2f} ms",
        ]
        for index, compiled in enumerate(self.statements):
            cost = compiled.plan.cost
            lines.append(
                f"  statement {index + 1} [{compiled.plan.strategy.value}]: "
                f"io={cost.io_time:.2f}s compute={cost.compute_time:.2f}s "
                f"comm={cost.comm_time:.2f}s"
            )
        if self.planner is not None:
            lines.append("  " + self.planner.describe().replace("\n", "\n  "))
        return "\n".join(lines)


def _plan_data_movement(
    program: ProgramIR,
    analysis: "ElementwisePhaseResult | TransposePhaseResult",
    cost_model: CostModel,
    *,
    memory_budget_bytes: Optional[int],
    slab_ratio: Optional[float],
    slab_elements: Optional[Dict[str, int]],
    force_strategy: Optional[SlabbingStrategy | str],
) -> AccessPlan:
    """Build the access plan for an elementwise or transpose statement.

    These statements touch every array exactly once, so there is no
    strategy *choice* to make: the I/O volume is slabbing-invariant.  The
    elementwise lowering accepts a forced row strategy (slabs along the other
    dimension); the transpose lowering always streams column slabs, matching
    the column-block distribution of its operands.
    """
    if isinstance(analysis, ElementwisePhaseResult):
        names = (*analysis.operands, analysis.result)
        strategy = (
            SlabbingStrategy.from_name(force_strategy)
            if force_strategy is not None
            else SlabbingStrategy.COLUMN
        )
    else:
        names = (analysis.source, analysis.target)
        strategy = SlabbingStrategy.COLUMN
        if force_strategy is not None and SlabbingStrategy.from_name(force_strategy) is not strategy:
            raise CompilationError(
                "the transpose lowering streams column slabs; it cannot be forced to "
                f"{SlabbingStrategy.from_name(force_strategy).value!r}"
            )

    if slab_ratio is not None:
        sizes = {
            name: slab_elements_from_ratio(program.arrays[name], slab_ratio) for name in names
        }
    elif slab_elements is not None:
        sizes = dict(slab_elements)
        for name in names:
            if name not in sizes:
                raise CompilationError(f"slab_elements is missing array {name!r}")
        if len({int(sizes[name]) for name in names}) != 1:
            # The fused schedule streams one conformal slab of every array per
            # iteration; unequal sizes would make the generated loop structure
            # (and its charged statistics) contradict the per-array entries.
            raise CompilationError(
                "elementwise/transpose statements stream conformal slabs; give "
                f"every array the same slab_elements (got { {n: int(sizes[n]) for n in names} })"
            )
    else:
        from repro.planner.budget import split_evenly

        # An exact even split: the remainder is redistributed one byte at a
        # time instead of being silently dropped (shares differ by <= 1 byte).
        # The fused schedule streams one *conformal* slab of every array per
        # iteration, so all arrays share the smallest element count any share
        # affords.
        shares = split_evenly(int(memory_budget_bytes), len(names))
        common = min(
            slab_elements_from_bytes(program.arrays[name], share)
            for name, share in zip(names, shares, strict=True)
        )
        sizes = {name: common for name in names}

    entries = {
        name: build_plan_entry(program.arrays[name], strategy, sizes[name]) for name in names
    }
    if isinstance(analysis, ElementwisePhaseResult):
        cost = cost_model.estimate_elementwise(analysis, strategy, entries)
    else:
        cost = cost_model.estimate_transpose(analysis, entries)
    return AccessPlan(
        strategy=strategy, entries=entries, allocation={n: int(sizes[n]) for n in names}, cost=cost
    )


_FUSION_MODES = ("off", "auto", "on")


def normalize_fusion(fusion: Optional[str]) -> str:
    """Validate the fusion mode; ``"on"`` is an alias for ``"auto"``."""
    if fusion is None:
        return "off"
    fusion = str(fusion)
    if fusion not in _FUSION_MODES:
        raise CompilationError(
            f"fusion must be one of {_FUSION_MODES}, got {fusion!r}"
        )
    return "auto" if fusion == "on" else fusion


def fuse_statement_pair(
    program: ProgramIR,
    index: int,
    producer: CompiledProgram,
    consumer: CompiledProgram,
    params: MachineParameters,
) -> CompiledProgram:
    """Compile statements ``index`` and ``index + 1`` into one fused unit.

    ``producer`` and ``consumer`` are the statements' individually compiled
    units under the budgets the planner assigned them; fusion reuses their
    access plans and only replaces the loop structure, so the slab extents the
    cost model priced are exactly the extents the fused loop streams.  Raises
    :class:`CompilationError` when the intermediate's slabs are not conformal
    across the pair (different strategy, extents or storage order) — the
    planner treats that as "this candidate does not fuse".
    """
    p_analysis = producer.analysis
    c_analysis = consumer.analysis
    if not isinstance(p_analysis, ElementwisePhaseResult) or not isinstance(
        c_analysis, ElementwisePhaseResult
    ):
        raise CompilationError("only elementwise statement pairs can fuse")
    intermediate = p_analysis.result
    if intermediate not in c_analysis.operands:
        raise CompilationError(
            f"statement {index + 1} does not consume {intermediate!r}; nothing to fuse"
        )
    if producer.plan.strategy is not consumer.plan.strategy:
        raise CompilationError(
            f"cannot fuse across strategies {producer.plan.strategy.value!r} vs "
            f"{consumer.plan.strategy.value!r}"
        )
    p_entry = producer.plan.entry(intermediate)
    c_entry = consumer.plan.entry(intermediate)
    if p_entry != c_entry:
        raise CompilationError(
            f"the slabs of {intermediate!r} are not conformal across the pair: "
            f"{p_entry.slab_elements} elements x {p_entry.num_slabs} slabs "
            f"({p_entry.storage_order}) vs {c_entry.slab_elements} x "
            f"{c_entry.num_slabs} ({c_entry.storage_order})"
        )

    statements = program.statements[index : index + 2]
    arrays = {}
    for statement in statements:
        for name in statement.referenced_arrays():
            arrays.setdefault(name, program.arrays[name])
    fused_ir = ProgramIR(
        name=f"{program.name}[{index}+{index + 1}]",
        arrays=arrays,
        statements=statements,
        loop_nests=tuple(program.loop_nests[index : index + 2]),
    )
    phase = FusedElementwisePhase(
        program=fused_ir,
        producer=p_analysis,
        consumer=c_analysis,
        intermediate=intermediate,
    )
    entries = dict(producer.plan.entries)
    entries.update(consumer.plan.entries)
    allocation = dict(producer.plan.allocation)
    allocation.update(consumer.plan.allocation)
    nprocs = program.nprocs()
    cost = CostModel(params, nprocs).estimate_fused(phase, producer.plan.strategy, entries)
    plan = AccessPlan(
        strategy=producer.plan.strategy, entries=entries, allocation=allocation, cost=cost
    )
    budgets = (producer.memory_budget_bytes, consumer.memory_budget_bytes)
    budget = sum(budgets) if all(b is not None for b in budgets) else None
    return CompiledProgram(
        program=fused_ir,
        analysis=phase,
        decision=None,
        plan=plan,
        node_program=generate_node_program(phase, plan),
        params=params,
        nprocs=nprocs,
        compile_seconds=producer.compile_seconds + consumer.compile_seconds,
        memory_budget_bytes=budget,
    )


_CHECK_MODES = ("off", "warn", "error")


def _apply_check(
    compiled: Union[CompiledProgram, "CompiledWholeProgram"],
    check: str,
) -> Union[CompiledProgram, "CompiledWholeProgram"]:
    """Run the static plan verifier and attach its report to ``compiled``.

    ``check="off"`` is a no-op (and the default, so plan caches shared with
    verification-free callers hand out byte-identical objects).  Otherwise the
    verifier walks the compiled plan, the frozen report is attached via
    :func:`dataclasses.replace`, and a failing plan either raises
    :class:`PlanVerificationError` (``"error"``) or warns (``"warn"``).
    """
    if check not in _CHECK_MODES:
        raise CompilationError(
            f"check must be one of {_CHECK_MODES}, got {check!r}"
        )
    if check == "off":
        return compiled
    from repro.check import check_compiled

    report = check_compiled(compiled)
    compiled = dataclasses.replace(compiled, check=report)
    if not report.ok:
        if check == "error":
            raise PlanVerificationError(report.describe(), report=report)
        warnings.warn(report.describe(), stacklevel=3)
    return compiled


def compile_program(
    program: ProgramIR,
    params: Optional[MachineParameters] = None,
    *,
    memory_budget_bytes: Optional[int] = None,
    slab_ratio: Optional[float] = None,
    slab_elements: Optional[Dict[str, int]] = None,
    policy: Optional[AllocationPolicy] = None,
    force_strategy: Optional[SlabbingStrategy | str] = None,
    strategies: Sequence[SlabbingStrategy | str] = (SlabbingStrategy.COLUMN, SlabbingStrategy.ROW),
    optimizer: Optional[str] = None,
    plan_cache: Optional["PlanCache"] = None,
    check: str = "off",
    fusion: str = "off",
) -> CompiledProgram:
    """Compile a program for out-of-core execution.

    Exactly one of the slab-size specifications must be given:

    * ``memory_budget_bytes`` — the compiler divides the budget between the
      arrays with ``policy`` (default: proportional allocation) and picks the
      cheapest strategy (unless ``force_strategy`` is given);
    * ``slab_ratio`` — every array gets a slab of ``ratio x`` its local size
      (the convention of the paper's Figure 10 / Table 1 sweeps);
    * ``slab_elements`` — explicit per-array slab sizes in elements
      (the convention of Table 2).

    ``optimizer`` (``"none"`` | ``"greedy"`` | ``"beam"`` | ``"exhaustive"``)
    hands the memory-budget case to the plan optimizer
    (:mod:`repro.planner`), which searches allocation policies — and, for
    whole programs, per-statement budget splits — using the cost model as
    the objective; the chosen plan is never worse than the even split.  It
    only applies when ``memory_budget_bytes`` is given and ``policy`` is not
    pinned.  ``plan_cache`` (or the ambient Session cache) replays previous
    search winners.

    ``check`` (``"off"`` | ``"warn"`` | ``"error"``) runs the static plan
    verifier (:mod:`repro.check`) over the compiled result and attaches its
    frozen :class:`~repro.check.report.CheckReport` as ``.check``; ``"error"``
    raises :class:`~repro.exceptions.PlanVerificationError` on any finding.

    Multi-statement programs are dispatched to :func:`compile_whole_program`
    (and return a :class:`CompiledWholeProgram`).
    """
    if program.is_multi_statement():
        return compile_whole_program(
            program,
            params,
            memory_budget_bytes=memory_budget_bytes,
            slab_ratio=slab_ratio,
            slab_elements=slab_elements,
            policy=policy,
            force_strategy=force_strategy,
            strategies=strategies,
            optimizer=optimizer,
            plan_cache=plan_cache,
            check=check,
            fusion=fusion,
        )
    normalize_fusion(fusion)  # validated even where it cannot apply
    params = params or touchstone_delta()
    start = time.perf_counter()
    specified = sum(x is not None for x in (memory_budget_bytes, slab_ratio, slab_elements))
    if specified != 1:
        raise CompilationError(
            "specify exactly one of memory_budget_bytes, slab_ratio or slab_elements"
        )
    if (
        optimizer is not None
        and optimizer != "none"
        and memory_budget_bytes is not None
        and policy is None
    ):
        from repro.planner.plan_cache import active_plan_cache
        from repro.planner.search import plan_whole_program

        cache = plan_cache if plan_cache is not None else active_plan_cache()
        decision, units = plan_whole_program(
            program,
            params,
            int(memory_budget_bytes),
            optimizer=optimizer,
            strategies=strategies,
            force_strategy=force_strategy,
            plan_cache=cache,
            fusion=fusion,
        )
        compiled = dataclasses.replace(
            units[0],
            planner=decision,
            compile_seconds=time.perf_counter() - start,
        )
        return _apply_check(compiled, check)
    analysis = analyze_program(program)
    nprocs = program.nprocs()
    cost_model = CostModel(params, nprocs)

    if not isinstance(analysis, InCorePhaseResult):
        plan = _plan_data_movement(
            program,
            analysis,
            cost_model,
            memory_budget_bytes=memory_budget_bytes,
            slab_ratio=slab_ratio,
            slab_elements=slab_elements,
            force_strategy=force_strategy,
        )
        node_program = generate_node_program(analysis, plan)
        compiled = CompiledProgram(
            program=program,
            analysis=analysis,
            decision=None,
            plan=plan,
            node_program=node_program,
            params=params,
            nprocs=nprocs,
            compile_seconds=time.perf_counter() - start,
            memory_budget_bytes=(
                int(memory_budget_bytes) if memory_budget_bytes is not None else None
            ),
        )
        return _apply_check(compiled, check)

    decision: Optional[ReorganizationDecision] = None
    if memory_budget_bytes is not None:
        decision = reorganize(
            analysis,
            params,
            nprocs,
            memory_budget_bytes,
            policy=policy or ProportionalAllocation(),
            strategies=strategies,
        )
        plan = (
            decision.candidate(force_strategy) if force_strategy is not None else decision.chosen
        )
    else:
        if slab_ratio is not None:
            sizes = {
                name: slab_elements_from_ratio(program.arrays[name], slab_ratio)
                for name in (analysis.streamed, analysis.coefficient, analysis.result)
            }
        else:
            sizes = dict(slab_elements or {})
            # Default the result array's staging buffer to one local column.
            if analysis.result not in sizes:
                result_desc = program.arrays[analysis.result]
                rows = max(result_desc.local_shape(0)[0], 1)
                sizes[analysis.result] = rows
        candidates = [
            plan_from_slab_elements(analysis, strategy, sizes, cost_model)
            for strategy in strategies
        ]
        if force_strategy is not None:
            wanted = SlabbingStrategy.from_name(force_strategy)
            matching = [p for p in candidates if p.strategy is wanted]
            if not matching:
                matching = [plan_from_slab_elements(analysis, wanted, sizes, cost_model)]
            plan = matching[0]
        else:
            reference = max(candidates, key=lambda p: p.cost.io_time)
            dominant = reference.cost.dominant_array()
            plan = min(
                candidates,
                key=lambda p: (p.cost.arrays[dominant].total_elements, p.cost.io_time),
            )
            decision = ReorganizationDecision(
                candidates=candidates,
                chosen=plan,
                incore_cost=cost_model.estimate_incore(analysis),
                dominant_array=dominant,
            )

    node_program = generate_node_program(analysis, plan)
    elapsed = time.perf_counter() - start
    compiled = CompiledProgram(
        program=program,
        analysis=analysis,
        decision=decision,
        plan=plan,
        node_program=node_program,
        params=params,
        nprocs=nprocs,
        compile_seconds=elapsed,
        memory_budget_bytes=(
            int(memory_budget_bytes) if memory_budget_bytes is not None else None
        ),
    )
    return _apply_check(compiled, check)


def compile_whole_program(
    program: ProgramIR,
    params: Optional[MachineParameters] = None,
    *,
    memory_budget_bytes: Optional[int] = None,
    slab_ratio: Optional[float] = None,
    slab_elements: Optional[Dict[str, int]] = None,
    policy: Optional[AllocationPolicy] = None,
    force_strategy: Optional[SlabbingStrategy | str] = None,
    strategies: Sequence[SlabbingStrategy | str] = (SlabbingStrategy.COLUMN, SlabbingStrategy.ROW),
    optimizer: Optional[str] = None,
    plan_cache: Optional["PlanCache"] = None,
    check: str = "off",
    fusion: str = "off",
) -> CompiledWholeProgram:
    """Compile a (possibly multi-statement) program for out-of-core execution.

    Each statement goes through the unchanged single-statement pipeline —
    analysis, strip-mining, cost estimation, reorganization, code generation —
    on the whole program's shared array descriptors, so consecutive statements
    agree on every array's distribution and Local Array File layout.  The slab
    specification is interpreted per statement:

    * ``memory_budget_bytes`` is one *shared* node budget: statements execute
      back to back, but the compiler conservatively bounds every statement's
      working set so a schedule interleaving statement windows (e.g. with
      prefetch) stays within memory.  How the budget is divided is decided by
      ``optimizer``: ``"none"`` (or a pinned ``policy``) keeps the even split
      (remainder redistributed, no byte dropped), while ``"greedy"`` /
      ``"beam"`` / ``"exhaustive"`` delegate the division to the plan
      optimizer (:mod:`repro.planner`), which searches per-statement budgets
      and allocation policies against the cost model and never returns a plan
      worse than the even split; its :class:`~repro.planner.search.PlanDecision`
      is attached as ``.planner``.  ``plan_cache`` (or the ambient Session
      cache installed with
      :func:`repro.planner.plan_cache.use_plan_cache`) replays previous
      search winners;
    * ``slab_ratio`` applies to every array of every statement;
    * ``slab_elements`` entries are routed to the statements referencing them.

    The per-statement plans are summed into one program-level
    :class:`~repro.core.cost_model.PlanCost`; an intermediate's I/O appears
    exactly once as a write (producer statement) and once as a read (consumer
    statement).
    """
    params = params or touchstone_delta()
    start = time.perf_counter()
    fusion = normalize_fusion(fusion)
    statements = program.statements
    specified = sum(x is not None for x in (memory_budget_bytes, slab_ratio, slab_elements))
    if specified != 1:
        raise CompilationError(
            "specify exactly one of memory_budget_bytes, slab_ratio or slab_elements"
        )
    statement_budgets: Optional[Sequence[int]] = None
    planner_decision = None
    if memory_budget_bytes is not None:
        from repro.planner.budget import split_evenly
        from repro.planner.plan_cache import active_plan_cache
        from repro.planner.search import normalize_optimizer, plan_whole_program

        if int(memory_budget_bytes) < len(statements):
            raise CompilationError(
                f"memory budget of {memory_budget_bytes} bytes cannot be split "
                f"between {len(statements)} statements"
            )
        effective = normalize_optimizer(optimizer)
        if policy is None:
            cache = plan_cache if plan_cache is not None else active_plan_cache()
            planner_decision, units = plan_whole_program(
                program,
                params,
                int(memory_budget_bytes),
                optimizer=effective,
                strategies=strategies,
                force_strategy=force_strategy,
                plan_cache=cache if effective != "none" else None,
                check=check,
                fusion=fusion,
            )
            schedule = generate_program_schedule(program, list(units))
            cost = combine_plan_costs([unit.plan.cost for unit in units])
            whole = CompiledWholeProgram(
                program=program,
                statements=tuple(units),
                schedule=schedule,
                cost=cost,
                params=params,
                nprocs=program.nprocs(),
                compile_seconds=time.perf_counter() - start,
                planner=planner_decision,
                memory_budget_bytes=int(memory_budget_bytes),
            )
            return _apply_check(whole, check)
        # A pinned allocation policy bypasses the search: even budget split
        # (exact — the remainder is redistributed, not dropped).
        statement_budgets = split_evenly(int(memory_budget_bytes), len(statements))

    compiled_statements = []
    for index in range(len(statements)):
        sub_program = program.statement_program(index)
        sub_slabs: Optional[Dict[str, int]] = None
        if slab_elements is not None:
            referenced = sub_program.statement.referenced_arrays()
            sub_slabs = {
                name: int(slab_elements[name]) for name in referenced if name in slab_elements
            }
        compiled_statements.append(
            compile_program(
                sub_program,
                params,
                memory_budget_bytes=(
                    statement_budgets[index] if statement_budgets is not None else None
                ),
                slab_ratio=slab_ratio,
                slab_elements=sub_slabs,
                policy=policy,
                force_strategy=force_strategy,
                strategies=strategies,
            )
        )

    schedule = generate_program_schedule(program, compiled_statements)
    cost = combine_plan_costs([compiled.plan.cost for compiled in compiled_statements])
    whole = CompiledWholeProgram(
        program=program,
        statements=tuple(compiled_statements),
        schedule=schedule,
        cost=cost,
        params=params,
        nprocs=program.nprocs(),
        compile_seconds=time.perf_counter() - start,
        memory_budget_bytes=(
            int(memory_budget_bytes) if memory_budget_bytes is not None else None
        ),
    )
    return _apply_check(whole, check)


def compile_gaxpy(
    n: int,
    nprocs: int,
    params: Optional[MachineParameters] = None,
    *,
    dtype: str = "float32",
    memory_budget_bytes: Optional[int] = None,
    slab_ratio: Optional[float] = None,
    slab_elements: Optional[Dict[str, int]] = None,
    policy: Optional[AllocationPolicy] = None,
    force_strategy: Optional[SlabbingStrategy | str] = None,
    optimizer: Optional[str] = None,
) -> CompiledProgram:
    """Build and compile the paper's out-of-core GAXPY matrix multiplication."""
    program = build_gaxpy_ir(n, nprocs, dtype=dtype)
    return compile_program(
        program,
        params,
        memory_budget_bytes=memory_budget_bytes,
        slab_ratio=slab_ratio,
        slab_elements=slab_elements,
        policy=policy,
        force_strategy=force_strategy,
        optimizer=optimizer,
    )


@functools.lru_cache(maxsize=256)
def _compile_gaxpy_cached(
    n: int,
    nprocs: int,
    params: MachineParameters,
    dtype: str,
    slab_ratio: Optional[float],
    slab_items: Optional[Tuple[Tuple[str, int], ...]],
    memory_budget_bytes: Optional[int],
    policy: Optional[AllocationPolicy],
    force_name: Optional[str],
    optimizer: Optional[str],
) -> CompiledProgram:
    return compile_gaxpy(
        n,
        nprocs,
        params,
        dtype=dtype,
        slab_ratio=slab_ratio,
        slab_elements=dict(slab_items) if slab_items is not None else None,
        memory_budget_bytes=memory_budget_bytes,
        policy=policy,
        force_strategy=force_name,
        optimizer=optimizer,
    )


def compile_gaxpy_cached(
    n: int,
    nprocs: int,
    params: Optional[MachineParameters] = None,
    *,
    dtype: str = "float32",
    slab_ratio: Optional[float] = None,
    slab_elements: Optional[Dict[str, int]] = None,
    memory_budget_bytes: Optional[int] = None,
    policy: Optional[AllocationPolicy] = None,
    force_strategy: Optional[SlabbingStrategy | str] = None,
    optimizer: Optional[str] = None,
) -> CompiledProgram:
    """LRU-cached :func:`compile_gaxpy` for sweep drivers.

    Keyed on ``(n, nprocs, machine parameters, dtype, slab configuration,
    memory budget, allocation policy, forced strategy, plan optimizer)``;
    sweeps that revisit
    a configuration (or evaluate the same point in several modes) share one
    :class:`CompiledProgram`.  The returned object is shared between callers —
    treat it as immutable.  Memory-budget compilation is cached too: the
    built-in allocation policies are frozen (hashable) dataclasses, and an
    unspecified policy defaults to a :class:`ProportionalAllocation` so equal
    calls key identically.  A custom unhashable policy is the one case that
    falls back to an uncached :func:`compile_gaxpy`.
    """
    params = params or touchstone_delta()
    slab_items = (
        tuple(sorted(slab_elements.items())) if slab_elements is not None else None
    )
    force_name = (
        SlabbingStrategy.from_name(force_strategy).value if force_strategy is not None else None
    )
    if memory_budget_bytes is not None and policy is None:
        policy = ProportionalAllocation()
    try:
        hash(policy)
    except TypeError:
        return compile_gaxpy(
            n,
            nprocs,
            params,
            dtype=dtype,
            slab_ratio=slab_ratio,
            slab_elements=slab_elements,
            memory_budget_bytes=memory_budget_bytes,
            policy=policy,
            force_strategy=force_name,
            optimizer=optimizer,
        )
    return _compile_gaxpy_cached(
        int(n),
        int(nprocs),
        params,
        np.dtype(dtype).name,
        slab_ratio,
        slab_items,
        int(memory_budget_bytes) if memory_budget_bytes is not None else None,
        policy,
        force_name,
        optimizer,
    )
