"""The out-of-core compiler (the paper's primary contribution).

Compilation proceeds in the two phases of Figure 7 of the paper:

1. **In-core phase** (:mod:`repro.core.analysis`) — partition arrays using the
   distribution directives, compute local bounds, classify how each array is
   accessed by the loop nest and detect the communication the statement needs.
2. **Out-of-core phase** — strip-mine the local computation into slabs sized
   by the node memory budget (:mod:`repro.core.stripmine`), estimate the I/O
   cost of every candidate slabbing (:mod:`repro.core.cost_model`), reorganize
   the data accesses by picking the cheapest candidate
   (:mod:`repro.core.reorganize`), divide the memory budget between the
   competing out-of-core arrays (:mod:`repro.core.memory_alloc`), and emit the
   node + message-passing + I/O program (:mod:`repro.core.codegen`,
   :mod:`repro.core.node_program`).

:mod:`repro.core.pipeline` drives the whole sequence and returns a
:class:`~repro.core.pipeline.CompiledProgram`.
"""

from repro.core.ir import (
    ArrayRef,
    Constant,
    ElementwiseStatement,
    FullRange,
    Loop,
    LoopIndex,
    LoopKind,
    ProgramIR,
    ReductionStatement,
    TransposeStatement,
    build_gaxpy_ir,
    build_pipeline_ir,
)
from repro.core.analysis import ArrayRole, InCorePhaseResult, analyze_program
from repro.core.stripmine import SlabPlanEntry, slab_elements_from_ratio, slab_elements_from_bytes
from repro.core.cost_model import ArrayIOCost, PlanCost, CostModel
from repro.core.memory_alloc import (
    AllocationPolicy,
    EqualAllocation,
    ProportionalAllocation,
    SearchAllocation,
)
from repro.core.reorganize import AccessPlan, ReorganizationDecision, reorganize
from repro.core.node_program import NodeProgram, NodeOp
from repro.core.codegen import ProgramSchedule, generate_node_program, generate_program_schedule
from repro.core.pipeline import (
    CompiledProgram,
    CompiledWholeProgram,
    compile_program,
    compile_whole_program,
    compile_gaxpy,
)

__all__ = [
    "ArrayRef",
    "Constant",
    "FullRange",
    "Loop",
    "LoopIndex",
    "LoopKind",
    "ProgramIR",
    "ReductionStatement",
    "ElementwiseStatement",
    "TransposeStatement",
    "build_gaxpy_ir",
    "build_pipeline_ir",
    "ArrayRole",
    "InCorePhaseResult",
    "analyze_program",
    "SlabPlanEntry",
    "slab_elements_from_ratio",
    "slab_elements_from_bytes",
    "ArrayIOCost",
    "PlanCost",
    "CostModel",
    "AllocationPolicy",
    "EqualAllocation",
    "ProportionalAllocation",
    "SearchAllocation",
    "AccessPlan",
    "ReorganizationDecision",
    "reorganize",
    "NodeProgram",
    "NodeOp",
    "generate_node_program",
    "ProgramSchedule",
    "generate_program_schedule",
    "CompiledProgram",
    "CompiledWholeProgram",
    "compile_program",
    "compile_whole_program",
    "compile_gaxpy",
]
