"""The in-core compilation phase.

This is phase one of Figure 7: using the distribution directives the
compiler partitions the arrays, computes local bounds, and analyzes the array
operation to classify access patterns and detect communication.  The result
feeds the out-of-core phase (strip-mining, cost estimation, reorganization).

Access-pattern classification
-----------------------------
Within a reduction statement each referenced array plays one of three roles,
derived purely from its symbolic subscripts (the paper: "use index variables
to analyze access patterns"):

``RESULT``
    The left-hand side array (``c`` in GAXPY).  Written once; its distributed
    dimension indexed by an outer sequential loop determines the *owner* that
    stores each result column.

``STREAMED``
    An operand with a full-range subscript in one dimension and the reduction
    index in another (``a(:, k)``).  Its entire local part participates in
    producing every result column, which is what makes its I/O cost dominant
    and is exactly the access the paper's reorganization targets.

``COEFFICIENT``
    An operand subscripted only by loop indices (``b(k, j)``): one element per
    innermost iteration, streamed once per sweep of the loops that index it.

Communication detection
-----------------------
The reduction runs over a loop index that subscripts a *distributed*
dimension of the streamed array, so each processor only produces a partial
sum and a global sum (reduction) is required; the result column is then
stored by its owner (owner-computes rule applied to the LHS).
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, Optional, Tuple, Union

from repro.exceptions import CompilationError
from repro.core.ir import (
    ArrayRef,
    ElementwiseStatement,
    Loop,
    LoopKind,
    ProgramIR,
    ReductionStatement,
    TransposeStatement,
)

__all__ = [
    "ArrayRole",
    "ArrayAccessInfo",
    "InCorePhaseResult",
    "ElementwisePhaseResult",
    "FusedElementwisePhase",
    "TransposePhaseResult",
    "PhaseResult",
    "analyze_program",
]


class ArrayRole(enum.Enum):
    """Role an array plays in the reduction statement."""

    RESULT = "result"
    STREAMED = "streamed"
    COEFFICIENT = "coefficient"


@dataclasses.dataclass(frozen=True)
class ArrayAccessInfo:
    """Per-array facts gathered by the in-core phase."""

    name: str
    role: ArrayRole
    ref: ArrayRef
    #: dimension subscripted by the reduction index (None when not used)
    reduce_dim: Optional[int]
    #: dimension subscripted by the outer sequential loop index (None when not used)
    outer_dim: Optional[int]
    #: dimensions accessed with a full-range subscript
    full_dims: Tuple[int, ...]
    #: the array's distributed dimensions (from its descriptor)
    distributed_dims: Tuple[int, ...]
    #: maximum local element count over processors
    max_local_elements: int

    def is_out_of_core(self) -> bool:
        return True  # refined by the caller via the descriptor; kept for readability


@dataclasses.dataclass
class InCorePhaseResult:
    """Everything the out-of-core phase needs from the in-core phase."""

    program: ProgramIR
    access: Dict[str, ArrayAccessInfo]
    #: name of the streamed array (``a``), the coefficient array (``b``) and result (``c``)
    streamed: str
    coefficient: str
    result: str
    #: the outer sequential loop driving result columns and the reduction loop
    outer_loop: Loop
    reduce_loop: Loop
    #: True when the reduction needs an inter-processor global sum
    needs_global_sum: bool
    #: True when storing a result column requires identifying its owner
    needs_owner_store: bool
    #: floating point operations per processor for the whole computation
    flops_per_proc: float

    def roles(self) -> Dict[str, ArrayRole]:
        return {name: info.role for name, info in self.access.items()}

    def describe(self) -> str:
        lines = [f"in-core phase of {self.program.name}"]
        for name, info in self.access.items():
            lines.append(
                f"  {name}: role={info.role.value}, reduce_dim={info.reduce_dim}, "
                f"outer_dim={info.outer_dim}, full_dims={list(info.full_dims)}, "
                f"distributed_dims={list(info.distributed_dims)}"
            )
        lines.append(f"  global sum required: {self.needs_global_sum}")
        lines.append(f"  owner store required: {self.needs_owner_store}")
        lines.append(f"  flops per processor: {self.flops_per_proc:.3e}")
        return "\n".join(lines)


@dataclasses.dataclass
class ElementwisePhaseResult:
    """In-core-phase facts for an elementwise statement ``c = op(a, b)``.

    All arrays conform and share one distribution, so no communication is
    required; the only out-of-core decision left is the slabbing.
    """

    program: ProgramIR
    result: str
    operands: Tuple[str, str]
    op: str
    #: maximum local element count over processors (shared by all arrays)
    max_local_elements: int
    #: one scalar operation per local element
    flops_per_proc: float

    def describe(self) -> str:
        return (
            f"in-core phase of {self.program.name}: elementwise {self.op} of "
            f"{self.operands[0]} and {self.operands[1]} into {self.result}, "
            f"no communication, {self.flops_per_proc:.3e} flops per processor"
        )


@dataclasses.dataclass
class FusedElementwisePhase:
    """In-core-phase facts for a fused elementwise pair.

    The producer's result (``intermediate``) flows straight from its compute
    buffer into the consumer's per-slab work — it is never written to, nor
    read back from, its Local Array Files.  Both member analyses are kept so
    downstream phases can reason about either statement individually.
    """

    #: the two-statement mini program (producer first, consumer second)
    program: ProgramIR
    producer: ElementwisePhaseResult
    consumer: ElementwisePhaseResult
    #: the producer result the fusion keeps in memory
    intermediate: str

    @property
    def result(self) -> str:
        """The fused unit's materialized result: the consumer's result."""
        return self.consumer.result

    @property
    def max_local_elements(self) -> int:
        return max(self.producer.max_local_elements, self.consumer.max_local_elements)

    @property
    def flops_per_proc(self) -> float:
        return self.producer.flops_per_proc + self.consumer.flops_per_proc

    def describe(self) -> str:
        return (
            f"in-core phase of {self.program.name}: fused elementwise "
            f"{self.producer.op} into {self.intermediate} (never materialized) "
            f"feeding {self.consumer.op} into {self.consumer.result}, "
            f"no communication, {self.flops_per_proc:.3e} flops per processor"
        )


@dataclasses.dataclass
class TransposePhaseResult:
    """In-core-phase facts for a transpose statement ``dst = src^T``.

    With source and target identically column-block distributed, the columns
    of the target owned by one processor are built from rows spread over
    every processor's local array — an all-to-all exchange per streamed slab.
    """

    program: ProgramIR
    source: str
    target: str
    #: maximum local element count over processors
    max_local_elements: int
    #: True when the exchange crosses processors (nprocs > 1)
    needs_exchange: bool

    def describe(self) -> str:
        return (
            f"in-core phase of {self.program.name}: transpose of {self.source} "
            f"into {self.target}, all-to-all exchange required: {self.needs_exchange}"
        )


#: any statement kind's analysis result — what the downstream lowering phases
#: (strip-mining, cost model, codegen) dispatch on
PhaseResult = Union[
    InCorePhaseResult,
    ElementwisePhaseResult,
    FusedElementwisePhase,
    TransposePhaseResult,
]


def _analyze_elementwise(program: ProgramIR) -> ElementwisePhaseResult:
    statement: ElementwiseStatement = program.statement
    result = statement.result.array
    operands = tuple(ref.array for ref in statement.operands)
    shapes = {program.arrays[name].shape for name in (result, *operands)}
    if len(shapes) != 1:
        raise CompilationError(
            f"elementwise arrays must conform; found shapes {sorted(shapes)}"
        )
    result_desc = program.arrays[result]
    local = max(result_desc.local_size(r) for r in range(result_desc.nprocs))
    return ElementwisePhaseResult(
        program=program,
        result=result,
        operands=operands,
        op=statement.op,
        max_local_elements=local,
        flops_per_proc=float(local),
    )


def _analyze_transpose(program: ProgramIR) -> TransposePhaseResult:
    statement: TransposeStatement = program.statement
    source = statement.operand.array
    target = statement.result.array
    src_desc = program.arrays[source]
    dst_desc = program.arrays[target]
    if src_desc.ndim != 2 or src_desc.shape[0] != src_desc.shape[1]:
        raise CompilationError("the transpose lowering handles square two-dimensional arrays")
    if dst_desc.shape != src_desc.shape:
        raise CompilationError(
            f"transpose target {target!r} must conform with source {source!r}"
        )
    local = max(src_desc.local_size(r) for r in range(src_desc.nprocs))
    return TransposePhaseResult(
        program=program,
        source=source,
        target=target,
        max_local_elements=local,
        needs_exchange=program.nprocs() > 1,
    )


def _classify_operand(ref: ArrayRef, reduce_index: str) -> ArrayRole:
    if ref.full_range_dims() and ref.uses_index(reduce_index):
        return ArrayRole.STREAMED
    return ArrayRole.COEFFICIENT


def _single(values: Tuple[int, ...], what: str, ref: ArrayRef) -> Optional[int]:
    if not values:
        return None
    if len(values) > 1:
        raise CompilationError(
            f"{what} appears in more than one dimension of {ref.describe()}; "
            "the compiler handles one occurrence per reference"
        )
    return values[0]


def analyze_program(program: ProgramIR) -> PhaseResult:
    """Run the in-core phase on ``program`` and return its result.

    Dispatches on the statement kind: reduction statements produce the
    paper's :class:`InCorePhaseResult`; elementwise and transpose statements
    produce their own (simpler) phase results.  Every result feeds the same
    out-of-core pipeline (:func:`repro.core.pipeline.compile_program`).
    """
    if isinstance(program.statement, ElementwiseStatement):
        return _analyze_elementwise(program)
    if isinstance(program.statement, TransposeStatement):
        return _analyze_transpose(program)
    if not isinstance(program.statement, ReductionStatement):
        raise CompilationError(
            f"cannot analyze statement of type {type(program.statement).__name__}"
        )
    statement: ReductionStatement = program.statement
    reduce_loop = program.loop(statement.reduce_index)

    # The outer sequential loop that drives result columns: the sequential loop
    # whose index subscripts the result reference.
    outer_loop: Optional[Loop] = None
    for loop in program.sequential_loops():
        if statement.result.uses_index(loop.index):
            outer_loop = loop
            break
    if outer_loop is None:
        # A single FORALL with no sequential driver (e.g. a pure elementwise
        # statement); treat the reduction loop as the driver with one sweep.
        outer_loop = Loop(index="__once__", extent=1, kind=LoopKind.SEQUENTIAL)

    access: Dict[str, ArrayAccessInfo] = {}
    streamed_name: Optional[str] = None
    coefficient_name: Optional[str] = None

    def build_info(ref: ArrayRef, role: ArrayRole) -> ArrayAccessInfo:
        descriptor = program.arrays[ref.array]
        reduce_dim = _single(ref.dims_with_index(statement.reduce_index), "the reduction index", ref)
        outer_dim = _single(ref.dims_with_index(outer_loop.index), "the outer loop index", ref)
        return ArrayAccessInfo(
            name=ref.array,
            role=role,
            ref=ref,
            reduce_dim=reduce_dim,
            outer_dim=outer_dim,
            full_dims=ref.full_range_dims(),
            distributed_dims=descriptor.distributed_dims(),
            max_local_elements=max(descriptor.local_size(r) for r in range(descriptor.nprocs)),
        )

    access[statement.result.array] = build_info(statement.result, ArrayRole.RESULT)
    for ref in statement.operands:
        role = _classify_operand(ref, statement.reduce_index)
        info = build_info(ref, role)
        if role is ArrayRole.STREAMED:
            if streamed_name is not None and streamed_name != ref.array:
                raise CompilationError(
                    "the compiler handles one streamed operand per statement; "
                    f"found both {streamed_name!r} and {ref.array!r}"
                )
            streamed_name = ref.array
        else:
            coefficient_name = ref.array
        # A single-operand reduction references the same array in both roles;
        # the streamed-role view must win (its reduce_dim drives the
        # communication detection below), so never let a later
        # coefficient-role reference overwrite it.
        existing = access.get(ref.array)
        if existing is None or existing.role is not ArrayRole.STREAMED:
            access[ref.array] = info

    if streamed_name is None:
        raise CompilationError(
            "no streamed operand (full-range + reduction-index subscript) found; "
            "the out-of-core reorganization does not apply"
        )
    if coefficient_name is None:
        # Degenerate but legal: a reduction of a single streamed array.
        coefficient_name = streamed_name

    result_name = statement.result.array

    # Communication detection.
    streamed_info = access[streamed_name]
    needs_global_sum = (
        streamed_info.reduce_dim is not None
        and streamed_info.reduce_dim in streamed_info.distributed_dims
        and program.nprocs() > 1
    )
    result_info = access[result_name]
    needs_owner_store = (
        result_info.outer_dim is not None
        and result_info.outer_dim in result_info.distributed_dims
        and program.nprocs() > 1
    )

    # Work estimate: one multiply and one add per element of the streamed
    # array's local part, for every iteration of the outer loop.
    flops_per_proc = 2.0 * outer_loop.extent * streamed_info.max_local_elements

    return InCorePhaseResult(
        program=program,
        access=access,
        streamed=streamed_name,
        coefficient=coefficient_name,
        result=result_name,
        outer_loop=outer_loop,
        reduce_loop=reduce_loop,
        needs_global_sum=needs_global_sum,
        needs_owner_store=needs_owner_store,
        flops_per_proc=flops_per_proc,
    )
