"""The I/O cost model (Section 4.1 of the paper).

For a candidate slabbing of the streamed array the model predicts, per
processor, the two metrics the paper uses —

* ``T_fetch`` — the number of I/O requests, and
* ``T_data`` — the number of elements moved between disk and memory —

for every out-of-core array in the statement, and converts them (together
with the arithmetic and the global-sum traffic) into simulated seconds using
the machine parameters.

For the GAXPY example the formulas specialise exactly to equations 3–6 of
the paper:

====================  =============================  =========================
quantity              column-slab version            row-slab version
====================  =============================  =========================
``T_fetch(A)``        ``N^3 / (M P)``                ``N^2 / (M P)``
``T_data(A)``         ``N^3 / P``                    ``N^2 / P``
====================  =============================  =========================

because in the column-slab version the whole local part of ``A`` must be
re-fetched for each of the ``N`` result columns, while in the row-slab
version each slab of ``A`` is fetched exactly once (all the subcolumns it
contains are reused for every result column before the slab is evicted).
The price of the row-slab version is that the coefficient array ``B`` is
re-read once per slab of ``A`` — a second-order cost the model also accounts
for, and the reason the memory allocator of Table 2 gives ``A`` the larger
slab.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence

from repro.exceptions import CostModelError
from repro.core.analysis import (
    ElementwisePhaseResult,
    FusedElementwisePhase,
    InCorePhaseResult,
    TransposePhaseResult,
)
from repro.core.stripmine import SlabPlanEntry
from repro.machine.parameters import MachineParameters
from repro.runtime.slab import SlabbingStrategy

__all__ = ["ArrayIOCost", "PlanCost", "CostModel", "combine_plan_costs"]


@dataclasses.dataclass(frozen=True)
class ArrayIOCost:
    """Per-processor I/O cost of one array under one access plan."""

    array: str
    fetch_requests: float
    fetch_elements: float
    write_requests: float
    write_elements: float

    @property
    def total_requests(self) -> float:
        """The paper's ``T_fetch`` metric (reads + writes)."""
        return self.fetch_requests + self.write_requests

    @property
    def total_elements(self) -> float:
        """The paper's ``T_data`` metric (reads + writes)."""
        return self.fetch_elements + self.write_elements


@dataclasses.dataclass(frozen=True)
class PlanCost:
    """Predicted per-processor cost of one complete access plan."""

    strategy: Optional[SlabbingStrategy]
    arrays: Dict[str, ArrayIOCost]
    flops: float
    collective_count: float
    collective_elements_each: float
    itemsize: int
    nprocs: int
    io_time: float
    compute_time: float
    comm_time: float
    #: display label overriding the strategy name; ``strategy=None`` means
    #: "in-core" for single-statement costs but "mixed" for combined
    #: whole-program costs, so the combiner sets this explicitly
    label: Optional[str] = None

    @property
    def total_time(self) -> float:
        return self.io_time + self.compute_time + self.comm_time

    @property
    def io_requests(self) -> float:
        """Total I/O requests per processor (all arrays)."""
        return sum(cost.total_requests for cost in self.arrays.values())

    @property
    def io_elements(self) -> float:
        """Total elements moved per processor (all arrays)."""
        return sum(cost.total_elements for cost in self.arrays.values())

    @property
    def io_bytes(self) -> float:
        return self.io_elements * self.itemsize

    def dominant_array(self) -> str:
        """The array with the largest data volume (the paper: "determine which
        array requires the largest amount of I/O")."""
        return max(self.arrays.values(), key=lambda cost: cost.total_elements).array

    def describe(self) -> str:
        label = self.label or (self.strategy.value if self.strategy else "in-core")
        lines = [f"plan [{label}] on {self.nprocs} processors:"]
        for name, cost in self.arrays.items():
            lines.append(
                f"  {name}: T_fetch={cost.fetch_requests:.0f} req / {cost.fetch_elements:.3e} elems, "
                f"writes={cost.write_requests:.0f} req / {cost.write_elements:.3e} elems"
            )
        lines.append(
            f"  time: io={self.io_time:.2f}s compute={self.compute_time:.2f}s "
            f"comm={self.comm_time:.2f}s total={self.total_time:.2f}s"
        )
        return "\n".join(lines)


def _sum_array_costs(name: str, costs: Sequence[ArrayIOCost]) -> ArrayIOCost:
    return ArrayIOCost(
        array=name,
        fetch_requests=sum(c.fetch_requests for c in costs),
        fetch_elements=sum(c.fetch_elements for c in costs),
        write_requests=sum(c.write_requests for c in costs),
        write_elements=sum(c.write_elements for c in costs),
    )


def combine_plan_costs(costs: Sequence[PlanCost]) -> PlanCost:
    """Sum per-statement plan costs into one program-level :class:`PlanCost`.

    Statements of a whole program execute back to back, so times, flops and
    I/O counts add.  An array touched by several statements (an intermediate:
    written by its producer, read by its consumer) gets one merged
    :class:`ArrayIOCost` carrying the sum of both access patterns — charged
    once each, never regenerated.  ``strategy`` is the shared per-statement
    strategy when all agree and ``None`` for mixed programs; the collective
    payload is the count-weighted average.
    """
    costs = list(costs)
    if not costs:
        raise CostModelError("combine_plan_costs needs at least one statement cost")
    if len({cost.nprocs for cost in costs}) != 1:
        raise CostModelError("cannot combine plan costs across processor counts")
    if len({cost.itemsize for cost in costs}) != 1:
        raise CostModelError("cannot combine plan costs across item sizes")
    arrays: Dict[str, list] = {}
    for cost in costs:
        for name, array_cost in cost.arrays.items():
            arrays.setdefault(name, []).append(array_cost)
    merged = {name: _sum_array_costs(name, parts) for name, parts in arrays.items()}
    strategies = {cost.strategy for cost in costs}
    collective_count = sum(cost.collective_count for cost in costs)
    collective_elements = (
        sum(cost.collective_count * cost.collective_elements_each for cost in costs)
        / collective_count
        if collective_count
        else 0.0
    )
    shared = next(iter(strategies)) if len(strategies) == 1 else None
    return PlanCost(
        strategy=shared,
        arrays=merged,
        flops=sum(cost.flops for cost in costs),
        collective_count=collective_count,
        collective_elements_each=collective_elements,
        itemsize=costs[0].itemsize,
        nprocs=costs[0].nprocs,
        io_time=sum(cost.io_time for cost in costs),
        compute_time=sum(cost.compute_time for cost in costs),
        comm_time=sum(cost.comm_time for cost in costs),
        label=shared.value if shared is not None else "mixed",
    )


class CostModel:
    """Converts an access plan into the paper's I/O metrics and a time estimate."""

    def __init__(self, params: MachineParameters, nprocs: int) -> None:
        if nprocs < 1:
            raise CostModelError(f"nprocs must be positive, got {nprocs}")
        self.params = params
        self.nprocs = int(nprocs)

    # ------------------------------------------------------------------
    # raw count estimation
    # ------------------------------------------------------------------
    def _counts(
        self,
        analysis: InCorePhaseResult,
        strategy: SlabbingStrategy,
        entries: Dict[str, SlabPlanEntry],
    ) -> Dict[str, ArrayIOCost]:
        streamed = analysis.streamed
        coefficient = analysis.coefficient
        result = analysis.result
        for name in (streamed, coefficient, result):
            if name not in entries:
                raise CostModelError(f"no slab plan entry for array {name!r}")

        s_entry = entries[streamed]
        b_entry = entries[coefficient]
        c_entry = entries[result]
        s_local = float(s_entry.local_shape[0] * s_entry.local_shape[1])
        b_local = float(b_entry.local_shape[0] * b_entry.local_shape[1])
        c_local = float(c_entry.local_shape[0] * c_entry.local_shape[1])
        n_outer = float(analysis.outer_loop.extent)

        costs: Dict[str, ArrayIOCost] = {}
        if strategy is SlabbingStrategy.COLUMN:
            # Column slabs of the streamed array: the whole local part is
            # re-fetched for every result column (equations 3 and 4).
            streamed_cost = ArrayIOCost(
                array=streamed,
                fetch_requests=n_outer * s_entry.num_slabs,
                fetch_elements=n_outer * s_local,
                write_requests=0.0,
                write_elements=0.0,
            )
            coefficient_cost = ArrayIOCost(
                array=coefficient,
                fetch_requests=float(b_entry.num_slabs),
                fetch_elements=b_local,
                write_requests=0.0,
                write_elements=0.0,
            )
        elif strategy is SlabbingStrategy.ROW:
            # Row slabs of the streamed array: each slab is fetched exactly
            # once (equations 5 and 6); the coefficient array is re-read once
            # per streamed slab because the loops are reordered around the
            # slab loop.
            streamed_cost = ArrayIOCost(
                array=streamed,
                fetch_requests=float(s_entry.num_slabs),
                fetch_elements=s_local,
                write_requests=0.0,
                write_elements=0.0,
            )
            coefficient_cost = ArrayIOCost(
                array=coefficient,
                fetch_requests=float(s_entry.num_slabs * b_entry.num_slabs),
                fetch_elements=float(s_entry.num_slabs) * b_local,
                write_requests=0.0,
                write_elements=0.0,
            )
        else:  # pragma: no cover - guarded by the public methods
            raise CostModelError(f"unsupported strategy {strategy!r}")

        if coefficient == streamed:
            # Degenerate single-operand statement: the array is both streamed
            # and re-read as the coefficient, so its entry must carry the sum
            # of both access patterns (dropping the coefficient re-read here
            # would undercharge the plan).
            costs[streamed] = ArrayIOCost(
                array=streamed,
                fetch_requests=streamed_cost.fetch_requests + coefficient_cost.fetch_requests,
                fetch_elements=streamed_cost.fetch_elements + coefficient_cost.fetch_elements,
                write_requests=0.0,
                write_elements=0.0,
            )
        else:
            costs[streamed] = streamed_cost
            costs[coefficient] = coefficient_cost

        costs[result] = ArrayIOCost(
            array=result,
            fetch_requests=0.0,
            fetch_elements=0.0,
            write_requests=float(c_entry.num_slabs),
            write_elements=c_local,
        )
        return costs

    # ------------------------------------------------------------------
    # public estimation entry points
    # ------------------------------------------------------------------
    def estimate(
        self,
        analysis: InCorePhaseResult,
        strategy: SlabbingStrategy | str,
        entries: Dict[str, SlabPlanEntry],
    ) -> PlanCost:
        """Estimate the cost of running the statement with the given slabbing."""
        strategy = SlabbingStrategy.from_name(strategy)
        costs = self._counts(analysis, strategy, entries)
        itemsize = analysis.program.arrays[analysis.streamed].itemsize

        # Collective traffic.
        result_desc = analysis.program.arrays[analysis.result]
        result_info = analysis.access[analysis.result]
        full_dims = result_info.full_dims
        column_length = float(result_desc.shape[full_dims[0]]) if full_dims else 1.0
        n_outer = float(analysis.outer_loop.extent)
        if not analysis.needs_global_sum:
            collective_count = 0.0
            collective_elements = 0.0
        elif strategy is SlabbingStrategy.COLUMN:
            collective_count = n_outer
            collective_elements = column_length
        else:
            slabs = entries[analysis.streamed].num_slabs
            collective_count = n_outer * slabs
            collective_elements = column_length / slabs if slabs else column_length

        return self._finalize(strategy, costs, analysis.flops_per_proc, collective_count,
                              collective_elements, itemsize)

    def estimate_elementwise(
        self,
        analysis: ElementwisePhaseResult,
        strategy: SlabbingStrategy | str,
        entries: Dict[str, SlabPlanEntry],
    ) -> PlanCost:
        """Cost of ``c = op(a, b)``: one pass over each operand, one write pass.

        The I/O volume is independent of the slabbing dimension (each array
        is touched exactly once); only the request counts depend on the slab
        size.  No communication is required when all arrays share one
        distribution.
        """
        strategy = SlabbingStrategy.from_name(strategy)
        costs: Dict[str, ArrayIOCost] = {}
        for name in analysis.operands:
            entry = entries[name]
            local = float(entry.local_shape[0] * entry.local_shape[1])
            costs[name] = ArrayIOCost(name, float(entry.num_slabs), local, 0.0, 0.0)
        result_entry = entries[analysis.result]
        result_local = float(result_entry.local_shape[0] * result_entry.local_shape[1])
        costs[analysis.result] = ArrayIOCost(
            analysis.result, 0.0, 0.0, float(result_entry.num_slabs), result_local
        )
        itemsize = analysis.program.arrays[analysis.result].itemsize
        return self._finalize(strategy, costs, analysis.flops_per_proc, 0.0, 0.0, itemsize)

    def estimate_fused(
        self,
        analysis: FusedElementwisePhase,
        strategy: SlabbingStrategy | str,
        entries: Dict[str, SlabPlanEntry],
    ) -> PlanCost:
        """Cost of a fused elementwise pair: the intermediate moves zero bytes.

        The producer's operands and the consumer's non-intermediate operand
        are each read once; the final result is written once; the
        intermediate — written and read back by the unfused plan — carries
        *no* :class:`ArrayIOCost` entry at all, which is exactly the saving
        fusion buys (a full write+read round-trip plus its seeks).  An array
        read by both statements is charged for both passes.
        """
        strategy = SlabbingStrategy.from_name(strategy)
        reads: Dict[str, list] = {}
        for operand in analysis.producer.operands:
            entry = entries[operand]
            local = float(entry.local_shape[0] * entry.local_shape[1])
            reads.setdefault(operand, []).append(
                ArrayIOCost(operand, float(entry.num_slabs), local, 0.0, 0.0)
            )
        for operand in analysis.consumer.operands:
            if operand == analysis.intermediate:
                continue  # never materialized: zero requests, zero elements
            entry = entries[operand]
            local = float(entry.local_shape[0] * entry.local_shape[1])
            reads.setdefault(operand, []).append(
                ArrayIOCost(operand, float(entry.num_slabs), local, 0.0, 0.0)
            )
        costs = {name: _sum_array_costs(name, parts) for name, parts in reads.items()}
        result = analysis.result
        result_entry = entries[result]
        result_local = float(result_entry.local_shape[0] * result_entry.local_shape[1])
        costs[result] = ArrayIOCost(
            result, 0.0, 0.0, float(result_entry.num_slabs), result_local
        )
        itemsize = analysis.program.arrays[result].itemsize
        cost = self._finalize(strategy, costs, analysis.flops_per_proc, 0.0, 0.0, itemsize)
        return dataclasses.replace(cost, label=f"fused {strategy.value}-slab")

    def estimate_transpose(
        self,
        analysis: TransposePhaseResult,
        entries: Dict[str, SlabPlanEntry],
    ) -> PlanCost:
        """Cost of ``dst = src^T``: one read pass, one all-to-all per slab, one write pass.

        The exchange is charged as every processor swapping ``1/P`` of each
        streamed slab with every peer; since each processor's slab loop
        triggers one exchange, the machine performs ``P x num_slabs``
        collectives in total.
        """
        src_entry = entries[analysis.source]
        dst_entry = entries[analysis.target]
        src_local = float(src_entry.local_shape[0] * src_entry.local_shape[1])
        dst_local = float(dst_entry.local_shape[0] * dst_entry.local_shape[1])
        costs = {
            analysis.source: ArrayIOCost(
                analysis.source, float(src_entry.num_slabs), src_local, 0.0, 0.0
            ),
            analysis.target: ArrayIOCost(
                analysis.target, 0.0, 0.0, float(dst_entry.num_slabs), dst_local
            ),
        }
        itemsize = analysis.program.arrays[analysis.source].itemsize
        disk = self.params.disk
        io_time = disk.read_time(
            src_local * itemsize, int(src_entry.num_slabs), contention=self.nprocs
        )
        io_time += disk.write_time(
            dst_local * itemsize, int(dst_entry.num_slabs), contention=self.nprocs
        )
        # Averaged over the slab loop: the executor exchanges the *actual*
        # slab extent each iteration, so the per-pair payload must telescope
        # to src_local / P in total, not num_slabs x nominal_slab / P (which
        # overcounts whenever the last slab is partial).
        elements_per_pair = src_local / max(src_entry.num_slabs * self.nprocs, 1)
        comm_time = 0.0
        collective_count = 0.0
        if analysis.needs_exchange:
            collective_count = float(src_entry.num_slabs * self.nprocs)
            per_exchange = (self.nprocs - 1) * self.params.network.point_to_point_time(
                int(elements_per_pair * itemsize)
            )
            comm_time = collective_count * per_exchange
        return PlanCost(
            strategy=SlabbingStrategy.COLUMN,
            arrays=costs,
            flops=0.0,
            collective_count=collective_count,
            collective_elements_each=elements_per_pair,
            itemsize=itemsize,
            nprocs=self.nprocs,
            io_time=io_time,
            compute_time=0.0,
            comm_time=comm_time,
        )

    def estimate_incore(self, analysis: InCorePhaseResult) -> PlanCost:
        """Cost of the in-core baseline: read each operand once, write the result once."""
        itemsize = analysis.program.arrays[analysis.streamed].itemsize
        costs: Dict[str, ArrayIOCost] = {}
        for name, info in analysis.access.items():
            descriptor = analysis.program.arrays[name]
            local = float(max(descriptor.local_size(r) for r in range(descriptor.nprocs)))
            if info.role.value == "result":
                costs[name] = ArrayIOCost(name, 0.0, 0.0, 1.0, local)
            else:
                costs[name] = ArrayIOCost(name, 1.0, local, 0.0, 0.0)
        result_desc = analysis.program.arrays[analysis.result]
        result_info = analysis.access[analysis.result]
        full_dims = result_info.full_dims
        column_length = float(result_desc.shape[full_dims[0]]) if full_dims else 1.0
        collective_count = float(analysis.outer_loop.extent) if analysis.needs_global_sum else 0.0
        return self._finalize(None, costs, analysis.flops_per_proc, collective_count,
                              column_length, itemsize)

    # ------------------------------------------------------------------
    def _finalize(
        self,
        strategy: Optional[SlabbingStrategy],
        costs: Dict[str, ArrayIOCost],
        flops: float,
        collective_count: float,
        collective_elements_each: float,
        itemsize: int,
    ) -> PlanCost:
        disk = self.params.disk
        read_bytes = sum(c.fetch_elements for c in costs.values()) * itemsize
        read_requests = sum(c.fetch_requests for c in costs.values())
        write_bytes = sum(c.write_elements for c in costs.values()) * itemsize
        write_requests = sum(c.write_requests for c in costs.values())
        io_time = disk.read_time(read_bytes, int(round(read_requests)), contention=self.nprocs)
        io_time += disk.write_time(write_bytes, int(round(write_requests)), contention=self.nprocs)

        compute_time = self.params.processor.compute_time(flops)

        payload = collective_elements_each * itemsize
        comm_time = 0.0
        if collective_count and self.nprocs > 1:
            per_collective = self.params.network.reduce_time(
                payload, self.nprocs, nelements=collective_elements_each
            )
            comm_time = collective_count * per_collective

        return PlanCost(
            strategy=strategy,
            arrays=costs,
            flops=flops,
            collective_count=collective_count,
            collective_elements_each=collective_elements_each,
            itemsize=itemsize,
            nprocs=self.nprocs,
            io_time=io_time,
            compute_time=compute_time,
            comm_time=comm_time,
        )
