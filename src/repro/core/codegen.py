"""Code generation: from an access plan to a node + MP + I/O program.

The generated reduction programs mirror the paper's Figure 9 (column-slab
version) and Figure 12 (row-slab version): the loop structure, the placement
of the I/O calls, the global sum and the owner store are the same; only the
syntax is symbolic instead of Fortran.  Elementwise and transpose statements
generate the corresponding single-pass slab loops (with an all-to-all
exchange op for the transpose).

The static operation totals of the generated program are, by construction,
the counts the cost model predicts — a consistency the test suite checks.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence, Tuple, TYPE_CHECKING

from repro.exceptions import CompilationError
from repro.core.analysis import (
    ElementwisePhaseResult,
    FusedElementwisePhase,
    InCorePhaseResult,
    PhaseResult,
    TransposePhaseResult,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.ir import ProgramIR
    from repro.core.pipeline import CompiledProgram
from repro.core.node_program import (
    AllToAllOp,
    ComputeOp,
    GlobalSumOp,
    IOReadOp,
    IOWriteOp,
    LoopOp,
    NodeProgram,
    OwnerStoreOp,
)
from repro.core.reorganize import AccessPlan
from repro.runtime.slab import SlabbingStrategy

__all__ = ["generate_node_program", "ScheduleStep", "ProgramSchedule", "generate_program_schedule"]


def _result_column_length(analysis: InCorePhaseResult) -> int:
    result_desc = analysis.program.arrays[analysis.result]
    full_dims = analysis.access[analysis.result].full_dims
    return int(result_desc.shape[full_dims[0]]) if full_dims else 1


def _generate_elementwise(analysis: ElementwisePhaseResult, plan: AccessPlan) -> NodeProgram:
    """One fused slab loop: read both operand slabs, compute, write the result slab."""
    lhs, rhs = analysis.operands
    lhs_entry = plan.entry(lhs)
    rhs_entry = plan.entry(rhs)
    result_entry = plan.entry(analysis.result)
    flops_per_slab = float(result_entry.slab_elements)
    body = LoopOp(
        "s",
        result_entry.num_slabs,
        [
            IOReadOp(lhs, "slab", float(lhs_entry.slab_elements)),
            IOReadOp(rhs, "slab", float(rhs_entry.slab_elements)),
            ComputeOp(
                f"{analysis.op} of {lhs} and {rhs} slabs",
                flops_per_slab,
                per_slab_of=analysis.result,
            ),
            IOWriteOp(analysis.result, "slab", float(result_entry.slab_elements)),
        ],
        comment="slabs of the local arrays",
        slabs_of=analysis.result,
    )
    return NodeProgram(
        analysis.program.name, f"{plan.strategy.value}-slab elementwise", [body]
    )


def _generate_fused(analysis: FusedElementwisePhase, plan: AccessPlan) -> NodeProgram:
    """One slab loop running both statements' per-slab work back to back.

    The producer's result slab stays in its compute buffer and feeds the
    consumer's compute op directly: the loop body carries *no* I/O op for the
    intermediate, so the generated program's static operation totals — and
    therefore the verifier's symbolic ledger — charge it zero requests and
    zero bytes, matching :meth:`CostModel.estimate_fused`.
    """
    p, c = analysis.producer, analysis.consumer
    p_lhs, p_rhs = p.operands
    other = tuple(name for name in c.operands if name != analysis.intermediate)
    result_entry = plan.entry(analysis.result)
    body_ops = [
        IOReadOp(p_lhs, "slab", float(plan.entry(p_lhs).slab_elements)),
        IOReadOp(p_rhs, "slab", float(plan.entry(p_rhs).slab_elements)),
        ComputeOp(
            f"{p.op} of {p_lhs} and {p_rhs} slabs into resident {analysis.intermediate}",
            float(plan.entry(analysis.intermediate).slab_elements),
            per_slab_of=analysis.intermediate,
        ),
    ]
    for name in other:
        body_ops.append(IOReadOp(name, "slab", float(plan.entry(name).slab_elements)))
    body_ops.append(
        ComputeOp(
            f"{c.op} of {' and '.join(c.operands)} slabs",
            float(result_entry.slab_elements),
            per_slab_of=analysis.result,
        )
    )
    body_ops.append(IOWriteOp(analysis.result, "slab", float(result_entry.slab_elements)))
    body = LoopOp(
        "s",
        result_entry.num_slabs,
        body_ops,
        comment=f"slabs of the local arrays ({analysis.intermediate} stays resident)",
        slabs_of=analysis.result,
    )
    return NodeProgram(
        analysis.program.name, f"fused {plan.strategy.value}-slab elementwise", [body]
    )


def _generate_transpose(analysis: TransposePhaseResult, plan: AccessPlan) -> NodeProgram:
    """Stream source slabs through an all-to-all exchange, then write target slabs."""
    src_entry = plan.entry(analysis.source)
    dst_entry = plan.entry(analysis.target)
    nprocs = analysis.program.nprocs()
    exchange = AllToAllOp(
        elements_per_pair=float(src_entry.slab_elements) / max(nprocs, 1),
        target=f"columns of {analysis.target}",
        per_slab_of=analysis.source,
    )
    body = LoopOp(
        "s",
        src_entry.num_slabs,
        [IOReadOp(analysis.source, "slab", float(src_entry.slab_elements)), exchange],
        comment=f"slabs of {analysis.source}",
        slabs_of=analysis.source,
    )
    flush = LoopOp(
        "w",
        dst_entry.num_slabs,
        [IOWriteOp(analysis.target, "slab", float(dst_entry.slab_elements))],
        comment=f"write the exchanged slabs of {analysis.target}",
        slabs_of=analysis.target,
    )
    return NodeProgram(analysis.program.name, "column-slab transpose", [body, flush])


@dataclasses.dataclass(frozen=True)
class ScheduleStep:
    """One statement of a whole-program schedule.

    ``laf_inputs`` names the operand arrays this statement reads straight from
    the Local Array Files a *previous* step produced — the inter-statement
    reuse that makes an intermediate's I/O get charged exactly once (one write
    pass by its producer, one read pass here, no regeneration).
    ``fresh_inputs`` are operands staged from the program's external inputs.
    """

    index: int
    statement_name: str
    node_program: NodeProgram
    writes: str
    laf_inputs: Tuple[str, ...]
    fresh_inputs: Tuple[str, ...]
    #: intermediates this step fuses away — consumed in their producer's
    #: compute buffer, never written to (or read back from) their LAFs
    fused: Tuple[str, ...] = ()

    def pretty(self) -> str:
        lines = [f"! step {self.index + 1}: {self.statement_name}"]
        for name in self.laf_inputs:
            lines.append(f"!   operand {name}: reuse LAF written by an earlier step")
        for name in self.fresh_inputs:
            lines.append(f"!   operand {name}: program input")
        for name in self.fused:
            lines.append(f"!   intermediate {name}: fused away (never materialized)")
        lines.append(self.node_program.pretty())
        return "\n".join(lines)


@dataclasses.dataclass(frozen=True)
class ProgramSchedule:
    """The generated whole-program schedule: one node program per statement."""

    name: str
    steps: Tuple[ScheduleStep, ...]
    intermediates: Tuple[str, ...]

    def step(self, index: int) -> ScheduleStep:
        return self.steps[index]

    def pretty(self) -> str:
        lines = [
            f"! whole-program schedule for {self.name} "
            f"({len(self.steps)} statements)"
        ]
        if self.intermediates:
            lines.append(
                "! intermediates kept in their Local Array Files between "
                f"statements: {', '.join(self.intermediates)}"
            )
        for step in self.steps:
            lines.append(step.pretty())
        return "\n".join(lines)

    def operation_totals(self) -> dict:
        """Statically counted operations of the whole schedule (summed steps)."""
        totals: dict = {}
        for step in self.steps:
            for key, value in step.node_program.operation_totals().items():
                totals[key] = totals.get(key, 0.0) + value
        return totals


def generate_program_schedule(
    program: "ProgramIR", compiled_statements: Sequence["CompiledProgram"]
) -> ProgramSchedule:
    """Assemble the compiled units' node programs into a :class:`ProgramSchedule`.

    A fused unit (its analysis is a :class:`FusedElementwisePhase`) covers two
    consecutive IR statements with one node program, so there may be fewer
    steps than statements; every statement must still be covered exactly once.
    """
    covered = sum(
        2 if isinstance(unit.analysis, FusedElementwisePhase) else 1
        for unit in compiled_statements
    )
    if covered != len(program.statements):
        raise CompilationError(
            f"{len(program.statements)} statements but the "
            f"{len(compiled_statements)} compiled units cover {covered}"
        )
    produced: set = set()
    steps = []
    cursor = 0
    for index, compiled in enumerate(compiled_statements):
        fused = isinstance(compiled.analysis, FusedElementwisePhase)
        span = program.statements[cursor : cursor + (2 if fused else 1)]
        cursor += len(span)
        fused_away = (compiled.analysis.intermediate,) if fused else ()
        operand_names = []
        for statement in span:
            for ref in statement.operands:
                if ref.array not in operand_names and ref.array not in fused_away:
                    operand_names.append(ref.array)
        laf_inputs = tuple(n for n in operand_names if n in produced)
        fresh_inputs = tuple(n for n in operand_names if n not in produced)
        steps.append(
            ScheduleStep(
                index=index,
                statement_name="; ".join(s.describe() for s in span),
                node_program=compiled.node_program,
                writes=span[-1].result.array,
                laf_inputs=laf_inputs,
                fresh_inputs=fresh_inputs,
                fused=fused_away,
            )
        )
        produced.add(span[-1].result.array)
    return ProgramSchedule(
        name=program.name,
        steps=tuple(steps),
        intermediates=program.intermediate_arrays(),
    )


def generate_node_program(analysis: PhaseResult, plan: AccessPlan) -> NodeProgram:
    """Generate the node program implementing ``plan`` for the analyzed statement."""
    if isinstance(analysis, ElementwisePhaseResult):
        return _generate_elementwise(analysis, plan)
    if isinstance(analysis, FusedElementwisePhase):
        return _generate_fused(analysis, plan)
    if isinstance(analysis, TransposePhaseResult):
        return _generate_transpose(analysis, plan)
    if not isinstance(analysis, InCorePhaseResult):
        raise CompilationError(
            f"cannot generate code for analysis of type {type(analysis).__name__}"
        )
    streamed = analysis.streamed
    coefficient = analysis.coefficient
    result = analysis.result
    s_entry = plan.entry(streamed)
    b_entry = plan.entry(coefficient)
    c_entry = plan.entry(result)

    column_length = _result_column_length(analysis)
    cols_per_b_slab = b_entry.lines_per_slab
    flops_per_slab = 2.0 * s_entry.slab_elements
    c_slab_elements = float(c_entry.slab_elements)

    if plan.strategy is SlabbingStrategy.COLUMN:
        # Figure 9: for every column of the coefficient array, sweep all slabs
        # of the streamed array, then reduce and store the result column.
        inner_a = LoopOp(
            "n",
            s_entry.num_slabs,
            [
                IOReadOp(streamed, "slab", float(s_entry.slab_elements)),
                ComputeOp(
                    f"partial products of {streamed} slab",
                    flops_per_slab,
                    per_slab_of=streamed,
                ),
            ],
            comment=f"all slabs of {streamed}",
            slabs_of=streamed,
        )
        if streamed == coefficient:
            # Degenerate single-operand statement: the coefficient columns of
            # ``a`` are distributed with the streamed array, so each rank holds
            # only n/P of them and the conformal two-operand nest (coefficient
            # slabs around local columns) would visit a mere fraction of the
            # result.  The executable schedule stages the local part once and
            # then walks ALL result columns, broadcasting each coefficient
            # column from its owner — so the per-column loop runs over the
            # full outer extent, matching the cost model's re-read charges.
            stage = LoopOp(
                "l",
                b_entry.num_slabs,
                [IOReadOp(coefficient, "slab", float(b_entry.slab_elements))],
                comment=f"stage local slabs of {coefficient}",
                slabs_of=coefficient,
            )
            per_column = LoopOp(
                "m",
                int(analysis.outer_loop.extent),
                [
                    inner_a,
                    GlobalSumOp(float(column_length), target=f"column of {result}"),
                    OwnerStoreOp(result, "column"),
                ],
                comment=f"all result columns of {result} (broadcast schedule)",
            )
            body_ops = [stage, per_column]
        else:
            per_column = LoopOp(
                "m",
                cols_per_b_slab,
                [
                    inner_a,
                    GlobalSumOp(float(column_length), target=f"column of {result}"),
                    OwnerStoreOp(result, "column"),
                ],
                comment=f"columns in the {coefficient} slab",
                lines_of=coefficient,
            )
            body_ops = [
                LoopOp(
                    "l",
                    b_entry.num_slabs,
                    [IOReadOp(coefficient, "slab", float(b_entry.slab_elements)), per_column],
                    comment=f"slabs of {coefficient}",
                    slabs_of=coefficient,
                )
            ]
        flush = LoopOp(
            "w",
            c_entry.num_slabs,
            [IOWriteOp(result, "slab", c_slab_elements)],
            comment=f"flush ICLAs of {result} (performed as each fills)",
            slabs_of=result,
        )
        return NodeProgram(analysis.program.name, "column-slab", [*body_ops, flush])

    if plan.strategy is SlabbingStrategy.ROW:
        # Figure 12: fetch each row slab of the streamed array once, re-stream
        # the coefficient array against it, reduce subcolumns of the result.
        subcolumn = s_entry.lines_per_slab
        per_column = LoopOp(
            "m",
            cols_per_b_slab,
            [
                ComputeOp(
                    f"partial products of {streamed} slab",
                    flops_per_slab,
                    per_slab_of=streamed,
                ),
                GlobalSumOp(
                    float(subcolumn),
                    target=f"subcolumn of {result}",
                    per_line_of=streamed,
                ),
                OwnerStoreOp(result, "subcolumn"),
            ],
            comment=f"columns in the {coefficient} slab",
            lines_of=coefficient,
        )
        inner_b = LoopOp(
            "n",
            b_entry.num_slabs,
            [IOReadOp(coefficient, "slab", float(b_entry.slab_elements)), per_column],
            comment=f"slabs of {coefficient}",
            slabs_of=coefficient,
        )
        body = LoopOp(
            "l",
            s_entry.num_slabs,
            [IOReadOp(streamed, "slab", float(s_entry.slab_elements)), inner_b],
            comment=f"row slabs of {streamed}",
            slabs_of=streamed,
        )
        flush = LoopOp(
            "w",
            c_entry.num_slabs,
            [IOWriteOp(result, "slab", c_slab_elements)],
            comment=f"flush ICLAs of {result} (performed as each fills)",
            slabs_of=result,
        )
        return NodeProgram(analysis.program.name, "row-slab", [body, flush])

    raise CompilationError(f"cannot generate code for strategy {plan.strategy!r}")
