"""Table 2: selecting slab sizes for multiple out-of-core arrays.

The paper's Table 2 runs the row-slab GAXPY program on 2K x 2K arrays over
16 processors and varies the slab sizes of arrays ``A`` and ``B``
independently:

* experiment 1 — the slab of ``A`` is fixed at 256 lines and the slab of
  ``B`` grows from 256 to 2048 lines;
* experiment 2 — the slab of ``B`` is fixed at 256 lines and the slab of
  ``A`` grows from 256 to 2048 lines.

(One "line" is one row of the local part of ``A`` or one column of the local
part of ``B``; with a 2K x 2K array on 16 processors both are 128 elements,
so equal line counts mean equal memory.)  The paper's conclusion: for the
same total memory, giving the extra memory to ``A`` (experiment 2) beats
giving it to ``B`` (experiment 1), so the compiler should allocate memory in
proportion to how much I/O each array generates rather than equally.

``run_table2`` regenerates both experiments and reports, for each row, the
slab sizes, the total memory and the predicted/executed time.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.analysis.report import format_table
from repro.api import Session, WorkloadPoint
from repro.config import ExecutionMode
from repro.machine.parameters import MachineParameters, touchstone_delta

__all__ = ["Table2Config", "run_table2"]

#: The times published in the paper's Table 2 (seconds), for EXPERIMENTS.md.
PAPER_TABLE2 = {
    ("vary_b", 256): 826.94, ("vary_b", 512): 548.13,
    ("vary_b", 1024): 507.01, ("vary_b", 2048): 493.04,
    ("vary_a", 256): 826.94, ("vary_a", 512): 510.02,
    ("vary_a", 1024): 492.87, ("vary_a", 2048): 452.29,
}


@dataclasses.dataclass
class Table2Config:
    """Configuration of the Table 2 sweep (defaults = the paper's setup)."""

    n: int = 2048
    nprocs: int = 16
    fixed_lines: int = 256
    varied_lines: Sequence[int] = (256, 512, 1024, 2048)
    dtype: str = "float32"
    mode: ExecutionMode | str = ExecutionMode.ESTIMATE

    def scaled_down(self) -> "Table2Config":
        return Table2Config(
            n=64,
            nprocs=4,
            fixed_lines=4,
            varied_lines=(4, 8, 16),
            dtype="float32",
            mode=ExecutionMode.EXECUTE,
        )

    def lines_to_elements(self, array: str, lines: int) -> int:
        """Convert a line count into elements of the named array's slab.

        One line of ``a`` is one row of its local part (``n / nprocs``
        columns wide... i.e. ``n / nprocs`` elements); one line of ``b`` is
        one column of its local part (``n / nprocs`` elements tall).
        """
        per_line = max(self.n // self.nprocs, 1)
        return int(lines) * per_line


def run_table2(
    config: Optional[Table2Config] = None,
    params: Optional[MachineParameters] = None,
) -> Dict[str, object]:
    """Run the Table 2 sweep.

    Returns a dictionary with ``rows`` (one record per configuration, fields
    ``experiment``, ``slab_a_lines``, ``slab_b_lines``, ``total_lines``,
    ``time``), the formatted ``table``, and ``best`` per experiment.
    """
    config = config or Table2Config()
    params = params or touchstone_delta()
    session = Session(params=params)

    rows: List[Dict[str, float | str]] = []

    def evaluate(slab_a_lines: int, slab_b_lines: int, experiment: str) -> Dict[str, float | str]:
        slab_elements = {
            "a": config.lines_to_elements("a", slab_a_lines),
            "b": config.lines_to_elements("b", slab_b_lines),
        }
        point = WorkloadPoint(
            workload="gaxpy",
            n=config.n,
            nprocs=config.nprocs,
            version="row",
            slab_elements=slab_elements,
            dtype=config.dtype,
        )
        record = session.run(point, mode=config.mode)
        return {
            "experiment": experiment,
            "slab_a_lines": float(slab_a_lines),
            "slab_b_lines": float(slab_b_lines),
            "total_lines": float(slab_a_lines + slab_b_lines),
            "time": record.simulated_seconds,
            "io_time": record.io_time,
            "io_requests_per_proc": record.io_requests_per_proc,
        }

    # Experiment 1: slab A fixed, slab B varies.
    for lines in config.varied_lines:
        rows.append(evaluate(config.fixed_lines, lines, "vary_b"))
    # Experiment 2: slab B fixed, slab A varies.
    for lines in config.varied_lines:
        rows.append(evaluate(lines, config.fixed_lines, "vary_a"))

    header = ["experiment", "slab A", "slab B", "total memory (lines)", "time (s)"]
    table_rows = [
        [r["experiment"], f"{r['slab_a_lines']:.0f}", f"{r['slab_b_lines']:.0f}",
         f"{r['total_lines']:.0f}", f"{r['time']:.2f}"]
        for r in rows
    ]
    table = format_table(
        header,
        table_rows,
        title=(
            f"Table 2: row-slab GAXPY, {config.n}x{config.n} reals, "
            f"{config.nprocs} processors, varying slab sizes"
        ),
    )
    best = {
        experiment: min(
            (r for r in rows if r["experiment"] == experiment), key=lambda r: r["time"]
        )
        for experiment in ("vary_b", "vary_a")
    }
    return {
        "rows": rows,
        "table": table,
        "best": best,
        "config": config,
        "paper": PAPER_TABLE2 if config.n == 2048 else None,
    }
