"""Experiment harness: one module per table / figure of the paper.

* :mod:`repro.experiments.figure10` — effect of slab-size variation on the
  column-slab (naive) out-of-core GAXPY program (Figure 10).
* :mod:`repro.experiments.table1` — column-slab vs. row-slab vs. in-core for
  1K x 1K matrices on 4–64 processors (Table 1).
* :mod:`repro.experiments.table2` — slab-size selection for multiple arrays,
  2K x 2K matrices on 16 processors (Table 2).
* :mod:`repro.experiments.ablations` — additional studies: equal vs.
  proportional vs. searched memory allocation, per-slab vs. per-chunk I/O
  accounting (the value of reorganizing the on-disk storage order), and
  prefetch overlap.

Every experiment has a paper-scale configuration (the defaults, evaluated
with the analytic estimator) and a scaled-down configuration used by the
integration tests and the ``execute`` mode demonstrations.
"""

from repro.experiments.figure10 import Figure10Config, run_figure10
from repro.experiments.table1 import Table1Config, run_table1
from repro.experiments.table2 import Table2Config, run_table2
from repro.experiments.ablations import (
    MemoryAllocationAblationConfig,
    run_memory_allocation_ablation,
    StorageOrderAblationConfig,
    run_storage_order_ablation,
    PrefetchAblationConfig,
    run_prefetch_ablation,
)

__all__ = [
    "Figure10Config",
    "run_figure10",
    "Table1Config",
    "run_table1",
    "Table2Config",
    "run_table2",
    "MemoryAllocationAblationConfig",
    "run_memory_allocation_ablation",
    "StorageOrderAblationConfig",
    "run_storage_order_ablation",
    "PrefetchAblationConfig",
    "run_prefetch_ablation",
]
