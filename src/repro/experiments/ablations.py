"""Ablation studies for the design choices the paper discusses qualitatively.

Three ablations are provided:

* **Memory allocation policy** (Section 4.2.1): divide the node memory budget
  between the competing arrays equally, proportionally to predicted traffic,
  or by a search over split fractions, and compare the predicted time of the
  resulting plans.
* **On-disk storage order** (implicit in the paper's "reorganize data storage
  on disks"): compare per-slab I/O accounting (storage order matches the
  slabbing, each slab is one contiguous request) with per-chunk accounting
  (storage left in the arrival order, one request per partial column/row).
* **Prefetch overlap** (the "prefetching/caching strategies" knob of the
  compilation model): how much of the row-slab version's remaining I/O time
  can be hidden behind computation.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.analysis.report import format_table
from repro.api import Session, WorkloadPoint
from repro.core.analysis import analyze_program
from repro.core.ir import build_gaxpy_ir
from repro.core.memory_alloc import (
    AllocationPolicy,
    EqualAllocation,
    ProportionalAllocation,
    SearchAllocation,
)
from repro.core.reorganize import reorganize
from repro.machine.parameters import MachineParameters, touchstone_delta
from repro.runtime.slab import row_slabs

__all__ = [
    "MemoryAllocationAblationConfig",
    "run_memory_allocation_ablation",
    "StorageOrderAblationConfig",
    "run_storage_order_ablation",
    "PrefetchAblationConfig",
    "run_prefetch_ablation",
]


# ---------------------------------------------------------------------------
# 1. memory allocation policies
# ---------------------------------------------------------------------------
@dataclasses.dataclass
class MemoryAllocationAblationConfig:
    n: int = 2048
    nprocs: int = 16
    memory_budget_bytes: int = 1024 * 1024   # 1 MB of ICLA space per node
    dtype: str = "float32"


def run_memory_allocation_ablation(
    config: Optional[MemoryAllocationAblationConfig] = None,
    params: Optional[MachineParameters] = None,
) -> Dict[str, object]:
    """Compare allocation policies at a fixed memory budget."""
    config = config or MemoryAllocationAblationConfig()
    params = params or touchstone_delta()
    policies: Sequence[AllocationPolicy] = (
        EqualAllocation(),
        ProportionalAllocation(),
        SearchAllocation(),
    )
    program = build_gaxpy_ir(config.n, config.nprocs, dtype=config.dtype)
    analysis = analyze_program(program)

    rows: List[Dict[str, object]] = []
    for policy in policies:
        decision = reorganize(
            analysis, params, config.nprocs, config.memory_budget_bytes, policy=policy
        )
        chosen = decision.chosen
        rows.append(
            {
                "policy": policy.name,
                "strategy": chosen.strategy.value,
                "slab_a_elements": chosen.allocation[analysis.streamed],
                "slab_b_elements": chosen.allocation[analysis.coefficient],
                "predicted_io_time": chosen.cost.io_time,
                "predicted_total_time": chosen.cost.total_time,
            }
        )
    table = format_table(
        ["policy", "strategy", "slab A (elems)", "slab B (elems)", "io time (s)", "total (s)"],
        [
            [r["policy"], r["strategy"], r["slab_a_elements"], r["slab_b_elements"],
             f"{r['predicted_io_time']:.2f}", f"{r['predicted_total_time']:.2f}"]
            for r in rows
        ],
        title=(
            f"Memory allocation ablation: {config.n}x{config.n}, {config.nprocs} processors, "
            f"{config.memory_budget_bytes // (1024 * 1024)} MB budget"
        ),
    )
    return {"rows": rows, "table": table, "config": config}


# ---------------------------------------------------------------------------
# 2. storage order (per-slab vs per-chunk request accounting)
# ---------------------------------------------------------------------------
@dataclasses.dataclass
class StorageOrderAblationConfig:
    n: int = 1024
    nprocs: int = 16
    slab_ratio: float = 0.25
    dtype: str = "float32"


def run_storage_order_ablation(
    config: Optional[StorageOrderAblationConfig] = None,
    params: Optional[MachineParameters] = None,
) -> Dict[str, object]:
    """Quantify the value of matching the on-disk storage order to the slabbing.

    When the streamed array's Local Array File is stored column-major but the
    compiler wants row slabs, every slab read touches one extent per local
    column instead of one per slab.  The ablation compares the predicted I/O
    request counts and times of the reorganized (matched) and unreorganized
    (mismatched) storage for the row-slab plan.
    """
    config = config or StorageOrderAblationConfig()
    params = params or touchstone_delta()
    compiled = Session(params=params).compile(WorkloadPoint(
        workload="gaxpy", n=config.n, nprocs=config.nprocs, version="row",
        slab_ratio=config.slab_ratio, dtype=config.dtype,
    )).program
    entry = compiled.plan.entry(compiled.analysis.streamed)
    local_shape = entry.local_shape
    slabs = row_slabs(local_shape, entry.lines_per_slab)
    itemsize = compiled.program.arrays[compiled.analysis.streamed].itemsize

    matched_requests = len(slabs)
    mismatched_requests = sum(s.contiguous_chunks(local_shape, order="F") for s in slabs)
    slab_bytes = sum(s.nbytes(itemsize) for s in slabs)

    disk = params.disk
    matched_time = disk.read_time(slab_bytes, matched_requests, contention=config.nprocs)
    mismatched_time = disk.read_time(slab_bytes, mismatched_requests, contention=config.nprocs)

    rows = [
        {"storage": "reorganized (row-major LAF)", "requests_per_proc": matched_requests,
         "read_time": matched_time},
        {"storage": "arrival order (column-major LAF)", "requests_per_proc": mismatched_requests,
         "read_time": mismatched_time},
    ]
    table = format_table(
        ["storage layout", "requests/proc (streamed array)", "read time (s)"],
        [[r["storage"], r["requests_per_proc"], f"{r['read_time']:.2f}"] for r in rows],
        title=(
            f"Storage order ablation: row-slab plan, {config.n}x{config.n}, "
            f"{config.nprocs} processors, slab ratio {config.slab_ratio:g}"
        ),
    )
    return {
        "rows": rows,
        "table": table,
        "request_inflation": mismatched_requests / max(matched_requests, 1),
        "config": config,
    }


# ---------------------------------------------------------------------------
# 3. prefetch overlap
# ---------------------------------------------------------------------------
@dataclasses.dataclass
class PrefetchAblationConfig:
    n: int = 1024
    nprocs: int = 16
    slab_ratio: float = 0.25
    efficiencies: Sequence[float] = (0.0, 0.5, 1.0)
    dtype: str = "float32"


def run_prefetch_ablation(
    config: Optional[PrefetchAblationConfig] = None,
    params: Optional[MachineParameters] = None,
) -> Dict[str, object]:
    """Estimate how much of the row-slab plan's I/O can hide behind compute.

    The overlap model is conservative: each slab read can be hidden by at most
    ``efficiency x`` the compute time of the preceding slab.
    """
    config = config or PrefetchAblationConfig()
    params = params or touchstone_delta()
    compiled = Session(params=params).compile(WorkloadPoint(
        workload="gaxpy", n=config.n, nprocs=config.nprocs, version="row",
        slab_ratio=config.slab_ratio, dtype=config.dtype,
    )).program
    cost = compiled.plan.cost
    entry = compiled.plan.entry(compiled.analysis.streamed)
    nslabs = max(entry.num_slabs, 1)
    io_per_slab = cost.io_time / nslabs
    compute_per_slab = cost.compute_time / nslabs

    rows = []
    for efficiency in config.efficiencies:
        hidden_per_slab = min(io_per_slab, efficiency * compute_per_slab)
        visible_io = cost.io_time - hidden_per_slab * (nslabs - 1)  # the first read cannot be hidden
        total = visible_io + cost.compute_time + cost.comm_time
        rows.append(
            {
                "efficiency": efficiency,
                "visible_io_time": visible_io,
                "total_time": total,
                "savings": cost.total_time - total,
            }
        )
    table = format_table(
        ["overlap efficiency", "visible I/O (s)", "total (s)", "savings (s)"],
        [[f"{r['efficiency']:.1f}", f"{r['visible_io_time']:.2f}", f"{r['total_time']:.2f}",
          f"{r['savings']:.2f}"] for r in rows],
        title=(
            f"Prefetch ablation: row-slab plan, {config.n}x{config.n}, "
            f"{config.nprocs} processors, slab ratio {config.slab_ratio:g}"
        ),
    )
    return {"rows": rows, "table": table, "baseline": cost.total_time, "config": config}
