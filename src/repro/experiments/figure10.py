"""Figure 10: effect of slab-size variation.

The paper multiplies two 1K x 1K real matrices out-of-core with the
column-slab (naively compiled) program on 4, 16, 32 and 64 processors while
varying the slab ratio (slab size / out-of-core local array size) from 1/8
to 1, and plots the total time.  The observation: a smaller slab ratio means
more slabs, hence more I/O requests, hence more time — even though the total
data volume is unchanged.

``run_figure10`` regenerates the same series (time as a function of slab
ratio, one series per processor count).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.report import format_table
from repro.api import Session, WorkloadPoint
from repro.config import ExecutionMode
from repro.machine.parameters import MachineParameters, touchstone_delta

__all__ = ["Figure10Config", "run_figure10"]


@dataclasses.dataclass
class Figure10Config:
    """Configuration of the Figure 10 sweep (defaults = the paper's setup)."""

    n: int = 1024
    processor_counts: Sequence[int] = (4, 16, 32, 64)
    slab_ratios: Sequence[float] = (1.0, 0.5, 0.25, 0.125)
    dtype: str = "float32"
    mode: ExecutionMode | str = ExecutionMode.ESTIMATE

    def scaled_down(self) -> "Figure10Config":
        """A small configuration for integration tests / execute-mode demos."""
        return Figure10Config(
            n=64,
            processor_counts=(2, 4),
            slab_ratios=(1.0, 0.5, 0.25),
            dtype="float32",
            mode=ExecutionMode.EXECUTE,
        )


def run_figure10(
    config: Optional[Figure10Config] = None,
    params: Optional[MachineParameters] = None,
) -> Dict[str, object]:
    """Run the Figure 10 sweep and return the series plus a printable table.

    Returns a dictionary with

    * ``series`` — ``{nprocs: [(slab_ratio, seconds), ...]}``,
    * ``records`` — the raw sweep records (:class:`~repro.api.RunRecord`), and
    * ``table`` — a text table with one row per slab ratio and one column per
      processor count (the transposition of the figure's series).
    """
    config = config or Figure10Config()
    params = params or touchstone_delta()
    session = Session(params=params)

    points = [
        WorkloadPoint(workload="gaxpy", n=config.n, nprocs=nprocs, version="column",
                      slab_ratio=ratio, dtype=config.dtype)
        for nprocs in config.processor_counts
        for ratio in config.slab_ratios
    ]
    records = session.sweep(points, mode=config.mode)

    series: Dict[int, List[Tuple[float, float]]] = {p: [] for p in config.processor_counts}
    for record in records:
        series[record.nprocs].append((record.slab_ratio, record.simulated_seconds))

    header = ["slab ratio"] + [f"{p} procs" for p in config.processor_counts]
    ratio_set = list(config.slab_ratios)
    rows = []
    for ratio in ratio_set:
        row: List[object] = [f"{ratio:g}"]
        for nprocs in config.processor_counts:
            value = next(t for r, t in series[nprocs] if r == ratio)
            row.append(f"{value:.2f}")
        rows.append(row)
    table = format_table(
        header,
        rows,
        title=f"Figure 10: column-slab GAXPY, {config.n}x{config.n} reals, time in seconds",
    )
    return {"series": series, "records": records, "table": table, "config": config}
