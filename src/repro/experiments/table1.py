"""Table 1: column-slab vs. row-slab vs. in-core performance.

The paper's Table 1 multiplies two 1K x 1K real matrices on 4, 16, 32 and 64
processors, reporting the total time of the column-slab and row-slab
out-of-core programs for slab ratios 1/8, 1/4, 1/2 and 1, plus the in-core
baseline.  The two headline observations are:

* the row-slab version is *much* faster than the column-slab version at every
  configuration (an order of magnitude less I/O), and
* both out-of-core versions slow down as the slab ratio shrinks.

``run_table1`` regenerates the same table layout (rows = slab ratios,
column pairs = column-slab / row-slab per processor count, final row =
in-core).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.analysis.report import format_table
from repro.api import RunRecord, Session, WorkloadPoint
from repro.config import ExecutionMode
from repro.machine.parameters import MachineParameters, touchstone_delta

__all__ = ["Table1Config", "run_table1"]

#: The times published in the paper's Table 1, for side-by-side comparison
#: in EXPERIMENTS.md.  Keyed by (slab_ratio, nprocs, version).
PAPER_TABLE1 = {
    (0.125, 4, "column"): 1045.84, (0.125, 4, "row"): 239.97,
    (0.125, 16, "column"): 897.59, (0.125, 16, "row"): 161.02,
    (0.125, 32, "column"): 857.62, (0.125, 32, "row"): 97.08,
    (0.125, 64, "column"): 803.57, (0.125, 64, "row"): 90.29,
    (0.25, 4, "column"): 979.20, (0.25, 4, "row"): 226.08,
    (0.25, 16, "column"): 864.08, (0.25, 16, "row"): 118.20,
    (0.25, 32, "column"): 807.99, (0.25, 32, "row"): 92.43,
    (0.25, 64, "column"): 783.79, (0.25, 64, "row"): 75.56,
    (0.5, 4, "column"): 958.17, (0.5, 4, "row"): 205.91,
    (0.5, 16, "column"): 802.69, (0.5, 16, "row"): 96.79,
    (0.5, 32, "column"): 788.47, (0.5, 32, "row"): 80.45,
    (0.5, 64, "column"): 698.29, (0.5, 64, "row"): 66.70,
    (1.0, 4, "column"): 923.11, (1.0, 4, "row"): 194.15,
    (1.0, 16, "column"): 714.15, (1.0, 16, "row"): 84.77,
    (1.0, 32, "column"): 680.40, (1.0, 32, "row"): 66.94,
    (1.0, 64, "column"): 620.70, (1.0, 64, "row"): 60.11,
    ("incore", 4): 140.91, ("incore", 16): 40.40,
    ("incore", 32): 20.14, ("incore", 64): 9.58,
}


@dataclasses.dataclass
class Table1Config:
    """Configuration of the Table 1 sweep (defaults = the paper's setup)."""

    n: int = 1024
    processor_counts: Sequence[int] = (4, 16, 32, 64)
    slab_ratios: Sequence[float] = (0.125, 0.25, 0.5, 1.0)
    dtype: str = "float32"
    mode: ExecutionMode | str = ExecutionMode.ESTIMATE

    def scaled_down(self) -> "Table1Config":
        return Table1Config(
            n=64,
            processor_counts=(2, 4),
            slab_ratios=(0.25, 1.0),
            dtype="float32",
            mode=ExecutionMode.EXECUTE,
        )


def run_table1(
    config: Optional[Table1Config] = None,
    params: Optional[MachineParameters] = None,
) -> Dict[str, object]:
    """Run the Table 1 sweep.

    Returns a dictionary with

    * ``cells`` — ``{(slab_ratio, nprocs, version): seconds}`` including the
      ``("incore", nprocs)`` baseline entries,
    * ``speedups`` — ``{(slab_ratio, nprocs): column_time / row_time}``,
    * ``table`` — the formatted text table in the paper's layout, and
    * ``records`` — the raw sweep records (:class:`~repro.api.RunRecord`).
    """
    config = config or Table1Config()
    params = params or touchstone_delta()
    session = Session(params=params)

    points = []
    for nprocs in config.processor_counts:
        for ratio in config.slab_ratios:
            for version in ("column", "row"):
                points.append(WorkloadPoint(
                    workload="gaxpy", n=config.n, nprocs=nprocs, version=version,
                    slab_ratio=ratio, dtype=config.dtype,
                ))
        points.append(WorkloadPoint(
            workload="gaxpy", n=config.n, nprocs=nprocs, version="incore", dtype=config.dtype,
        ))
    records: List[RunRecord] = session.sweep(points, mode=config.mode)

    cells: Dict[object, float] = {}
    for record in records:
        if record.version == "incore":
            cells[("incore", record.nprocs)] = record.simulated_seconds
        else:
            cells[(record.slab_ratio, record.nprocs, record.version)] = record.simulated_seconds

    speedups = {
        (ratio, nprocs): cells[(ratio, nprocs, "column")] / cells[(ratio, nprocs, "row")]
        for nprocs in config.processor_counts
        for ratio in config.slab_ratios
        if cells[(ratio, nprocs, "row")] > 0
    }

    header: List[str] = ["Slab Ratio"]
    for nprocs in config.processor_counts:
        header += [f"{nprocs}P col", f"{nprocs}P row"]
    rows: List[List[object]] = []
    for ratio in config.slab_ratios:
        row: List[object] = [f"{ratio:g}"]
        for nprocs in config.processor_counts:
            row.append(f"{cells[(ratio, nprocs, 'column')]:.2f}")
            row.append(f"{cells[(ratio, nprocs, 'row')]:.2f}")
        rows.append(row)
    incore_row: List[object] = ["In-core"]
    for nprocs in config.processor_counts:
        incore_row.append(f"{cells[('incore', nprocs)]:.2f}")
        incore_row.append("")
    rows.append(incore_row)
    table = format_table(
        header,
        rows,
        title=f"Table 1: GAXPY matrix multiplication, {config.n}x{config.n} reals, time in seconds",
    )
    return {
        "cells": cells,
        "speedups": speedups,
        "table": table,
        "records": records,
        "config": config,
        "paper": PAPER_TABLE1 if config.n == 1024 else None,
    }
