"""Run-level configuration shared across the library.

The configuration object bundles the knobs a user can turn when running an
out-of-core program: where Local Array Files live, whether execution should
really touch the filesystem or only account costs, and how verbose the
library should be.
"""

from __future__ import annotations

import dataclasses
import enum
import os
import tempfile
from pathlib import Path

__all__ = ["ExecutionMode", "RunConfig", "default_config"]


class ExecutionMode(enum.Enum):
    """How a compiled node program is evaluated.

    ``EXECUTE``
        The node program is executed for real: Local Array Files are created on
        disk, slabs are read and written, and the arithmetic is performed with
        NumPy.  Simulated time is accumulated alongside, and the numerical
        result can be verified against a dense reference.

    ``ESTIMATE``
        Only the cost model runs.  I/O requests, bytes moved, floating point
        operations and messages are derived analytically from the compiled
        schedule and converted to seconds using the machine model.  No files
        are touched and no arithmetic is performed.  This is how the
        paper-scale experiments (1K x 1K and 2K x 2K arrays on up to 64
        processors) are regenerated quickly.
    """

    EXECUTE = "execute"
    ESTIMATE = "estimate"


@dataclasses.dataclass
class RunConfig:
    """Configuration for one run of the out-of-core runtime.

    Parameters
    ----------
    scratch_dir:
        Directory that holds the Local Array Files of all simulated
        processors.  Defaults to a per-process temporary directory.
    mode:
        :class:`ExecutionMode` selecting real execution or analytic estimation.
    verify:
        When true (and ``mode == EXECUTE``) kernels compare their out-of-core
        result against an in-core dense reference computed with NumPy.
    keep_files:
        When false, Local Array Files are deleted when the owning virtual
        machine shuts down.
    seed:
        Seed for workload generators so experiments are reproducible.
    prefetch:
        Prefetching policy applied to slab reads: ``"none"`` (the paper's
        measured configuration — every read is fully visible; the default)
        or ``"overlap"`` (software prefetching hides reads behind the
        preceding computation, scaled by ``prefetch_efficiency``).  Only the
        simulated clock changes; I/O request and byte counters are identical
        under every policy.  The policy applies wherever slab loops drive
        the virtual machine — every ``EXECUTE``-mode run and the
        elementwise/transpose ``ESTIMATE`` path; the bulk analytic
        ``ESTIMATE`` of reduction programs charges statically counted totals
        (no loop to overlap), so it reports the unhidden paper-model time.
    prefetch_efficiency:
        Fraction of the preceding compute window usable for hiding I/O when
        ``prefetch="overlap"`` (1.0 = perfect overlap).
    checksums:
        When true (the default) every ``EXECUTE``-mode Local Array File keeps
        a sidecar manifest of slab checksums, written on slab writes and
        verified on reads.  Purely host-side: charged simulated statistics
        are identical with checksums on or off.
    fault_policy:
        Optional :class:`~repro.resilience.faults.FaultPolicy` injecting
        seeded transient I/O errors and slab corruption into ``EXECUTE``-mode
        file accesses.  ``None`` (the default) disables injection entirely.
    io_retries:
        How many times the I/O engine retries a transient fault on one file
        operation before giving up.  Must stay above the fault policy's
        ``max_failures_per_site`` for injected schedules to converge.
    io_retry_backoff_s:
        Base host-side sleep of the exponential backoff between retries
        (attempt ``k`` sleeps ``io_retry_backoff_s * 2**k``).  Host wall
        clock only; the simulated clocks never see it.
    """

    scratch_dir: Path = dataclasses.field(default_factory=lambda: Path(tempfile.gettempdir()) / "repro-laf")
    mode: ExecutionMode = ExecutionMode.EXECUTE
    verify: bool = True
    keep_files: bool = False
    seed: int = 1994  # year of the technical report
    prefetch: str = "none"
    prefetch_efficiency: float = 1.0
    checksums: bool = True
    fault_policy: "object | None" = None  # FaultPolicy; untyped to avoid an import cycle
    io_retries: int = 4
    io_retry_backoff_s: float = 0.001

    def __post_init__(self) -> None:
        self.scratch_dir = Path(self.scratch_dir)
        if isinstance(self.mode, str):  # accept plain strings for convenience
            self.mode = ExecutionMode(self.mode)
        if self.prefetch not in ("none", "overlap"):
            raise ValueError(
                f"unknown prefetch policy {self.prefetch!r} (choose 'none' or 'overlap')"
            )
        if self.io_retries < 0:
            raise ValueError(f"io_retries must be non-negative, got {self.io_retries}")
        if self.io_retry_backoff_s < 0:
            raise ValueError(
                f"io_retry_backoff_s must be non-negative, got {self.io_retry_backoff_s}"
            )
        if self.fault_policy is not None:
            cap = getattr(self.fault_policy, "max_failures_per_site", 0)
            if cap >= self.io_retries:
                raise ValueError(
                    f"fault_policy.max_failures_per_site ({cap}) must stay below "
                    f"io_retries ({self.io_retries}) or injected faults cannot converge"
                )

    def ensure_scratch_dir(self) -> Path:
        """Create the scratch directory if needed and return it."""
        os.makedirs(self.scratch_dir, exist_ok=True)
        return self.scratch_dir

    def with_mode(self, mode: ExecutionMode | str) -> "RunConfig":
        """Return a copy of this configuration with a different execution mode."""
        return dataclasses.replace(self, mode=ExecutionMode(mode) if isinstance(mode, str) else mode)


def default_config() -> RunConfig:
    """Return a fresh default configuration."""
    return RunConfig()
