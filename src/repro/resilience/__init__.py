"""Resilient out-of-core execution.

The paper's premise — every slab makes a round-trip through the file system —
is exactly where real machines fail: transient ``EIO``, torn writes, bit rot,
``ENOSPC``, a process killed mid-program.  This package makes the runtime
survive and *account for* those faults without ever disturbing the charged
simulated statistics:

* :mod:`repro.resilience.faults` — a deterministic, seeded fault injector
  (:class:`FaultPolicy` spec + per-VM :class:`FaultInjector` state) plus the
  :class:`ResilienceStats` counters every run reports,
* :mod:`repro.resilience.checksums` — per-LAF sidecar manifests of slab
  checksums (CRC32C when the host has it, CRC-32 otherwise), written on every
  slab write and verified on read,
* :mod:`repro.resilience.journal` — the fsync'd statement-level checkpoint
  journal behind ``Session.run(..., resume=...)``,
* :mod:`repro.resilience.reaper` — age-based reaping of orphaned
  ``vm_<uuid>`` scratch directories left behind by killed processes.
"""

from repro.resilience.checksums import SlabManifest, slab_checksum
from repro.resilience.faults import FaultInjector, FaultPolicy, ResilienceStats
from repro.resilience.journal import CheckpointJournal, program_fingerprint
from repro.resilience.reaper import reap_scratch, scratch_usage, scratch_usage_bytes

__all__ = [
    "FaultPolicy",
    "FaultInjector",
    "ResilienceStats",
    "SlabManifest",
    "slab_checksum",
    "CheckpointJournal",
    "program_fingerprint",
    "reap_scratch",
    "scratch_usage",
    "scratch_usage_bytes",
]
