"""Deterministic, seeded fault injection for the LAF/IOEngine layer.

A :class:`FaultPolicy` is a frozen *specification*: per-site probabilities for
transient read/write errors, disk-full, torn slab writes and bit-flip
corruption, plus the seed that makes every draw reproducible.  A
:class:`FaultInjector` is the *state* — one per virtual machine — that turns
the spec into concrete faults.  Draws are indexed by ``(kind, site, n)`` where
``site`` identifies the Local Array File access point (``array[pRANK]``) and
``n`` counts the draws at that site, so a given ``(policy.seed, schedule of
accesses)`` always produces the same fault schedule regardless of wall clock,
process or thread.

``max_failures_per_site`` bounds fires at one site — *consecutive* failed
attempts for the transient faults, counted per site across every transient
kind of the op (so the I/O engine's retry budget, ``RunConfig.io_retries``,
which must exceed the cap, always converges: after the cap the next attempt
at that site is forced to succeed, even when write errors and disk-full
interleave), and *total* fires for corruption kinds (torn writes, bit
flips).  The corruption supply per site is therefore
finite, which is what lets the executor's repair-and-retry loop size its
budget so every seeded fault schedule provably converges.

Injection happens only in ``EXECUTE`` mode (``ESTIMATE`` never touches
files).  Charged statistics are unaffected by construction: the engine
charges each logical access exactly once, before the (possibly retried)
host-level file operation.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Dict, Optional, Tuple

from repro.exceptions import TransientIOError

__all__ = ["FaultPolicy", "FaultInjector", "ResilienceStats"]


@dataclasses.dataclass(frozen=True)
class FaultPolicy:
    """Seeded fault-injection specification (all rates are per-access).

    Parameters
    ----------
    seed:
        Base seed of the deterministic draw sequence.
    read_error_rate / write_error_rate:
        Probability of a transient ``EIO``-style failure on a slab read /
        write (raised *before* the file access; retried by the I/O engine).
    disk_full_rate:
        Probability of a transient ``ENOSPC`` on a slab write (modelling a
        reaper or quota freeing space between attempts; also retried).
    torn_write_rate:
        Probability a slab write persists only partially (the trailing half
        of the slab is lost) while the checksum manifest records the intended
        data — detected on the next verification.
    bitflip_rate:
        Probability one byte of a just-written slab is flipped on disk
        (silent media corruption) — likewise detected by checksums.
    max_failures_per_site:
        Cap on fires at one access site: consecutive failed *attempts* for
        the transient kinds, shared across every transient kind of the op
        so interleaved kinds cannot extend the streak (keep it strictly
        below ``RunConfig.io_retries`` so engine retries always converge),
        and total fires *per kind* for the corruption kinds (so the
        repair-and-retry loop faces a finite corruption supply).
    crash_after_statement:
        Test hook for checkpoint/resume: SIGKILL the process right after the
        journal commits this many completed statements (1-based).  ``None``
        disables the hook.
    crash_rank:
        Restricts ``crash_after_statement`` to one rank of the distributed
        (process-parallel) backend: only the worker owning this rank kills
        itself; its peers and the parent survive to surface the failure.
        ``None`` (the default) keeps the historical behaviour — the hook
        fires in whichever process reaches the statement count, which in the
        simulated backend is the one process running all ranks.
    """

    seed: int = 0
    read_error_rate: float = 0.0
    write_error_rate: float = 0.0
    disk_full_rate: float = 0.0
    torn_write_rate: float = 0.0
    bitflip_rate: float = 0.0
    max_failures_per_site: int = 2
    crash_after_statement: Optional[int] = None
    crash_rank: Optional[int] = None

    def __post_init__(self) -> None:
        for field in ("read_error_rate", "write_error_rate", "disk_full_rate",
                      "torn_write_rate", "bitflip_rate"):
            value = getattr(self, field)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"FaultPolicy.{field} must be in [0, 1], got {value}")
        if self.max_failures_per_site < 0:
            raise ValueError(
                f"max_failures_per_site must be non-negative, got {self.max_failures_per_site}"
            )
        if self.crash_rank is not None and self.crash_rank < 0:
            raise ValueError(f"crash_rank must be non-negative, got {self.crash_rank}")

    @property
    def active(self) -> bool:
        """True when any fault can actually fire."""
        return bool(
            self.read_error_rate or self.write_error_rate or self.disk_full_rate
            or self.torn_write_rate or self.bitflip_rate
            or self.crash_after_statement is not None
        )


@dataclasses.dataclass
class ResilienceStats:
    """Counters of everything the resilience machinery did during one run.

    These are *host-side* accounting, reported in ``RunRecord.resilience``;
    they are never folded into the charged simulated I/O statistics.
    """

    retries: int = 0
    transient_read_faults: int = 0
    transient_write_faults: int = 0
    disk_full_faults: int = 0
    torn_writes_injected: int = 0
    bitflips_injected: int = 0
    corruptions_detected: int = 0
    slabs_recovered: int = 0
    statements_recovered: int = 0
    statements_skipped: int = 0

    def as_dict(self) -> Dict[str, float]:
        return {field.name: float(getattr(self, field.name))
                for field in dataclasses.fields(self)}

    def any_activity(self) -> bool:
        return any(getattr(self, field.name) for field in dataclasses.fields(self))


class FaultInjector:
    """Per-VM fault state: deterministic draws plus the per-site fire caps."""

    def __init__(self, policy: FaultPolicy, stats: Optional[ResilienceStats] = None):
        self.policy = policy
        self.stats = stats if stats is not None else ResilienceStats()
        self._draws: Dict[Tuple[str, str], int] = {}
        self._consecutive: Dict[Tuple[str, str], int] = {}
        self._total: Dict[Tuple[str, str], int] = {}

    # ------------------------------------------------------------------
    def _uniform(self, kind: str, site: str) -> float:
        """The next deterministic uniform draw in [0, 1) for ``(kind, site)``."""
        key = (kind, site)
        n = self._draws.get(key, 0) + 1
        self._draws[key] = n
        digest = hashlib.sha256(
            f"{self.policy.seed}|{kind}|{site}|{n}".encode("utf-8")
        ).digest()
        return int.from_bytes(digest[:8], "big") / float(1 << 64)

    def _transient_kind(self, group: str, site: str, draws) -> Optional[str]:
        """The transient kind that fires for this attempt, or ``None``.

        One consecutive-failure counter per ``(group, site)`` is shared by
        every transient kind in the group, so ``max_failures_per_site`` caps
        the consecutive *attempts* that can fail at a site — not failures per
        kind.  Without the shared counter two kinds could alternate (write
        error, disk full, write error, ...) and fail more consecutive
        attempts than either kind's own cap, defeating the guarantee that
        ``max_failures_per_site < io_retries`` makes engine retries converge.
        Once the cap is reached the whole attempt is forced to succeed (no
        draws consumed) and the streak resets; an attempt where no kind
        fires also resets it.
        """
        key = (group, site)
        if self._consecutive.get(key, 0) >= self.policy.max_failures_per_site:
            # Forced success: the consecutive cap guarantees retry convergence.
            self._consecutive[key] = 0
            return None
        for kind, rate in draws:
            if rate > 0.0 and self._uniform(kind, site) < rate:
                self._consecutive[key] = self._consecutive.get(key, 0) + 1
                return kind
        self._consecutive[key] = 0
        return None

    def _fires_total(self, kind: str, site: str, rate: float) -> bool:
        """Like :meth:`_fires`, but with a *total* per-site cap.

        Used for the corruption kinds: a site that has already been corrupted
        ``max_failures_per_site`` times is exhausted and never fires again,
        so the executor's repair-and-retry loop faces a finite supply and a
        budget sized to that supply always converges.
        """
        if rate <= 0.0:
            return False
        key = (kind, site)
        if self._total.get(key, 0) >= self.policy.max_failures_per_site:
            return False
        if self._uniform(kind, site) < rate:
            self._total[key] = self._total.get(key, 0) + 1
            return True
        return False

    # ------------------------------------------------------------------
    # hooks the I/O engine calls
    # ------------------------------------------------------------------
    def before_read(self, site: str) -> None:
        """Raise a transient read error for this attempt, or pass."""
        kind = self._transient_kind(
            "read", site, (("read-error", self.policy.read_error_rate),)
        )
        if kind is not None:
            self.stats.transient_read_faults += 1
            raise TransientIOError(f"injected transient read error (EIO) at {site}")

    def before_write(self, site: str) -> None:
        """Raise a transient write error / disk-full for this attempt, or pass."""
        kind = self._transient_kind(
            "write",
            site,
            (
                ("write-error", self.policy.write_error_rate),
                ("disk-full", self.policy.disk_full_rate),
            ),
        )
        if kind == "write-error":
            self.stats.transient_write_faults += 1
            raise TransientIOError(f"injected transient write error (EIO) at {site}")
        if kind == "disk-full":
            self.stats.disk_full_faults += 1
            raise TransientIOError(f"injected disk full (ENOSPC) at {site}")

    def corrupt_write(self, site: str) -> Optional[str]:
        """After a successful write: ``"torn"``, ``"bitflip"`` or ``None``."""
        if self._fires_total("torn-write", site, self.policy.torn_write_rate):
            self.stats.torn_writes_injected += 1
            return "torn"
        if self._fires_total("bitflip", site, self.policy.bitflip_rate):
            self.stats.bitflips_injected += 1
            return "bitflip"
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FaultInjector(seed={self.policy.seed}, sites={len(self._draws)})"
