"""Slab-level integrity: checksums and per-LAF sidecar manifests.

Every Local Array File can carry a :class:`SlabManifest` — a mapping from
slab extents ``(row_start, row_stop, col_start, col_stop)`` to the checksum
of the data last written there.  ``write_slab``/``write_full`` record entries,
reads verify them, and the manifest persists as a small JSON sidecar next to
the ``.dat`` file (atomic write-tmp-then-rename) so a later process — e.g. a
checkpoint resume — can re-validate the bytes on disk.

The checksum is CRC32C when the host happens to ship the optional ``crc32c``
module, plain CRC-32 (:func:`zlib.crc32`) otherwise; both run at C speed so
the checksums-on overhead stays within the benchmark gate.  A manifest
records which algorithm produced it and refuses to verify entries written by
the other, rather than report false corruption.

Checksums cover the *logical* slab content (C-order bytes of the array
values), so they are independent of the file's storage order.
"""

from __future__ import annotations

import json
import zlib
from pathlib import Path
from typing import Dict, Optional, Tuple

import numpy as np

try:  # pragma: no cover - exercised only on hosts with the optional wheel
    import crc32c as _crc32c_mod

    def _checksum_bytes(data: bytes) -> int:
        return _crc32c_mod.crc32c(data)

    CHECKSUM_ALGORITHM = "crc32c"
except ImportError:  # pragma: no cover - the baked-in toolchain path
    def _checksum_bytes(data: bytes) -> int:
        return zlib.crc32(data) & 0xFFFFFFFF

    CHECKSUM_ALGORITHM = "crc32"

__all__ = ["slab_checksum", "SlabManifest", "CHECKSUM_ALGORITHM"]

SlabKey = Tuple[int, int, int, int]

_MANIFEST_VERSION = 1


def slab_checksum(data: np.ndarray) -> int:
    """Checksum of an array's logical content (storage-order independent)."""
    # A C-contiguous array feeds the C checksum routine through the buffer
    # protocol with zero copies; anything else pays one contiguous copy.
    return _checksum_bytes(np.ascontiguousarray(data))


def _overlaps(a: SlabKey, b: SlabKey) -> bool:
    return a[0] < b[1] and b[0] < a[1] and a[2] < b[3] and b[2] < a[3]


def _contains(outer: SlabKey, inner: SlabKey) -> bool:
    return (outer[0] <= inner[0] and inner[1] <= outer[1]
            and outer[2] <= inner[2] and inner[3] <= outer[3])


class SlabManifest:
    """Checksums of the slabs last written to one Local Array File.

    Entries are keyed by slab extents.  A write *invalidates* every existing
    entry it overlaps (their recorded bytes are no longer what is on disk)
    and records the new slab; a read verifies against the exact entry when
    one exists, or any recorded slab that fully contains the request.
    Partially-overlapping reads are not re-verified — doing so would require
    re-reading the covering slabs and would blow the fastpath budget; full
    coverage comes from :meth:`verify_all` at statement boundaries.
    """

    def __init__(self, path: Optional[Path] = None, algorithm: str = CHECKSUM_ALGORITHM):
        self.path = Path(path) if path is not None else None
        self.algorithm = algorithm
        self.entries: Dict[SlabKey, int] = {}
        self.dirty = False

    # ------------------------------------------------------------------
    # recording and invalidation
    # ------------------------------------------------------------------
    def record(self, key: SlabKey, checksum: int) -> None:
        key = tuple(int(v) for v in key)
        stale = [k for k in self.entries if k != key and _overlaps(k, key)]
        for k in stale:
            del self.entries[k]
        self.entries[key] = int(checksum)
        self.dirty = True

    def record_full(self, shape: Tuple[int, int], checksum: int) -> None:
        """Record a whole-file write: one entry covering everything."""
        self.entries.clear()
        self.entries[(0, int(shape[0]), 0, int(shape[1]))] = int(checksum)
        self.dirty = True

    def clear(self) -> None:
        if self.entries:
            self.entries.clear()
            self.dirty = True

    # ------------------------------------------------------------------
    # verification
    # ------------------------------------------------------------------
    def expected(self, key: SlabKey) -> Optional[int]:
        """The recorded checksum for this exact slab, if any."""
        return self.entries.get(tuple(int(v) for v in key))

    def covering_keys(self, key: SlabKey):
        """Recorded slabs that fully contain ``key`` (excluding ``key`` itself)."""
        key = tuple(int(v) for v in key)
        return [k for k in self.entries if k != key and _contains(k, key)]

    def matches(self, key: SlabKey, data: np.ndarray) -> Optional[bool]:
        """``True``/``False`` when the exact entry exists, ``None`` otherwise.

        A manifest recorded under a different checksum algorithm (e.g. a
        sidecar written by a build with the ``crc32c`` package) cannot judge
        anything — every lookup is ``None`` rather than a false mismatch.
        """
        if not self.verifiable:
            return None
        expected = self.expected(key)
        if expected is None:
            return None
        return slab_checksum(data) == expected

    # ------------------------------------------------------------------
    # sidecar persistence (atomic, PlanCache idiom)
    # ------------------------------------------------------------------
    def save(self, path: Optional[Path] = None) -> Path:
        target = Path(path) if path is not None else self.path
        if target is None:
            raise ValueError("SlabManifest.save needs a path")
        payload = {
            "version": _MANIFEST_VERSION,
            "algorithm": self.algorithm,
            "entries": [
                {"slab": list(key), "checksum": checksum}
                for key, checksum in sorted(self.entries.items())
            ],
        }
        target.parent.mkdir(parents=True, exist_ok=True)
        tmp = target.with_name(target.name + ".tmp")
        tmp.write_text(json.dumps(payload, indent=0, sort_keys=True))
        tmp.replace(target)
        self.path = target
        self.dirty = False
        return target

    @classmethod
    def load(cls, path: Path) -> "SlabManifest":
        """Load a sidecar; raises ``ValueError`` on a malformed file."""
        path = Path(path)
        try:
            payload = json.loads(path.read_text())
            if payload.get("version") != _MANIFEST_VERSION:
                raise ValueError(f"unsupported manifest version in {path}")
            manifest = cls(path, algorithm=payload.get("algorithm", CHECKSUM_ALGORITHM))
            for entry in payload["entries"]:
                slab = entry["slab"]
                if len(slab) != 4:
                    raise ValueError("slab key must have 4 extents")
                manifest.entries[tuple(int(v) for v in slab)] = int(entry["checksum"])
        except (OSError, json.JSONDecodeError, KeyError, TypeError) as exc:
            raise ValueError(f"corrupt slab manifest {path}: {exc}") from exc
        manifest.dirty = False
        return manifest

    @property
    def verifiable(self) -> bool:
        """Whether this manifest's checksums can be checked on this host."""
        return self.algorithm == CHECKSUM_ALGORITHM

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SlabManifest({len(self.entries)} slabs, algorithm={self.algorithm!r})"
