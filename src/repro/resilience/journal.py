"""Statement-level checkpoint journal for multi-statement programs.

The :class:`ProgramExecutor` appends one entry per *completed* statement:
which statement finished, and the finalized Local Array Files (path, shape,
dtype, storage order, sidecar manifest) that hold its results.  The journal
lives in the VM scratch directory as ``journal.json`` and every commit is
durable — written to a temp file, flushed, ``fsync``'d and atomically renamed
over the old journal (the ``PlanCache`` idiom), so a SIGKILL between
statements can never leave a half-written journal.

``Session.run(point, resume=<scratch dir>)`` replays the journal: the
program fingerprint must match (same statements, same plans, same machine
parameters — otherwise the checkpoint is silently discarded as stale), each
committed statement's LAFs are re-validated against their checksum sidecars,
and only statements past the last valid commit are re-executed.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional

__all__ = ["CheckpointJournal", "program_fingerprint"]

_JOURNAL_VERSION = 1


def program_fingerprint(compiled) -> str:
    """Stable fingerprint of a compiled whole program.

    Covers the statement list, each statement's chosen plan (strategy and
    memory allocation), every array descriptor and the machine parameters —
    anything that would make a checkpoint's LAFs unusable if it changed.
    """
    program = compiled.program
    parts: List[str] = [f"nprocs={compiled.nprocs}"]
    params = getattr(compiled, "params", None)
    if params is not None:
        parts.append(f"params={sorted(vars(params).items())!r}")
    for name in sorted(program.arrays):
        desc = program.arrays[name]
        parts.append(
            f"array={name}:{tuple(desc.shape)}:{np_dtype_name(desc.dtype)}:"
            f"ooc={getattr(desc, 'out_of_core', None)!r}"
        )
    # Walk the *executable units*: a fused unit covers two IR statements but
    # commits (and checkpoints) as one step, so the fingerprint must group
    # them the same way — fusing a pair changes the fingerprint, which
    # correctly invalidates checkpoints taken with the unfused schedule.
    for cs in compiled.statements:
        for statement_ir in cs.program.statements:
            parts.append(f"stmt={statement_ir.describe()}")
        plan = getattr(cs, "plan", None)
        if plan is not None:
            parts.append(f"plan={getattr(plan, 'strategy', None)!r}:"
                         f"{sorted(getattr(plan, 'allocation', {}).items())!r}")
    return hashlib.sha256("\n".join(parts).encode("utf-8")).hexdigest()


def np_dtype_name(dtype) -> str:
    import numpy as np

    return np.dtype(dtype).name


class CheckpointJournal:
    """Durable record of which statements of a program have completed."""

    def __init__(self, path: Path):
        self.path = Path(path)
        self.fingerprint: Optional[str] = None
        self.entries: List[Dict[str, Any]] = []
        self.complete = False

    # ------------------------------------------------------------------
    def begin(self, fingerprint: str) -> None:
        """Start (or adopt) a journal for a program with this fingerprint.

        If a journal already exists on disk for the *same* fingerprint its
        committed entries are loaded so the caller can resume; a journal for
        a different fingerprint (or a corrupt one) is discarded — stale
        checkpoints must never poison a changed program.
        """
        self.fingerprint = fingerprint
        self.entries = []
        self.complete = False
        if self.path.exists():
            try:
                payload = json.loads(self.path.read_text())
                if (payload.get("version") == _JOURNAL_VERSION
                        and payload.get("fingerprint") == fingerprint):
                    self.entries = list(payload.get("statements", []))
                    self.complete = bool(payload.get("complete", False))
                    return
            except (OSError, json.JSONDecodeError, TypeError):
                pass
            # Stale or corrupt: start fresh.
            self._write()
        else:
            self._write()

    def commit_statement(self, index: int, description: str,
                         arrays: Dict[str, Any]) -> None:
        """Durably record that statement ``index`` finished.

        ``arrays`` maps each result array name to its per-rank LAF metadata
        (``{"files": [{"rank", "path", "manifest"}...], "shape", "dtype",
        "order"}``).
        """
        self.entries.append({
            "index": int(index),
            "statement": description,
            "arrays": arrays,
        })
        self._write()

    def mark_complete(self) -> None:
        self.complete = True
        self._write()

    def truncate(self, count: int) -> None:
        """Drop entries past the first ``count`` (a failed resume validation)."""
        if count < len(self.entries):
            self.entries = self.entries[:count]
            self.complete = False
            self._write()

    # ------------------------------------------------------------------
    def completed_indices(self) -> List[int]:
        return [entry["index"] for entry in self.entries]

    def _write(self) -> None:
        payload = {
            "version": _JOURNAL_VERSION,
            "fingerprint": self.fingerprint,
            "complete": self.complete,
            "statements": self.entries,
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(self.path.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1)
            handle.flush()
            os.fsync(handle.fileno())
        tmp.replace(self.path)
        # Best effort: make the rename itself durable.
        try:
            dir_fd = os.open(self.path.parent, os.O_RDONLY)
            try:
                os.fsync(dir_fd)
            finally:
                os.close(dir_fd)
        except OSError:  # pragma: no cover - platform dependent
            pass

    @classmethod
    def peek(cls, path: Path) -> Optional[Dict[str, Any]]:
        """Read a journal's raw payload without adopting it (for inspection)."""
        path = Path(path)
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if payload.get("version") != _JOURNAL_VERSION:
            return None
        return payload

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "complete" if self.complete else f"{len(self.entries)} committed"
        return f"CheckpointJournal({self.path}, {state})"
