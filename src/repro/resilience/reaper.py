"""Age-based reaping of orphaned VM scratch directories.

A process killed mid-run leaks its ``vm_<uuid>/`` scratch directory forever
(``VirtualMachine`` only removes it on clean close).  :func:`reap_scratch`
deletes such directories once they are older than ``max_age_s``; the
:class:`~repro.api.session.Session` calls it best-effort at startup and
``make clean-scratch`` runs this module as a script with ``--max-age-s 0``.

Age is judged by the directory's most recent content mtime, so a live
long-running VM that is still writing slabs is rarely reaped — but mtime
alone is a race: a rank that computes (or sits paused awaiting resume) for
longer than ``max_age_s`` without writing looks stale and would lose its
scratch to another Session starting on the same root.  Every
:class:`~repro.runtime.vm.VirtualMachine` therefore drops an ``owner.json``
(:func:`write_owner_file`: pid + start time) into its ``vm_*`` directory,
and the reaper skips any directory whose owning pid is still alive,
whatever its mtimes say.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import time
from pathlib import Path
from typing import Dict, List, Optional

__all__ = [
    "reap_scratch",
    "scratch_usage",
    "scratch_usage_bytes",
    "write_owner_file",
    "OWNER_FILE",
]

DEFAULT_MAX_AGE_S = 24 * 3600.0

#: liveness marker written into every vm_* scratch directory
OWNER_FILE = "owner.json"


def write_owner_file(directory) -> Optional[Path]:
    """Record this process as the owner of a ``vm_*`` scratch directory.

    Best-effort: scratch may live on a filesystem that rejects the write;
    the VM must not fail over its liveness marker.  (This helper is the one
    place the scratch lifecycle reads the host clock — the runtime itself
    never may, so the VM calls here instead of stamping time itself.)
    """
    path = Path(directory) / OWNER_FILE
    payload = {"pid": os.getpid(), "started_unix": time.time()}
    try:
        path.write_text(json.dumps(payload))
    except OSError:
        return None
    return path


def _pid_alive(pid: int) -> bool:
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, owned by another user
        return True
    except OSError:
        return False
    return True


def _owner_alive(directory: Path) -> bool:
    """True when the directory's ``owner.json`` names a live pid."""
    try:
        data = json.loads((directory / OWNER_FILE).read_text())
        pid = int(data["pid"])
    except (OSError, ValueError, KeyError, TypeError):
        return False
    return _pid_alive(pid)


def _latest_mtime(directory: Path) -> float:
    latest = directory.stat().st_mtime
    try:
        for entry in directory.rglob("*"):
            try:
                mtime = entry.stat().st_mtime
            except OSError:
                continue
            if mtime > latest:
                latest = mtime
    except OSError:
        pass
    return latest


def scratch_usage(scratch_dir, *, pattern: str = "vm_*",
                  skip_live: bool = False) -> Dict[str, int]:
    """Per-directory byte usage of the ``vm_*`` scratch under ``scratch_dir``.

    Returns ``{directory name: total bytes of regular files below it}`` for
    every directory matching ``pattern``.  With ``skip_live=True``
    directories whose ``owner.json`` names a live pid are omitted — that
    view counts only *reclaimable* bytes (what ``make clean-scratch`` would
    free).  The default counts everything: the job service's admission
    control measures its own (live) per-job directories against the disk
    quota with it.  Races with concurrent deletion are not errors — a file
    that vanishes mid-walk simply counts zero.
    """
    root = Path(scratch_dir)
    usage: Dict[str, int] = {}
    if not root.is_dir():
        return usage
    for candidate in sorted(root.glob(pattern)):
        if not candidate.is_dir():
            continue
        if skip_live and _owner_alive(candidate):
            continue
        total = 0
        try:
            for entry in candidate.rglob("*"):
                try:
                    if entry.is_file():
                        total += entry.stat().st_size
                except OSError:
                    continue
        except OSError:
            pass
        usage[candidate.name] = total
    return usage


def scratch_usage_bytes(scratch_dir, *, pattern: str = "vm_*",
                        skip_live: bool = False) -> int:
    """Total bytes held by ``vm_*`` scratch directories under ``scratch_dir``.

    The sum of :func:`scratch_usage` — real measured numbers for the job
    service's scratch-disk quota and for ``make clean-scratch`` reporting.
    """
    return sum(scratch_usage(scratch_dir, pattern=pattern,
                             skip_live=skip_live).values())


def reap_scratch(scratch_dir, max_age_s: float = DEFAULT_MAX_AGE_S, *,
                 pattern: str = "vm_*", now: Optional[float] = None) -> List[Path]:
    """Delete orphaned VM scratch directories older than ``max_age_s`` seconds.

    Returns the list of directories removed.  Missing scratch roots and
    races with concurrent deletion are not errors.
    """
    root = Path(scratch_dir)
    if max_age_s < 0:
        raise ValueError(f"max_age_s must be non-negative, got {max_age_s}")
    if not root.is_dir():
        return []
    cutoff = (time.time() if now is None else now) - max_age_s
    reaped: List[Path] = []
    for candidate in sorted(root.glob(pattern)):
        if not candidate.is_dir():
            continue
        if _owner_alive(candidate):
            # The owning process still runs: its VM may simply not have
            # written anything for a while.  Never reap a live VM's scratch.
            continue
        try:
            if _latest_mtime(candidate) > cutoff:
                continue
        except OSError:
            continue
        shutil.rmtree(candidate, ignore_errors=True)
        if not candidate.exists():
            reaped.append(candidate)
    return reaped


def main(argv: Optional[List[str]] = None) -> int:
    from repro.config import RunConfig

    parser = argparse.ArgumentParser(description=reap_scratch.__doc__)
    parser.add_argument("--scratch-dir", default=None,
                        help="scratch root (default: the RunConfig default)")
    parser.add_argument("--max-age-s", type=float, default=DEFAULT_MAX_AGE_S,
                        help="reap vm_* directories idle for at least this many seconds")
    args = parser.parse_args(argv)
    scratch = Path(args.scratch_dir) if args.scratch_dir else RunConfig().scratch_dir
    reclaimable = scratch_usage_bytes(scratch, skip_live=True)
    reaped = reap_scratch(scratch, args.max_age_s)
    for path in reaped:
        print(f"reaped {path}")
    remaining = scratch_usage_bytes(scratch)
    print(f"{len(reaped)} orphaned scratch director{'y' if len(reaped) == 1 else 'ies'} removed from {scratch}")
    print(f"{reclaimable} reclaimable bytes before, {remaining} bytes still in use")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
