"""Age-based reaping of orphaned VM scratch directories.

A process killed mid-run leaks its ``vm_<uuid>/`` scratch directory forever
(``VirtualMachine`` only removes it on clean close).  :func:`reap_scratch`
deletes such directories once they are older than ``max_age_s``; the
:class:`~repro.api.session.Session` calls it best-effort at startup and
``make clean-scratch`` runs this module as a script with ``--max-age-s 0``.

Age is judged by the directory's most recent content mtime, so a live
long-running VM that is still writing slabs is never reaped even when it was
created long ago.
"""

from __future__ import annotations

import argparse
import shutil
import time
from pathlib import Path
from typing import List, Optional

__all__ = ["reap_scratch"]

DEFAULT_MAX_AGE_S = 24 * 3600.0


def _latest_mtime(directory: Path) -> float:
    latest = directory.stat().st_mtime
    try:
        for entry in directory.rglob("*"):
            try:
                mtime = entry.stat().st_mtime
            except OSError:
                continue
            if mtime > latest:
                latest = mtime
    except OSError:
        pass
    return latest


def reap_scratch(scratch_dir, max_age_s: float = DEFAULT_MAX_AGE_S, *,
                 pattern: str = "vm_*", now: Optional[float] = None) -> List[Path]:
    """Delete orphaned VM scratch directories older than ``max_age_s`` seconds.

    Returns the list of directories removed.  Missing scratch roots and
    races with concurrent deletion are not errors.
    """
    root = Path(scratch_dir)
    if max_age_s < 0:
        raise ValueError(f"max_age_s must be non-negative, got {max_age_s}")
    if not root.is_dir():
        return []
    cutoff = (time.time() if now is None else now) - max_age_s
    reaped: List[Path] = []
    for candidate in sorted(root.glob(pattern)):
        if not candidate.is_dir():
            continue
        try:
            if _latest_mtime(candidate) > cutoff:
                continue
        except OSError:
            continue
        shutil.rmtree(candidate, ignore_errors=True)
        if not candidate.exists():
            reaped.append(candidate)
    return reaped


def main(argv: Optional[List[str]] = None) -> int:
    from repro.config import RunConfig

    parser = argparse.ArgumentParser(description=reap_scratch.__doc__)
    parser.add_argument("--scratch-dir", default=None,
                        help="scratch root (default: the RunConfig default)")
    parser.add_argument("--max-age-s", type=float, default=DEFAULT_MAX_AGE_S,
                        help="reap vm_* directories idle for at least this many seconds")
    args = parser.parse_args(argv)
    scratch = Path(args.scratch_dir) if args.scratch_dir else RunConfig().scratch_dir
    reaped = reap_scratch(scratch, args.max_age_s)
    for path in reaped:
        print(f"reaped {path}")
    print(f"{len(reaped)} orphaned scratch director{'y' if len(reaped) == 1 else 'ies'} removed from {scratch}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
