"""repro — out-of-core data-parallel compilation with data access reorganization.

A from-scratch reproduction of Bordawekar, Choudhary and Thakur,
"Data Access Reorganizations in Compiling Out-of-core Data Parallel Programs
on Distributed Memory Machines" (NPAC SCCS-622 / IPPS).

The recommended entry point is the unified Session API (:mod:`repro.api`)::

    from repro import Session, WorkloadPoint

    session = Session()
    record = session.run(
        WorkloadPoint("gaxpy", n=128, nprocs=4, version="row", slab_ratio=0.25)
    )
    print(record.describe())

A :class:`~repro.api.Session` owns the machine model, the run configuration,
a compile LRU cache and a thread-pool sweep driver; every registered workload
(``gaxpy``, ``transpose``, ``elementwise`` and mini-HPF source programs via
``session.compile(source=...)``) shares the same compile → run → sweep
surface and reports the same :class:`~repro.api.RunRecord` schema, in both
``ESTIMATE`` (analytic machine model) and ``EXECUTE`` (real files + NumPy,
verified) mode.

The layers underneath remain importable directly:

* a mini-HPF front end (:mod:`repro.hpf`),
* a simulated distributed-memory machine (:mod:`repro.machine`),
* a PASSION-style out-of-core runtime (:mod:`repro.runtime`),
* the out-of-core compiler with I/O cost estimation, access reorganization
  and memory allocation (:mod:`repro.core`),
* out-of-core kernels including the paper's GAXPY matrix multiplication
  (:mod:`repro.kernels`),
* analytic cost formulas and deprecated sweep shims (:mod:`repro.analysis`),
  and
* the experiment harness regenerating every table and figure of the paper
  (:mod:`repro.experiments`).
"""

from repro.config import ExecutionMode, RunConfig, default_config
from repro.exceptions import ReproError

__version__ = "1.1.0"

__all__ = [
    "ExecutionMode",
    "RunConfig",
    "default_config",
    "ReproError",
    "__version__",
]


def _load_public_api() -> None:
    """Re-export the most frequently used classes at package level.

    Kept in a helper so the imports happen lazily enough for partial
    installations (e.g. documentation builds) to still import ``repro``.
    """
    global Machine, ProcessorGrid, Template, Alignment, ArrayDescriptor
    global compile_program, compile_whole_program, compile_gaxpy, compile_source
    global VirtualMachine, NodeProgramExecutor, ProgramExecutor
    global Session, SweepResult, WorkloadPoint, CompiledWorkload, RunRecord, Workload, Lowering
    global register_workload, get_workload, available_workloads
    global PlanCache, PlanDecision, plan_whole_program
    from repro.machine import Machine  # noqa: F401
    from repro.hpf import ProcessorGrid, Template, Alignment, ArrayDescriptor, compile_source  # noqa: F401
    from repro.core import compile_program, compile_whole_program, compile_gaxpy  # noqa: F401
    from repro.runtime import VirtualMachine, NodeProgramExecutor, ProgramExecutor  # noqa: F401
    from repro.planner import PlanCache, PlanDecision, plan_whole_program  # noqa: F401
    from repro.api import (  # noqa: F401
        CompiledWorkload,
        Lowering,
        RunRecord,
        Session,
        SweepResult,
        Workload,
        WorkloadPoint,
        available_workloads,
        get_workload,
        register_workload,
    )

    __all__.extend(
        [
            "Machine",
            "ProcessorGrid",
            "Template",
            "Alignment",
            "ArrayDescriptor",
            "compile_source",
            "compile_program",
            "compile_whole_program",
            "compile_gaxpy",
            "VirtualMachine",
            "NodeProgramExecutor",
            "ProgramExecutor",
            "Session",
            "SweepResult",
            "WorkloadPoint",
            "CompiledWorkload",
            "Lowering",
            "RunRecord",
            "Workload",
            "register_workload",
            "get_workload",
            "available_workloads",
            "PlanCache",
            "PlanDecision",
            "plan_whole_program",
        ]
    )


_load_public_api()
