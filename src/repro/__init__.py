"""repro — out-of-core data-parallel compilation with data access reorganization.

A from-scratch reproduction of Bordawekar, Choudhary and Thakur,
"Data Access Reorganizations in Compiling Out-of-core Data Parallel Programs
on Distributed Memory Machines" (NPAC SCCS-622 / IPPS).

The library provides:

* a mini-HPF front end (:mod:`repro.hpf`),
* a simulated distributed-memory machine (:mod:`repro.machine`),
* a PASSION-style out-of-core runtime (:mod:`repro.runtime`),
* the out-of-core compiler with I/O cost estimation, access reorganization
  and memory allocation (:mod:`repro.core`),
* out-of-core kernels including the paper's GAXPY matrix multiplication
  (:mod:`repro.kernels`),
* analytic cost formulas and sweep drivers (:mod:`repro.analysis`), and
* the experiment harness regenerating every table and figure of the paper
  (:mod:`repro.experiments`).
"""

from repro.config import ExecutionMode, RunConfig, default_config
from repro.exceptions import ReproError

__version__ = "1.0.0"

__all__ = [
    "ExecutionMode",
    "RunConfig",
    "default_config",
    "ReproError",
    "__version__",
]


def _load_public_api() -> None:
    """Re-export the most frequently used classes at package level.

    Kept in a helper so the imports happen lazily enough for partial
    installations (e.g. documentation builds) to still import ``repro``.
    """
    global Machine, ProcessorGrid, Template, Alignment, ArrayDescriptor
    global compile_program, compile_gaxpy, compile_source, VirtualMachine, NodeProgramExecutor
    from repro.machine import Machine  # noqa: F401
    from repro.hpf import ProcessorGrid, Template, Alignment, ArrayDescriptor, compile_source  # noqa: F401
    from repro.core import compile_program, compile_gaxpy  # noqa: F401
    from repro.runtime import VirtualMachine, NodeProgramExecutor  # noqa: F401

    __all__.extend(
        [
            "Machine",
            "ProcessorGrid",
            "Template",
            "Alignment",
            "ArrayDescriptor",
            "compile_source",
            "compile_program",
            "compile_gaxpy",
            "VirtualMachine",
            "NodeProgramExecutor",
        ]
    )


_load_public_api()
