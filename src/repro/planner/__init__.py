"""Cost-model-driven plan optimizer.

The compilation pipeline historically made every resource decision by fiat:
one node memory budget was split *evenly* across the statements of a program
and across the arrays of a statement, regardless of how I/O-bound each one
actually was.  This package turns those decisions into a search problem:

* :mod:`repro.planner.space` — what may vary: per-statement byte budgets,
  per-statement memory-allocation policies (the slabbing strategy follows
  from the Figure-14 reorganizer per candidate),
* :mod:`repro.planner.search` — the strategies (``greedy`` hill-climbing,
  ``beam``, full ``exhaustive`` grids) pricing candidates with the existing
  :class:`~repro.core.cost_model.PlanCost` model; every search seeds with the
  even split and returns a provably-no-worse plan,
* :mod:`repro.planner.budget` — exact integer budget splitting (the old
  ``//`` splits silently dropped remainder bytes),
* :mod:`repro.planner.plan_cache` — a persistent on-disk store of search
  winners keyed by (program fingerprint, machine parameters, budget,
  optimizer), so a plan is searched once and served many times.

Entry points: :func:`plan_whole_program` for direct use, the ``optimizer=``
argument of :func:`repro.core.pipeline.compile_whole_program`, and the
``optimize=`` knob of :class:`repro.api.Session` (default ``"greedy"``).
"""

from repro.planner.budget import split_by_weights, split_evenly
from repro.planner.plan_cache import (
    PlanCache,
    active_plan_cache,
    plan_fingerprint,
    use_plan_cache,
)
from repro.planner.space import (
    NO_POLICY,
    POLICY_NAMES,
    PlanChoice,
    budget_grid,
    even_choice,
    policy_instance,
    transfer_neighbors,
)
from repro.planner.search import (
    OPTIMIZERS,
    PlanDecision,
    normalize_optimizer,
    plan_whole_program,
)

__all__ = [
    "OPTIMIZERS",
    "NO_POLICY",
    "POLICY_NAMES",
    "PlanCache",
    "PlanChoice",
    "PlanDecision",
    "active_plan_cache",
    "budget_grid",
    "even_choice",
    "normalize_optimizer",
    "plan_fingerprint",
    "plan_whole_program",
    "policy_instance",
    "split_by_weights",
    "split_evenly",
    "transfer_neighbors",
    "use_plan_cache",
]
