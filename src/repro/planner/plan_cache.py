"""Persistent plan store: remember search winners across compiles and processes.

The planner's searches are deterministic, so a winning :class:`PlanChoice`
can be replayed without re-searching whenever the *inputs* of the search are
identical.  The cache key is a SHA-256 fingerprint over

* the program (statements, loop nests, array shapes / dtypes / distributions,
  processor count),
* the machine parameters (every disk / network / processor field),
* the byte budget, the optimizer name, and the strategy constraints.

Any change to any of these — a different dtype, a different machine preset, a
different processor count — produces a different key, which is exactly the
invalidation the cost model requires.

Entries live in a bounded in-memory LRU; when the cache is constructed with a
directory they are *also* written as one JSON file per key, so a new process
(or a new :class:`~repro.api.Session`) pointed at the same directory replays
earlier winners ("plan once / serve many").  Corrupt or unreadable files are
treated as misses, never as errors.
"""

from __future__ import annotations

import collections
import contextlib
import contextvars
import dataclasses
import hashlib
import json
import os
import tempfile
import threading
from pathlib import Path
from typing import Dict, Iterator, Optional, Sequence

from repro.core.ir import ProgramIR
from repro.machine.parameters import MachineParameters
from repro.planner.space import PlanChoice

__all__ = [
    "PlanCache",
    "plan_fingerprint",
    "use_plan_cache",
    "active_plan_cache",
]

_PAYLOAD_VERSION = 2


def plan_fingerprint(
    program: ProgramIR,
    params: MachineParameters,
    *,
    memory_budget_bytes: int,
    optimizer: str,
    strategies: Sequence[str],
    force_strategy: Optional[str],
    fusion: str = "off",
) -> str:
    """The cache key: a stable digest of everything the search depends on."""
    arrays = {
        name: {
            "shape": list(desc.shape),
            "dtype": str(desc.dtype),
            "out_of_core": bool(desc.out_of_core),
            "layout": desc.describe(),
        }
        for name, desc in sorted(program.arrays.items())
    }
    document = {
        "version": _PAYLOAD_VERSION,
        "program": {
            "name": program.name,
            "statements": [stmt.describe() for stmt in program.statements],
            "loops": [
                [loop.describe() for loop in nest] for nest in program.loop_nests
            ],
            "arrays": arrays,
            "nprocs": program.nprocs(),
        },
        "machine": dataclasses.asdict(params),
        "memory_budget_bytes": int(memory_budget_bytes),
        "optimizer": str(optimizer),
        "strategies": [str(s) for s in strategies],
        "force_strategy": force_strategy,
        # The fusion mode is a search-space dimension: the same program with
        # fusion on vs off must be two cache entries, never a shared plan.
        "fusion": str(fusion),
    }
    canonical = json.dumps(document, sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class PlanCache:
    """Bounded LRU of winning plan choices, optionally persisted to a directory.

    ``path=None`` keeps the cache in memory only (the default of a fresh
    :class:`~repro.api.Session`); with a directory, every stored entry is
    mirrored to ``<key>.json`` and lookups fall back to disk on a memory miss.
    """

    def __init__(self, path: Optional[Path | str] = None, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("PlanCache capacity must be at least 1")
        self.path = Path(path) if path is not None else None
        self._capacity = int(capacity)
        self._entries: "collections.OrderedDict[str, Dict]" = collections.OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._stores = 0
        if self.path is not None:
            self.path.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    def lookup(self, key: str) -> Optional[PlanChoice]:
        """Return the stored winner for ``key``, or ``None`` on a miss."""
        with self._lock:
            payload = self._entries.get(key)
            if payload is not None:
                self._entries.move_to_end(key)
                self._hits += 1
                return self._decode(payload)
        payload = self._read_disk(key)
        with self._lock:
            if payload is not None:
                choice = self._decode(payload)
                if choice is not None:
                    self._remember(key, payload)
                    self._hits += 1
                    return choice
            self._misses += 1
            return None

    def store(self, key: str, choice: PlanChoice, metadata: Optional[Dict] = None) -> None:
        """Persist the winning ``choice`` under ``key``."""
        payload = {
            "version": _PAYLOAD_VERSION,
            "statement_budgets": [int(b) for b in choice.statement_budgets],
            "policies": list(choice.policies),
            "fused_edges": [int(i) for i in choice.fused_edges],
        }
        payload.update(metadata or {})
        with self._lock:
            self._remember(key, payload)
            self._stores += 1
        self._write_disk(key, payload)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "stores": self._stores,
                "size": len(self._entries),
                "persistent": int(self.path is not None),
            }

    def flush(self) -> int:
        """Write every in-memory entry to the cache directory.

        Stores already mirror to disk as they happen, so this mostly
        re-writes files that an earlier best-effort write may have dropped
        (full disk, permissions).  A memory-only cache flushes nothing.
        Returns the number of entries written; called by
        :meth:`repro.api.Session.close`.
        """
        if self.path is None:
            return 0
        with self._lock:
            entries = list(self._entries.items())
        for key, payload in entries:
            self._write_disk(key, payload)
        return len(entries)

    def clear(self, *, disk: bool = False) -> None:
        """Drop the in-memory entries (and, optionally, the on-disk files)."""
        with self._lock:
            self._entries.clear()
        if disk and self.path is not None:
            for file in list(self.path.glob("*.json")) + list(self.path.glob("*.tmp")):
                with contextlib.suppress(OSError):
                    file.unlink()

    # ------------------------------------------------------------------
    def _remember(self, key: str, payload: Dict) -> None:
        self._entries[key] = payload
        self._entries.move_to_end(key)
        while len(self._entries) > self._capacity:
            self._entries.popitem(last=False)

    @staticmethod
    def _decode(payload: Dict) -> Optional[PlanChoice]:
        try:
            if int(payload.get("version", -1)) != _PAYLOAD_VERSION:
                return None
            budgets = tuple(int(b) for b in payload["statement_budgets"])
            policies = tuple(str(p) for p in payload["policies"])
            fused = tuple(int(i) for i in payload.get("fused_edges", ()))
            return PlanChoice(budgets, policies, fused)
        except Exception:
            return None

    def _entry_file(self, key: str) -> Optional[Path]:
        if self.path is None:
            return None
        return self.path / f"{key}.json"

    def _read_disk(self, key: str) -> Optional[Dict]:
        file = self._entry_file(key)
        if file is None or not file.exists():
            return None
        try:
            return json.loads(file.read_text())
        except (OSError, ValueError):
            return None

    def _write_disk(self, key: str, payload: Dict) -> None:
        """Atomically publish one entry file.

        Two processes compiling the same program may store the same key at
        the same time, so the temporary file must be *unique per writer* —
        a shared ``<key>.json.tmp`` would interleave their writes into a
        torn JSON entry.  Each writer therefore stages into its own
        ``mkstemp`` file and publishes with ``os.replace`` (atomic on POSIX
        and Windows): readers see either the old complete entry or the new
        complete entry, never a partial write.  A crash between the two
        steps leaves only an orphaned ``*.tmp`` file, which lookups ignore
        and :meth:`clear` removes.
        """
        file = self._entry_file(key)
        if file is None:
            return
        try:
            handle, staged = tempfile.mkstemp(
                prefix=f"{key[:16]}-", suffix=".tmp", dir=self.path
            )
            try:
                with os.fdopen(handle, "w") as writer:
                    writer.write(json.dumps(payload, indent=2, sort_keys=True) + "\n")
                os.replace(staged, file)
            except BaseException:
                with contextlib.suppress(OSError):
                    os.unlink(staged)
                raise
        except OSError:
            pass  # persistence is best-effort; the in-memory entry stands

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        stats = self.stats()
        where = str(self.path) if self.path is not None else "memory"
        return f"PlanCache({where}, {stats['size']} entries, {stats['hits']} hits)"


# ---------------------------------------------------------------------------
# ambient cache: lets the Session hand its cache to the pipeline without
# widening every Workload.compile() signature (third-party workloads override
# that method with the historical two-argument form).
# ---------------------------------------------------------------------------
_ACTIVE_CACHE: "contextvars.ContextVar[Optional[PlanCache]]" = contextvars.ContextVar(
    "repro_plan_cache", default=None
)


@contextlib.contextmanager
def use_plan_cache(cache: Optional[PlanCache]) -> Iterator[None]:
    """Make ``cache`` the ambient plan cache within the ``with`` block."""
    token = _ACTIVE_CACHE.set(cache)
    try:
        yield
    finally:
        _ACTIVE_CACHE.reset(token)


def active_plan_cache() -> Optional[PlanCache]:
    """The ambient plan cache installed by :func:`use_plan_cache`, if any."""
    return _ACTIVE_CACHE.get()
