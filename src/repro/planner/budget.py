"""Integer budget arithmetic for the plan optimizer.

Every allocation decision in the planner ultimately divides one byte budget
between competing consumers — statements of a whole program, or arrays of one
statement.  The legacy pipeline did this with ``budget // parts``, silently
discarding up to ``parts - 1`` bytes; these helpers split *exactly* (the
remainder is redistributed one byte at a time) and split *non-uniformly*
(proportionally to planner-chosen weights) while always conserving the total.

The module is dependency-light on purpose: :mod:`repro.core.pipeline` imports
it without pulling in the search machinery, so no import cycle forms between
the compiler core and the planner.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.exceptions import CompilationError

__all__ = ["split_evenly", "split_by_weights"]


def split_evenly(total: int, parts: int) -> List[int]:
    """Divide ``total`` into ``parts`` near-equal integer shares summing to ``total``.

    The first ``total % parts`` shares receive one extra unit, so no unit of
    budget is silently dropped (the fix for the historical
    ``budget // parts`` split) and the shares differ by at most one.
    """
    total = int(total)
    parts = int(parts)
    if parts < 1:
        raise CompilationError(f"cannot split a budget into {parts} parts")
    if total < parts:
        raise CompilationError(
            f"budget of {total} cannot give each of {parts} parts at least one unit"
        )
    base, remainder = divmod(total, parts)
    return [base + 1 if index < remainder else base for index in range(parts)]


def split_by_weights(
    total: int,
    weights: Sequence[float],
    minimums: Optional[Sequence[int]] = None,
) -> List[int]:
    """Divide ``total`` proportionally to ``weights``, conserving the sum exactly.

    Each share is floored to an integer and the leftover units are handed out
    to the parts with the largest fractional remainders (largest-remainder
    apportionment), so ``sum(result) == total`` always holds.  ``minimums``
    optionally floors each share; the deficit is taken from the parts with the
    largest surplus above their own minimum.
    """
    total = int(total)
    if not weights:
        raise CompilationError("split_by_weights needs at least one weight")
    if any(w < 0 for w in weights):
        raise CompilationError(f"weights must be non-negative, got {list(weights)}")
    parts = len(weights)
    minimums = [int(m) for m in (minimums or [0] * parts)]
    if len(minimums) != parts:
        raise CompilationError(
            f"{parts} weights but {len(minimums)} minimums"
        )
    if sum(minimums) > total:
        raise CompilationError(
            f"budget of {total} cannot cover the minimum shares {minimums}"
        )
    weight_sum = float(sum(weights))
    if weight_sum <= 0:
        # No signal: treat every part equally (still through the
        # largest-remainder path, so minimums are enforced).
        weights = [1.0] * parts
        weight_sum = float(parts)

    raw = [total * (w / weight_sum) for w in weights]
    shares = [int(r) for r in raw]
    leftover = total - sum(shares)
    by_fraction = sorted(range(parts), key=lambda i: raw[i] - shares[i], reverse=True)
    for index in by_fraction[:leftover]:
        shares[index] += 1

    # Enforce the minimums, taking the deficit from the richest parts.
    for index in range(parts):
        while shares[index] < minimums[index]:
            donor = max(
                (i for i in range(parts) if shares[i] > minimums[i]),
                key=lambda i: shares[i] - minimums[i],
            )
            move = min(minimums[index] - shares[index], shares[donor] - minimums[donor])
            shares[donor] -= move
            shares[index] += move
    return shares
