"""The plan search space: what the optimizer is allowed to vary.

A whole-program access plan is determined by, per statement,

* the **byte budget** the statement's In-core Local Arrays may occupy
  (the knob the legacy pipeline fixed to an even split),
* the **memory-allocation policy** dividing that budget between the
  statement's arrays (reduction statements only — elementwise and transpose
  statements stream conformal slabs, so their split is forced), and
* the **slabbing strategy**, which the Figure-14 reorganizer already picks
  per candidate allocation (and which therefore varies *implicitly* with the
  budget the planner assigns).

A :class:`PlanChoice` pins the explicit knobs; enumeration helpers generate
the even-split baseline, grids over the budget simplex for the exhaustive
search, and quantum-transfer neighbourhoods for the greedy/beam searches.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Iterator, Optional, Sequence, Tuple

from repro.core.ir import ElementwiseStatement, ProgramIR, ReductionStatement
from repro.core.memory_alloc import (
    AllocationPolicy,
    EqualAllocation,
    ProportionalAllocation,
    SearchAllocation,
)
from repro.exceptions import CompilationError
from repro.planner.budget import split_by_weights, split_evenly

__all__ = [
    "NO_POLICY",
    "POLICY_NAMES",
    "PlanChoice",
    "policy_instance",
    "statement_kinds",
    "even_choice",
    "fusable_edges",
    "fusion_masks",
    "budget_grid",
    "transfer_neighbors",
]

#: placeholder policy name for statements whose array split is forced
#: (elementwise / transpose stream conformal slabs).
NO_POLICY = "-"

#: allocation policies a reduction statement may choose between, default first
#: (``"proportional"`` is what the legacy pipeline applied unconditionally).
POLICY_NAMES: Tuple[str, ...] = ("proportional", "equal", "search")


def policy_instance(name: str, *, fine: bool = False) -> Optional[AllocationPolicy]:
    """Instantiate a named allocation policy (``None`` for :data:`NO_POLICY`).

    ``fine=True`` widens the :class:`SearchAllocation` fraction grid — used by
    the exhaustive optimizer, which is explicitly paying for compile time.
    """
    if name == NO_POLICY:
        return None
    if name == "equal":
        return EqualAllocation()
    if name == "proportional":
        return ProportionalAllocation()
    if name == "search":
        return SearchAllocation(fractions=31 if fine else 9)
    raise CompilationError(
        f"unknown allocation policy {name!r} (choose from {sorted(POLICY_NAMES)})"
    )


@dataclasses.dataclass(frozen=True)
class PlanChoice:
    """One candidate point of the plan space.

    ``statement_budgets`` holds the byte budget of each statement (summing to
    the program budget); ``policies`` the allocation policy name per statement
    (:data:`NO_POLICY` where no choice exists).
    """

    statement_budgets: Tuple[int, ...]
    policies: Tuple[str, ...]
    #: producer indices ``i`` whose statement is fused with statement ``i + 1``
    #: (the intermediate never touches disk); empty means fully materialized.
    fused_edges: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if len(self.statement_budgets) != len(self.policies):
            raise CompilationError(
                f"{len(self.statement_budgets)} budgets but {len(self.policies)} policies"
            )
        if any(budget < 1 for budget in self.statement_budgets):
            raise CompilationError(
                f"every statement needs a positive budget, got {self.statement_budgets}"
            )
        edges = tuple(int(i) for i in self.fused_edges)
        if edges != tuple(sorted(set(edges))):
            raise CompilationError(f"fused edges must be sorted and unique, got {edges}")
        if any(i < 0 or i + 1 >= len(self.statement_budgets) for i in edges):
            raise CompilationError(
                f"fused edge out of range for {len(self.statement_budgets)} statements: {edges}"
            )
        if any(b - a == 1 for a, b in zip(edges, edges[1:])):
            raise CompilationError(
                f"fused edges may not overlap (one statement in two pairs): {edges}"
            )
        object.__setattr__(self, "fused_edges", edges)

    @property
    def total_budget(self) -> int:
        return sum(self.statement_budgets)

    def describe(self) -> str:
        parts = [
            f"s{i}:{budget}B/{policy}"
            for i, (budget, policy) in enumerate(
                zip(self.statement_budgets, self.policies, strict=True)
            )
        ]
        for edge in self.fused_edges:
            parts.append(f"fuse(s{edge},s{edge + 1})")
        return " ".join(parts)


def statement_kinds(program: ProgramIR) -> Tuple[bool, ...]:
    """Per statement: does an allocation-policy choice exist (reduction)?"""
    return tuple(
        isinstance(statement, ReductionStatement) for statement in program.statements
    )


def even_choice(program: ProgramIR, memory_budget_bytes: int) -> PlanChoice:
    """The status-quo candidate: even budget split, default policy everywhere.

    This is the plan the legacy pipeline produced (modulo the remainder, which
    :func:`~repro.planner.budget.split_evenly` now redistributes instead of
    dropping); every search seeds with it and returns nothing worse.
    """
    budgets = split_evenly(int(memory_budget_bytes), len(program.statements))
    policies = tuple(
        POLICY_NAMES[0] if is_reduction else NO_POLICY
        for is_reduction in statement_kinds(program)
    )
    return PlanChoice(tuple(budgets), policies)


def fusable_edges(
    program: ProgramIR, *, preserve: Sequence[str] = ()
) -> Tuple[int, ...]:
    """Producer indices whose statement may legally fuse with its successor.

    Edge ``i`` (statements ``i`` and ``i + 1``) is fusable when

    * both statements are elementwise — they stream conformal slabs of one
      distribution, so the producer's result slab is exactly the consumer's
      operand slab (reductions reorder their slab traffic and are refused),
    * the producer's result is consumed by statement ``i + 1`` *only*, through
      a single operand reference — a second consumer (diamond dataflow) or a
      repeated operand would need the materialized LAF,
    * no other statement writes between them — adjacency plus the program's
      single-assignment dataflow guarantees this for consecutive indices,
    * the intermediate is not in ``preserve`` (arrays the caller must keep on
      disk, e.g. requested program outputs or checkpoint anchors).

    Conformality of the *chosen* slab extents is a per-candidate property and
    is re-checked at compile time against both statements' access plans.
    """
    keep = set(preserve)
    edges = []
    statements = program.statements
    for i in range(len(statements) - 1):
        producer, consumer = statements[i], statements[i + 1]
        if not isinstance(producer, ElementwiseStatement):
            continue
        if not isinstance(consumer, ElementwiseStatement):
            continue
        intermediate = producer.result.array
        if intermediate in keep:
            continue
        if intermediate not in program.intermediate_arrays():
            continue  # a terminal result must be materialized
        uses = [
            (j, ref)
            for j, statement in enumerate(statements)
            for ref in statement.operands
            if ref.array == intermediate
        ]
        if len(uses) != 1 or uses[0][0] != i + 1:
            continue  # diamond dataflow / repeated operand / distant consumer
        edges.append(i)
    return tuple(edges)


def fusion_masks(legal_edges: Sequence[int]) -> Iterator[Tuple[int, ...]]:
    """Every non-overlapping subset of ``legal_edges``, smallest first.

    Overlap means two chosen edges share a statement (``i`` and ``i + 1``
    both chosen); such masks are not constructible as :class:`PlanChoice`
    values and are skipped here rather than raised downstream.
    """
    edges = tuple(sorted(set(int(i) for i in legal_edges)))
    for r in range(len(edges) + 1):
        for subset in itertools.combinations(edges, r):
            if any(b - a == 1 for a, b in zip(subset, subset[1:])):
                continue
            yield subset


def budget_grid(
    total: int, nstatements: int, steps: int
) -> Iterator[Tuple[int, ...]]:
    """Every division of ``total`` over ``nstatements`` on a ``steps``-point grid.

    Enumerates the compositions of ``steps`` quanta into ``nstatements``
    positive parts and scales each to bytes with exact conservation
    (largest-remainder rounding), so every yielded vector sums to ``total``.
    """
    if steps < nstatements:
        raise CompilationError(
            f"a {steps}-step grid cannot give {nstatements} statements one quantum each"
        )
    for cut in itertools.combinations(range(1, steps), nstatements - 1):
        bounds = (0, *cut, steps)
        quanta = [bounds[i + 1] - bounds[i] for i in range(nstatements)]
        yield tuple(split_by_weights(total, quanta))


def transfer_neighbors(
    budgets: Sequence[int], quantum: int, floors: Optional[Sequence[int]] = None
) -> Iterator[Tuple[int, ...]]:
    """All budget vectors reachable by moving one ``quantum`` between statements.

    ``floors`` optionally gives the minimum budget each statement must keep
    (default 1 byte); donors that would fall below their floor are skipped.
    """
    budgets = [int(b) for b in budgets]
    floors = [int(f) for f in (floors or [1] * len(budgets))]
    for donor, receiver in itertools.permutations(range(len(budgets)), 2):
        if budgets[donor] - quantum < floors[donor]:
            continue
        moved = list(budgets)
        moved[donor] -= quantum
        moved[receiver] += quantum
        yield tuple(moved)
