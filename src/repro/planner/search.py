"""Plan-space search strategies: greedy, exhaustive and beam.

Every search prices candidates with the *existing* cost model — a candidate
is evaluated by compiling each statement under its assigned budget and policy
through the unchanged Figure-7 pipeline and summing the per-statement
:class:`~repro.core.cost_model.PlanCost` with
:func:`~repro.core.cost_model.combine_plan_costs`.  Because every search
seeds with the even-split baseline and only ever replaces it with a strictly
cheaper candidate, the returned plan is provably no worse than the legacy
even split under the model.

* ``"none"`` — the even split itself (the legacy behaviour, remainder fixed);
* ``"greedy"`` — hill-climbing quantum transfers between statements with a
  halving step size, plus a per-statement allocation-policy refinement;
* ``"exhaustive"`` — a full grid over the budget simplex with per-statement
  best policies (compile-time is paid for; the grid and the
  :class:`~repro.core.memory_alloc.SearchAllocation` fraction set are finer);
* ``"beam"`` — greedy's neighbourhood expansion keeping the best
  ``BEAM_WIDTH`` states per round (escapes single-path local minima at a
  bounded multiple of greedy's compile cost).

Per-statement compilations are memoized on ``(statement, budget, policy)``,
so the searches share work: an exhaustive grid over three statements costs a
few dozen statement compilations, not thousands.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.core.cost_model import PlanCost, combine_plan_costs
from repro.exceptions import (
    CompilationError,
    CostModelError,
    MemoryAllocationError,
    ReproError,
)
from repro.machine.parameters import MachineParameters
from repro.planner.plan_cache import PlanCache, plan_fingerprint
from repro.planner.space import (
    NO_POLICY,
    POLICY_NAMES,
    PlanChoice,
    budget_grid,
    even_choice,
    fusable_edges,
    fusion_masks,
    policy_instance,
    statement_kinds,
    transfer_neighbors,
)
from repro.runtime.slab import SlabbingStrategy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.core.ir import ProgramIR
    from repro.core.pipeline import CompiledProgram

__all__ = ["OPTIMIZERS", "PlanDecision", "normalize_optimizer", "plan_whole_program"]

#: recognised optimizer names, in increasing compile-time order.
OPTIMIZERS: Tuple[str, ...] = ("none", "greedy", "beam", "exhaustive")

#: states kept per round by the beam search.
BEAM_WIDTH = 4
#: hard cap on hill-climbing rounds (greedy and beam).
MAX_ROUNDS = 64


def normalize_optimizer(optimizer: Optional[str]) -> str:
    """Map ``None`` to ``"none"`` and reject unknown optimizer names."""
    name = "none" if optimizer is None else str(optimizer)
    if name not in OPTIMIZERS:
        raise CompilationError(
            f"unknown plan optimizer {name!r} (choose from {sorted(OPTIMIZERS)})"
        )
    return name


@dataclasses.dataclass(frozen=True)
class PlanDecision:
    """What the planner decided and why — attached to compiled programs.

    ``statement_budgets`` / ``policies`` pin the winning
    :class:`~repro.planner.space.PlanChoice`; the ``predicted_*`` numbers are
    the winner's modelled cost, the ``even_*`` numbers the even-split
    baseline's, so callers can verify the no-worse guarantee and records can
    report predicted-vs-charged quantities.  ``cache_status`` is ``"off"``
    (no cache in play), ``"hit"`` (winner replayed from the plan cache) or
    ``"miss"`` (search ran, winner stored).
    """

    optimizer: str
    statement_budgets: Tuple[int, ...]
    policies: Tuple[str, ...]
    predicted_total_time: float
    predicted_io_time: float
    predicted_io_bytes: float
    even_total_time: float
    even_io_time: float
    even_io_bytes: float
    candidates_evaluated: int
    cache_status: str = "off"
    #: producer indices fused with their successor (empty: fully materialized)
    fused_edges: Tuple[int, ...] = ()

    @property
    def choice(self) -> PlanChoice:
        return PlanChoice(self.statement_budgets, self.policies, self.fused_edges)

    @property
    def improvement(self) -> float:
        """Even-split time over chosen-plan time (>= 1.0 by construction)."""
        if self.predicted_total_time <= 0:
            return 1.0
        return self.even_total_time / self.predicted_total_time

    def describe(self) -> str:
        lines = [
            f"plan optimizer [{self.optimizer}] "
            f"(cache {self.cache_status}, {self.candidates_evaluated} candidates):",
            f"  chosen budgets: {list(self.statement_budgets)} bytes, "
            f"policies {list(self.policies)}",
            f"  predicted time {self.predicted_total_time:.2f}s "
            f"(io {self.predicted_io_time:.2f}s) vs even split "
            f"{self.even_total_time:.2f}s (io {self.even_io_time:.2f}s) — "
            f"{self.improvement:.2f}x",
        ]
        if self.fused_edges:
            lines.append(
                "  fused statement pairs: "
                + ", ".join(f"(s{i}, s{i + 1})" for i in self.fused_edges)
            )
        return "\n".join(lines)


def _cost_key(cost: PlanCost) -> Tuple[float, float, float]:
    """Total order over plan costs: time first, I/O time, then data volume."""
    return (cost.total_time, cost.io_time, cost.io_bytes)


@dataclasses.dataclass
class _Evaluation:
    """One priced candidate: its cost, knobs and compiled statements."""

    cost: PlanCost
    budgets: Tuple[int, ...]
    policies: Tuple[str, ...]
    compiled: Tuple[object, ...]  # CompiledProgram per executable unit
    #: producer indices whose pair compiled into one fused unit; when
    #: non-empty, ``compiled`` has fewer units than the program has statements
    fused_edges: Tuple[int, ...] = ()


class _ProgramEvaluator:
    """Compiles and prices plan candidates, memoized per statement knob."""

    def __init__(
        self,
        program: "ProgramIR",
        params: MachineParameters,
        strategies: "Sequence[SlabbingStrategy | str]",
        force_strategy: "Optional[SlabbingStrategy | str]",
        *,
        fine: bool,
        check: str = "off",
        fusion: str = "off",
    ) -> None:
        self.program = program
        self.params = params
        self.strategies = tuple(strategies)
        self.force_strategy = force_strategy
        self.fine = fine
        #: statically legal fusion edges (dataflow only); conformality of the
        #: chosen slab extents is re-checked per candidate by the pair builder
        self.fusable = fusable_edges(program) if fusion != "off" else ()
        # Any enabled check mode becomes "error" inside the search: a
        # candidate whose compiled plan fails static verification raises
        # PlanVerificationError (a CompilationError), lands in the except
        # clause below, and is rejected like any other infeasible candidate —
        # the search only ever returns verified plans.
        self.check = "error" if check != "off" else "off"
        self.kinds = statement_kinds(program)
        self.subs = [
            program.statement_program(index)
            for index in range(len(program.statements))
        ]
        self._statement_memo: Dict[Tuple[int, int, str], Optional[Tuple]] = {}
        self._best_memo: Dict[Tuple[int, int], Optional[Tuple]] = {}
        self.candidates_evaluated = 0

    # ------------------------------------------------------------------
    def _compile_statement(
        self, index: int, budget: int, policy_name: str
    ) -> "Optional[Tuple[PlanCost, CompiledProgram]]":
        """Price one statement under one budget/policy; ``None`` if infeasible."""
        key = (index, int(budget), policy_name)
        if key in self._statement_memo:
            return self._statement_memo[key]
        from repro.core.pipeline import compile_program

        try:
            compiled = compile_program(
                self.subs[index],
                self.params,
                memory_budget_bytes=int(budget),
                policy=policy_instance(policy_name, fine=self.fine),
                force_strategy=self.force_strategy,
                strategies=self.strategies,
                check=self.check,
            )
            result = (compiled.plan.cost, compiled)
        except (CompilationError, MemoryAllocationError, CostModelError):
            result = None
        self._statement_memo[key] = result
        return result

    def _best_statement(
        self, index: int, budget: int
    ) -> "Optional[Tuple[PlanCost, str, CompiledProgram]]":
        """Cheapest (cost, policy, compiled) for one statement at one budget."""
        key = (index, int(budget))
        if key in self._best_memo:
            return self._best_memo[key]
        names = POLICY_NAMES if self.kinds[index] else (NO_POLICY,)
        best = None
        for name in names:
            priced = self._compile_statement(index, budget, name)
            if priced is None:
                continue
            cost, compiled = priced
            if best is None or _cost_key(cost) < _cost_key(best[0]):
                best = (cost, name, compiled)
        self._best_memo[key] = best
        return best

    def _fuse_units(
        self, mask: Tuple[int, ...], compiled: Sequence
    ) -> Optional[Tuple]:
        """Fused unit list for ``mask`` over per-statement units, or ``None``.

        ``None`` means some chosen edge is not conformal under these budgets
        (the pair builder refused); the candidate simply does not fuse there.
        """
        from repro.core.pipeline import fuse_statement_pair

        units: List = []
        index = 0
        while index < len(compiled):
            if index in mask:
                try:
                    units.append(
                        fuse_statement_pair(
                            self.program,
                            index,
                            compiled[index],
                            compiled[index + 1],
                            self.params,
                        )
                    )
                except (CompilationError, CostModelError):
                    return None
                index += 2
            else:
                units.append(compiled[index])
                index += 1
        return tuple(units)

    # ------------------------------------------------------------------
    def evaluate(
        self,
        budgets: Sequence[int],
        policies: Optional[Sequence[str]] = None,
        *,
        must_succeed: bool = False,
        allow_fusion: bool = True,
        fused_edges: Optional[Sequence[int]] = None,
    ) -> Optional[_Evaluation]:
        """Price a full candidate; ``None`` when any statement is infeasible.

        With ``policies`` the given policy names are used verbatim (the even
        baseline, cached replays); without, each statement independently takes
        its cheapest policy at its budget — the costs are separable, so the
        per-statement optimum is the program optimum for that budget vector.

        The fusion dimension rides along: with ``allow_fusion`` (and legal
        edges) every non-overlapping fusion mask is priced on top of the
        per-statement units and the cheapest wins, so each budget vector the
        searches visit is automatically evaluated fused *and* unfused.
        ``fused_edges`` pins one exact mask instead (cache replays); a pinned
        mask that is not conformal under these budgets degrades to unfused.
        """
        self.candidates_evaluated += 1
        costs: List[PlanCost] = []
        chosen_policies: List[str] = []
        compiled: List = []
        for index, budget in enumerate(budgets):
            if policies is not None:
                priced = self._compile_statement(index, budget, policies[index])
                entry = (priced[0], policies[index], priced[1]) if priced else None
            else:
                entry = self._best_statement(index, budget)
            if entry is None:
                if must_succeed:
                    # Surface the real error, exactly as the legacy path would.
                    from repro.core.pipeline import compile_program

                    compile_program(
                        self.subs[index],
                        self.params,
                        memory_budget_bytes=int(budget),
                        policy=policy_instance(
                            policies[index] if policies is not None else NO_POLICY
                        ),
                        force_strategy=self.force_strategy,
                        strategies=self.strategies,
                        check=self.check,
                    )
                    raise ReproError(  # pragma: no cover - the line above raises
                        "statement compilation failed without an error"
                    )
                return None
            cost, name, unit = entry
            costs.append(cost)
            chosen_policies.append(name)
            compiled.append(unit)
        best = _Evaluation(
            cost=combine_plan_costs(costs),
            budgets=tuple(int(b) for b in budgets),
            policies=tuple(chosen_policies),
            compiled=tuple(compiled),
        )
        if fused_edges is not None:
            masks: Sequence[Tuple[int, ...]] = [tuple(sorted(int(i) for i in fused_edges))]
        elif allow_fusion and self.fusable:
            masks = [mask for mask in fusion_masks(self.fusable) if mask]
        else:
            masks = []
        for mask in masks:
            if not mask:
                continue
            units = self._fuse_units(mask, compiled)
            if units is None:
                continue
            self.candidates_evaluated += 1
            fused_cost = combine_plan_costs([unit.plan.cost for unit in units])
            if _cost_key(fused_cost) < _cost_key(best.cost) or fused_edges is not None:
                best = _Evaluation(
                    cost=fused_cost,
                    budgets=best.budgets,
                    policies=best.policies,
                    compiled=units,
                    fused_edges=mask,
                )
        return best


# ---------------------------------------------------------------------------
# the search strategies
# ---------------------------------------------------------------------------
def _search_greedy(
    evaluator: _ProgramEvaluator, start: _Evaluation, total: int
) -> _Evaluation:
    """Hill-climb quantum transfers between statements, halving the step."""
    best = start
    nstatements = len(start.budgets)
    if nstatements < 2:
        return best
    quantum = max(total // (2 * nstatements), 1)
    floor = max(total // 256, 1)
    rounds = 0
    while quantum >= floor and rounds < MAX_ROUNDS:
        rounds += 1
        winner = None
        for candidate in transfer_neighbors(best.budgets, quantum):
            priced = evaluator.evaluate(candidate)
            if priced is None:
                continue
            if winner is None or _cost_key(priced.cost) < _cost_key(winner.cost):
                winner = priced
        if winner is not None and _cost_key(winner.cost) < _cost_key(best.cost):
            best = winner
        else:
            quantum //= 2
    return best


def _search_beam(
    evaluator: _ProgramEvaluator, start: _Evaluation, total: int
) -> _Evaluation:
    """Greedy's neighbourhood expansion, keeping ``BEAM_WIDTH`` states alive."""
    best = start
    nstatements = len(start.budgets)
    if nstatements < 2:
        return best
    beam: List[_Evaluation] = [start]
    quantum = max(total // (2 * nstatements), 1)
    floor = max(total // 256, 1)
    rounds = 0
    while quantum >= floor and rounds < MAX_ROUNDS:
        rounds += 1
        frontier: Dict[Tuple[int, ...], _Evaluation] = {
            state.budgets: state for state in beam
        }
        for state in beam:
            for candidate in transfer_neighbors(state.budgets, quantum):
                if candidate in frontier:
                    continue
                priced = evaluator.evaluate(candidate)
                if priced is not None:
                    frontier[candidate] = priced
        ranked = sorted(frontier.values(), key=lambda e: _cost_key(e.cost))
        improved = _cost_key(ranked[0].cost) < _cost_key(best.cost)
        if improved:
            best = ranked[0]
        beam = ranked[:BEAM_WIDTH]
        if not improved:
            quantum //= 2
    return best


def _search_exhaustive(
    evaluator: _ProgramEvaluator, start: _Evaluation, total: int
) -> _Evaluation:
    """Full budget-simplex grid with per-statement best policies."""
    best = start
    nstatements = len(start.budgets)
    if nstatements < 2:
        # Only the policy choice exists; evaluate() already optimized it.
        refined = evaluator.evaluate(start.budgets)
        if refined is not None and _cost_key(refined.cost) < _cost_key(best.cost):
            best = refined
        return best
    steps = 12 if nstatements <= 3 else max(2 * nstatements, 8)
    for budgets in budget_grid(total, nstatements, steps):
        priced = evaluator.evaluate(budgets)
        if priced is not None and _cost_key(priced.cost) < _cost_key(best.cost):
            best = priced
    # Polish the grid winner with fine-grained transfers: the grid quantum is
    # total/steps, far coarser than greedy's final halved step.
    return _search_greedy(evaluator, best, total)


_SEARCHES = {
    "greedy": _search_greedy,
    "beam": _search_beam,
    "exhaustive": _search_exhaustive,
}


# ---------------------------------------------------------------------------
# public entry point
# ---------------------------------------------------------------------------
def plan_whole_program(
    program: "ProgramIR",
    params: MachineParameters,
    memory_budget_bytes: int,
    *,
    optimizer: Optional[str] = "greedy",
    strategies: "Sequence[SlabbingStrategy | str]" = (SlabbingStrategy.COLUMN, SlabbingStrategy.ROW),
    force_strategy: "Optional[SlabbingStrategy | str]" = None,
    plan_cache: Optional[PlanCache] = None,
    check: str = "off",
    fusion: str = "off",
) -> Tuple[PlanDecision, Tuple[object, ...]]:
    """Search the plan space of ``program`` under one node byte budget.

    Returns the :class:`PlanDecision` plus the winning candidate's compiled
    statements (one :class:`~repro.core.pipeline.CompiledProgram` each), ready
    for :func:`~repro.core.pipeline.compile_whole_program` to assemble.  The
    winner's predicted cost is never worse than the even split's: the even
    candidate seeds every search and is only displaced by strictly cheaper
    plans.

    With ``check`` enabled (anything but ``"off"``), every candidate's
    compiled plan runs through the static verifier and failing candidates are
    rejected during the search, so the returned decision is both no-worse
    *and* verified.  A cached winner that no longer verifies is discarded and
    the search re-runs.
    """
    optimizer = normalize_optimizer(optimizer)
    from repro.core.pipeline import normalize_fusion

    fusion = normalize_fusion(fusion)
    total = int(memory_budget_bytes)
    evaluator = _ProgramEvaluator(
        program,
        params,
        strategies,
        force_strategy,
        fine=optimizer == "exhaustive",
        check=check,
        fusion=fusion if optimizer != "none" else "off",
    )
    even = even_choice(program, total)
    # The no-worse anchor is the *unfused* even split — exactly the plan the
    # legacy pipeline produced; fusion only ever displaces it by pricing
    # strictly cheaper.
    baseline = evaluator.evaluate(
        even.statement_budgets, even.policies, must_succeed=True, allow_fusion=False
    )
    best = baseline
    cache_status = "off"

    if optimizer == "none":
        return _decision(optimizer, best, baseline, evaluator, cache_status), best.compiled

    key = None
    if plan_cache is not None:
        force_name = (
            SlabbingStrategy.from_name(force_strategy).value
            if force_strategy is not None
            else None
        )
        key = plan_fingerprint(
            program,
            params,
            memory_budget_bytes=total,
            optimizer=optimizer,
            strategies=[SlabbingStrategy.from_name(s).value for s in strategies],
            force_strategy=force_name,
            fusion=fusion,
        )
        cached = plan_cache.lookup(key)
        if (
            cached is not None
            and len(cached.statement_budgets) == len(program.statements)
            and cached.total_budget == total
            and set(cached.fused_edges) <= set(evaluator.fusable)
        ):
            replay = evaluator.evaluate(
                cached.statement_budgets,
                cached.policies,
                fused_edges=cached.fused_edges,
            )
            if replay is not None:
                if _cost_key(replay.cost) < _cost_key(best.cost):
                    best = replay
                return (
                    _decision(optimizer, best, baseline, evaluator, "hit"),
                    best.compiled,
                )
        cache_status = "miss"

    # Refine the starting point: keep even budgets but let every statement
    # take its cheapest allocation policy (costs are separable, so this is
    # exact), then search budget transfers from there.
    start = evaluator.evaluate(even.statement_budgets)
    if start is None or _cost_key(baseline.cost) < _cost_key(start.cost):
        start = baseline
    best = _SEARCHES[optimizer](evaluator, start, total)
    if _cost_key(baseline.cost) < _cost_key(best.cost):  # pragma: no cover - safety net
        best = baseline
    if key is not None and plan_cache is not None:
        plan_cache.store(
            key,
            PlanChoice(best.budgets, best.policies, best.fused_edges),
            metadata={
                "optimizer": optimizer,
                "predicted_total_time": best.cost.total_time,
                "predicted_io_bytes": best.cost.io_bytes,
                "even_total_time": baseline.cost.total_time,
            },
        )
    return _decision(optimizer, best, baseline, evaluator, cache_status), best.compiled


def _decision(
    optimizer: str,
    best: _Evaluation,
    baseline: _Evaluation,
    evaluator: _ProgramEvaluator,
    cache_status: str,
) -> PlanDecision:
    return PlanDecision(
        optimizer=optimizer,
        statement_budgets=best.budgets,
        policies=best.policies,
        predicted_total_time=best.cost.total_time,
        predicted_io_time=best.cost.io_time,
        predicted_io_bytes=best.cost.io_bytes,
        even_total_time=baseline.cost.total_time,
        even_io_time=baseline.cost.io_time,
        even_io_bytes=baseline.cost.io_bytes,
        candidates_evaluated=evaluator.candidates_evaluated,
        cache_status=cache_status,
        fused_edges=best.fused_edges,
    )
