"""Workload protocol, points and the workload registry.

The paper's compilation pipeline (Figure 7) is program-agnostic; this module
makes the *public surface* program-agnostic too.  Since the unified-lowering
refactor a built-in workload is just a thin IR builder: it implements

* ``build_ir(point, params) -> Lowering`` — construct the
  :class:`~repro.core.ir.ProgramIR` of the configured statement plus its
  slab specification,

and the base class supplies the rest of the contract from it:

* ``compile(point, params) -> CompiledWorkload`` — lower the IR through the
  full pipeline (analysis → strip-mining → cost model → reorganization →
  node program) via :func:`repro.core.pipeline.compile_program`,
* ``estimate(compiled, vm) -> RunRecord`` — charge the machine model
  analytically (``ESTIMATE`` mode) through the generic executor, and
* ``execute(compiled, vm, verify) -> RunRecord`` — really run the compiled
  node program on a :class:`~repro.runtime.vm.VirtualMachine`
  (``EXECUTE`` mode).

Workloads with needs outside the compiler's statement classes may still
override the three-step contract directly.  Workloads register themselves
under a short name with :func:`register_workload`; a :class:`WorkloadPoint`
names the workload plus one configuration, so heterogeneous points can
travel through one sweep.
"""

from __future__ import annotations

import abc
import collections
import dataclasses
import threading
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.exceptions import WorkloadError
from repro.machine.parameters import MachineParameters

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.records import RunRecord
    from repro.check.report import CheckReport
    from repro.core.ir import ProgramIR
    from repro.core.pipeline import CompiledProgram
    from repro.hpf.array_desc import ArrayDescriptor
    from repro.runtime.vm import VirtualMachine

__all__ = [
    "WorkloadPoint",
    "Lowering",
    "CompiledWorkload",
    "Workload",
    "register_workload",
    "unregister_workload",
    "get_workload",
    "available_workloads",
]


def _freeze_mapping(value, field: str) -> Optional[Tuple[Tuple[str, object], ...]]:
    """Normalise a mapping (or iterable of pairs) into a sorted hashable tuple.

    Values must themselves be hashable — points key the Session's compile
    cache, so an unhashable value would otherwise surface later as a bare
    ``TypeError`` from dictionary internals instead of a clear error here.
    """
    if value is None:
        return None
    if isinstance(value, Mapping):
        items = value.items()
    else:
        items = tuple(value)
    frozen = tuple(sorted((str(k), v) for k, v in items))
    for key, item in frozen:
        try:
            hash(item)
        except TypeError as exc:
            raise WorkloadError(
                f"WorkloadPoint.{field}[{key!r}] has unhashable value of type "
                f"{type(item).__name__}; points must be hashable — use a hashable "
                "value (e.g. a tuple instead of a list)"
            ) from exc
    return frozen


@dataclasses.dataclass(frozen=True)
class WorkloadPoint:
    """One configuration of one registered workload.

    The generalisation of the GAXPY-only ``SweepPoint``: ``workload`` names a
    registered :class:`Workload`, the remaining fields describe one
    configuration of it.  Points are frozen and hashable so they can key the
    Session's compile cache; mapping-valued fields are normalised to sorted
    tuples of pairs (use :meth:`slab_elements_dict` / :meth:`options_dict`
    to read them back as dictionaries).
    """

    workload: str
    n: int = 0
    nprocs: int = 1
    version: str = ""
    slab_ratio: Optional[float] = None
    slab_elements: Optional[Mapping[str, int]] = None
    dtype: str = "float32"
    options: Mapping[str, object] = dataclasses.field(default_factory=tuple)
    #: plan-optimizer choice for memory-budget compilations
    #: (``"none"`` | ``"greedy"`` | ``"beam"`` | ``"exhaustive"``); ``None``
    #: defers to the owning Session's default.  Part of the point — and
    #: therefore of every compile-cache key — so two budget-allocation
    #: policies never silently share one cached compilation.
    optimize: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.workload:
            raise WorkloadError("a WorkloadPoint needs a workload name")
        if self.nprocs < 1:
            raise WorkloadError(f"nprocs must be positive, got {self.nprocs}")
        if self.n < 0:
            raise WorkloadError(f"n must be non-negative, got {self.n}")
        if self.optimize is not None:
            from repro.planner.search import OPTIMIZERS

            if self.optimize not in OPTIMIZERS:
                raise WorkloadError(
                    f"unknown optimize choice {self.optimize!r} "
                    f"(choose from {sorted(OPTIMIZERS)})"
                )
        object.__setattr__(
            self, "slab_elements", _freeze_mapping(self.slab_elements, "slab_elements")
        )
        object.__setattr__(self, "options", _freeze_mapping(self.options, "options") or ())

    # ------------------------------------------------------------------
    def slab_elements_dict(self) -> Optional[Dict[str, int]]:
        if self.slab_elements is None:
            return None
        return {k: int(v) for k, v in self.slab_elements}

    def options_dict(self) -> Dict[str, object]:
        return dict(self.options)

    def option(self, key: str, default: object = None) -> object:
        return self.options_dict().get(key, default)

    def label(self) -> str:
        parts = [self.workload]
        if self.version:
            parts.append(self.version)
        label = ":".join(parts) + f" N={self.n} P={self.nprocs}"
        if self.slab_ratio is not None:
            label += f" ratio={self.slab_ratio:g}"
        elif self.slab_elements is not None:
            label += " explicit slabs"
        return label


@dataclasses.dataclass(frozen=True)
class Lowering:
    """What :meth:`Workload.build_ir` returns: the IR plus how to lower it.

    Exactly one of ``slab_ratio`` / ``slab_elements`` /
    ``memory_budget_bytes`` selects the slab specification forwarded to
    :func:`repro.core.pipeline.compile_program`.  ``baseline="incore"``
    marks the in-core reference schedule (read each array once, keep it in
    memory), which is costed with the cost model's in-core estimator and
    executed with the in-core engine instead of the slabbed node program.
    """

    ir: "ProgramIR"
    slab_ratio: Optional[float] = None
    slab_elements: Optional[Dict[str, int]] = None
    memory_budget_bytes: Optional[int] = None
    force_strategy: Optional[str] = None
    baseline: Optional[str] = None
    #: statement-fusion mode forwarded to the pipeline (``"off"`` | ``"auto"``
    #: | ``"on"``); ``None`` keeps the pipeline default (``"off"``)
    fusion: Optional[str] = None


@dataclasses.dataclass(frozen=True)
class CompiledWorkload:
    """The result of compiling one workload point.

    Every built-in workload — GAXPY, transpose, elementwise, HPF programs —
    carries the :class:`~repro.core.pipeline.CompiledProgram` its IR lowered
    to in ``program``; ``baseline`` tags reference schedules (``"incore"``)
    that bypass the slabbed node program.  The ``descriptor`` slot is kept
    for workloads that plan against a bare
    :class:`~repro.hpf.array_desc.ArrayDescriptor` outside the compiler.
    Instances are shared by the Session's compile cache — they are frozen and
    must never be mutated by executors.
    """

    workload: "Workload"
    point: WorkloadPoint
    params: MachineParameters
    program: Optional["CompiledProgram"] = None
    descriptor: Optional["ArrayDescriptor"] = None
    baseline: Optional[str] = None
    #: the static plan verifier's frozen report, attached by
    #: :meth:`repro.api.Session.compile` when its check mode is not ``"off"``
    check: Optional["CheckReport"] = None

    @property
    def n(self) -> int:
        return self.point.n

    @property
    def nprocs(self) -> int:
        return self.point.nprocs

    def label(self) -> str:
        return self.point.label()

    # ------------------------------------------------------------------
    def estimate(self, vm: Optional["VirtualMachine"] = None) -> "RunRecord":
        """Charge the machine model analytically and return the record."""
        if vm is None:
            from repro.config import ExecutionMode, RunConfig
            from repro.runtime.vm import VirtualMachine
            vm = VirtualMachine(self.nprocs, self.params, RunConfig(mode=ExecutionMode.ESTIMATE))
        return self.workload.estimate(self, vm)

    def execute(self, vm: "VirtualMachine", verify: bool = True) -> "RunRecord":
        """Really run the workload on ``vm`` (must be in EXECUTE mode)."""
        return self.workload.execute(self, vm, verify)


# Cross-session compile cache: compiled workloads are frozen and shareable,
# so independent Sessions (and the deprecated per-call sweep shims) reuse one
# CompiledWorkload per (workload instance, point, machine parameters).  This
# deliberately sits *below* the Session's per-instance LRU — the same
# two-layer structure the fast path used (Session cache over
# compile_gaxpy_cached), generalized to every workload: the Session layer
# provides per-session hit/miss metrics and bounded lifetime, this layer
# provides process-wide sharing.  Session.cache_info() therefore reports
# session-local reuse, not whether a compile was served from here.
_COMPILE_CACHE: "collections.OrderedDict[tuple, CompiledWorkload]" = collections.OrderedDict()
_COMPILE_CACHE_LOCK = threading.Lock()
_COMPILE_CACHE_CAPACITY = 256


class Workload(abc.ABC):
    """The uniform contract every registered kernel family implements.

    Built-in workloads implement only :meth:`build_ir`; the base class lowers
    the returned IR through the Figure-7 pipeline and drives both execution
    modes with the generic node-program executor.  ``compile`` / ``estimate``
    / ``execute`` remain overridable for workloads that live outside the
    compiler's statement classes.
    """

    #: registry name; set by :func:`register_workload`.
    name: str = ""
    #: accepted ``WorkloadPoint.version`` strings ("" always means the default).
    versions: Tuple[str, ...] = ("",)
    #: whether out-of-core points must carry a slab specification.
    requires_slabs: bool = False

    # ------------------------------------------------------------------
    def validate(self, point: WorkloadPoint) -> None:
        """Reject points that do not satisfy this workload's contract."""
        if point.version not in self.versions:
            raise WorkloadError(
                f"workload {self.name!r} has no version {point.version!r} "
                f"(choose from {sorted(v for v in self.versions if v) or ['<default>']})"
            )
        if self.requires_slabs and point.slab_ratio is None and point.slab_elements is None:
            raise WorkloadError(
                f"workload {self.name!r} points need a slab_ratio or slab_elements"
            )

    # ------------------------------------------------------------------
    # the one hook a built-in workload implements
    # ------------------------------------------------------------------
    def build_ir(self, point: WorkloadPoint, params: MachineParameters) -> Lowering:
        """Build the point's :class:`~repro.core.ir.ProgramIR` + slab specification."""
        raise NotImplementedError(
            f"workload {self.name or type(self).__name__!r} implements neither "
            "build_ir() nor a custom compile/estimate/execute trio"
        )

    # ------------------------------------------------------------------
    # compilation through the unified pipeline
    # ------------------------------------------------------------------
    def compile(self, point: WorkloadPoint, params: MachineParameters) -> CompiledWorkload:
        """Lower the point's IR through the full pipeline (globally cached)."""
        key = (self, point, params)
        with _COMPILE_CACHE_LOCK:
            cached = _COMPILE_CACHE.get(key)
            if cached is not None:
                _COMPILE_CACHE.move_to_end(key)
                return cached
        compiled = self._compile_uncached(point, params)
        with _COMPILE_CACHE_LOCK:
            _COMPILE_CACHE[key] = compiled
            _COMPILE_CACHE.move_to_end(key)
            while len(_COMPILE_CACHE) > _COMPILE_CACHE_CAPACITY:
                _COMPILE_CACHE.popitem(last=False)
        return compiled

    def _compile_uncached(self, point: WorkloadPoint, params: MachineParameters) -> CompiledWorkload:
        from repro.core.pipeline import compile_program

        lowering = self.build_ir(point, params)
        kwargs: Dict[str, object] = {}
        if lowering.slab_ratio is not None:
            kwargs["slab_ratio"] = lowering.slab_ratio
        if lowering.slab_elements is not None:
            kwargs["slab_elements"] = dict(lowering.slab_elements)
        if lowering.memory_budget_bytes is not None:
            kwargs["memory_budget_bytes"] = int(lowering.memory_budget_bytes)
        if lowering.force_strategy is not None:
            kwargs["force_strategy"] = lowering.force_strategy
        if lowering.fusion is not None:
            kwargs["fusion"] = lowering.fusion
        if point.optimize is not None:
            kwargs["optimizer"] = point.optimize
        program = compile_program(lowering.ir, params, **kwargs)
        return CompiledWorkload(
            workload=self,
            point=self._resolve_point(point, program),
            params=params,
            program=program,
            baseline=lowering.baseline,
        )

    @staticmethod
    def _is_whole_program(program: object) -> bool:
        """True for multi-statement :class:`CompiledWholeProgram` results."""
        from repro.core.pipeline import CompiledWholeProgram

        return isinstance(program, CompiledWholeProgram)

    @staticmethod
    def _resolve_point(point: WorkloadPoint, program: "CompiledProgram") -> WorkloadPoint:
        """Fill ``n`` / ``nprocs`` from the compiled program when unspecified."""
        if point.n:
            return point
        from repro.core.ir import ReductionStatement

        if Workload._is_whole_program(program):
            reference = program.program.result_arrays()[-1]
        else:
            statement = program.program.statement
            if isinstance(statement, ReductionStatement):
                reference = program.analysis.streamed
            else:
                reference = statement.result.array
        return dataclasses.replace(
            point,
            n=int(program.program.arrays[reference].shape[0]),
            nprocs=int(program.nprocs),
        )

    # ------------------------------------------------------------------
    # records
    # ------------------------------------------------------------------
    def record_version(self, compiled: CompiledWorkload) -> str:
        """The version string reported in records (strategy choice for ``""``)."""
        if compiled.point.version or compiled.program is None:
            return compiled.point.version
        if self._is_whole_program(compiled.program):
            return "program"
        return compiled.program.plan.strategy.value

    def plan_info(self, compiled: CompiledWorkload) -> Dict[str, object]:
        """The record's ``plan`` mapping: chosen plan plus predicted cost.

        Reports the compiled program's predicted :class:`PlanCost` (so
        predicted-vs-charged stays checkable on every record) and, when the
        plan optimizer searched a memory budget, its
        :class:`~repro.planner.search.PlanDecision` — per-statement budgets,
        policies, the even-split baseline and the plan-cache status.
        """
        program = compiled.program
        if program is None:
            return {}
        cost = program.predicted_cost
        decision = getattr(program, "planner", None)
        info: Dict[str, object] = {
            # What actually happened: the attached decision's optimizer, or
            # "none" when no plan search ran (slab_ratio / slab_elements
            # compilations ignore the session's optimize default).
            "optimizer": decision.optimizer if decision is not None else "none",
            "strategy": cost.label
            or (cost.strategy.value if cost.strategy is not None else "in-core"),
            "predicted_seconds": cost.total_time,
            "predicted_io_time": cost.io_time,
            "predicted_io_bytes_per_proc": cost.io_bytes,
        }
        if decision is not None:
            info.update(
                statement_budgets=tuple(decision.statement_budgets),
                policies=tuple(decision.policies),
                fused_edges=tuple(decision.fused_edges),
                even_predicted_seconds=decision.even_total_time,
                even_predicted_io_bytes_per_proc=decision.even_io_bytes,
                planner_cache=decision.cache_status,
                candidates_evaluated=decision.candidates_evaluated,
            )
        report = compiled.check or getattr(program, "check", None)
        if report is not None:
            # The static verifier's verdict travels with every run that used
            # this plan.
            info["check"] = report.summary()
        return info

    def _record(
        self,
        compiled: CompiledWorkload,
        *,
        mode: str,
        simulated_seconds: float,
        time_breakdown: Mapping[str, float],
        io_statistics: Mapping[str, float],
        verified: Optional[bool] = None,
        max_abs_error: Optional[float] = None,
        statements: Sequence[Mapping[str, float]] = (),
        resilience: Optional[Mapping[str, float]] = None,
    ) -> "RunRecord":
        from repro.api.records import RunRecord

        point = compiled.point
        return RunRecord.from_machine(
            workload=self.name,
            label=point.label(),
            version=self.record_version(compiled),
            mode=mode,
            n=point.n,
            nprocs=point.nprocs,
            dtype=point.dtype,
            slab_ratio=point.slab_ratio,
            simulated_seconds=simulated_seconds,
            time_breakdown=time_breakdown,
            io_statistics=io_statistics,
            verified=verified,
            max_abs_error=max_abs_error,
            statements=statements,
            plan=self.plan_info(compiled),
            resilience=resilience,
        )

    # ------------------------------------------------------------------
    # input generation (EXECUTE mode)
    # ------------------------------------------------------------------
    def generate_inputs(self, compiled: CompiledWorkload, seed: int):
        """Reproducible dense operands for one EXECUTE-mode run.

        Reduction programs get a
        :class:`~repro.runtime.executor.ReductionInputs` (streamed operand
        drawn first, then the coefficient; single-operand statements share
        one draw); other statements get a mapping of operand array name to
        dense data, drawn in statement order.
        """
        import numpy as np

        from repro.core.ir import ReductionStatement
        from repro.runtime.executor import ReductionInputs

        program = compiled.program
        arrays = program.program.arrays
        rng = np.random.default_rng(seed)
        if self._is_whole_program(program):
            # Dense data for the *program inputs* only: intermediates are
            # produced by the run itself and reused from their LAFs.
            return {
                name: rng.standard_normal(arrays[name].shape).astype(arrays[name].dtype)
                for name in program.program.input_arrays()
            }
        statement = program.program.statement
        if isinstance(statement, ReductionStatement):
            analysis = program.analysis
            s_desc = arrays[analysis.streamed]
            streamed = rng.standard_normal(s_desc.shape).astype(s_desc.dtype)
            if analysis.coefficient == analysis.streamed:
                coefficient = streamed
            else:
                b_desc = arrays[analysis.coefficient]
                coefficient = rng.standard_normal(b_desc.shape).astype(b_desc.dtype)
            return ReductionInputs(streamed=streamed, coefficient=coefficient)
        dense = {}
        for ref in statement.operands:
            if ref.array not in dense:
                desc = arrays[ref.array]
                dense[ref.array] = rng.standard_normal(desc.shape).astype(desc.dtype)
        return dense

    # ------------------------------------------------------------------
    # the two evaluation modes
    # ------------------------------------------------------------------
    def estimate(self, compiled: CompiledWorkload, vm: "VirtualMachine") -> "RunRecord":
        """Charge ``vm``'s machine analytically and return the record."""
        from repro.core.ir import ReductionStatement
        from repro.runtime.executor import NodeProgramExecutor, ProgramExecutor

        program = self._require_program(compiled)
        if compiled.baseline == "incore":
            return self._estimate_incore(compiled)
        if self._is_whole_program(program):
            # Whole programs drive every statement's slab loops charge-only,
            # so ESTIMATE counters equal an EXECUTE run's exactly.
            result = ProgramExecutor(program).estimate(vm)
        elif isinstance(program.program.statement, ReductionStatement):
            result = NodeProgramExecutor(program).estimate(machine=vm.machine)
        else:
            # Elementwise/transpose loop structure *is* the cost model: run
            # the same slab loops charge-only on the caller's VM.
            result = NodeProgramExecutor(program).run(vm, None, verify=False)
        return self._record(
            compiled,
            mode="estimate",
            simulated_seconds=result.simulated_seconds,
            time_breakdown=result.time_breakdown,
            io_statistics=result.io_statistics,
            statements=result.statements,
        )

    def _estimate_incore(self, compiled: CompiledWorkload) -> "RunRecord":
        from repro.core.cost_model import CostModel

        point = compiled.point
        cost = CostModel(compiled.params, point.nprocs).estimate_incore(
            compiled.program.analysis
        )
        read_bytes = sum(c.fetch_elements for c in cost.arrays.values()) * cost.itemsize
        write_bytes = sum(c.write_elements for c in cost.arrays.values()) * cost.itemsize
        return self._record(
            compiled,
            mode="estimate",
            simulated_seconds=cost.total_time,
            time_breakdown={"io": cost.io_time, "compute": cost.compute_time,
                            "comm": cost.comm_time},
            io_statistics={"io_requests_per_proc": cost.io_requests,
                           "bytes_read_per_proc": read_bytes,
                           "bytes_written_per_proc": write_bytes},
        )

    def execute(self, compiled: CompiledWorkload, vm: "VirtualMachine", verify: bool) -> "RunRecord":
        """Really execute on ``vm`` and return the record."""
        from repro.runtime.executor import (
            NodeProgramExecutor,
            ProgramExecutor,
            run_reduction_incore,
        )

        program = self._require_program(compiled)
        inputs = self.generate_inputs(compiled, vm.config.seed)
        if compiled.baseline == "incore":
            result = run_reduction_incore(vm, program, inputs, verify)
        elif self._is_whole_program(program):
            result = ProgramExecutor(program).execute(vm, inputs, verify)
        else:
            result = NodeProgramExecutor(program).execute(vm, inputs, verify)
        return self._record(
            compiled,
            mode="execute",
            simulated_seconds=result.simulated_seconds,
            time_breakdown=result.time_breakdown,
            io_statistics=result.io_statistics,
            verified=result.verified,
            max_abs_error=result.max_abs_error,
            statements=result.statements,
            resilience=vm.resilience.as_dict(),
        )

    def _require_program(self, compiled: CompiledWorkload) -> "CompiledProgram":
        if compiled.program is None:
            raise WorkloadError(
                f"workload {self.name!r} compiled without a program; override "
                "estimate/execute or return a Lowering from build_ir()"
            )
        return compiled.program


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------
_REGISTRY: Dict[str, Workload] = {}


def register_workload(name: str):
    """Class decorator registering a :class:`Workload` subclass under ``name``.

    ::

        @register_workload("gaxpy")
        class GaxpyWorkload(Workload):
            ...
    """

    def decorator(cls):
        if not (isinstance(cls, type) and issubclass(cls, Workload)):
            raise WorkloadError(f"register_workload expects a Workload subclass, got {cls!r}")
        if name in _REGISTRY:
            raise WorkloadError(f"workload {name!r} is already registered")
        instance = cls()
        instance.name = name
        _REGISTRY[name] = instance
        return cls

    return decorator


def unregister_workload(name: str) -> None:
    """Remove a registered workload (intended for tests and plugins)."""
    _REGISTRY.pop(name, None)


def _ensure_builtins() -> None:
    # Imported lazily to break the cycle: builtin workloads import this module.
    import repro.api.builtin  # noqa: F401


def get_workload(name: str) -> Workload:
    """Look up a registered workload by name."""
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError as exc:
        raise WorkloadError(
            f"unknown workload {name!r} (registered: {', '.join(available_workloads())})"
        ) from exc


def available_workloads() -> List[str]:
    """Sorted names of every registered workload."""
    _ensure_builtins()
    return sorted(_REGISTRY)
