"""Workload protocol, points and the workload registry.

The paper's compilation pipeline (Figure 7) is program-agnostic; this module
makes the *public surface* program-agnostic too.  A :class:`Workload` gives a
kernel family a uniform three-step contract:

* ``compile(point, params) -> CompiledWorkload`` — run whatever compilation
  or planning the workload needs for one configuration point,
* ``estimate(compiled, vm) -> RunRecord`` — charge the machine model
  analytically (``ESTIMATE`` mode), and
* ``execute(compiled, vm, verify) -> RunRecord`` — really run the kernel on
  a :class:`~repro.runtime.vm.VirtualMachine` (``EXECUTE`` mode).

Workloads register themselves under a short name with
:func:`register_workload`; a :class:`WorkloadPoint` names the workload plus
one configuration, so heterogeneous points can travel through one sweep.
"""

from __future__ import annotations

import abc
import dataclasses
from typing import Dict, List, Mapping, Optional, Tuple, TYPE_CHECKING

from repro.exceptions import WorkloadError
from repro.machine.parameters import MachineParameters

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.records import RunRecord
    from repro.core.pipeline import CompiledProgram
    from repro.hpf.array_desc import ArrayDescriptor
    from repro.runtime.vm import VirtualMachine

__all__ = [
    "WorkloadPoint",
    "CompiledWorkload",
    "Workload",
    "register_workload",
    "unregister_workload",
    "get_workload",
    "available_workloads",
]


def _freeze_mapping(value, field: str) -> Optional[Tuple[Tuple[str, object], ...]]:
    """Normalise a mapping (or iterable of pairs) into a sorted hashable tuple.

    Values must themselves be hashable — points key the Session's compile
    cache, so an unhashable value would otherwise surface later as a bare
    ``TypeError`` from dictionary internals instead of a clear error here.
    """
    if value is None:
        return None
    if isinstance(value, Mapping):
        items = value.items()
    else:
        items = tuple(value)
    frozen = tuple(sorted((str(k), v) for k, v in items))
    for key, item in frozen:
        try:
            hash(item)
        except TypeError as exc:
            raise WorkloadError(
                f"WorkloadPoint.{field}[{key!r}] has unhashable value of type "
                f"{type(item).__name__}; points must be hashable — use a hashable "
                "value (e.g. a tuple instead of a list)"
            ) from exc
    return frozen


@dataclasses.dataclass(frozen=True)
class WorkloadPoint:
    """One configuration of one registered workload.

    The generalisation of the GAXPY-only ``SweepPoint``: ``workload`` names a
    registered :class:`Workload`, the remaining fields describe one
    configuration of it.  Points are frozen and hashable so they can key the
    Session's compile cache; mapping-valued fields are normalised to sorted
    tuples of pairs (use :meth:`slab_elements_dict` / :meth:`options_dict`
    to read them back as dictionaries).
    """

    workload: str
    n: int = 0
    nprocs: int = 1
    version: str = ""
    slab_ratio: Optional[float] = None
    slab_elements: Optional[Mapping[str, int]] = None
    dtype: str = "float32"
    options: Mapping[str, object] = dataclasses.field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.workload:
            raise WorkloadError("a WorkloadPoint needs a workload name")
        if self.nprocs < 1:
            raise WorkloadError(f"nprocs must be positive, got {self.nprocs}")
        if self.n < 0:
            raise WorkloadError(f"n must be non-negative, got {self.n}")
        object.__setattr__(
            self, "slab_elements", _freeze_mapping(self.slab_elements, "slab_elements")
        )
        object.__setattr__(self, "options", _freeze_mapping(self.options, "options") or ())

    # ------------------------------------------------------------------
    def slab_elements_dict(self) -> Optional[Dict[str, int]]:
        if self.slab_elements is None:
            return None
        return {k: int(v) for k, v in self.slab_elements}

    def options_dict(self) -> Dict[str, object]:
        return dict(self.options)

    def option(self, key: str, default: object = None) -> object:
        return self.options_dict().get(key, default)

    def label(self) -> str:
        parts = [self.workload]
        if self.version:
            parts.append(self.version)
        label = ":".join(parts) + f" N={self.n} P={self.nprocs}"
        if self.slab_ratio is not None:
            label += f" ratio={self.slab_ratio:g}"
        elif self.slab_elements is not None:
            label += " explicit slabs"
        return label


@dataclasses.dataclass(frozen=True)
class CompiledWorkload:
    """The result of compiling one workload point.

    Compiler-backed workloads (GAXPY, HPF programs) carry a
    :class:`~repro.core.pipeline.CompiledProgram` in ``program``;
    descriptor-backed kernels (transpose, elementwise) carry the
    :class:`~repro.hpf.array_desc.ArrayDescriptor` they operate on.
    Instances are shared by the Session's compile cache — they are frozen and
    must never be mutated by executors.
    """

    workload: "Workload"
    point: WorkloadPoint
    params: MachineParameters
    program: Optional["CompiledProgram"] = None
    descriptor: Optional["ArrayDescriptor"] = None

    @property
    def n(self) -> int:
        return self.point.n

    @property
    def nprocs(self) -> int:
        return self.point.nprocs

    def label(self) -> str:
        return self.point.label()

    # ------------------------------------------------------------------
    def estimate(self, vm: Optional["VirtualMachine"] = None) -> "RunRecord":
        """Charge the machine model analytically and return the record."""
        if vm is None:
            from repro.config import ExecutionMode, RunConfig
            from repro.runtime.vm import VirtualMachine
            vm = VirtualMachine(self.nprocs, self.params, RunConfig(mode=ExecutionMode.ESTIMATE))
        return self.workload.estimate(self, vm)

    def execute(self, vm: "VirtualMachine", verify: bool = True) -> "RunRecord":
        """Really run the workload on ``vm`` (must be in EXECUTE mode)."""
        return self.workload.execute(self, vm, verify)


class Workload(abc.ABC):
    """The uniform contract every registered kernel family implements."""

    #: registry name; set by :func:`register_workload`.
    name: str = ""
    #: accepted ``WorkloadPoint.version`` strings ("" always means the default).
    versions: Tuple[str, ...] = ("",)
    #: whether out-of-core points must carry a slab specification.
    requires_slabs: bool = False

    # ------------------------------------------------------------------
    def validate(self, point: WorkloadPoint) -> None:
        """Reject points that do not satisfy this workload's contract."""
        if point.version not in self.versions:
            raise WorkloadError(
                f"workload {self.name!r} has no version {point.version!r} "
                f"(choose from {sorted(v for v in self.versions if v) or ['<default>']})"
            )
        if self.requires_slabs and point.slab_ratio is None and point.slab_elements is None:
            raise WorkloadError(
                f"workload {self.name!r} points need a slab_ratio or slab_elements"
            )

    @abc.abstractmethod
    def compile(self, point: WorkloadPoint, params: MachineParameters) -> CompiledWorkload:
        """Compile one point (called through the Session's LRU cache)."""

    @abc.abstractmethod
    def estimate(self, compiled: CompiledWorkload, vm: "VirtualMachine") -> "RunRecord":
        """Charge ``vm``'s machine analytically and return the record."""

    @abc.abstractmethod
    def execute(self, compiled: CompiledWorkload, vm: "VirtualMachine", verify: bool) -> "RunRecord":
        """Really execute on ``vm`` and return the record."""


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------
_REGISTRY: Dict[str, Workload] = {}


def register_workload(name: str):
    """Class decorator registering a :class:`Workload` subclass under ``name``.

    ::

        @register_workload("gaxpy")
        class GaxpyWorkload(Workload):
            ...
    """

    def decorator(cls):
        if not (isinstance(cls, type) and issubclass(cls, Workload)):
            raise WorkloadError(f"register_workload expects a Workload subclass, got {cls!r}")
        if name in _REGISTRY:
            raise WorkloadError(f"workload {name!r} is already registered")
        instance = cls()
        instance.name = name
        _REGISTRY[name] = instance
        return cls

    return decorator


def unregister_workload(name: str) -> None:
    """Remove a registered workload (intended for tests and plugins)."""
    _REGISTRY.pop(name, None)


def _ensure_builtins() -> None:
    # Imported lazily to break the cycle: builtin workloads import this module.
    import repro.api.builtin  # noqa: F401


def get_workload(name: str) -> Workload:
    """Look up a registered workload by name."""
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError as exc:
        raise WorkloadError(
            f"unknown workload {name!r} (registered: {', '.join(available_workloads())})"
        ) from exc


def available_workloads() -> List[str]:
    """Sorted names of every registered workload."""
    _ensure_builtins()
    return sorted(_REGISTRY)
