"""The unified Workload/Session API.

One kernel-agnostic surface over the whole library — every workload goes
through the same compile → run → sweep machinery:

* :class:`WorkloadPoint` — one configuration of one registered workload
  (the generalisation of the GAXPY-only ``SweepPoint``),
* :class:`Workload` + :func:`register_workload` — the contract a kernel
  family implements to become sweepable: a thin ``build_ir(point, params)``
  builder returning a :class:`Lowering`, from which the base class drives
  the unified ``ProgramIR → NodeProgram → executor`` pipeline in both
  modes (built-ins: ``gaxpy``, ``transpose``, ``elementwise`` and the
  mini-HPF ``hpf`` frontend),
* :class:`CompiledWorkload` — the cached, frozen result of compiling one
  point,
* :class:`RunRecord` — the shared, typed result schema (simulated seconds,
  time breakdown, per-processor I/O statistics, verified flag), and
* :class:`Session` — the facade owning machine parameters, run
  configuration, the compile LRU cache and the thread-pool sweep driver.

The legacy GAXPY-specific entry points (``repro.analysis.sweep.sweep_gaxpy``
and friends) remain as thin deprecated shims over this package.
"""

from repro.api.records import RunRecord
from repro.api.workload import (
    CompiledWorkload,
    Lowering,
    Workload,
    WorkloadPoint,
    available_workloads,
    get_workload,
    register_workload,
    unregister_workload,
)
from repro.api.session import Session, SweepResult

# Importing the built-ins registers them (gaxpy, transpose, elementwise, hpf).
import repro.api.builtin  # noqa: F401  (imported for its registration side effect)

__all__ = [
    "RunRecord",
    "WorkloadPoint",
    "Lowering",
    "CompiledWorkload",
    "Workload",
    "Session",
    "SweepResult",
    "register_workload",
    "unregister_workload",
    "get_workload",
    "available_workloads",
]
