"""The shared result schema of the Session API.

Every workload — GAXPY, transpose, elementwise, programs entering through the
mini-HPF frontend — reports one :class:`RunRecord` per evaluation, in both
``ESTIMATE`` and ``EXECUTE`` mode.  The record carries only *simulated*
quantities (machine-model seconds, per-processor I/O statistics), never host
wall-clock time, so records from a sequential sweep and a thread-pool sweep
of the same points are per-field identical.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Mapping, Optional, Sequence, Tuple

__all__ = ["RunRecord"]


@dataclasses.dataclass(frozen=True)
class RunRecord:
    """Outcome of evaluating one :class:`~repro.api.WorkloadPoint`.

    Parameters
    ----------
    workload / label / version:
        Which registered workload produced the record, the point's display
        label, and the program version (e.g. ``"row"``); all strings — the
        legacy sweep records stuffed the version string into a
        ``Dict[str, float]``, which this schema replaces.
    mode:
        ``"estimate"`` or ``"execute"``.
    n / nprocs / dtype / slab_ratio:
        The configuration of the evaluated point.
    simulated_seconds / io_time / compute_time / comm_time:
        The machine model's critical-path time and its breakdown.
    io_requests_per_proc / io_read_bytes_per_proc / io_write_bytes_per_proc:
        The paper's per-processor I/O metrics (maximum over processors).
    verified:
        ``True``/``False`` when an ``EXECUTE``-mode run compared its result
        against a dense reference, ``None`` when no verification happened
        (``ESTIMATE`` mode, or ``verify=False``).
    max_abs_error:
        Largest absolute deviation from the reference, when measured.
    statements:
        Whole-program evaluations carry one mapping of charged-cost deltas
        per statement (simulated ``seconds``, the time breakdown and the
        I/O counters attributable to that statement); single-statement
        workloads leave it empty.
    plan:
        The chosen access plan and its *predicted* cost: the plan optimizer
        used (``"none"`` .. ``"exhaustive"``), the chosen strategy label, the
        model's predicted seconds / I/O bytes per processor and — when the
        planner searched a memory budget — the per-statement byte budgets,
        allocation policies, the even-split baseline cost and the plan-cache
        status.  Comparing ``plan["predicted_io_bytes_per_proc"]`` against
        the charged ``io_bytes_per_proc`` keeps ESTIMATE/EXECUTE parity
        checkable from the record alone.
    resilience:
        Host-side resilience counters of an ``EXECUTE`` run — ``retries``,
        ``corruptions_detected``, ``slabs_recovered``,
        ``statements_skipped`` and friends.  Strictly separate from the
        charged I/O statistics: a run that retried transient faults reports
        the same simulated seconds and byte counters as a clean run.
    error:
        ``"ExceptionType: message"`` when the point failed to evaluate and
        the sweep ran with ``on_error="skip"``; ``None`` for successful
        evaluations.
    extras:
        Workload-specific numeric extras (kept out of the typed core).
    """

    workload: str
    label: str
    version: str
    mode: str
    n: int
    nprocs: int
    dtype: str
    simulated_seconds: float
    io_time: float
    compute_time: float
    comm_time: float
    io_requests_per_proc: float
    io_read_bytes_per_proc: float
    io_write_bytes_per_proc: float
    slab_ratio: Optional[float] = None
    verified: Optional[bool] = None
    max_abs_error: Optional[float] = None
    statements: Tuple[Mapping[str, float], ...] = ()
    plan: Mapping[str, object] = dataclasses.field(default_factory=dict)
    resilience: Mapping[str, float] = dataclasses.field(default_factory=dict)
    error: Optional[str] = None
    extras: Mapping[str, float] = dataclasses.field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def io_bytes_per_proc(self) -> float:
        """Total bytes moved per processor (reads + writes)."""
        return self.io_read_bytes_per_proc + self.io_write_bytes_per_proc

    @property
    def time_breakdown(self) -> Dict[str, float]:
        return {"io": self.io_time, "compute": self.compute_time, "comm": self.comm_time}

    @property
    def ok(self) -> bool:
        """True unless the point failed or verification ran and failed."""
        return self.error is None and self.verified is not False

    # ------------------------------------------------------------------
    @classmethod
    def from_machine(
        cls,
        *,
        workload: str,
        label: str,
        version: str,
        mode: str,
        n: int,
        nprocs: int,
        dtype: str,
        simulated_seconds: float,
        time_breakdown: Mapping[str, float],
        io_statistics: Mapping[str, float],
        slab_ratio: Optional[float] = None,
        verified: Optional[bool] = None,
        max_abs_error: Optional[float] = None,
        statements: Sequence[Mapping[str, float]] = (),
        plan: Optional[Mapping[str, object]] = None,
        resilience: Optional[Mapping[str, float]] = None,
        error: Optional[str] = None,
        extras: Optional[Mapping[str, float]] = None,
    ) -> "RunRecord":
        """Build a record from a machine's time breakdown and I/O statistics."""
        return cls(
            workload=workload,
            label=label,
            version=version,
            mode=mode,
            n=int(n),
            nprocs=int(nprocs),
            dtype=dtype,
            simulated_seconds=simulated_seconds,
            io_time=time_breakdown.get("io", 0.0),
            compute_time=time_breakdown.get("compute", 0.0),
            comm_time=time_breakdown.get("comm", 0.0),
            io_requests_per_proc=io_statistics.get("io_requests_per_proc", 0.0),
            io_read_bytes_per_proc=io_statistics.get("bytes_read_per_proc", 0.0),
            io_write_bytes_per_proc=io_statistics.get("bytes_written_per_proc", 0.0),
            slab_ratio=slab_ratio,
            verified=verified,
            max_abs_error=max_abs_error,
            statements=tuple(dict(s) for s in statements),
            plan=dict(plan or {}),
            resilience=dict(resilience or {}),
            error=error,
            extras=dict(extras or {}),
        )

    # ------------------------------------------------------------------
    # lossless JSON round-trip (the job service's wire format)
    # ------------------------------------------------------------------
    def to_json_dict(self) -> Dict[str, object]:
        """Every field of the record, as a JSON-serialisable dictionary.

        Unlike :meth:`to_dict` (a flattened report for humans and data
        frames) this is a *lossless* encoding: :meth:`from_json_dict`
        rebuilds an equal record.  JSON floats round-trip exactly
        (``json.dumps`` emits the shortest representation that parses back
        to the same double), so a record shipped over the job service's
        HTTP surface is bit-identical — in every charged field — to the
        record the executor produced.
        """
        out = dataclasses.asdict(self)
        out["statements"] = [dict(s) for s in self.statements]
        return out

    @classmethod
    def from_json_dict(cls, data: Mapping[str, object]) -> "RunRecord":
        """Rebuild a record encoded by :meth:`to_json_dict`.

        Tuple-valued entries arrive as JSON arrays; the ``statements`` tuple
        and the top-level tuple values of ``plan`` (statement budgets,
        policies, fused edges) are converted back, so the round-tripped
        record compares equal field-by-field to the original.
        """
        fields = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - fields
        if unknown:
            raise ValueError(f"unknown RunRecord fields: {sorted(unknown)}")
        payload = dict(data)
        payload["statements"] = tuple(
            dict(s) for s in payload.get("statements", ())
        )
        plan = payload.get("plan") or {}
        payload["plan"] = {
            key: tuple(value) if isinstance(value, list) else value
            for key, value in dict(plan).items()
        }
        payload["resilience"] = dict(payload.get("resilience") or {})
        payload["extras"] = dict(payload.get("extras") or {})
        return cls(**payload)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Flatten the record into a plain dictionary (strings stay strings)."""
        out: Dict[str, object] = {
            "workload": self.workload,
            "label": self.label,
            "version": self.version,
            "mode": self.mode,
            "n": self.n,
            "nprocs": self.nprocs,
            "dtype": self.dtype,
            "slab_ratio": self.slab_ratio,
            "time": self.simulated_seconds,
            "io_time": self.io_time,
            "compute_time": self.compute_time,
            "comm_time": self.comm_time,
            "io_requests_per_proc": self.io_requests_per_proc,
            "io_read_bytes_per_proc": self.io_read_bytes_per_proc,
            "io_write_bytes_per_proc": self.io_write_bytes_per_proc,
            "io_bytes_per_proc": self.io_bytes_per_proc,
            "verified": self.verified,
            "max_abs_error": self.max_abs_error,
        }
        if self.statements:
            out["statements"] = [dict(s) for s in self.statements]
        if self.plan:
            out["plan"] = dict(self.plan)
        # Quiet runs stay byte-identical to pre-resilience records: the
        # counters only appear when something actually happened.
        if any(self.resilience.values()):
            out["resilience"] = dict(self.resilience)
        if self.error is not None:
            out["error"] = self.error
        out.update(self.extras)
        return out

    def describe(self) -> str:
        if self.error is not None:
            return f"{self.label} [{self.mode}]: FAILED — {self.error}"
        lines = [
            f"{self.label} [{self.mode}]: {self.simulated_seconds:.2f} simulated seconds",
            f"  io={self.io_time:.2f}s compute={self.compute_time:.2f}s comm={self.comm_time:.2f}s",
            f"  I/O requests/proc={self.io_requests_per_proc:.0f}, "
            f"{self.io_bytes_per_proc / 1e6:.2f} MB moved/proc",
        ]
        if self.verified is not None:
            err = "" if self.max_abs_error is None or math.isnan(self.max_abs_error) else (
                f" (max |error| = {self.max_abs_error:.2e})"
            )
            lines.append(f"  verified: {self.verified}{err}")
        return "\n".join(lines)
