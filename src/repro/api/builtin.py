"""The built-in workloads of the Session API.

Four kernel families register themselves here:

* ``gaxpy`` — the paper's out-of-core GAXPY matrix multiplication in its
  column-slab, row-slab and in-core versions,
* ``transpose`` — out-of-core transpose (all-to-all exchange volume),
* ``elementwise`` — out-of-core elementwise operations (no communication),
* ``hpf`` — any program entering through the mini-HPF source frontend.

Since the unified-lowering refactor every workload is a *thin IR builder*:
it implements :meth:`~repro.api.Workload.build_ir`, returning the
:class:`~repro.core.ir.ProgramIR` of the configured statement plus its slab
specification, and the shared base class lowers that through the single
``ProgramIR → strip-mine → cost model → reorganize → NodeProgram →
executor`` pipeline in both ``ESTIMATE`` and ``EXECUTE`` modes.  Every
workload reports the same :class:`~repro.api.RunRecord` schema, which is
what lets :meth:`Session.sweep` evaluate heterogeneous point lists in one
call.
"""

from __future__ import annotations

from repro.api.workload import Lowering, Workload, WorkloadPoint, register_workload
from repro.exceptions import WorkloadError
from repro.machine.parameters import MachineParameters

__all__ = [
    "GaxpyWorkload",
    "TransposeWorkload",
    "ElementwiseWorkload",
    "HpfWorkload",
]


# ---------------------------------------------------------------------------
# gaxpy
# ---------------------------------------------------------------------------
@register_workload("gaxpy")
class GaxpyWorkload(Workload):
    """The paper's GAXPY matrix multiplication.

    ``version`` selects the program: ``"column"`` (the naively compiled
    Figure 9 schedule), ``"row"`` (the reorganized Figure 12 schedule),
    ``"incore"`` (the in-core baseline), or ``""`` — the default — which
    lets the compiler's cost model choose between column and row slabs;
    the record's ``version`` then reports the chosen strategy.
    """

    versions = ("", "column", "row", "incore")
    requires_slabs = False  # checked per-version in validate()

    def validate(self, point: WorkloadPoint) -> None:
        super().validate(point)
        if point.n <= 0:
            raise WorkloadError("gaxpy points need a positive problem size n")
        if point.version != "incore" and point.slab_ratio is None and point.slab_elements is None:
            raise WorkloadError("out-of-core gaxpy points need a slab_ratio or slab_elements")

    def build_ir(self, point: WorkloadPoint, params: MachineParameters) -> Lowering:
        from repro.core.ir import build_gaxpy_ir

        force = point.version if point.version in ("column", "row") else None
        slab_elements = point.slab_elements_dict()
        ratio = point.slab_ratio if point.version != "incore" else 1.0
        return Lowering(
            ir=build_gaxpy_ir(point.n, point.nprocs, dtype=point.dtype),
            slab_ratio=ratio if slab_elements is None else None,
            slab_elements=slab_elements,
            force_strategy=force,
            baseline="incore" if point.version == "incore" else None,
        )


# ---------------------------------------------------------------------------
# transpose
# ---------------------------------------------------------------------------
@register_workload("transpose")
class TransposeWorkload(Workload):
    """Out-of-core transpose with both operands column-block distributed.

    The slab size comes from ``slab_ratio`` (fraction of the local columns
    streamed per slab) or the ``cols_per_slab`` option (default 8, used when
    neither is given); per-array ``slab_elements`` mappings do not apply to
    this single-array kernel and are rejected.
    """

    versions = ("",)

    def validate(self, point: WorkloadPoint) -> None:
        super().validate(point)
        if point.n <= 0:
            raise WorkloadError("transpose points need a positive problem size n")
        if point.slab_elements is not None:
            raise WorkloadError(
                "transpose points take slab_ratio or the cols_per_slab option, "
                "not a per-array slab_elements mapping"
            )
        if point.slab_ratio is not None and point.option("cols_per_slab") is not None:
            raise WorkloadError("give transpose points slab_ratio or cols_per_slab, not both")

    def record_version(self, compiled) -> str:
        return compiled.point.version  # always ""; no strategy choice exists

    def build_ir(self, point: WorkloadPoint, params: MachineParameters) -> Lowering:
        from repro.core.ir import build_transpose_ir

        ir = build_transpose_ir(
            point.n, point.nprocs, dtype=point.dtype, source="t_src", target="t_dst"
        )
        descriptor = ir.arrays["t_src"]
        if point.slab_ratio is not None:
            # Read the real (ceil-based block distribution) local width from
            # the descriptor; n // nprocs would under-size it for uneven n.
            local_cols = max(descriptor.local_shape(r)[1] for r in range(point.nprocs))
            lines = max(int(local_cols * point.slab_ratio), 1)
        else:
            lines = int(point.option("cols_per_slab", 8))
        rows = max(descriptor.local_shape(r)[0] for r in range(point.nprocs))
        slab = max(lines, 1) * max(rows, 1)
        return Lowering(ir=ir, slab_elements={"t_src": slab, "t_dst": slab})


# ---------------------------------------------------------------------------
# elementwise
# ---------------------------------------------------------------------------
@register_workload("elementwise")
class ElementwiseWorkload(Workload):
    """Out-of-core elementwise ``c = op(a, b)`` (the no-communication class).

    ``version`` selects the slabbing strategy (``"column"`` — the default —
    or ``"row"``).  The slab size comes from ``slab_ratio`` (fraction of the
    local array per slab) or the ``slab_elements`` option (capacity in
    elements; default 4096 when neither is given); per-array
    ``slab_elements`` mappings do not apply to this single-distribution
    kernel and are rejected.  The ``op`` option picks the operation
    (``"add"``, ``"multiply"`` or ``"subtract"``; default add).
    """

    versions = ("", "column", "row")
    _OPS = ("add", "multiply", "subtract")

    def validate(self, point: WorkloadPoint) -> None:
        super().validate(point)
        if point.n <= 0:
            raise WorkloadError("elementwise points need a positive problem size n")
        if point.slab_elements is not None:
            raise WorkloadError(
                "elementwise points take slab_ratio or the slab_elements *option* "
                '(options={"slab_elements": <int>}), not a per-array mapping'
            )
        if point.slab_ratio is not None and point.option("slab_elements") is not None:
            raise WorkloadError(
                "give elementwise points slab_ratio or the slab_elements option, not both"
            )
        op = str(point.option("op", "add"))
        if op not in self._OPS:
            raise WorkloadError(
                f"unknown elementwise op {op!r} (choose from {sorted(self._OPS)})"
            )

    def build_ir(self, point: WorkloadPoint, params: MachineParameters) -> Lowering:
        from repro.core.ir import build_elementwise_ir

        ir = build_elementwise_ir(
            point.n, point.nprocs, op=str(point.option("op", "add")), dtype=point.dtype
        )
        descriptor = ir.arrays["a"]
        if point.slab_ratio is not None:
            # Size against the real (ceil-based block distribution) local
            # array; n * (n // nprocs) would under-size it for uneven n.
            local_elements = max(
                descriptor.local_shape(r)[0] * descriptor.local_shape(r)[1]
                for r in range(point.nprocs)
            )
            slab = max(int(local_elements * point.slab_ratio), 1)
        else:
            slab = int(point.option("slab_elements", 4096))
        return Lowering(
            ir=ir,
            slab_elements={"a": slab, "b": slab, "c": slab},
            force_strategy=point.version or "column",
        )


# ---------------------------------------------------------------------------
# hpf (source frontend)
# ---------------------------------------------------------------------------
@register_workload("hpf")
class HpfWorkload(Workload):
    """Programs entering through the mini-HPF source frontend.

    The point's ``options`` must carry the program text under ``"source"``;
    the slab specification comes from ``slab_ratio`` / ``slab_elements`` (or
    a ``"memory_budget_bytes"`` option, in which case the compiler divides
    the budget itself).  ``n`` and ``nprocs`` are read from the compiled
    program, so they need not be given up front.  ``version`` may force the
    column or row strategy; the default lets the compiler choose.

    Both evaluation modes go through the unified pipeline, so any program
    the frontend accepts — including single-operand statements like
    ``c = a @ a`` — runs end-to-end in ``EXECUTE`` mode with verified
    numerics.
    """

    versions = ("", "column", "row")

    def validate(self, point: WorkloadPoint) -> None:
        super().validate(point)
        source = point.option("source")
        if not isinstance(source, str) or not source.strip():
            raise WorkloadError('hpf points need the program text in options["source"]')
        specified = sum(
            x is not None
            for x in (point.slab_ratio, point.slab_elements, point.option("memory_budget_bytes"))
        )
        if specified != 1:
            raise WorkloadError(
                "hpf points need exactly one of slab_ratio, slab_elements or "
                'options["memory_budget_bytes"]'
            )

    def build_ir(self, point: WorkloadPoint, params: MachineParameters) -> Lowering:
        from repro.hpf.frontend import frontend_to_ir
        from repro.hpf.parser import parse_program

        ir = frontend_to_ir(parse_program(str(point.option("source"))))
        budget = point.option("memory_budget_bytes")
        fusion = point.option("fusion")
        return Lowering(
            ir=ir,
            slab_ratio=point.slab_ratio,
            slab_elements=point.slab_elements_dict(),
            memory_budget_bytes=int(budget) if budget is not None else None,
            force_strategy=point.version or None,
            fusion=str(fusion) if fusion is not None else None,
        )
