"""The built-in workloads of the Session API.

Four kernel families register themselves here:

* ``gaxpy`` — the paper's out-of-core GAXPY matrix multiplication in its
  column-slab, row-slab and in-core versions (compiler-backed),
* ``transpose`` — out-of-core transpose (all-to-all exchange volume),
* ``elementwise`` — out-of-core elementwise operations (no communication),
* ``hpf`` — any program entering through the mini-HPF source frontend
  (compiler-backed; executed with the generic GAXPY-class engine).

Every workload satisfies the same contract (:class:`~repro.api.Workload`)
and reports the same :class:`~repro.api.RunRecord` schema, which is what
lets :meth:`Session.sweep` evaluate heterogeneous point lists in one call.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict

import numpy as np

from repro.api.records import RunRecord
from repro.api.workload import CompiledWorkload, Workload, WorkloadPoint, register_workload
from repro.exceptions import WorkloadError
from repro.machine.parameters import MachineParameters

__all__ = [
    "GaxpyWorkload",
    "TransposeWorkload",
    "ElementwiseWorkload",
    "HpfWorkload",
]


def _column_block_descriptor(name: str, n: int, nprocs: int, dtype: str):
    """A square ``n x n`` array, column-block distributed over ``nprocs``."""
    from repro.hpf.align import Alignment
    from repro.hpf.array_desc import ArrayDescriptor
    from repro.hpf.processors import ProcessorGrid
    from repro.hpf.template import Template

    grid = ProcessorGrid("Pr", nprocs)
    template = Template("d", n, grid, ["block"])
    return ArrayDescriptor(name, (n, n), Alignment(template, ["*", ":"]),
                           dtype=dtype, out_of_core=True)


def _record(compiled: CompiledWorkload, *, version: str, mode: str,
            simulated_seconds: float, time_breakdown, io_statistics,
            verified=None, max_abs_error=None) -> RunRecord:
    point = compiled.point
    return RunRecord.from_machine(
        workload=compiled.workload.name,
        label=point.label(),
        version=version,
        mode=mode,
        n=point.n,
        nprocs=point.nprocs,
        dtype=point.dtype,
        slab_ratio=point.slab_ratio,
        simulated_seconds=simulated_seconds,
        time_breakdown=time_breakdown,
        io_statistics=io_statistics,
        verified=verified,
        max_abs_error=max_abs_error,
    )


# ---------------------------------------------------------------------------
# gaxpy
# ---------------------------------------------------------------------------
@register_workload("gaxpy")
class GaxpyWorkload(Workload):
    """The paper's GAXPY matrix multiplication.

    ``version`` selects the program: ``"column"`` (the naively compiled
    Figure 9 schedule), ``"row"`` (the reorganized Figure 12 schedule),
    ``"incore"`` (the in-core baseline), or ``""`` — the default — which
    lets the compiler's cost model choose between column and row slabs;
    the record's ``version`` then reports the chosen strategy.
    """

    versions = ("", "column", "row", "incore")
    requires_slabs = False  # checked per-version in validate()

    def validate(self, point: WorkloadPoint) -> None:
        super().validate(point)
        if point.n <= 0:
            raise WorkloadError("gaxpy points need a positive problem size n")
        if point.version != "incore" and point.slab_ratio is None and point.slab_elements is None:
            raise WorkloadError("out-of-core gaxpy points need a slab_ratio or slab_elements")

    def compile(self, point: WorkloadPoint, params: MachineParameters) -> CompiledWorkload:
        from repro.core.pipeline import compile_gaxpy_cached
        from repro.runtime.slab import SlabbingStrategy

        force = None  # version "": the cost model picks the strategy
        if point.version == "column":
            force = SlabbingStrategy.COLUMN
        elif point.version == "row":
            force = SlabbingStrategy.ROW
        slab_elements = point.slab_elements_dict()
        ratio = point.slab_ratio if point.version != "incore" else 1.0
        program = compile_gaxpy_cached(
            point.n,
            point.nprocs,
            params,
            dtype=point.dtype,
            slab_ratio=ratio if slab_elements is None else None,
            slab_elements=slab_elements,
            force_strategy=force,
        )
        return CompiledWorkload(workload=self, point=point, params=params, program=program)

    def estimate(self, compiled: CompiledWorkload, vm) -> RunRecord:
        if compiled.point.version == "incore":
            return self._estimate_incore(compiled)
        from repro.runtime.executor import NodeProgramExecutor

        result = NodeProgramExecutor(compiled.program).estimate(machine=vm.machine)
        return _record(
            compiled, version=self._effective_version(compiled), mode="estimate",
            simulated_seconds=result.simulated_seconds,
            time_breakdown=result.time_breakdown,
            io_statistics=result.io_statistics,
        )

    @staticmethod
    def _effective_version(compiled: CompiledWorkload) -> str:
        """The point's version, or the compiler-chosen strategy for ``""``."""
        return compiled.point.version or compiled.program.plan.strategy.value

    def _estimate_incore(self, compiled: CompiledWorkload) -> RunRecord:
        from repro.core.cost_model import CostModel

        point = compiled.point
        cost = CostModel(compiled.params, point.nprocs).estimate_incore(compiled.program.analysis)
        read_bytes = sum(c.fetch_elements for c in cost.arrays.values()) * cost.itemsize
        write_bytes = sum(c.write_elements for c in cost.arrays.values()) * cost.itemsize
        return _record(
            compiled, version=point.version, mode="estimate",
            simulated_seconds=cost.total_time,
            time_breakdown={"io": cost.io_time, "compute": cost.compute_time,
                            "comm": cost.comm_time},
            io_statistics={"io_requests_per_proc": cost.io_requests,
                           "bytes_read_per_proc": read_bytes,
                           "bytes_written_per_proc": write_bytes},
        )

    def execute(self, compiled: CompiledWorkload, vm, verify: bool) -> RunRecord:
        from repro.kernels.gaxpy import (
            generate_gaxpy_inputs,
            run_compiled_gaxpy,
            run_gaxpy_column_slab,
            run_gaxpy_incore,
            run_gaxpy_row_slab,
        )

        point = compiled.point
        runner = {
            "": run_compiled_gaxpy,  # the strategy the compiler chose
            "column": run_gaxpy_column_slab,
            "row": run_gaxpy_row_slab,
            "incore": run_gaxpy_incore,
        }[point.version]
        inputs = generate_gaxpy_inputs(point.n, dtype=point.dtype, seed=vm.config.seed)
        run = runner(vm, compiled.program, inputs, verify=verify)
        return _record(
            compiled, version=self._effective_version(compiled), mode="execute",
            simulated_seconds=run.simulated_seconds,
            time_breakdown=run.time_breakdown,
            io_statistics=run.io_statistics,
            verified=run.verified,
            max_abs_error=run.max_abs_error,
        )


# ---------------------------------------------------------------------------
# transpose
# ---------------------------------------------------------------------------
@register_workload("transpose")
class TransposeWorkload(Workload):
    """Out-of-core transpose with both operands column-block distributed.

    The slab size comes from ``slab_ratio`` (fraction of the local columns
    streamed per slab) or the ``cols_per_slab`` option (default 8, used when
    neither is given); per-array ``slab_elements`` mappings do not apply to
    this single-array kernel and are rejected.
    """

    versions = ("",)

    def validate(self, point: WorkloadPoint) -> None:
        super().validate(point)
        if point.n <= 0:
            raise WorkloadError("transpose points need a positive problem size n")
        if point.slab_elements is not None:
            raise WorkloadError(
                "transpose points take slab_ratio or the cols_per_slab option, "
                "not a per-array slab_elements mapping"
            )
        if point.slab_ratio is not None and point.option("cols_per_slab") is not None:
            raise WorkloadError("give transpose points slab_ratio or cols_per_slab, not both")

    def _cols_per_slab(self, compiled: CompiledWorkload) -> int:
        point = compiled.point
        if point.slab_ratio is not None:
            # Read the real (ceil-based block distribution) local width from
            # the descriptor; n // nprocs would under-size it for uneven n.
            descriptor = compiled.descriptor
            local_cols = max(descriptor.local_shape(r)[1] for r in range(point.nprocs))
            return max(int(local_cols * point.slab_ratio), 1)
        return int(point.option("cols_per_slab", 8))

    def compile(self, point: WorkloadPoint, params: MachineParameters) -> CompiledWorkload:
        descriptor = _column_block_descriptor("t", point.n, point.nprocs, point.dtype)
        return CompiledWorkload(workload=self, point=point, params=params, descriptor=descriptor)

    def _run(self, compiled: CompiledWorkload, vm, dense, verify: bool, mode: str) -> RunRecord:
        from repro.kernels.transpose import run_transpose

        result = run_transpose(vm, compiled.descriptor, dense,
                               cols_per_slab=self._cols_per_slab(compiled), verify=verify)
        return _record(
            compiled, version=compiled.point.version, mode=mode,
            simulated_seconds=result.simulated_seconds,
            time_breakdown=vm.time_breakdown(),
            io_statistics=result.io_statistics,
            verified=result.verified,
        )

    def estimate(self, compiled: CompiledWorkload, vm) -> RunRecord:
        return self._run(compiled, vm, None, False, "estimate")

    def execute(self, compiled: CompiledWorkload, vm, verify: bool) -> RunRecord:
        rng = np.random.default_rng(vm.config.seed)
        dense = rng.standard_normal((compiled.point.n, compiled.point.n)).astype(compiled.point.dtype)
        return self._run(compiled, vm, dense, verify, "execute")


# ---------------------------------------------------------------------------
# elementwise
# ---------------------------------------------------------------------------
@register_workload("elementwise")
class ElementwiseWorkload(Workload):
    """Out-of-core elementwise ``c = op(a, b)`` (the no-communication class).

    ``version`` selects the slabbing strategy (``"column"`` — the default —
    or ``"row"``).  The slab size comes from ``slab_ratio`` (fraction of the
    local array per slab) or the ``slab_elements`` option (capacity in
    elements; default 4096 when neither is given); per-array
    ``slab_elements`` mappings do not apply to this single-distribution
    kernel and are rejected.  The ``op`` option picks the operation
    (``"add"``, ``"multiply"`` or ``"subtract"``; default add).
    """

    versions = ("", "column", "row")

    _OPS: Dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
        "add": np.add,
        "multiply": np.multiply,
        "subtract": np.subtract,
    }

    def validate(self, point: WorkloadPoint) -> None:
        super().validate(point)
        if point.n <= 0:
            raise WorkloadError("elementwise points need a positive problem size n")
        if point.slab_elements is not None:
            raise WorkloadError(
                "elementwise points take slab_ratio or the slab_elements *option* "
                '(options={"slab_elements": <int>}), not a per-array mapping'
            )
        if point.slab_ratio is not None and point.option("slab_elements") is not None:
            raise WorkloadError(
                "give elementwise points slab_ratio or the slab_elements option, not both"
            )
        op = str(point.option("op", "add"))
        if op not in self._OPS:
            raise WorkloadError(
                f"unknown elementwise op {op!r} (choose from {sorted(self._OPS)})"
            )

    def _slab_elements(self, compiled: CompiledWorkload) -> int:
        point = compiled.point
        if point.slab_ratio is not None:
            # Size against the real (ceil-based block distribution) local
            # array; n * (n // nprocs) would under-size it for uneven n.
            descriptor = compiled.descriptor
            local_elements = max(
                descriptor.local_shape(r)[0] * descriptor.local_shape(r)[1]
                for r in range(point.nprocs)
            )
            return max(int(local_elements * point.slab_ratio), 1)
        return int(point.option("slab_elements", 4096))

    def compile(self, point: WorkloadPoint, params: MachineParameters) -> CompiledWorkload:
        descriptor = _column_block_descriptor("e", point.n, point.nprocs, point.dtype)
        return CompiledWorkload(workload=self, point=point, params=params, descriptor=descriptor)

    def _run(self, compiled: CompiledWorkload, vm, a, b, verify: bool, mode: str) -> RunRecord:
        from repro.kernels.elementwise import run_elementwise

        point = compiled.point
        strategy = point.version or "column"
        result = run_elementwise(
            vm, compiled.descriptor, a, b,
            op=self._OPS[str(point.option("op", "add"))],
            slab_elements=self._slab_elements(compiled),
            strategy=strategy,
            verify=verify,
        )
        return _record(
            compiled, version=strategy, mode=mode,
            simulated_seconds=result.simulated_seconds,
            time_breakdown=vm.time_breakdown(),
            io_statistics=result.io_statistics,
            verified=result.verified,
        )

    def estimate(self, compiled: CompiledWorkload, vm) -> RunRecord:
        return self._run(compiled, vm, None, None, False, "estimate")

    def execute(self, compiled: CompiledWorkload, vm, verify: bool) -> RunRecord:
        rng = np.random.default_rng(vm.config.seed)
        n = compiled.point.n
        a = rng.standard_normal((n, n)).astype(compiled.point.dtype)
        b = rng.standard_normal((n, n)).astype(compiled.point.dtype)
        return self._run(compiled, vm, a, b, verify, "execute")


# ---------------------------------------------------------------------------
# hpf (source frontend)
# ---------------------------------------------------------------------------
@register_workload("hpf")
class HpfWorkload(Workload):
    """Programs entering through the mini-HPF source frontend.

    The point's ``options`` must carry the program text under ``"source"``;
    the slab specification comes from ``slab_ratio`` / ``slab_elements`` (or
    a ``"memory_budget_bytes"`` option, in which case the compiler divides
    the budget itself).  ``n`` and ``nprocs`` are read from the compiled
    program, so they need not be given up front.  ``version`` may force the
    column or row strategy; the default lets the compiler choose.
    """

    versions = ("", "column", "row")

    def validate(self, point: WorkloadPoint) -> None:
        super().validate(point)
        source = point.option("source")
        if not isinstance(source, str) or not source.strip():
            raise WorkloadError('hpf points need the program text in options["source"]')
        specified = sum(
            x is not None
            for x in (point.slab_ratio, point.slab_elements, point.option("memory_budget_bytes"))
        )
        if specified != 1:
            raise WorkloadError(
                "hpf points need exactly one of slab_ratio, slab_elements or "
                'options["memory_budget_bytes"]'
            )

    def compile(self, point: WorkloadPoint, params: MachineParameters) -> CompiledWorkload:
        from repro.hpf.frontend import compile_source

        kwargs: Dict[str, object] = {}
        if point.slab_ratio is not None:
            kwargs["slab_ratio"] = point.slab_ratio
        if point.slab_elements is not None:
            kwargs["slab_elements"] = point.slab_elements_dict()
        budget = point.option("memory_budget_bytes")
        if budget is not None:
            kwargs["memory_budget_bytes"] = int(budget)
        if point.version:
            kwargs["force_strategy"] = point.version
        program = compile_source(str(point.option("source")), params, **kwargs)
        streamed = program.program.arrays[program.analysis.streamed]
        resolved = dataclasses.replace(
            point, n=int(streamed.shape[0]), nprocs=int(program.nprocs)
        )
        return CompiledWorkload(workload=self, point=resolved, params=params, program=program)

    def estimate(self, compiled: CompiledWorkload, vm) -> RunRecord:
        from repro.runtime.executor import NodeProgramExecutor

        result = NodeProgramExecutor(compiled.program).estimate(machine=vm.machine)
        return _record(
            compiled, version=compiled.program.plan.strategy.value, mode="estimate",
            simulated_seconds=result.simulated_seconds,
            time_breakdown=result.time_breakdown,
            io_statistics=result.io_statistics,
        )

    def execute(self, compiled: CompiledWorkload, vm, verify: bool) -> RunRecord:
        from repro.kernels.gaxpy import GaxpyInputs, run_compiled_gaxpy

        program = compiled.program
        if program.analysis.coefficient == program.analysis.streamed:
            # The executable per-rank partial-product engine needs the two
            # roles on conformal (distinct) distributions; the cost model
            # handles the single-operand case analytically.
            raise WorkloadError(
                "EXECUTE mode is not supported for single-operand statements "
                f"(array {program.analysis.streamed!r} is both the streamed and "
                "the coefficient operand); evaluate the point in ESTIMATE mode"
            )
        arrays = program.program.arrays
        s_desc = arrays[program.analysis.streamed]
        b_desc = arrays[program.analysis.coefficient]
        rng = np.random.default_rng(vm.config.seed)
        streamed = rng.standard_normal(s_desc.shape).astype(s_desc.dtype)
        coefficient = rng.standard_normal(b_desc.shape).astype(b_desc.dtype)
        run = run_compiled_gaxpy(vm, program, GaxpyInputs(streamed, coefficient), verify=verify)
        return _record(
            compiled, version=program.plan.strategy.value, mode="execute",
            simulated_seconds=run.simulated_seconds,
            time_breakdown=run.time_breakdown,
            io_statistics=run.io_statistics,
            verified=run.verified,
            max_abs_error=run.max_abs_error,
        )
