"""The Session facade: one compile → run → sweep surface for every kernel.

A :class:`Session` owns the pieces every evaluation needs — the machine
parameters, the :class:`~repro.config.RunConfig`, an LRU cache of compiled
workloads and the thread-pool sweep driver — so callers write::

    from repro import Session, WorkloadPoint

    session = Session()
    record = session.run(WorkloadPoint("gaxpy", n=128, nprocs=4,
                                      version="row", slab_ratio=0.25))

and every registered workload (gaxpy, transpose, elementwise, mini-HPF
source programs) goes through the same machinery: the same compile cache,
the same :class:`~repro.api.RunRecord` result schema, and the same parallel
sweep driver.
"""

from __future__ import annotations

import collections
import concurrent.futures
import dataclasses
import multiprocessing
import shutil
import threading
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Union

from repro.api.records import RunRecord
from repro.api.workload import CompiledWorkload, WorkloadPoint, get_workload
from repro.config import ExecutionMode, RunConfig
from repro.exceptions import WorkloadError
from repro.machine.parameters import MachineParameters, touchstone_delta
from repro.planner.plan_cache import PlanCache, use_plan_cache
from repro.planner.search import normalize_optimizer
from repro.resilience.reaper import DEFAULT_MAX_AGE_S, reap_scratch

__all__ = ["Session", "SweepResult"]

PointLike = Union[WorkloadPoint, CompiledWorkload]


class SweepResult(List[RunRecord]):
    """The records of one sweep, plus a ``summary`` of what the sweep cost.

    A plain ``list`` subclass, so every existing consumer of
    :meth:`Session.sweep` keeps working; ``summary`` adds the per-sweep
    compile-cache and planner-cache hit/miss deltas and the optimizer mix of
    the evaluated points.
    """

    def __init__(self, records: Iterable[RunRecord], summary: Dict[str, object]):
        super().__init__(records)
        self.summary = dict(summary)


class Session:
    """Owns machine parameters, run configuration, compile cache and sweeps.

    Parameters
    ----------
    params:
        Machine model parameters (default: the Touchstone-Delta-like model).
    config:
        Base :class:`~repro.config.RunConfig`; its ``mode`` is the default
        for :meth:`run` and :meth:`sweep`, its ``seed`` drives workload input
        generation, its ``scratch_dir`` hosts the Local Array Files, and its
        ``prefetch`` policy (``"none"`` | ``"overlap"``) flows into every
        virtual machine the session creates, so the executor's slab reads
        can hide behind computation when overlap prefetching is enabled
        (in slab-driven runs — every ``EXECUTE``-mode evaluation and the
        elementwise/transpose ``ESTIMATE`` path; the bulk analytic
        reduction estimate has no slab loop and reports unhidden time).
    compile_cache_size:
        Capacity of the per-session LRU cache of :class:`CompiledWorkload`
        objects (keyed on the full :class:`WorkloadPoint`).  Cached programs
        are shared between runs and threads — they are frozen and must not
        be mutated.
    optimize:
        The session's default plan optimizer for memory-budget compilations
        (``"none"`` | ``"greedy"`` | ``"beam"`` | ``"exhaustive"``; default
        ``"greedy"``).  A point's own ``optimize`` field, or the per-call
        override of :meth:`compile` / :meth:`run` / :meth:`sweep`, wins over
        this default.  The effective choice is folded into the point before
        it keys any compile cache, so different budget-allocation policies
        never share a cached compilation.
    plan_cache_dir:
        Directory of the persistent plan cache.  ``None`` (the default)
        keeps search winners in memory only; with a directory, winners are
        written to disk and replayed by any later Session pointed at it.
    plan_cache_size:
        In-memory entry capacity of the plan cache.
    plan_cache:
        An existing :class:`~repro.planner.plan_cache.PlanCache` instance to
        use *instead of* constructing one from ``plan_cache_dir`` /
        ``plan_cache_size``.  Lets several sessions (e.g. the simulated and
        the ``"processes"`` sessions of one job service) share one plan
        store, so a plan searched on behalf of one tenant is replayed for
        every other.
    check:
        The session's default static-verification mode (``"off"`` |
        ``"warn"`` | ``"error"``; default ``"warn"``).  Every compilation is
        walked by the static plan verifier (:mod:`repro.check`) *after* the
        compile caches are consulted — the frozen
        :class:`~repro.check.report.CheckReport` is attached to the
        :class:`CompiledWorkload` (and its compiled program) without
        touching any cache key.  ``"error"`` raises
        :class:`~repro.exceptions.PlanVerificationError` on a failing plan,
        ``"warn"`` emits a warning, ``"off"`` skips verification entirely.
        The per-call ``check=`` of :meth:`compile` / :meth:`run` overrides
        this default.
    reap_max_age_s:
        On construction the session best-effort reaps orphaned ``vm_*``
        scratch directories (left by killed processes) older than this many
        seconds from its scratch dir.  ``None`` disables startup reaping —
        use it when another process may be resumed from that scratch later.
    backend:
        How ``EXECUTE``-mode evaluations run.  ``"simulated"`` (the default)
        drives every rank inside the calling process, exactly as before.
        ``"processes"`` routes each :meth:`run` through
        :func:`repro.runtime.distributed.execute_distributed` — one OS
        process per rank, with collectives really moving bytes between the
        workers — and :meth:`sweep` with ``workers > 1`` through a process
        pool.  Charged statistics are bit-identical between the two
        backends (enforced by ``benchmarks/bench_mp.py``).  ``ESTIMATE``
        mode is analytic and always runs in-process regardless of backend.
    start_method:
        The :mod:`multiprocessing` start method for the ``"processes"``
        backend (``"fork"`` | ``"spawn"`` | ``"forkserver"``).  ``None``
        picks ``fork`` where available, else ``spawn``.
    """

    def __init__(
        self,
        params: Optional[MachineParameters] = None,
        config: Optional[RunConfig] = None,
        *,
        compile_cache_size: int = 128,
        optimize: str = "greedy",
        plan_cache_dir: Optional[Path | str] = None,
        plan_cache_size: int = 256,
        plan_cache: Optional[PlanCache] = None,
        check: str = "warn",
        reap_max_age_s: Optional[float] = DEFAULT_MAX_AGE_S,
        backend: str = "simulated",
        start_method: Optional[str] = None,
    ):
        if compile_cache_size < 1:
            raise WorkloadError("compile_cache_size must be at least 1")
        if check not in ("off", "warn", "error"):
            raise WorkloadError(
                f"check must be 'off', 'warn' or 'error', got {check!r}"
            )
        if backend not in ("simulated", "processes"):
            raise WorkloadError(
                f"backend must be 'simulated' or 'processes', got {backend!r}"
            )
        if start_method is not None:
            available = multiprocessing.get_all_start_methods()
            if start_method not in available:
                raise WorkloadError(
                    f"start_method must be one of {available}, got {start_method!r}"
                )
        self.backend = backend
        self.start_method = start_method
        self.params = params or touchstone_delta()
        self.config = config or RunConfig()
        self.optimize = normalize_optimizer(optimize)
        self.check = check
        self.plan_cache = (
            plan_cache
            if plan_cache is not None
            else PlanCache(plan_cache_dir, capacity=plan_cache_size)
        )
        self._cache: "collections.OrderedDict[WorkloadPoint, CompiledWorkload]" = (
            collections.OrderedDict()
        )
        self._cache_capacity = compile_cache_size
        self._cache_lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._closed = False
        # Scratch directories of the VMs this session created that may
        # outlive their run (keep_files=True, or a crashed executor);
        # close() reclaims whatever still exists.
        self._scratch_dirs: Set[Path] = set()
        self._scratch_lock = threading.Lock()
        if reap_max_age_s is not None:
            try:
                reap_scratch(self.config.scratch_dir, reap_max_age_s)
            except (OSError, ValueError):  # startup reaping is best-effort
                pass

    # ------------------------------------------------------------------
    # compilation
    # ------------------------------------------------------------------
    def compile(
        self,
        point: Optional[WorkloadPoint] = None,
        *,
        source: Optional[str] = None,
        optimize: Optional[str] = None,
        check: Optional[str] = None,
        **point_kwargs,
    ) -> CompiledWorkload:
        """Compile a workload point (LRU-cached on the full point).

        Three call shapes are accepted::

            session.compile(point)                       # an explicit point
            session.compile(source=hpf_text, slab_ratio=0.25)   # HPF source
            session.compile(workload="gaxpy", n=64, nprocs=4,
                            version="row", slab_ratio=0.5)      # fields

        ``source=...`` builds an ``"hpf"`` point carrying the program text;
        the compiled program's own sizes fill in ``n`` and ``nprocs``.

        ``optimize`` overrides the plan-optimizer choice for this call; the
        resolution order is call override → the point's ``optimize`` field →
        the session default.  The effective choice is written into the point
        before it keys the compile cache.

        ``check`` overrides the session's static-verification mode for this
        call (``"off"`` | ``"warn"`` | ``"error"``).  Verification runs
        *after* the compile caches — the report is attached to the returned
        (possibly cached) object with :func:`dataclasses.replace`, so cache
        keys and cached instances shared with other sessions are untouched.
        """
        self._ensure_open()
        if point is not None and (source is not None or point_kwargs):
            raise WorkloadError("pass either a WorkloadPoint or keyword fields, not both")
        if point is None:
            if source is not None:
                options = dict(point_kwargs.pop("options", {}) or {})
                options["source"] = source
                point = WorkloadPoint(workload="hpf", options=options, **point_kwargs)
            else:
                point = WorkloadPoint(**point_kwargs)
        point = self._resolve_optimize(point, optimize)
        check_mode = self._resolve_check(check)

        with self._cache_lock:
            cached = self._cache.get(point)
            if cached is not None:
                self._cache.move_to_end(point)
                self._hits += 1
            else:
                self._misses += 1
        if cached is not None:
            return self._verify(cached, check_mode, cache_point=point)

        workload = get_workload(point.workload)
        workload.validate(point)
        with use_plan_cache(self.plan_cache):
            compiled = workload.compile(point, self.params)
        compiled = self._verify(compiled, check_mode, cache_point=None)

        with self._cache_lock:
            self._cache[point] = compiled
            self._cache.move_to_end(point)
            while len(self._cache) > self._cache_capacity:
                self._cache.popitem(last=False)
        return compiled

    def _resolve_check(self, override: Optional[str]) -> str:
        mode = self.check if override is None else override
        if mode not in ("off", "warn", "error"):
            raise WorkloadError(
                f"check must be 'off', 'warn' or 'error', got {mode!r}"
            )
        return mode

    def _verify(
        self,
        compiled: CompiledWorkload,
        check: str,
        *,
        cache_point: Optional[WorkloadPoint],
    ) -> CompiledWorkload:
        """Run the static plan verifier and attach its report to ``compiled``.

        Caching is transparent: the walk runs once per compiled plan, the
        replaced (report-carrying) instance is written back into the session
        cache slot for ``cache_point``, and a plan already carrying a report
        is returned as-is.  ``"error"`` raises on a failing plan, ``"warn"``
        warns — in both cases the report stays attached for inspection.
        """
        if check == "off" or compiled.program is None:
            return compiled
        if compiled.check is None:
            from repro.check import check_compiled

            report = check_compiled(compiled.program)
            program = dataclasses.replace(compiled.program, check=report)
            compiled = dataclasses.replace(compiled, program=program, check=report)
            if cache_point is not None:
                with self._cache_lock:
                    if cache_point in self._cache:
                        self._cache[cache_point] = compiled
        report = compiled.check
        if not report.ok:
            if check == "error":
                from repro.exceptions import PlanVerificationError

                raise PlanVerificationError(report.describe(), report=report)
            import warnings

            warnings.warn(report.describe(), stacklevel=3)
        return compiled

    def _resolve_optimize(
        self, point: WorkloadPoint, override: Optional[str]
    ) -> WorkloadPoint:
        """Fold the effective optimizer choice into the point (cache key)."""
        effective = normalize_optimizer(
            override if override is not None else (point.optimize or self.optimize)
        )
        if point.optimize == effective:
            return point
        return dataclasses.replace(point, optimize=effective)

    def cache_info(self) -> Dict[str, int]:
        planner = self.plan_cache.stats()
        with self._cache_lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "size": len(self._cache),
                "capacity": self._cache_capacity,
                "planner_hits": planner["hits"],
                "planner_misses": planner["misses"],
                "planner_stores": planner["stores"],
                "planner_size": planner["size"],
                "planner_persistent": planner["persistent"],
            }

    def clear_cache(self) -> None:
        with self._cache_lock:
            self._cache.clear()

    # ------------------------------------------------------------------
    # single-point evaluation
    # ------------------------------------------------------------------
    def run(
        self,
        point: PointLike,
        mode: Optional[ExecutionMode | str] = None,
        verify: Optional[bool] = None,
        optimize: Optional[str] = None,
        resume: Optional[Path | str] = None,
        check: Optional[str] = None,
        scratch_dir: Optional[Path | str] = None,
    ) -> RunRecord:
        """Evaluate one point (or pre-compiled workload) and return its record.

        ``mode`` defaults to the session config's mode; ``verify`` defaults
        to the config's ``verify`` flag and only matters in ``EXECUTE`` mode.
        ``optimize`` overrides the plan-optimizer choice for this evaluation
        (ignored for pre-compiled workloads, whose plan is already fixed).
        ``check`` overrides the session's static-verification mode for this
        evaluation's compilation (also ignored for pre-compiled workloads).

        ``scratch_dir`` overrides the config's scratch root for this one
        evaluation: the run's ``vm_*`` directory is created under it instead.
        The job service gives every job its own scratch directory this way,
        so per-job disk usage can be measured (and reclaimed) in isolation.
        Charged statistics are independent of where scratch lives.

        ``resume`` points at the scratch directory (``vm_*``) of an earlier
        killed run of the *same* point.  The virtual machine reopens that
        directory, re-validates the checkpoint journal and its Local Array
        Files against their checksum manifests, and re-executes only the
        statements the journal does not record as completed — the record's
        ``statements`` entries carry ``{"skipped": 1.0}`` for the rest.
        Only meaningful for ``EXECUTE``-mode multi-statement programs; a
        stale or mismatched checkpoint is discarded and the program simply
        runs from the start.

        On a ``backend="processes"`` session, ``EXECUTE``-mode evaluations
        run one worker process per rank (``ESTIMATE`` stays analytic and
        in-process).  ``resume=`` is not supported there — checkpoint
        recovery is a single-process affair — and neither is corruption
        injection (torn writes / bit flips), whose repair path re-executes
        collective-bearing statements on a single rank and would deadlock
        the rank workers.
        """
        from repro.runtime.vm import VirtualMachine

        self._ensure_open()
        compiled = (
            point
            if isinstance(point, CompiledWorkload)
            else self.compile(point, optimize=optimize, check=check)
        )
        if mode is None:
            mode = self.config.mode
        mode = ExecutionMode(mode) if isinstance(mode, str) else mode
        if verify is None:
            verify = self.config.verify
        if resume is not None and mode is not ExecutionMode.EXECUTE:
            raise WorkloadError("resume= needs EXECUTE mode — there is no "
                                "checkpoint to resume in an analytic estimate")
        run_config = self.config.with_mode(mode)
        if scratch_dir is not None:
            run_config = dataclasses.replace(run_config, scratch_dir=Path(scratch_dir))
        if self.backend == "processes" and mode is ExecutionMode.EXECUTE:
            if resume is not None:
                raise WorkloadError(
                    "resume= is not supported on the 'processes' backend; "
                    "resume the checkpoint on a backend='simulated' session"
                )
            policy = run_config.fault_policy
            if policy is not None and (
                policy.torn_write_rate > 0 or policy.bitflip_rate > 0
            ):
                raise WorkloadError(
                    "corruption injection (torn_write_rate / bitflip_rate) is "
                    "not supported on the 'processes' backend: corruption "
                    "repair re-executes collective-bearing statements on one "
                    "rank, which would deadlock the other rank workers"
                )
            from repro.runtime.distributed import execute_distributed

            return execute_distributed(
                compiled, run_config, verify, start_method=self.start_method
            )
        with VirtualMachine(
            compiled.nprocs, compiled.params, run_config,
            work_dir=Path(resume) if resume is not None else None,
        ) as vm:
            if vm.work_dir is not None:
                self._track_scratch(vm.work_dir)
            if mode is ExecutionMode.ESTIMATE:
                return compiled.workload.estimate(compiled, vm)
            return compiled.workload.execute(compiled, vm, verify)

    def estimate(self, point: PointLike) -> RunRecord:
        """Evaluate one point analytically (``ESTIMATE`` mode)."""
        return self.run(point, mode=ExecutionMode.ESTIMATE)

    def execute(self, point: PointLike, verify: Optional[bool] = None) -> RunRecord:
        """Really run one point (``EXECUTE`` mode)."""
        return self.run(point, mode=ExecutionMode.EXECUTE, verify=verify)

    # ------------------------------------------------------------------
    # sweeps
    # ------------------------------------------------------------------
    def sweep(
        self,
        points: Iterable[PointLike],
        mode: Optional[ExecutionMode | str] = None,
        workers: int = 1,
        verify: Optional[bool] = None,
        optimize: Optional[str | Sequence[Optional[str]]] = None,
        on_error: str = "raise",
    ) -> SweepResult:
        """Evaluate many points — possibly of different workloads — in order.

        ``workers > 1`` evaluates points concurrently in a thread pool.  Each
        point owns its virtual machine, scratch directory and cost counters,
        and records carry only simulated quantities, so the result list is
        per-field identical to a sequential sweep and returned in input
        order.  Threads pay off in ``EXECUTE`` mode, where the heavy work —
        BLAS kernels and file I/O — releases the GIL.

        Unlike the legacy ``sweep_gaxpy`` driver, the ``verify`` flag is
        forwarded to every point on both the sequential and the thread-pool
        paths.

        ``optimize`` sets the plan-optimizer choice: one string applies to
        every point, a sequence gives a per-point override (``None`` entries
        defer to the point / session default).  The returned
        :class:`SweepResult` is a list of records whose ``summary`` reports
        the compile-cache and planner-cache hit/miss deltas of this sweep
        and the optimizer mix actually evaluated.

        ``on_error`` decides what a failing point does to the sweep.  The
        default ``"raise"`` propagates the first exception, losing every
        record.  ``"skip"`` converts the failure into an error record — its
        ``error`` field carries ``"ExceptionType: message"``, its numeric
        fields are zero and ``record.ok`` is False — and keeps sweeping, so
        one malformed source program no longer costs a thousand-point
        overnight sweep.  Error records are counted under the explicit
        ``"error"`` bucket of ``summary["optimizers"]`` (not silently under
        ``"none"``), and each carries the optimizer that *would* have been
        used in its ``plan``.  ``summary["failed"]`` counts the skipped
        points.

        On a ``backend="processes"`` session, ``workers > 1`` evaluates the
        points in a pool of worker *processes* instead of threads — true
        CPU parallelism for compile- and compute-bound sweeps.  Each pool
        worker evaluates its points on an in-process child session, so the
        records are per-field identical to a sequential sweep; the parent's
        compile/planner caches are not shared with the pool, so the
        summary's cache deltas report only parent-side activity.
        """
        self._ensure_open()
        if on_error not in ("raise", "skip"):
            raise WorkloadError(
                f"on_error must be 'raise' or 'skip', got {on_error!r}"
            )
        if workers < 1:
            raise WorkloadError(f"workers must be at least 1, got {workers}")
        points = list(points)
        overrides = self._sweep_overrides(points, optimize)
        before = self.cache_info()

        def evaluate(point: PointLike, override: Optional[str]) -> RunRecord:
            if on_error == "raise":
                return self.run(point, mode=mode, verify=verify, optimize=override)
            try:
                return self.run(point, mode=mode, verify=verify, optimize=override)
            except Exception as exc:  # noqa: BLE001 — converted into the record
                return self._error_record(point, mode, exc, override)

        if workers > 1 and len(points) > 1 and self.backend == "processes":
            records = self._process_sweep(
                points, overrides, mode, verify, on_error, workers
            )
        elif workers > 1 and len(points) > 1:
            with concurrent.futures.ThreadPoolExecutor(max_workers=workers) as pool:
                records = list(
                    pool.map(lambda pair: evaluate(*pair), zip(points, overrides, strict=True))
                )
        else:
            records = [evaluate(p, o) for p, o in zip(points, overrides, strict=True)]
        after = self.cache_info()
        optimizers = collections.Counter(
            "error" if record.error is not None
            else str(record.plan.get("optimizer", "none"))
            for record in records
        )
        summary = {
            "points": len(records),
            "compile_hits": after["hits"] - before["hits"],
            "compile_misses": after["misses"] - before["misses"],
            "planner_hits": after["planner_hits"] - before["planner_hits"],
            "planner_misses": after["planner_misses"] - before["planner_misses"],
            "planner_stores": after["planner_stores"] - before["planner_stores"],
            "optimizers": dict(optimizers),
            "failed": sum(1 for record in records if record.error is not None),
        }
        return SweepResult(records, summary)

    def _process_sweep(
        self,
        points: List[PointLike],
        overrides: List[Optional[str]],
        mode: Optional[ExecutionMode | str],
        verify: Optional[bool],
        on_error: str,
        workers: int,
    ) -> List[RunRecord]:
        """Evaluate the points in a process pool (``backend="processes"``).

        Pre-compiled workloads are reduced to their points — the pool worker
        recompiles them, which is deterministic, so the records match.
        """
        from repro.runtime.distributed import default_start_method

        method = self.start_method or default_start_method()
        ctx = multiprocessing.get_context(method)
        tasks = [
            (
                self.params,
                self.config,
                self.optimize,
                self.check,
                point.point if isinstance(point, CompiledWorkload) else point,
                mode,
                verify,
                override,
                on_error,
            )
            for point, override in zip(points, overrides, strict=True)
        ]
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=workers, mp_context=ctx
        ) as pool:
            return list(pool.map(_sweep_process_child, tasks))

    def _error_record(
        self,
        point: PointLike,
        mode: Optional[ExecutionMode | str],
        exc: Exception,
        optimize: Optional[str] = None,
    ) -> RunRecord:
        """Stand-in record for a point that failed under ``on_error="skip"``.

        The record's ``plan`` carries the optimizer that was *requested* for
        the point (call override → point field → session default), so sweep
        summaries can attribute failures to the right optimizer instead of
        lumping them under ``"none"``.
        """
        raw = point.point if isinstance(point, CompiledWorkload) else point
        effective = self.config.mode if mode is None else mode
        effective = ExecutionMode(effective) if isinstance(effective, str) else effective
        requested = optimize if optimize is not None else (raw.optimize or self.optimize)
        try:
            requested = normalize_optimizer(requested)
        except WorkloadError:  # the bad optimizer name may be the error itself
            requested = str(requested)
        return RunRecord(
            workload=raw.workload,
            label=raw.label(),
            version=raw.version,
            mode=effective.value,
            n=raw.n,
            nprocs=raw.nprocs,
            dtype=raw.dtype,
            simulated_seconds=0.0,
            io_time=0.0,
            compute_time=0.0,
            comm_time=0.0,
            io_requests_per_proc=0.0,
            io_read_bytes_per_proc=0.0,
            io_write_bytes_per_proc=0.0,
            slab_ratio=raw.slab_ratio,
            plan={"optimizer": requested},
            error=f"{type(exc).__name__}: {exc}",
        )

    @staticmethod
    def _sweep_overrides(
        points: List[PointLike],
        optimize: Optional[str | Sequence[Optional[str]]],
    ) -> List[Optional[str]]:
        """Normalise the sweep's ``optimize`` argument to one entry per point."""
        if optimize is None or isinstance(optimize, str):
            return [optimize] * len(points)
        overrides = list(optimize)
        if len(overrides) != len(points):
            raise WorkloadError(
                f"sweep got {len(points)} points but {len(overrides)} optimize "
                "overrides; pass one string or one entry per point"
            )
        return overrides

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _ensure_open(self) -> None:
        if self._closed:
            raise WorkloadError("this Session is closed; create a new one")

    def _track_scratch(self, work_dir: Path) -> None:
        """Remember a VM scratch directory so :meth:`close` can reclaim it.

        Directories that the VM cleaned up normally are pruned on the next
        call, so the set only ever holds the handful of survivors
        (``keep_files=True`` runs, or executors that crashed mid-write).
        """
        with self._scratch_lock:
            self._scratch_dirs = {d for d in self._scratch_dirs if d.exists()}
            self._scratch_dirs.add(Path(work_dir))

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Release the session's on-disk state deterministically.

        Removes every surviving scratch directory of the VMs this session
        created (runs with ``keep_files=True``, or executors that died
        mid-run and left their ``vm_*`` directory behind), flushes the plan
        cache's in-memory entries to its directory (when persistent) and
        drops the compile cache.  After ``close()`` the session rejects
        further ``compile``/``run``/``sweep`` calls; closing twice is a
        no-op.  The long-lived job service calls this on shutdown, and
        interactive users get the same guarantee from the context-manager
        form (``with Session(...) as s: ...``) instead of leaking scratch
        until some later session's startup reap.
        """
        if self._closed:
            return
        self._closed = True
        with self._scratch_lock:
            leftovers = list(self._scratch_dirs)
            self._scratch_dirs.clear()
        for directory in leftovers:
            if directory.exists():
                shutil.rmtree(directory, ignore_errors=True)
        self.plan_cache.flush()
        self.clear_cache()

    def __enter__(self) -> "Session":
        self._ensure_open()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        info = self.cache_info()
        return (
            f"Session(params={self.params.name!r}, mode={self.config.mode.value}, "
            f"cache {info['size']}/{info['capacity']})"
        )


def _sweep_process_child(task) -> RunRecord:
    """Pool-worker entry point of the process sweep (module level: spawn-safe).

    Rebuilds a lightweight in-process session from the parent's parameters
    and evaluates one point on it, applying the parent's ``on_error``
    contract so a failing point comes back as an error record instead of a
    pickled exception.
    """
    params, config, optimize, check, point, mode, verify, override, on_error = task
    session = Session(
        params=params, config=config, optimize=optimize, check=check,
        reap_max_age_s=None,
    )
    if on_error == "raise":
        return session.run(point, mode=mode, verify=verify, optimize=override)
    try:
        return session.run(point, mode=mode, verify=verify, optimize=override)
    except Exception as exc:  # noqa: BLE001 — converted into the record
        return session._error_record(point, mode, exc, override)
