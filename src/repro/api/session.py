"""The Session facade: one compile → run → sweep surface for every kernel.

A :class:`Session` owns the pieces every evaluation needs — the machine
parameters, the :class:`~repro.config.RunConfig`, an LRU cache of compiled
workloads and the thread-pool sweep driver — so callers write::

    from repro import Session, WorkloadPoint

    session = Session()
    record = session.run(WorkloadPoint("gaxpy", n=128, nprocs=4,
                                      version="row", slab_ratio=0.25))

and every registered workload (gaxpy, transpose, elementwise, mini-HPF
source programs) goes through the same machinery: the same compile cache,
the same :class:`~repro.api.RunRecord` result schema, and the same parallel
sweep driver.
"""

from __future__ import annotations

import collections
import concurrent.futures
import threading
from typing import Dict, Iterable, List, Optional, Union

from repro.api.records import RunRecord
from repro.api.workload import CompiledWorkload, WorkloadPoint, get_workload
from repro.config import ExecutionMode, RunConfig
from repro.exceptions import WorkloadError
from repro.machine.parameters import MachineParameters, touchstone_delta

__all__ = ["Session"]

PointLike = Union[WorkloadPoint, CompiledWorkload]


class Session:
    """Owns machine parameters, run configuration, compile cache and sweeps.

    Parameters
    ----------
    params:
        Machine model parameters (default: the Touchstone-Delta-like model).
    config:
        Base :class:`~repro.config.RunConfig`; its ``mode`` is the default
        for :meth:`run` and :meth:`sweep`, its ``seed`` drives workload input
        generation, its ``scratch_dir`` hosts the Local Array Files, and its
        ``prefetch`` policy (``"none"`` | ``"overlap"``) flows into every
        virtual machine the session creates, so the executor's slab reads
        can hide behind computation when overlap prefetching is enabled
        (in slab-driven runs — every ``EXECUTE``-mode evaluation and the
        elementwise/transpose ``ESTIMATE`` path; the bulk analytic
        reduction estimate has no slab loop and reports unhidden time).
    compile_cache_size:
        Capacity of the per-session LRU cache of :class:`CompiledWorkload`
        objects (keyed on the full :class:`WorkloadPoint`).  Cached programs
        are shared between runs and threads — they are frozen and must not
        be mutated.
    """

    def __init__(
        self,
        params: Optional[MachineParameters] = None,
        config: Optional[RunConfig] = None,
        *,
        compile_cache_size: int = 128,
    ):
        if compile_cache_size < 1:
            raise WorkloadError("compile_cache_size must be at least 1")
        self.params = params or touchstone_delta()
        self.config = config or RunConfig()
        self._cache: "collections.OrderedDict[WorkloadPoint, CompiledWorkload]" = (
            collections.OrderedDict()
        )
        self._cache_capacity = compile_cache_size
        self._cache_lock = threading.Lock()
        self._hits = 0
        self._misses = 0

    # ------------------------------------------------------------------
    # compilation
    # ------------------------------------------------------------------
    def compile(
        self,
        point: Optional[WorkloadPoint] = None,
        *,
        source: Optional[str] = None,
        **point_kwargs,
    ) -> CompiledWorkload:
        """Compile a workload point (LRU-cached on the full point).

        Three call shapes are accepted::

            session.compile(point)                       # an explicit point
            session.compile(source=hpf_text, slab_ratio=0.25)   # HPF source
            session.compile(workload="gaxpy", n=64, nprocs=4,
                            version="row", slab_ratio=0.5)      # fields

        ``source=...`` builds an ``"hpf"`` point carrying the program text;
        the compiled program's own sizes fill in ``n`` and ``nprocs``.
        """
        if point is not None and (source is not None or point_kwargs):
            raise WorkloadError("pass either a WorkloadPoint or keyword fields, not both")
        if point is None:
            if source is not None:
                options = dict(point_kwargs.pop("options", {}) or {})
                options["source"] = source
                point = WorkloadPoint(workload="hpf", options=options, **point_kwargs)
            else:
                point = WorkloadPoint(**point_kwargs)

        with self._cache_lock:
            cached = self._cache.get(point)
            if cached is not None:
                self._cache.move_to_end(point)
                self._hits += 1
                return cached
            self._misses += 1

        workload = get_workload(point.workload)
        workload.validate(point)
        compiled = workload.compile(point, self.params)

        with self._cache_lock:
            self._cache[point] = compiled
            self._cache.move_to_end(point)
            while len(self._cache) > self._cache_capacity:
                self._cache.popitem(last=False)
        return compiled

    def cache_info(self) -> Dict[str, int]:
        with self._cache_lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "size": len(self._cache),
                "capacity": self._cache_capacity,
            }

    def clear_cache(self) -> None:
        with self._cache_lock:
            self._cache.clear()

    # ------------------------------------------------------------------
    # single-point evaluation
    # ------------------------------------------------------------------
    def run(
        self,
        point: PointLike,
        mode: Optional[ExecutionMode | str] = None,
        verify: Optional[bool] = None,
    ) -> RunRecord:
        """Evaluate one point (or pre-compiled workload) and return its record.

        ``mode`` defaults to the session config's mode; ``verify`` defaults
        to the config's ``verify`` flag and only matters in ``EXECUTE`` mode.
        """
        from repro.runtime.vm import VirtualMachine

        compiled = point if isinstance(point, CompiledWorkload) else self.compile(point)
        if mode is None:
            mode = self.config.mode
        mode = ExecutionMode(mode) if isinstance(mode, str) else mode
        if verify is None:
            verify = self.config.verify
        run_config = self.config.with_mode(mode)
        with VirtualMachine(compiled.nprocs, compiled.params, run_config) as vm:
            if mode is ExecutionMode.ESTIMATE:
                return compiled.workload.estimate(compiled, vm)
            return compiled.workload.execute(compiled, vm, verify)

    def estimate(self, point: PointLike) -> RunRecord:
        """Evaluate one point analytically (``ESTIMATE`` mode)."""
        return self.run(point, mode=ExecutionMode.ESTIMATE)

    def execute(self, point: PointLike, verify: Optional[bool] = None) -> RunRecord:
        """Really run one point (``EXECUTE`` mode)."""
        return self.run(point, mode=ExecutionMode.EXECUTE, verify=verify)

    # ------------------------------------------------------------------
    # sweeps
    # ------------------------------------------------------------------
    def sweep(
        self,
        points: Iterable[PointLike],
        mode: Optional[ExecutionMode | str] = None,
        workers: int = 1,
        verify: Optional[bool] = None,
    ) -> List[RunRecord]:
        """Evaluate many points — possibly of different workloads — in order.

        ``workers > 1`` evaluates points concurrently in a thread pool.  Each
        point owns its virtual machine, scratch directory and cost counters,
        and records carry only simulated quantities, so the result list is
        per-field identical to a sequential sweep and returned in input
        order.  Threads pay off in ``EXECUTE`` mode, where the heavy work —
        BLAS kernels and file I/O — releases the GIL.

        Unlike the legacy ``sweep_gaxpy`` driver, the ``verify`` flag is
        forwarded to every point on both the sequential and the thread-pool
        paths.
        """
        points = list(points)
        if workers > 1 and len(points) > 1:
            with concurrent.futures.ThreadPoolExecutor(max_workers=workers) as pool:
                return list(
                    pool.map(lambda p: self.run(p, mode=mode, verify=verify), points)
                )
        return [self.run(p, mode=mode, verify=verify) for p in points]

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        info = self.cache_info()
        return (
            f"Session(params={self.params.name!r}, mode={self.config.mode.value}, "
            f"cache {info['size']}/{info['capacity']})"
        )
