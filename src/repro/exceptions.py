"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still being
able to discriminate between front-end (HPF), compilation, runtime and machine
model failures.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "HPFSyntaxError",
    "HPFSemanticError",
    "DistributionError",
    "AlignmentError",
    "CompilationError",
    "CostModelError",
    "MemoryAllocationError",
    "RuntimeExecutionError",
    "IOEngineError",
    "CollectiveError",
    "MachineConfigurationError",
    "ExperimentError",
    "WorkloadError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class HPFSyntaxError(ReproError):
    """Raised by the mini-HPF lexer/parser on malformed source text.

    Carries the source line/column when available so tools can point at the
    offending token.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        self.line = line
        self.column = column
        location = ""
        if line is not None:
            location = f" (line {line}" + (f", column {column}" if column is not None else "") + ")"
        super().__init__(f"{message}{location}")


class HPFSemanticError(ReproError):
    """Raised when a syntactically valid program violates HPF semantics.

    Examples: aligning an array with an undeclared template, distributing a
    template onto an undeclared processor arrangement, or referencing an
    undeclared array inside a ``FORALL``.
    """


class DistributionError(ReproError):
    """Raised for invalid data-distribution requests.

    Examples: a global index outside the template extent, a BLOCK distribution
    over zero processors, or asking for the local bounds of a rank outside the
    processor arrangement.
    """


class AlignmentError(ReproError):
    """Raised when an ALIGN directive cannot be applied to an array."""


class CompilationError(ReproError):
    """Raised when the out-of-core compiler cannot translate a program."""


class CostModelError(ReproError):
    """Raised when the I/O cost model receives an inconsistent query."""


class MemoryAllocationError(ReproError):
    """Raised when the per-array memory allocator cannot satisfy a budget."""


class RuntimeExecutionError(ReproError):
    """Raised when executing a compiled node program fails."""


class IOEngineError(ReproError):
    """Raised for invalid Local Array File operations (bad extents, closed files)."""


class CollectiveError(ReproError):
    """Raised for malformed collective communication calls."""


class MachineConfigurationError(ReproError):
    """Raised for invalid machine-model parameters (negative bandwidth etc.)."""


class ExperimentError(ReproError):
    """Raised by the experiment harness for inconsistent sweep configurations."""


class WorkloadError(ReproError):
    """Raised by the workload registry and the Session API.

    Examples: registering two workloads under one name, asking for an
    unregistered workload, or compiling a :class:`~repro.api.WorkloadPoint`
    whose fields do not satisfy the workload's contract (missing slab
    specification, unknown program version, absent HPF source).
    """
